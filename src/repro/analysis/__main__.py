"""``python -m repro.analysis`` — run the invariant checkers.

Exit codes: 0 clean, 1 unexplained findings, 2 configuration error
(malformed allowlist, refused ``--update-lock``, bad paths).

Examples::

    python -m repro.analysis                      # whole repo, all checkers
    python -m repro.analysis src/repro/service    # one subtree
    python -m repro.analysis --select RPR103      # one rule
    python -m repro.analysis --format json        # machine-readable report
    python -m repro.analysis --update-lock        # re-freeze schemas.lock.json
    python -m repro.analysis --list-checkers      # the RPR catalogue
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional

from repro.analysis.framework import (
    CHECKERS,
    AnalysisConfigError,
    AnalysisRun,
)
from repro.analysis.schema_lock import SchemaExtractionError, update_lock


def find_root(start: Optional[Path] = None) -> Path:
    """The repo root: nearest ancestor of ``start`` (default cwd) holding
    ``pyproject.toml``, else the root this package is installed from."""
    current = (start or Path.cwd()).resolve()
    for candidate in (current, *current.parents):
        if (candidate / "pyproject.toml").exists() and (candidate / "src" / "repro").exists():
            return candidate
    return Path(__file__).resolve().parents[3]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="statically check the repo's load-bearing invariants",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        type=Path,
        help="files/directories to analyse (default: src/repro)",
    )
    parser.add_argument(
        "--root", type=Path, default=None, help="repo root (default: auto-detected)"
    )
    parser.add_argument(
        "--select",
        action="append",
        metavar="CODE",
        help="run only these checker codes (repeatable)",
    )
    parser.add_argument(
        "--allowlist", type=Path, default=None, help="allowlist file (default: <root>/analysis-allowlist.json)"
    )
    parser.add_argument(
        "--lock", type=Path, default=None, help="schema lock file (default: <root>/schemas.lock.json)"
    )
    parser.add_argument(
        "--format", choices=("text", "json"), default="text", help="report format"
    )
    parser.add_argument(
        "--update-lock",
        action="store_true",
        help="regenerate schemas.lock.json from the sources and exit",
    )
    parser.add_argument(
        "--force",
        action="store_true",
        help="with --update-lock: re-freeze even without a SCHEMA_VERSION bump",
    )
    parser.add_argument(
        "--list-checkers", action="store_true", help="print the RPR code catalogue"
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.list_checkers:
        for code in sorted(CHECKERS):
            checker = CHECKERS[code]
            print(f"{code}  {checker.name}")
            print(f"       {checker.description}")
        return 0
    root = find_root() if args.root is None else args.root.resolve()
    lock_path = args.lock if args.lock is not None else root / "schemas.lock.json"
    if args.update_lock:
        try:
            print(update_lock(root, lock_path, force=args.force))
        except (SchemaExtractionError, OSError) as error:
            print(f"error: {error}", file=sys.stderr)
            return 2
        return 0
    try:
        run = AnalysisRun(
            root,
            paths=args.paths or None,
            checkers=args.select,
            allowlist_path=args.allowlist,
            lock_path=lock_path,
        )
        report = run.run()
    except AnalysisConfigError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    if args.format == "json":
        print(json.dumps(report.to_dict(), indent=2, sort_keys=True))
    else:
        for finding in report.findings:
            print(finding.render())
        print(report.summary())
    return 0 if report.clean else 1


if __name__ == "__main__":
    sys.exit(main())
