"""The shipped invariant checkers (``RPR101`` … ``RPR105``).

Each rule encodes a contract this repo already enforces dynamically
somewhere — a CI job, a regression test, a docstring promise — restated
here so a violation is caught at parse time on every commit:

* **RPR101 unguarded-numpy** — numpy is an optional dependency; every
  ``import numpy`` must sit in a ``try/except ImportError`` or inside a
  function (lazy), so the no-numpy CI job is a backstop, not the only
  line of defence.
* **RPR102 nondeterminism-in-core** — modules under the bit-identity
  contract (``core/``, ``relation/``, ``stream/``, ``discovery/``) may
  not iterate bare sets into output order, use the stdlib ``random``
  module, wall-clock time, unordered directory listings, or unseeded
  RNG construction.
* **RPR103 lock-discipline** — in a class owning ``self._lock``, every
  ``self._*`` mutation must happen in ``__init__``, inside a
  ``with self._lock:`` block, or in a private method provably called
  only from lock-held contexts (intra-class fixpoint).  Declared
  loop-confined classes must stay free of ``threading`` primitives.
* **RPR105 obs-conventions** — metric writes use the
  ``*_total`` / ``*_seconds`` / ``*_bytes`` naming regime with one fixed
  label set per metric across the whole repo, and nothing under
  ``repro/obs/`` imports outside the standard library.

(**RPR104 wire-schema-freeze** lives in
:mod:`repro.analysis.schema_lock` — it diffs the service model and
routing table against the committed golden ``schemas.lock.json``.)
"""

from __future__ import annotations

import ast
import re
import sys
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.analysis.framework import (
    AnalysisRun,
    Checker,
    Finding,
    ParsedModule,
    ancestors,
    catches_import_error,
    dotted_name,
    enclosing_function,
    register_checker,
)

__all__ = [
    "LockDisciplineChecker",
    "NondeterminismChecker",
    "ObsConventionsChecker",
    "UnguardedNumpyChecker",
]


# ----------------------------------------------------------------------
# RPR101 — unguarded numpy imports
# ----------------------------------------------------------------------
@register_checker
class UnguardedNumpyChecker(Checker):
    code = "RPR101"
    name = "unguarded-numpy"
    description = (
        "numpy is optional: every `import numpy` must be guarded by "
        "try/except ImportError or deferred into a function"
    )

    def check_module(self, module: ParsedModule) -> Iterable[Finding]:
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Import):
                names = [alias.name for alias in node.names]
            elif isinstance(node, ast.ImportFrom):
                names = [node.module] if node.module else []
            else:
                continue
            if not any(name and name.split(".")[0] == "numpy" for name in names):
                continue
            if enclosing_function(node) is not None:
                continue  # lazy import: only pays when the caller runs
            if catches_import_error(node):
                continue  # the designated guarded-import section shape
            yield Finding(
                module.rel,
                node.lineno,
                node.col_offset,
                self.code,
                "module-level `import numpy` without a try/except "
                "ImportError guard — numpy is an optional dependency; "
                "guard the import or defer it into the function that "
                "needs it",
            )


# ----------------------------------------------------------------------
# RPR102 — nondeterminism in bit-identity modules
# ----------------------------------------------------------------------
#: Packages whose outputs must be bit-identical across backends, chunkings
#: and process counts (the repo-wide `==` contract).
CONTRACT_PACKAGES: Tuple[str, ...] = ("core/", "relation/", "stream/", "discovery/")

#: Wall-clock / filesystem-order / entropy calls that may not feed values
#: produced under the bit-identity contract.  Monotonic timers
#: (`perf_counter`, `monotonic`) stay legal: elapsed-seconds fields are
#: declared volatile by the service model, not part of the contract.
_BANNED_CALL_SUFFIXES: Tuple[str, ...] = (
    "time.time",
    "time.time_ns",
    "datetime.now",
    "datetime.utcnow",
    "datetime.today",
    "date.today",
    "os.listdir",
    "os.scandir",
    "os.walk",
    "glob.glob",
    "glob.iglob",
    "uuid.uuid1",
    "uuid.uuid4",
)

#: Legacy global-state RNG entry points (numpy's module-level generator):
#: their sequence depends on every other caller in the process.
_GLOBAL_RNG_SUFFIXES: Tuple[str, ...] = (
    "random.rand",
    "random.randn",
    "random.randint",
    "random.random",
    "random.choice",
    "random.shuffle",
    "random.permutation",
    "random.seed",
)

#: Constructors whose argument order becomes output order.
_ORDER_SINKS = frozenset({"list", "tuple", "enumerate", "iter", "reversed"})


def _is_set_expression(node: ast.AST) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        return node.func.id in ("set", "frozenset")
    return False


@register_checker
class NondeterminismChecker(Checker):
    code = "RPR102"
    name = "nondeterminism-in-core"
    description = (
        "bit-identity modules (core/, relation/, stream/, discovery/) must "
        "not iterate bare sets into output order or read entropy/wall-clock/"
        "directory-order sources"
    )

    def check_module(self, module: ParsedModule) -> Iterable[Finding]:
        if not module.pkg_rel.startswith(CONTRACT_PACKAGES):
            return
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name.split(".")[0] == "random":
                        yield self._finding(
                            module,
                            node,
                            "import of the stdlib `random` module — seed-less "
                            "entropy has no place under the bit-identity "
                            "contract; thread an explicit seeded generator in",
                        )
            elif isinstance(node, ast.ImportFrom):
                if node.module and node.module.split(".")[0] == "random":
                    yield self._finding(
                        module,
                        node,
                        "import from the stdlib `random` module — seed-less "
                        "entropy has no place under the bit-identity contract",
                    )
            elif isinstance(node, ast.Call):
                yield from self._check_call(module, node)
            elif isinstance(node, (ast.For, ast.AsyncFor)):
                if _is_set_expression(node.iter):
                    yield self._finding(
                        module,
                        node.iter,
                        "iteration over a bare set — set order is "
                        "hash-randomised; sort it (or keep a dict/list for "
                        "first-occurrence order)",
                    )
            elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)):
                for generator in node.generators:
                    if _is_set_expression(generator.iter):
                        yield self._finding(
                            module,
                            generator.iter,
                            "comprehension over a bare set — set order is "
                            "hash-randomised; sort it first",
                        )

    def _check_call(self, module: ParsedModule, node: ast.Call) -> Iterable[Finding]:
        name = dotted_name(node.func)
        if name:
            if any(
                name == banned or name.endswith("." + banned)
                for banned in _BANNED_CALL_SUFFIXES
            ):
                yield self._finding(
                    module,
                    node,
                    f"call to `{name}` — wall-clock, filesystem order and "
                    f"entropy sources are banned under the bit-identity "
                    f"contract (monotonic timers are fine)",
                )
            if name.endswith("random.default_rng") and not (node.args or node.keywords):
                yield self._finding(
                    module,
                    node,
                    "`default_rng()` without a seed — construct generators "
                    "from an explicit seed so replays are bit-identical",
                )
            if ".random." in f".{name}." and name.endswith(_GLOBAL_RNG_SUFFIXES):
                yield self._finding(
                    module,
                    node,
                    f"call to the global-state RNG `{name}` — its sequence "
                    f"depends on every other caller; use a seeded "
                    f"`default_rng(seed)` instance",
                )
        if (
            isinstance(node.func, ast.Name)
            and node.func.id in _ORDER_SINKS
            and node.args
            and _is_set_expression(node.args[0])
        ):
            yield self._finding(
                module,
                node,
                f"`{node.func.id}(set(...))` materialises hash-randomised "
                f"set order — use `sorted(...)` or preserve first-occurrence "
                f"order in a dict",
            )

    def _finding(self, module: ParsedModule, node: ast.AST, message: str) -> Finding:
        return Finding(
            module.rel,
            getattr(node, "lineno", 1),
            getattr(node, "col_offset", 0),
            self.code,
            message,
        )


# ----------------------------------------------------------------------
# RPR103 — lock discipline
# ----------------------------------------------------------------------
#: Classes whose concurrency contract is thread-confinement (they run on
#: one event loop by construction): introducing threading primitives in
#: them would silently fork the design into half-locked territory.
LOOP_CONFINED_CLASSES = frozenset({"ShardDispatcher"})


def _lock_in_with_items(node: ast.With) -> bool:
    return any(
        dotted_name(item.context_expr) == "self._lock" for item in node.items
    )


def _mutated_self_attr(node: ast.AST) -> Optional[Tuple[str, ast.AST]]:
    """``(attr, anchor)`` when ``node`` assigns/augments/deletes a
    ``self._x`` attribute or a subscript rooted at one."""
    targets: List[ast.AST] = []
    if isinstance(node, ast.Assign):
        targets = list(node.targets)
    elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
        targets = [node.target] if getattr(node, "value", None) is not None else []
    elif isinstance(node, ast.Delete):
        targets = list(node.targets)
    for target in targets:
        base = target
        while isinstance(base, ast.Subscript):
            base = base.value
        if (
            isinstance(base, ast.Attribute)
            and isinstance(base.value, ast.Name)
            and base.value.id == "self"
            and base.attr.startswith("_")
        ):
            return base.attr, target
    return None


def _under_lock(node: ast.AST, class_node: ast.ClassDef) -> bool:
    """Lexically inside a ``with self._lock:`` block within the class.

    The walk crosses nested function boundaries on purpose: a closure
    defined inside the locked region (e.g. a statistics provider handed
    to the discovery engine) runs re-entrantly under the same RLock.
    """
    for ancestor in ancestors(node):
        if ancestor is class_node:
            return False
        if isinstance(ancestor, ast.With) and _lock_in_with_items(ancestor):
            return True
    return False


def _enclosing_method(node: ast.AST, class_node: ast.ClassDef) -> Optional[str]:
    """Name of the class-level method lexically containing ``node``."""
    name: Optional[str] = None
    for ancestor in ancestors(node):
        if isinstance(ancestor, (ast.FunctionDef, ast.AsyncFunctionDef)):
            parent = getattr(ancestor, "parent", None)
            if parent is class_node:
                name = ancestor.name
    return name


@register_checker
class LockDisciplineChecker(Checker):
    code = "RPR103"
    name = "lock-discipline"
    description = (
        "classes owning self._lock mutate self._* state only in __init__, "
        "under `with self._lock:`, or in private methods reachable only "
        "from lock-held contexts; loop-confined classes stay threading-free"
    )

    def check_module(self, module: ParsedModule) -> Iterable[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            if node.name in LOOP_CONFINED_CLASSES:
                yield from self._check_loop_confined(module, node)
            if self._owns_lock(node):
                yield from self._check_lock_owner(module, node)

    @staticmethod
    def _owns_lock(class_node: ast.ClassDef) -> bool:
        for node in ast.walk(class_node):
            if isinstance(node, ast.Assign) and any(
                dotted_name(target) == "self._lock" for target in node.targets
            ):
                return True
        return False

    def _check_loop_confined(
        self, module: ParsedModule, class_node: ast.ClassDef
    ) -> Iterable[Finding]:
        for node in ast.walk(class_node):
            if isinstance(node, ast.Name) and node.id == "threading":
                yield Finding(
                    module.rel,
                    node.lineno,
                    node.col_offset,
                    self.code,
                    f"`{class_node.name}` is loop-confined by contract "
                    f"(single-threaded on the server's event loop): "
                    f"introducing `threading` primitives here half-adopts "
                    f"locking — keep all access on the loop instead",
                )

    def _check_lock_owner(
        self, module: ParsedModule, class_node: ast.ClassDef
    ) -> Iterable[Finding]:
        methods: Dict[str, ast.AST] = {
            item.name: item
            for item in class_node.body
            if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef))
        }
        # Internal call sites per method: method -> [(caller, protected)].
        call_sites: Dict[str, List[Tuple[str, bool]]] = {name: [] for name in methods}
        for node in ast.walk(class_node):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and isinstance(node.func.value, ast.Name)
                and node.func.value.id == "self"
                and node.func.attr in call_sites
            ):
                caller = _enclosing_method(node, class_node)
                if caller is not None:
                    call_sites[node.func.attr].append(
                        (caller, _under_lock(node, class_node))
                    )

        # Fixpoint: a private method is "lock-held" when every internal
        # call site is protected (lexically under the lock, in __init__,
        # or in another lock-held method).  Public methods must take the
        # lock themselves — callers outside the class cannot be seen.
        lock_held: Set[str] = set()
        changed = True
        while changed:
            changed = False
            for name, sites in call_sites.items():
                if name in lock_held or not name.startswith("_") or name == "__init__":
                    continue
                if not sites:
                    continue
                if all(
                    protected or caller == "__init__" or caller in lock_held
                    for caller, protected in sites
                ):
                    lock_held.add(name)
                    changed = True

        for node in ast.walk(class_node):
            mutated = _mutated_self_attr(node)
            if mutated is None:
                continue
            attr, anchor = mutated
            method = _enclosing_method(node, class_node)
            if method is None or method == "__init__":
                continue
            if method in lock_held or _under_lock(node, class_node):
                continue
            yield Finding(
                module.rel,
                anchor.lineno,
                anchor.col_offset,
                self.code,
                f"`{class_node.name}.{method}` mutates `self.{attr}` outside "
                f"`with self._lock:` — this class serialises its `self._*` "
                f"state on its lock; wrap the mutation or route it through a "
                f"lock-held helper",
            )


# ----------------------------------------------------------------------
# RPR105 — observability conventions
# ----------------------------------------------------------------------
_COUNTER_RE = re.compile(r"^[a-z][a-z0-9_]*_total$")
_HISTOGRAM_RE = re.compile(r"^[a-z][a-z0-9_]*_(seconds|bytes)$")
_GAUGE_RE = re.compile(r"^[a-z][a-z0-9_]*$")

#: Registry write/declare methods -> metric type.
_METRIC_METHODS: Dict[str, str] = {
    "inc": "counter",
    "declare_counter": "counter",
    "observe": "histogram",
    "declare_histogram": "histogram",
    "set_gauge": "gauge",
    "declare_gauge": "gauge",
}

#: Non-label keyword arguments of the registry API.
_NON_LABEL_KWARGS = frozenset({"value", "help", "label_names", "buckets"})

if hasattr(sys, "stdlib_module_names"):
    _STDLIB_MODULES = frozenset(sys.stdlib_module_names)
else:  # pragma: no cover - python 3.9 fallback
    _STDLIB_MODULES = frozenset(
        """__future__ abc argparse array ast asyncio base64 bisect builtins bz2
        calendar collections concurrent configparser contextlib contextvars copy
        copyreg csv ctypes dataclasses datetime decimal difflib dis enum errno
        fnmatch fractions functools gc getpass gettext glob gzip hashlib heapq
        hmac html http importlib inspect io itertools json keyword linecache
        locale logging lzma math multiprocessing numbers operator os pathlib
        pickle platform pprint queue random re reprlib secrets selectors shutil
        signal socket socketserver sqlite3 ssl stat statistics string struct
        subprocess sys tarfile tempfile textwrap threading time token tokenize
        traceback types typing unicodedata unittest urllib uuid warnings weakref
        xml zipfile zlib""".split()
    )


@register_checker
class ObsConventionsChecker(Checker):
    code = "RPR105"
    name = "obs-conventions"
    description = (
        "metric names follow the *_total/*_seconds/*_bytes regime with one "
        "fixed label set per metric; repro/obs/ imports stdlib only"
    )

    def __init__(self):
        #: metric name -> [(labels, path, line, col)] across the repo.
        self._sites: Dict[str, List[Tuple[Tuple[str, ...], str, int, int]]] = {}

    def check_module(self, module: ParsedModule) -> Iterable[Finding]:
        if module.pkg_rel.startswith("obs/"):
            yield from self._check_obs_imports(module)
        yield from self._check_metric_calls(module)

    def _check_obs_imports(self, module: ParsedModule) -> Iterable[Finding]:
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Import):
                names = [alias.name for alias in node.names]
            elif isinstance(node, ast.ImportFrom):
                if node.level and node.level > 0:
                    continue  # relative: stays inside repro.obs
                names = [node.module] if node.module else []
            else:
                continue
            for name in names:
                top = name.split(".")[0]
                if top in _STDLIB_MODULES or name.startswith("repro.obs"):
                    continue
                yield Finding(
                    module.rel,
                    node.lineno,
                    node.col_offset,
                    self.code,
                    f"`repro.obs` is stdlib-only by contract (it must import "
                    f"cleanly in every deployment, numpy-free CI included); "
                    f"`{name}` breaks that",
                )

    def _check_metric_calls(self, module: ParsedModule) -> Iterable[Finding]:
        for node in ast.walk(module.tree):
            if not (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in _METRIC_METHODS
            ):
                continue
            if not (
                node.args
                and isinstance(node.args[0], ast.Constant)
                and isinstance(node.args[0].value, str)
            ):
                continue
            name = node.args[0].value
            kind = _METRIC_METHODS[node.func.attr]
            message = self._naming_violation(kind, name)
            if message is not None:
                yield Finding(
                    module.rel, node.lineno, node.col_offset, self.code, message
                )
            if any(kw.arg is None for kw in node.keywords):
                continue  # **labels splat: label set not statically known
            labels = tuple(
                sorted(
                    kw.arg
                    for kw in node.keywords
                    if kw.arg is not None and kw.arg not in _NON_LABEL_KWARGS
                )
            )
            self._sites.setdefault(name, []).append(
                (labels, module.rel, node.lineno, node.col_offset)
            )

    @staticmethod
    def _naming_violation(kind: str, name: str) -> Optional[str]:
        if kind == "counter" and not _COUNTER_RE.match(name):
            return (
                f"counter {name!r} must match `*_total` (lower_snake_case "
                f"with the cumulative suffix)"
            )
        if kind == "histogram" and not _HISTOGRAM_RE.match(name):
            return (
                f"histogram {name!r} must match `*_seconds` or `*_bytes` "
                f"(the unit is the suffix)"
            )
        if kind == "gauge":
            if not _GAUGE_RE.match(name):
                return f"gauge {name!r} must be lower_snake_case"
            if name.endswith(("_total", "_seconds", "_bytes")):
                return (
                    f"gauge {name!r} carries a cumulative/unit suffix — "
                    f"gauges are levels; reserve `_total`/`_seconds`/`_bytes` "
                    f"for counters and histograms"
                )
        return None

    def finalize(self, run: AnalysisRun) -> Iterable[Finding]:
        for name in sorted(self._sites):
            sites = sorted(self._sites[name], key=lambda s: (s[1], s[2], s[3]))
            canonical = sites[0][0]
            for labels, path, line, col in sites[1:]:
                if labels != canonical:
                    yield Finding(
                        path,
                        line,
                        col,
                        self.code,
                        f"metric {name!r} is written here with label set "
                        f"{list(labels)} but {list(canonical)} at "
                        f"{sites[0][1]}:{sites[0][2]} — a metric's label set "
                        f"is fixed at first use (merges reject conflicts)",
                    )
        self._sites = {}
