"""The `repro.analysis` framework: findings, checkers, suppressions.

The repo's correctness rests on a handful of load-bearing invariants —
the optional-numpy guarantee, the bit-identity contract, the per-session
lock discipline, the frozen ``/v1`` wire schemas, the ``repro.obs``
conventions.  Each is stated once here as a machine-checkable rule and
proven on every commit, *statically*, before any test runs (the CI jobs
that exercise them dynamically become backstops, not the only line of
defence).

Vocabulary
----------
* A **checker** owns one stable code (``RPR1xx``) and inspects parsed
  modules (:class:`ParsedModule`) and/or the whole run
  (:meth:`Checker.finalize`) for violations, emitting
  :class:`Finding` objects.
* A finding is **suppressed inline** by a ``# repro: allow[RPR1xx]``
  comment on the offending line, or **allowlisted** by an entry in the
  committed allowlist file — every entry carries a mandatory
  one-line justification (a blanket or unjustified entry is a
  configuration error, not a suppression).
* ``RPR100`` is the framework's own code: unparsable files, stale
  allowlist entries — meta-findings that keep the tool honest.

The CLI (``python -m repro.analysis``) exits non-zero on any
unexplained finding; see :mod:`repro.analysis.checkers` for the rules
and :mod:`repro.analysis.schema_lock` for the wire-schema freeze.
"""

from __future__ import annotations

import ast
import json
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Type

__all__ = [
    "AnalysisConfigError",
    "AnalysisReport",
    "AnalysisRun",
    "AllowlistEntry",
    "Checker",
    "CHECKERS",
    "Finding",
    "FRAMEWORK_CODE",
    "ParsedModule",
    "load_allowlist",
    "register_checker",
    "suppressed_codes",
]

#: The framework's own finding code (parse failures, stale allowlist).
FRAMEWORK_CODE = "RPR100"

_CODE_RE = re.compile(r"^RPR\d{3}$")

#: ``# repro: allow[RPR101]`` (or a comma-separated list of codes).
_SUPPRESS_RE = re.compile(r"#\s*repro:\s*allow\[([A-Z0-9,\s]+)\]")


class AnalysisConfigError(Exception):
    """The analyzer itself is misconfigured (malformed allowlist, bad
    paths) — distinct from findings so the CLI can exit 2, not 1."""


@dataclass(frozen=True, order=True)
class Finding:
    """One violation of one invariant, anchored to a file and line."""

    path: str  #: repo-relative posix path
    line: int
    col: int
    code: str
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.code} {self.message}"


class ParsedModule:
    """One source file parsed once and shared by every checker.

    ``rel`` is the repo-relative posix path (finding anchor);
    ``pkg_rel`` is the path relative to ``src/repro`` (checker scoping,
    e.g. ``core/backends.py``), or ``rel`` when outside the package.
    Every AST node carries a ``parent`` link so checkers can reason
    about lexical context (guarding ``try``, enclosing ``with``).
    """

    def __init__(self, path: Path, rel: str, pkg_rel: str, source: str):
        self.path = path
        self.rel = rel
        self.pkg_rel = pkg_rel
        self.source = source
        self.lines = source.splitlines()
        self.tree = ast.parse(source, filename=rel)
        for node in ast.walk(self.tree):
            for child in ast.iter_child_nodes(node):
                child.parent = node  # type: ignore[attr-defined]

    def line_text(self, line: int) -> str:
        if 1 <= line <= len(self.lines):
            return self.lines[line - 1]
        return ""


class Checker:
    """Base class: one stable code, one invariant, one rationale."""

    #: Stable finding code (``RPR1xx``); never renumber a shipped code.
    code: str = ""
    #: Short kebab-case rule name (the catalogue key).
    name: str = ""
    #: One-line rationale shown by ``--list-checkers``.
    description: str = ""

    def check_module(self, module: ParsedModule) -> Iterable[Finding]:
        """Per-file findings (the common case)."""
        return ()

    def finalize(self, run: "AnalysisRun") -> Iterable[Finding]:
        """Whole-run findings, after every module was visited (cross-file
        aggregation, lockfile diffs)."""
        return ()


#: code -> checker class, populated by :func:`register_checker`.
CHECKERS: Dict[str, Type[Checker]] = {}


def register_checker(cls: Type[Checker]) -> Type[Checker]:
    if not _CODE_RE.match(cls.code or ""):
        raise ValueError(f"checker {cls.__name__} needs a RPR1xx code, got {cls.code!r}")
    if cls.code == FRAMEWORK_CODE:
        raise ValueError(f"{FRAMEWORK_CODE} is reserved for the framework")
    if cls.code in CHECKERS:
        raise ValueError(f"duplicate checker code {cls.code}")
    CHECKERS[cls.code] = cls
    return cls


def suppressed_codes(line_text: str) -> frozenset:
    """Codes suppressed by a ``# repro: allow[...]`` comment on a line."""
    match = _SUPPRESS_RE.search(line_text)
    if match is None:
        return frozenset()
    return frozenset(
        code.strip() for code in match.group(1).split(",") if code.strip()
    )


# ----------------------------------------------------------------------
# Allowlist
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class AllowlistEntry:
    """One committed exception: ``code`` at ``path``, with its reason.

    Entries are path-level (not line-level) on purpose: line numbers
    churn, the *decision* that a file may violate a rule does not.
    """

    code: str
    path: str
    justification: str


def load_allowlist(path: Path) -> List[AllowlistEntry]:
    """Load and validate the allowlist; absent file means no entries.

    Raises :class:`AnalysisConfigError` on malformed entries or a
    missing/empty justification — an unexplained exception is exactly
    what this tool exists to prevent.
    """
    if not path.exists():
        return []
    try:
        payload = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError) as error:
        raise AnalysisConfigError(f"cannot read allowlist {path}: {error}") from error
    entries = payload.get("entries") if isinstance(payload, dict) else payload
    if not isinstance(entries, list):
        raise AnalysisConfigError(
            f"allowlist {path} must be a list of entries (or {{'entries': [...]}})"
        )
    out: List[AllowlistEntry] = []
    for index, raw in enumerate(entries):
        if not isinstance(raw, dict):
            raise AnalysisConfigError(f"allowlist entry #{index} is not an object: {raw!r}")
        missing = [key for key in ("code", "path", "justification") if key not in raw]
        if missing:
            raise AnalysisConfigError(f"allowlist entry #{index} is missing {missing}")
        code = str(raw["code"])
        if not _CODE_RE.match(code):
            raise AnalysisConfigError(f"allowlist entry #{index} has a bad code {code!r}")
        justification = str(raw["justification"]).strip()
        if not justification:
            raise AnalysisConfigError(
                f"allowlist entry #{index} ({code} at {raw['path']}) needs a "
                f"non-empty justification — blanket suppressions are not accepted"
            )
        out.append(AllowlistEntry(code, str(raw["path"]), justification))
    return out


# ----------------------------------------------------------------------
# The run driver
# ----------------------------------------------------------------------
@dataclass
class AnalysisReport:
    """Everything one run produced, already triaged."""

    findings: List[Finding] = field(default_factory=list)
    suppressed: List[Finding] = field(default_factory=list)
    allowlisted: List[Finding] = field(default_factory=list)
    files: int = 0
    checkers: int = 0

    @property
    def clean(self) -> bool:
        return not self.findings

    def to_dict(self) -> Dict[str, object]:
        return {
            "clean": self.clean,
            "files": self.files,
            "checkers": self.checkers,
            "findings": [vars(f) for f in self.findings],
            "suppressed": len(self.suppressed),
            "allowlisted": len(self.allowlisted),
        }

    def summary(self) -> str:
        return (
            f"{len(self.findings)} finding(s) "
            f"({len(self.suppressed)} suppressed inline, "
            f"{len(self.allowlisted)} allowlisted) "
            f"across {self.files} file(s), {self.checkers} checker(s)"
        )


class AnalysisRun:
    """One analysis pass over a repo root.

    Parameters
    ----------
    root:
        Repository root (the directory holding ``pyproject.toml``,
        ``src/repro``, the allowlist and the schema lock).
    paths:
        Optional file/directory filters (absolute or root-relative);
        default is every ``*.py`` under ``src/repro``, in sorted order
        (the scan itself obeys the determinism rules it enforces).
    checkers:
        Optional subset of codes to run (default: all registered).
    """

    def __init__(
        self,
        root: Path,
        paths: Optional[Sequence[Path]] = None,
        checkers: Optional[Sequence[str]] = None,
        allowlist_path: Optional[Path] = None,
        lock_path: Optional[Path] = None,
    ):
        self.root = Path(root).resolve()
        self.src = self.root / "src" / "repro"
        self.allowlist_path = (
            allowlist_path
            if allowlist_path is not None
            else self.root / "analysis-allowlist.json"
        )
        self.lock_path = (
            lock_path if lock_path is not None else self.root / "schemas.lock.json"
        )
        self._explicit_paths = None if paths is None else [Path(p) for p in paths]
        if checkers is None:
            codes = sorted(CHECKERS)
        else:
            unknown = [code for code in checkers if code not in CHECKERS]
            if unknown:
                raise AnalysisConfigError(
                    f"unknown checker codes {unknown}; known: {sorted(CHECKERS)}"
                )
            codes = sorted(checkers)
        self.checker_codes = codes
        self.modules: List[ParsedModule] = []
        self._parse_failures: List[Finding] = []

    # ------------------------------------------------------------------
    def _target_files(self) -> List[Path]:
        if self._explicit_paths is None:
            return sorted(self.src.rglob("*.py"))
        files: List[Path] = []
        for given in self._explicit_paths:
            path = given if given.is_absolute() else self.root / given
            if path.is_dir():
                files.extend(sorted(path.rglob("*.py")))
            elif path.suffix == ".py" and path.exists():
                files.append(path)
            else:
                raise AnalysisConfigError(f"no such python file or directory: {given}")
        return sorted(set(files))

    def _rel(self, path: Path) -> str:
        try:
            return path.resolve().relative_to(self.root).as_posix()
        except ValueError:
            return path.as_posix()

    def _pkg_rel(self, path: Path) -> str:
        try:
            return path.resolve().relative_to(self.src).as_posix()
        except ValueError:
            return self._rel(path)

    def _load_modules(self) -> None:
        self.modules = []
        self._parse_failures = []
        for path in self._target_files():
            rel = self._rel(path)
            try:
                source = path.read_text()
                module = ParsedModule(path, rel, self._pkg_rel(path), source)
            except (OSError, SyntaxError, ValueError) as error:
                line = getattr(error, "lineno", 1) or 1
                self._parse_failures.append(
                    Finding(rel, line, 0, FRAMEWORK_CODE, f"cannot analyse file: {error}")
                )
                continue
            self.modules.append(module)

    # ------------------------------------------------------------------
    def run(self) -> AnalysisReport:
        allowlist = load_allowlist(self.allowlist_path)
        self._load_modules()
        raw: List[Finding] = list(self._parse_failures)
        for code in self.checker_codes:
            checker = CHECKERS[code]()
            for module in self.modules:
                raw.extend(checker.check_module(module))
            raw.extend(checker.finalize(self))
        by_rel = {module.rel: module for module in self.modules}

        report = AnalysisReport(
            files=len(self.modules), checkers=len(self.checker_codes)
        )
        used_entries = set()
        for finding in sorted(raw):
            module = by_rel.get(finding.path)
            if module is not None and finding.code in suppressed_codes(
                module.line_text(finding.line)
            ):
                report.suppressed.append(finding)
                continue
            entry = self._match_allowlist(allowlist, finding)
            if entry is not None:
                used_entries.add(entry)
                report.allowlisted.append(finding)
                continue
            report.findings.append(finding)
        for entry in allowlist:
            if entry not in used_entries:
                report.findings.append(
                    Finding(
                        self._rel(self.allowlist_path),
                        1,
                        0,
                        FRAMEWORK_CODE,
                        f"stale allowlist entry: {entry.code} at {entry.path!r} "
                        f"matches no finding — delete it",
                    )
                )
        report.findings.sort()
        return report

    @staticmethod
    def _match_allowlist(
        allowlist: Sequence[AllowlistEntry], finding: Finding
    ) -> Optional[AllowlistEntry]:
        for entry in allowlist:
            if entry.code == finding.code and entry.path == finding.path:
                return entry
        return None


# ----------------------------------------------------------------------
# AST helpers shared by checkers
# ----------------------------------------------------------------------
def dotted_name(node: ast.AST) -> str:
    """``a.b.c`` for a Name/Attribute chain, ``""`` for anything else."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return ""


def ancestors(node: ast.AST) -> Iterable[ast.AST]:
    """Lexical ancestors, innermost first (needs ``parent`` links)."""
    current = getattr(node, "parent", None)
    while current is not None:
        yield current
        current = getattr(current, "parent", None)


def enclosing_function(node: ast.AST) -> Optional[ast.AST]:
    for ancestor in ancestors(node):
        if isinstance(ancestor, (ast.FunctionDef, ast.AsyncFunctionDef)):
            return ancestor
    return None


def catches_import_error(node: ast.AST) -> bool:
    """True when the import is inside the body of a ``try`` whose
    handlers catch ImportError/ModuleNotFoundError (or everything)."""
    previous = node
    for ancestor in ancestors(node):
        if isinstance(ancestor, ast.Try):
            in_body = any(
                previous is stmt or _contains(stmt, previous)
                for stmt in ancestor.body
            )
            if in_body and any(_handles_import_error(h) for h in ancestor.handlers):
                return True
        previous = ancestor
    return False


def _contains(tree: ast.AST, target: ast.AST) -> bool:
    return any(node is target for node in ast.walk(tree))


def _handles_import_error(handler: ast.ExceptHandler) -> bool:
    kind = handler.type
    if kind is None:
        return True
    names = []
    if isinstance(kind, ast.Tuple):
        names = [dotted_name(item) for item in kind.elts]
    else:
        names = [dotted_name(kind)]
    return any(
        name.rsplit(".", 1)[-1] in ("ImportError", "ModuleNotFoundError", "Exception")
        for name in names
    )
