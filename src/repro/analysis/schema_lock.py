"""RPR104 — the wire-schema freeze (``schemas.lock.json``).

The ``/v1`` wire format is defined by two tables the service promises to
keep stable: the record dataclasses of :mod:`repro.service.model`
(field names + types per ``kind``, the ``ERROR_CODES`` vocabulary,
``SCHEMA_VERSION``) and the ``ROUTES`` routing table of
:mod:`repro.service.server`.  This module extracts both **statically**
(stdlib ``ast`` — nothing is imported or executed) and diffs them
against the committed golden ``schemas.lock.json``:

* drift with the **same** ``SCHEMA_VERSION`` is a finding per changed
  field/route — the freeze caught an unversioned wire change;
* drift with a **bumped** version is one finding asking for a re-freeze
  (``python -m repro.analysis --update-lock`` regenerates the golden;
  it refuses to re-freeze *without* a bump unless ``--force``).

Line anchors point at the drifted class / table so the finding is
clickable, but only the content (not the anchors) is locked.
"""

from __future__ import annotations

import ast
import json
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Tuple

from repro.analysis.framework import (
    AnalysisRun,
    Checker,
    Finding,
    register_checker,
)

__all__ = [
    "LOCK_FILENAME",
    "SchemaExtractionError",
    "WireSchemaChecker",
    "extract_wire_schema",
    "load_lock",
    "update_lock",
    "write_lock",
]

LOCK_FILENAME = "schemas.lock.json"
MODEL_PATH = Path("src") / "repro" / "service" / "model.py"
SERVER_PATH = Path("src") / "repro" / "service" / "server.py"


class SchemaExtractionError(Exception):
    """The service sources changed shape beyond what the extractor knows."""


def _is_dataclass_decorator(node: ast.AST) -> bool:
    target = node.func if isinstance(node, ast.Call) else node
    if isinstance(target, ast.Attribute):
        return target.attr == "dataclass"
    return isinstance(target, ast.Name) and target.id == "dataclass"


def _extract_model(tree: ast.Module) -> Tuple[Dict[str, object], Dict[str, int]]:
    schema_version: Optional[int] = None
    records: Dict[str, Dict[str, str]] = {}
    error_codes: List[str] = []
    anchors: Dict[str, int] = {}
    for node in tree.body:
        if isinstance(node, ast.Assign) and len(node.targets) == 1:
            target = node.targets[0]
            if isinstance(target, ast.Name) and target.id == "SCHEMA_VERSION":
                if not (
                    isinstance(node.value, ast.Constant)
                    and isinstance(node.value.value, int)
                ):
                    raise SchemaExtractionError(
                        "SCHEMA_VERSION must be an int literal"
                    )
                schema_version = node.value.value
                anchors["SCHEMA_VERSION"] = node.lineno
            elif isinstance(target, ast.Name) and target.id == "ERROR_CODES":
                value = node.value
                if not isinstance(value, ast.Dict):
                    raise SchemaExtractionError("ERROR_CODES must be a dict literal")
                for key in value.keys:
                    if not (
                        isinstance(key, ast.Constant) and isinstance(key.value, str)
                    ):
                        raise SchemaExtractionError(
                            "ERROR_CODES keys must be string literals"
                        )
                    error_codes.append(key.value)
                anchors["ERROR_CODES"] = node.lineno
        elif isinstance(node, ast.AnnAssign):
            target = node.target
            if (
                isinstance(target, ast.Name)
                and target.id == "ERROR_CODES"
                and isinstance(node.value, ast.Dict)
            ):
                for key in node.value.keys:
                    if isinstance(key, ast.Constant) and isinstance(key.value, str):
                        error_codes.append(key.value)
                anchors["ERROR_CODES"] = node.lineno
        elif isinstance(node, ast.ClassDef):
            if not any(_is_dataclass_decorator(d) for d in node.decorator_list):
                continue
            fields: Dict[str, str] = {}
            for item in node.body:
                if isinstance(item, ast.AnnAssign) and isinstance(
                    item.target, ast.Name
                ):
                    annotation = ast.unparse(item.annotation)
                    if annotation.startswith("ClassVar"):
                        continue
                    fields[item.target.id] = annotation
            records[node.name] = fields
            anchors[node.name] = node.lineno
    if schema_version is None:
        raise SchemaExtractionError("no SCHEMA_VERSION int literal in the model module")
    if not records:
        raise SchemaExtractionError("no dataclass records in the model module")
    return (
        {
            "schema_version": schema_version,
            "records": records,
            "error_codes": sorted(error_codes),
        },
        anchors,
    )


def _route_value(node: ast.AST, what: str) -> object:
    if isinstance(node, ast.Constant):
        return node.value
    raise SchemaExtractionError(f"ROUTES {what} must be a literal, got {ast.dump(node)}")


def _extract_routes(tree: ast.Module) -> Tuple[List[Dict[str, object]], int]:
    for node in tree.body:
        if isinstance(node, ast.AnnAssign):
            target, value = node.target, node.value
        elif isinstance(node, ast.Assign) and len(node.targets) == 1:
            target, value = node.targets[0], node.value
        else:
            continue
        if not (isinstance(target, ast.Name) and target.id == "ROUTES"):
            continue
        if not isinstance(value, (ast.Tuple, ast.List)):
            raise SchemaExtractionError("ROUTES must be a tuple/list literal")
        routes: List[Dict[str, object]] = []
        for element in value.elts:
            if not (
                isinstance(element, ast.Call)
                and isinstance(element.func, ast.Name)
                and element.func.id == "Route"
            ):
                raise SchemaExtractionError("every ROUTES row must be a Route(...) call")
            positional = ("method", "pattern", "op")
            row: Dict[str, object] = {"deprecated": False, "successor": None}
            for name, arg in zip(positional, element.args):
                row[name] = _route_value(arg, name)
            for keyword in element.keywords:
                if keyword.arg in ("method", "pattern", "op", "deprecated", "successor"):
                    row[keyword.arg] = _route_value(keyword.value, keyword.arg)
            missing = [name for name in positional if name not in row]
            if missing:
                raise SchemaExtractionError(f"ROUTES row is missing {missing}")
            routes.append(row)
        return routes, node.lineno
    raise SchemaExtractionError("no ROUTES table in the server module")


def extract_wire_schema(root: Path) -> Tuple[Dict[str, object], Dict[str, int]]:
    """``(schema, anchors)`` for the repo at ``root`` — pure AST, no imports.

    ``schema`` is the lockable content; ``anchors`` maps record names /
    ``"ROUTES"`` / ``"SCHEMA_VERSION"`` / ``"ERROR_CODES"`` to the line
    they are defined on (for finding placement only).
    """
    model_path = root / MODEL_PATH
    server_path = root / SERVER_PATH
    model_tree = ast.parse(model_path.read_text(), filename=str(model_path))
    server_tree = ast.parse(server_path.read_text(), filename=str(server_path))
    schema, anchors = _extract_model(model_tree)
    routes, routes_line = _extract_routes(server_tree)
    schema["routes"] = routes
    anchors["ROUTES"] = routes_line
    return schema, anchors


def load_lock(path: Path) -> Optional[Dict[str, object]]:
    if not path.exists():
        return None
    return json.loads(path.read_text())


def write_lock(path: Path, schema: Dict[str, object]) -> None:
    path.write_text(json.dumps(schema, indent=2, sort_keys=True) + "\n")


def update_lock(root: Path, lock_path: Path, force: bool = False) -> str:
    """Regenerate the golden; refuse unversioned drift unless ``force``.

    Returns a one-line human summary of what happened.
    """
    schema, _ = extract_wire_schema(root)
    locked = load_lock(lock_path)
    if locked is not None and not force:
        if (
            locked.get("schema_version") == schema["schema_version"]
            and locked != schema
        ):
            raise SchemaExtractionError(
                "the wire schema drifted but SCHEMA_VERSION did not change — "
                "bump repro.service.model.SCHEMA_VERSION first (or pass "
                "--force if the drift predates the freeze)"
            )
    if locked == schema:
        return f"{lock_path.name} already matches the sources (version {schema['schema_version']})"
    write_lock(lock_path, schema)
    return f"froze wire schema version {schema['schema_version']} into {lock_path.name}"


def _diff_records(
    locked: Dict[str, Dict[str, str]], current: Dict[str, Dict[str, str]]
) -> Iterable[Tuple[str, str]]:
    """Yield ``(record_name, message)`` pairs for every field-level drift."""
    for name in sorted(set(locked) | set(current)):
        if name not in current:
            yield name, f"record {name!r} was removed from the wire model"
            continue
        if name not in locked:
            yield name, f"record {name!r} was added to the wire model"
            continue
        before, after = locked[name], current[name]
        for field_name in sorted(set(before) | set(after)):
            if field_name not in after:
                yield name, f"{name}.{field_name} was removed"
            elif field_name not in before:
                yield name, f"{name}.{field_name} ({after[field_name]}) was added"
            elif before[field_name] != after[field_name]:
                yield (
                    name,
                    f"{name}.{field_name} was retyped "
                    f"{before[field_name]} -> {after[field_name]}",
                )


def _route_key(row: Dict[str, object]) -> Tuple[str, str]:
    return str(row.get("method")), str(row.get("pattern"))


def _diff_routes(
    locked: List[Dict[str, object]], current: List[Dict[str, object]]
) -> Iterable[str]:
    before = {_route_key(row): row for row in locked}
    after = {_route_key(row): row for row in current}
    for key in sorted(set(before) | set(after)):
        method, pattern = key
        if key not in after:
            yield f"route `{method} {pattern}` was removed"
        elif key not in before:
            yield f"route `{method} {pattern}` was added"
        elif before[key] != after[key]:
            yield (
                f"route `{method} {pattern}` changed: "
                f"{before[key]} -> {after[key]}"
            )


@register_checker
class WireSchemaChecker(Checker):
    code = "RPR104"
    name = "wire-schema-freeze"
    description = (
        "the /v1 record fields, error codes and ROUTES table must match the "
        "committed schemas.lock.json; any drift requires a SCHEMA_VERSION "
        "bump plus --update-lock"
    )

    def finalize(self, run: AnalysisRun) -> Iterable[Finding]:
        model_path = run.root / MODEL_PATH
        server_path = run.root / SERVER_PATH
        if not model_path.exists() or not server_path.exists():
            return  # not a service-bearing tree (fixture roots)
        model_rel = MODEL_PATH.as_posix()
        server_rel = SERVER_PATH.as_posix()
        try:
            schema, anchors = extract_wire_schema(run.root)
        except (SchemaExtractionError, SyntaxError, OSError) as error:
            yield Finding(
                model_rel, 1, 0, self.code, f"cannot extract the wire schema: {error}"
            )
            return
        locked = load_lock(run.lock_path)
        if locked is None:
            yield Finding(
                model_rel,
                anchors.get("SCHEMA_VERSION", 1),
                0,
                self.code,
                f"no {run.lock_path.name} golden committed — freeze the wire "
                f"schema with `python -m repro.analysis --update-lock`",
            )
            return
        if locked == schema:
            return
        if locked.get("schema_version") != schema["schema_version"]:
            yield Finding(
                model_rel,
                anchors.get("SCHEMA_VERSION", 1),
                0,
                self.code,
                f"SCHEMA_VERSION moved "
                f"{locked.get('schema_version')} -> {schema['schema_version']} "
                f"but {run.lock_path.name} still holds the old freeze — "
                f"refresh it with `python -m repro.analysis --update-lock`",
            )
            return
        emitted = False
        for record, message in _diff_records(
            locked.get("records", {}), schema["records"]
        ):
            emitted = True
            yield Finding(
                model_rel,
                anchors.get(record, 1),
                0,
                self.code,
                f"{message} without a SCHEMA_VERSION bump — the /v1 wire "
                f"format is frozen; bump the version and re-freeze",
            )
        before_codes = locked.get("error_codes", [])
        if before_codes != schema["error_codes"]:
            emitted = True
            added = sorted(set(schema["error_codes"]) - set(before_codes))
            removed = sorted(set(before_codes) - set(schema["error_codes"]))
            yield Finding(
                model_rel,
                anchors.get("ERROR_CODES", 1),
                0,
                self.code,
                f"ERROR_CODES drifted without a SCHEMA_VERSION bump "
                f"(added {added}, removed {removed}) — clients dispatch on "
                f"these; bump the version and re-freeze",
            )
        for message in _diff_routes(locked.get("routes", []), schema["routes"]):
            emitted = True
            yield Finding(
                server_rel,
                anchors.get("ROUTES", 1),
                0,
                self.code,
                f"{message} without a SCHEMA_VERSION bump — the routing "
                f"table is part of the frozen wire API",
            )
        if not emitted:  # pragma: no cover - defensive: unknown key drift
            yield Finding(
                model_rel,
                1,
                0,
                self.code,
                f"{run.lock_path.name} does not match the extracted schema — "
                f"re-freeze with `python -m repro.analysis --update-lock`",
            )
