"""``repro.analysis`` — AST-based invariant checking for this repo.

A small static-analysis framework (stdlib ``ast`` only) plus the five
shipped checkers that state the repo's load-bearing contracts as
machine-checkable rules:

========  ======================  ==========================================
code      name                    contract
========  ======================  ==========================================
RPR101    unguarded-numpy         numpy stays optional: imports guarded/lazy
RPR102    nondeterminism-in-core  bit-identity modules stay deterministic
RPR103    lock-discipline         ``self._*`` mutated only under the lock
RPR104    wire-schema-freeze      /v1 records+routes match schemas.lock.json
RPR105    obs-conventions         metric naming regime; obs is stdlib-only
========  ======================  ==========================================

Run ``python -m repro.analysis`` (exits non-zero on any unexplained
finding), suppress a single line with ``# repro: allow[RPR1xx]``, or
register a justified exception in ``analysis-allowlist.json``.  See
:mod:`repro.analysis.framework` to add a checker.
"""

from repro.analysis.framework import (
    CHECKERS,
    FRAMEWORK_CODE,
    AllowlistEntry,
    AnalysisConfigError,
    AnalysisReport,
    AnalysisRun,
    Checker,
    Finding,
    ParsedModule,
    load_allowlist,
    register_checker,
    suppressed_codes,
)

# Importing the checker modules registers the shipped rules.
from repro.analysis import checkers as _checkers  # noqa: F401,E402
from repro.analysis import schema_lock as _schema_lock  # noqa: F401,E402
from repro.analysis.schema_lock import (
    LOCK_FILENAME,
    SchemaExtractionError,
    extract_wire_schema,
    load_lock,
    update_lock,
    write_lock,
)

__all__ = [
    "AllowlistEntry",
    "AnalysisConfigError",
    "AnalysisReport",
    "AnalysisRun",
    "CHECKERS",
    "Checker",
    "FRAMEWORK_CODE",
    "Finding",
    "LOCK_FILENAME",
    "ParsedModule",
    "SchemaExtractionError",
    "extract_wire_schema",
    "load_allowlist",
    "load_lock",
    "register_checker",
    "suppressed_codes",
    "update_lock",
    "write_lock",
]
