"""Empirical probability distributions induced by relations.

The joint probability distribution ``p_R`` over the schema ``W`` of a
relation ``R`` assigns to each tuple ``w`` the probability
``p_R(w) = R(w) / |R|`` of drawing ``w`` when sampling a tuple from ``R``
uniformly at random (Section III, "Probabilities").
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, Hashable, Iterable, Mapping, Tuple

from repro.relation.relation import Relation


class EmpiricalDistribution:
    """A finite probability distribution backed by non-negative counts."""

    def __init__(self, counts: Mapping[Hashable, int]):
        total = 0
        cleaned: Dict[Hashable, int] = {}
        for outcome, count in counts.items():
            if count < 0:
                raise ValueError(f"negative count {count} for outcome {outcome!r}")
            if count > 0:
                cleaned[outcome] = count
                total += count
        if total == 0:
            raise ValueError("cannot build a distribution from all-zero counts")
        self._counts = cleaned
        self._total = total

    @property
    def total(self) -> int:
        """Total number of observations backing the distribution."""
        return self._total

    @property
    def support_size(self) -> int:
        """Number of outcomes with non-zero probability."""
        return len(self._counts)

    def counts(self) -> Dict[Hashable, int]:
        """A copy of the underlying counts."""
        return dict(self._counts)

    def probability(self, outcome: Hashable) -> float:
        """``p(outcome)``; zero for outcomes outside the support."""
        return self._counts.get(outcome, 0) / self._total

    def probabilities(self) -> Dict[Hashable, float]:
        """Mapping of every outcome in the support to its probability."""
        return {outcome: count / self._total for outcome, count in self._counts.items()}

    def outcomes(self) -> Iterable[Hashable]:
        return self._counts.keys()

    def __iter__(self):
        return iter(self._counts.items())

    def __len__(self) -> int:
        return len(self._counts)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"<EmpiricalDistribution over {len(self._counts)} outcomes, n={self._total}>"


def joint_distribution(
    relation: Relation, lhs: Iterable[str] | str, rhs: Iterable[str] | str
) -> EmpiricalDistribution:
    """The empirical joint distribution of ``(x, y)`` pairs in ``relation``."""
    from repro.relation.operations import joint_counts

    return EmpiricalDistribution(joint_counts(relation, lhs, rhs))


def marginal_distribution(
    relation: Relation, attributes: Iterable[str] | str
) -> EmpiricalDistribution:
    """The empirical marginal distribution of ``attributes`` in ``relation``."""
    return EmpiricalDistribution(relation.frequencies(attributes))


def conditional_distributions(
    relation: Relation, lhs: Iterable[str] | str, rhs: Iterable[str] | str
) -> Dict[Tuple, EmpiricalDistribution]:
    """Per-``x`` conditional distributions ``p_R(Y | X = x)``."""
    from repro.relation.operations import group_counts

    return {
        x: EmpiricalDistribution(counter)
        for x, counter in group_counts(relation, lhs, rhs).items()
    }


def distribution_from_values(values: Iterable[Hashable]) -> EmpiricalDistribution:
    """Empirical distribution of a raw value sequence."""
    return EmpiricalDistribution(Counter(values))
