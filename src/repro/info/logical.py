"""Logical entropy.

The logical entropy ``h_R(X)`` of an attribute set ``X`` in a relation
``R`` is the probability that two tuples drawn at random with replacement
from ``R`` differ on some attribute of ``X``:

    h_R(X) = 1 - Σ_x p_R(x)²

The logical *conditional* entropy ``h_R(Y | X)`` is the probability that
two random tuples agree on ``X`` but differ on ``Y``:

    h_R(Y | X) = Σ_{x,y} p_R(xy) (p_R(x) - p_R(xy))

Note that, unlike Shannon entropy, ``h_R(Y | X)`` is *not* the expectation
of the per-group logical entropies ``h_R(Y | x)``; the paper exploits
exactly this difference when comparing measure classes.
"""

from __future__ import annotations

from typing import Dict, Hashable, Mapping, Tuple


def logical_entropy(counts: Mapping[Hashable, int]) -> float:
    """``h(p) = 1 - Σ p(x)²`` from empirical counts (0 for empty input)."""
    total = sum(count for count in counts.values() if count > 0)
    if total == 0:
        return 0.0
    sum_of_squares = sum((count / total) ** 2 for count in counts.values() if count > 0)
    return max(1.0 - sum_of_squares, 0.0)


def conditional_logical_entropy(
    joint_counts: Mapping[Tuple[Hashable, Hashable], int]
) -> float:
    """``h(Y | X) = Σ_{x,y} p(xy) (p(x) - p(xy))`` from joint ``(x, y)`` counts."""
    total = sum(count for count in joint_counts.values() if count > 0)
    if total == 0:
        return 0.0
    x_counts: Dict[Hashable, int] = {}
    for (x, _y), count in joint_counts.items():
        if count > 0:
            x_counts[x] = x_counts.get(x, 0) + count
    result = 0.0
    for (x, _y), count in joint_counts.items():
        if count <= 0:
            continue
        p_xy = count / total
        p_x = x_counts[x] / total
        result += p_xy * (p_x - p_xy)
    return max(result, 0.0)


def expected_conditional_logical_entropy(
    joint_counts: Mapping[Tuple[Hashable, Hashable], int]
) -> float:
    """``E_x[h(Y | x)]``: expectation of per-group logical entropies.

    This is the quantity underlying ``pdep`` (``pdep = 1 - E_x[h(Y | x)]``)
    and differs from :func:`conditional_logical_entropy` in general.
    """
    total = sum(count for count in joint_counts.values() if count > 0)
    if total == 0:
        return 0.0
    groups: Dict[Hashable, Dict[Hashable, int]] = {}
    for (x, y), count in joint_counts.items():
        if count > 0:
            groups.setdefault(x, {})[y] = groups.setdefault(x, {}).get(y, 0) + count
    result = 0.0
    for x, y_counts in groups.items():
        group_total = sum(y_counts.values())
        p_x = group_total / total
        within = 1.0 - sum((count / group_total) ** 2 for count in y_counts.values())
        result += p_x * within
    return max(result, 0.0)
