"""Shannon entropy, conditional entropy and mutual information.

All quantities are computed from empirical counts.  The logarithm base is
configurable (default 2, the information-theoretic convention used by the
cited literature); measures whose definition normalises one entropy by
another (FI, RFI, ...) are invariant to the base.
"""

from __future__ import annotations

import math
from typing import Dict, Hashable, Iterable, Mapping, Tuple

DEFAULT_LOG_BASE = 2.0


def _log(value: float, base: float) -> float:
    return math.log(value) / math.log(base)


def entropy_of_counts(counts: Mapping[Hashable, int], base: float = DEFAULT_LOG_BASE) -> float:
    """Shannon entropy of the empirical distribution given by ``counts``.

    Uses the convention ``0 log 0 = 0``.  Returns 0 for an empty input.
    """
    total = sum(count for count in counts.values() if count > 0)
    if total == 0:
        return 0.0
    result = 0.0
    for count in counts.values():
        if count <= 0:
            continue
        probability = count / total
        result -= probability * _log(probability, base)
    return max(result, 0.0)


def entropy(distribution, base: float = DEFAULT_LOG_BASE) -> float:
    """Shannon entropy ``H(p)`` of an :class:`EmpiricalDistribution` or counts."""
    if hasattr(distribution, "counts"):
        return entropy_of_counts(distribution.counts(), base=base)
    return entropy_of_counts(distribution, base=base)


def conditional_entropy(
    joint_counts: Mapping[Tuple[Hashable, Hashable], int], base: float = DEFAULT_LOG_BASE
) -> float:
    """Conditional Shannon entropy ``H(Y | X)`` from joint ``(x, y)`` counts.

    ``H(Y | X) = H(X, Y) - H(X)``.
    """
    x_counts: Dict[Hashable, int] = {}
    for (x, _y), count in joint_counts.items():
        if count > 0:
            x_counts[x] = x_counts.get(x, 0) + count
    joint_entropy = entropy_of_counts(joint_counts, base=base)
    lhs_entropy = entropy_of_counts(x_counts, base=base)
    return max(joint_entropy - lhs_entropy, 0.0)


def mutual_information(
    joint_counts: Mapping[Tuple[Hashable, Hashable], int], base: float = DEFAULT_LOG_BASE
) -> float:
    """Mutual information ``I(X; Y) = H(Y) - H(Y | X)`` from joint counts."""
    y_counts: Dict[Hashable, int] = {}
    for (_x, y), count in joint_counts.items():
        if count > 0:
            y_counts[y] = y_counts.get(y, 0) + count
    rhs_entropy = entropy_of_counts(y_counts, base=base)
    return max(rhs_entropy - conditional_entropy(joint_counts, base=base), 0.0)


def entropy_of_probabilities(
    probabilities: Iterable[float], base: float = DEFAULT_LOG_BASE
) -> float:
    """Shannon entropy of an explicit probability vector (must sum to ~1)."""
    result = 0.0
    total = 0.0
    for probability in probabilities:
        if probability < 0:
            raise ValueError(f"negative probability {probability}")
        total += probability
        if probability > 0:
            result -= probability * _log(probability, base)
    if total > 0 and abs(total - 1.0) > 1e-9:
        raise ValueError(f"probabilities sum to {total}, expected 1")
    return max(result, 0.0)
