"""Information-theoretic substrate.

Empirical probability distributions induced by relations (Section III of
the paper) together with Shannon entropy and logical entropy, both in
their plain and conditional forms, and mutual information.
"""

from repro.info.distribution import (
    EmpiricalDistribution,
    conditional_distributions,
    joint_distribution,
    marginal_distribution,
)
from repro.info.logical import (
    conditional_logical_entropy,
    expected_conditional_logical_entropy,
    logical_entropy,
)
from repro.info.shannon import (
    conditional_entropy,
    entropy,
    entropy_of_counts,
    mutual_information,
)

__all__ = [
    "EmpiricalDistribution",
    "conditional_distributions",
    "conditional_entropy",
    "conditional_logical_entropy",
    "entropy",
    "entropy_of_counts",
    "expected_conditional_logical_entropy",
    "joint_distribution",
    "logical_entropy",
    "marginal_distribution",
    "mutual_information",
]
