"""Table builder used to synthesise the RWD stand-in relations.

The original RWD benchmark consists of downloaded public datasets with a
manually annotated design schema.  The builder below generates relations
with the same *structural* ingredients:

* root categorical columns with controllable cardinality and skew
  (optionally with a dominant majority value);
* near-unique / key columns;
* derived columns — deterministic functions of a root column — which
  plant design FDs; a non-zero noise rate turns the planted FD into an
  approximate design FD (the ground truth of AFD discovery);
* "spurious" derived columns excluded from the design schema, used to
  model the paper's out-of-reach relation R7;
* NULL injection and free-standing numeric columns.

All randomness flows through a seeded :class:`numpy.random.Generator`, so
every dataset is reproducible.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.relation.fd import FunctionalDependency
from repro.relation.relation import Relation
from repro.rwd.schema import DesignSchema, RwdRelation
from repro.synthetic.beta import beta_parameters_for_skewness, sample_domain_values


class TableBuilder:
    """Incrementally build a synthetic benchmark relation with a planted schema."""

    def __init__(self, num_rows: int, seed: int):
        if num_rows <= 0:
            raise ValueError(f"num_rows must be positive, got {num_rows}")
        self.num_rows = num_rows
        self.rng = np.random.default_rng(seed)
        self._columns: Dict[str, List[object]] = {}
        self._order: List[str] = []
        self._fds: List[FunctionalDependency] = []

    # ------------------------------------------------------------------
    # Column generators
    # ------------------------------------------------------------------
    def add_key(self, name: str, prefix: Optional[str] = None, null_rate: float = 0.0) -> None:
        """A unique identifier column (one distinct value per row)."""
        prefix = prefix if prefix is not None else name
        values: List[object] = [f"{prefix}_{index:06d}" for index in range(self.num_rows)]
        self.rng.shuffle(values)
        self._register(name, values, null_rate)

    def add_categorical(
        self,
        name: str,
        cardinality: int,
        skew: float = 0.0,
        majority_share: Optional[float] = None,
        null_rate: float = 0.0,
        prefix: Optional[str] = None,
    ) -> None:
        """A root categorical column.

        ``skew`` selects a Beta-distributed value frequency profile;
        ``majority_share`` instead makes a single value carry that share of
        the rows (used for the heavily skewed columns of relation R6).
        """
        if cardinality < 1:
            raise ValueError(f"cardinality must be >= 1, got {cardinality}")
        prefix = prefix if prefix is not None else name
        if majority_share is not None:
            if not 0.0 < majority_share <= 1.0:
                raise ValueError(f"majority_share must be in (0, 1], got {majority_share}")
            dominant = self.rng.random(self.num_rows) < majority_share
            others = self.rng.integers(1, max(cardinality, 2), size=self.num_rows)
            indices = np.where(dominant, 0, others)
        else:
            alpha, beta = beta_parameters_for_skewness(skew) if skew > 0 else (1.0, 1.0)
            indices = sample_domain_values(self.rng, cardinality, self.num_rows, alpha, beta)
        values = [f"{prefix}_{int(index)}" for index in indices]
        self._register(name, values, null_rate)

    def add_numeric(
        self,
        name: str,
        low: float = 0.0,
        high: float = 1000.0,
        integer: bool = True,
        null_rate: float = 0.0,
    ) -> None:
        """A free-standing numeric column (not part of any planted FD)."""
        if integer:
            values = [int(value) for value in self.rng.integers(int(low), int(high) + 1, self.num_rows)]
        else:
            values = [round(float(value), 4) for value in self.rng.uniform(low, high, self.num_rows)]
        self._register(name, values, null_rate)

    def add_derived(
        self,
        name: str,
        source: str,
        cardinality: Optional[int] = None,
        noise_rate: float = 0.0,
        min_errors: int = 1,
        injective: bool = False,
        in_schema: bool = True,
        null_rate: float = 0.0,
        prefix: Optional[str] = None,
    ) -> None:
        """A column derived as a deterministic function of ``source``.

        Plants the FD ``source -> name`` (and ``name -> source`` when
        ``injective``) unless ``in_schema=False`` — the latter models
        spurious dependencies not part of the design schema.  A positive
        ``noise_rate`` corrupts cells with copy-style errors, turning the
        planted FD(s) into approximate design FDs.
        """
        if source not in self._columns:
            raise KeyError(f"derived column {name!r} refers to unknown source {source!r}")
        prefix = prefix if prefix is not None else name
        source_values = self._columns[source]
        distinct_sources = sorted({value for value in source_values if value is not None}, key=repr)
        if injective:
            target_indices = list(range(len(distinct_sources)))
            self.rng.shuffle(target_indices)
            mapping = {
                source_value: f"{prefix}_{target_indices[index]}"
                for index, source_value in enumerate(distinct_sources)
            }
        else:
            domain = cardinality if cardinality is not None else max(2, len(distinct_sources) // 5)
            domain = max(domain, 2)
            mapping = {
                source_value: f"{prefix}_{int(self.rng.integers(0, domain))}"
                for source_value in distinct_sources
            }
        values: List[object] = [
            None if source_value is None else mapping[source_value]
            for source_value in source_values
        ]
        if noise_rate > 0.0:
            self._corrupt_derived(values, source_values, noise_rate, min_errors)
        self._register(name, values, null_rate)
        if in_schema:
            self._fds.append(FunctionalDependency(source, name))
            if injective:
                self._fds.append(FunctionalDependency(name, source))

    def add_fd(self, lhs: str | Sequence[str], rhs: str | Sequence[str]) -> None:
        """Explicitly add an FD to the planted design schema."""
        self._fds.append(FunctionalDependency(lhs, rhs))

    # ------------------------------------------------------------------
    # Assembly
    # ------------------------------------------------------------------
    def build(self, key: str, title: str, description: str = "") -> RwdRelation:
        """Assemble the relation and its design schema."""
        rows = [
            tuple(self._columns[name][index] for name in self._order)
            for index in range(self.num_rows)
        ]
        relation = Relation(self._order, rows, name=key)
        return RwdRelation(
            key=key,
            title=title,
            relation=relation,
            design_schema=DesignSchema(self._fds),
            description=description,
        )

    @property
    def attribute_names(self) -> List[str]:
        return list(self._order)

    @property
    def planted_fds(self) -> List[FunctionalDependency]:
        return list(self._fds)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _register(self, name: str, values: List[object], null_rate: float) -> None:
        if name in self._columns:
            raise ValueError(f"column {name!r} already defined")
        if null_rate > 0.0:
            null_mask = self.rng.random(self.num_rows) < null_rate
            values = [None if null_mask[index] else value for index, value in enumerate(values)]
        self._columns[name] = values
        self._order.append(name)

    def _corrupt_derived(
        self,
        values: List[object],
        source_values: List[object],
        noise_rate: float,
        min_errors: int,
    ) -> None:
        """Copy-style corruption guaranteeing at least one genuine violation.

        Only positions whose source value occurs at least twice are corrupted,
        so every introduced error actually violates the planted FD.
        """
        distinct_values = sorted({value for value in values if value is not None}, key=repr)
        if len(distinct_values) < 2:
            return
        source_counts: Dict[object, int] = {}
        for source_value in source_values:
            if source_value is not None:
                source_counts[source_value] = source_counts.get(source_value, 0) + 1
        eligible = [
            index
            for index, source_value in enumerate(source_values)
            if source_value is not None and source_counts[source_value] >= 2
        ]
        if not eligible:
            return
        error_count = max(min_errors, int(noise_rate * self.num_rows))
        error_count = min(error_count, len(eligible))
        chosen = self.rng.choice(len(eligible), size=error_count, replace=False)
        for offset in chosen:
            position = eligible[offset]
            current = values[position]
            alternatives = [value for value in distinct_values if value != current]
            values[position] = alternatives[int(self.rng.integers(0, len(alternatives)))]
        # Guarantee that the corruption really violates the planted FD: if all
        # corrupted cells happened to land on rows whose whole source group was
        # rewritten consistently, force one additional genuine violation.
        groups: Dict[object, set] = {}
        for index, source_value in enumerate(source_values):
            if source_value is not None and values[index] is not None:
                groups.setdefault(source_value, set()).add(values[index])
        if all(len(targets) <= 1 for targets in groups.values()):
            position = eligible[0]
            current = values[position]
            alternatives = [value for value in distinct_values if value != current]
            values[position] = alternatives[0]
