"""The assembled RWD benchmark (Section VI, Table II).

Bundles the stand-in relations of :mod:`repro.rwd.datasets` into one
object with the per-relation ``PFD``/``AFD`` split and the overview
statistics the paper reports in Table II.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Sequence

from repro.rwd.datasets import build_dataset, dataset_keys
from repro.rwd.schema import RwdRelation


@dataclass
class RwdBenchmark:
    """All RWD relations with their annotated design schemas."""

    relations: List[RwdRelation]

    def __iter__(self) -> Iterator[RwdRelation]:
        return iter(self.relations)

    def __len__(self) -> int:
        return len(self.relations)

    def __getitem__(self, key: str) -> RwdRelation:
        for relation in self.relations:
            if relation.key == key:
                return relation
        raise KeyError(f"no relation {key!r} in the benchmark")

    def total_design_fds(self) -> int:
        return sum(len(relation.design_schema) for relation in self.relations)

    def total_approximate_fds(self) -> int:
        return sum(len(relation.approximate_fds) for relation in self.relations)

    def total_perfect_fds(self) -> int:
        return sum(len(relation.perfect_fds) for relation in self.relations)


def build_rwd_benchmark(
    num_rows: int = 1000, seed: int = 0, keys: Optional[Sequence[str]] = None
) -> RwdBenchmark:
    """Build the benchmark (all stand-in relations, or a ``keys`` subset)."""
    selected = list(keys) if keys is not None else dataset_keys()
    return RwdBenchmark([build_dataset(key, num_rows=num_rows, seed=seed) for key in selected])


def overview_table(benchmark: RwdBenchmark) -> List[Dict[str, object]]:
    """Table II-style overview: size, schema size and PFD/AFD split per relation."""
    rows: List[Dict[str, object]] = []
    for relation in benchmark:
        rows.append(
            {
                "key": relation.key,
                "title": relation.title,
                "num_rows": relation.num_rows,
                "num_attributes": relation.num_attributes,
                "design_fds": len(relation.design_schema),
                "perfect_fds": len(relation.perfect_fds),
                "approximate_fds": len(relation.approximate_fds),
            }
        )
    return rows
