"""Synthetic stand-ins for the RWD benchmark relations (Table II).

Without network access the original public datasets cannot be downloaded,
so each builder below reproduces one relation's *structure*: attribute
count, key columns, value skew, NULLs, and a planted design schema whose
perfect/approximate split mirrors the paper's Table II in spirit — every
relation contributes perfect design FDs (corruptible by the RWDe error
channels) and most contribute approximate design FDs (the discovery
ground truth).

All builders take ``(num_rows, seed)`` so the whole benchmark scales from
unit-test size to paper-like size with one parameter.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.rwd.builder import TableBuilder
from repro.rwd.schema import RwdRelation

DatasetBuilder = Callable[[int, int], RwdRelation]


def build_addresses(num_rows: int, seed: int) -> RwdRelation:
    """R1 — postal addresses: zip -> city -> region chains with dirty cities."""
    builder = TableBuilder(num_rows, seed)
    builder.add_key("address_id")
    builder.add_categorical("zip", cardinality=max(20, num_rows // 20), skew=0.8)
    builder.add_derived("city", source="zip", cardinality=max(10, num_rows // 60), noise_rate=0.01)
    builder.add_derived("region", source="city", cardinality=6)
    builder.add_derived("region_code", source="region", injective=True)
    builder.add_numeric("house_number", low=1, high=400)
    return builder.build("R1", "addresses", "zip/city/region hierarchy with noisy city names")


def build_products(num_rows: int, seed: int) -> RwdRelation:
    """R2 — product catalogue: sku key, category tree, dirty tax class."""
    builder = TableBuilder(num_rows, seed)
    builder.add_key("sku")
    builder.add_categorical("category", cardinality=max(15, num_rows // 40), skew=0.5)
    builder.add_derived("department", source="category", cardinality=8)
    builder.add_derived("tax_class", source="department", cardinality=4, noise_rate=0.015)
    builder.add_numeric("price", low=1, high=5000, integer=False)
    builder.add_derived("supplier", source="category", cardinality=12, in_schema=False)
    return builder.build("R2", "products", "category tree with a noisy tax class")


def build_patients(num_rows: int, seed: int) -> RwdRelation:
    """R3 — clinical encounters: diagnosis coding with NULLs and typos."""
    builder = TableBuilder(num_rows, seed)
    builder.add_key("encounter_id")
    builder.add_categorical("diagnosis_code", cardinality=max(25, num_rows // 25), skew=1.2)
    builder.add_derived(
        "diagnosis_text", source="diagnosis_code", injective=True, noise_rate=0.02
    )
    builder.add_derived("chapter", source="diagnosis_code", cardinality=10)
    builder.add_categorical("ward", cardinality=12, null_rate=0.05)
    builder.add_derived("clinic", source="ward", cardinality=5, null_rate=0.02)
    return builder.build("R3", "patients", "diagnosis coding with NULLs and dirty texts")


def build_flights(num_rows: int, seed: int) -> RwdRelation:
    """R4 — flight legs: airport/carrier lookups, one dominant hub."""
    builder = TableBuilder(num_rows, seed)
    builder.add_key("leg_id")
    builder.add_categorical(
        "origin", cardinality=max(12, num_rows // 80), majority_share=0.4
    )
    builder.add_derived("origin_city", source="origin", injective=True)
    builder.add_derived("origin_tz", source="origin_city", cardinality=6)
    builder.add_categorical("carrier", cardinality=9, skew=0.6)
    builder.add_derived("carrier_name", source="carrier", injective=True, noise_rate=0.01)
    builder.add_numeric("delay_minutes", low=0, high=360)
    return builder.build("R4", "flights", "airport and carrier lookups with a dominant hub")


def build_census(num_rows: int, seed: int) -> RwdRelation:
    """R5 — census-like microdata: broad skews, a spurious correlate."""
    builder = TableBuilder(num_rows, seed)
    builder.add_key("respondent_id")
    builder.add_categorical("occupation", cardinality=max(18, num_rows // 50), skew=1.5)
    builder.add_derived("sector", source="occupation", cardinality=7, noise_rate=0.012)
    builder.add_categorical("municipality", cardinality=max(10, num_rows // 100), skew=0.4)
    builder.add_derived("province", source="municipality", cardinality=5)
    builder.add_derived("income_band", source="occupation", cardinality=5, in_schema=False)
    builder.add_numeric("age", low=16, high=95)
    return builder.build("R5", "census", "skewed microdata with a spurious income correlate")


#: Builders keyed by relation id, in Table II order.
DATASET_BUILDERS: Dict[str, DatasetBuilder] = {
    "R1": build_addresses,
    "R2": build_products,
    "R3": build_patients,
    "R4": build_flights,
    "R5": build_census,
}


def dataset_keys() -> List[str]:
    return list(DATASET_BUILDERS)


def build_dataset(key: str, num_rows: int = 1000, seed: int = 0) -> RwdRelation:
    """Build one stand-in relation by key (seed offsets keep keys independent)."""
    if key not in DATASET_BUILDERS:
        raise KeyError(f"unknown RWD dataset {key!r}; known: {dataset_keys()}")
    index = dataset_keys().index(key)
    return DATASET_BUILDERS[key](num_rows, seed + 7919 * index)
