"""The real-world benchmark RWD (Section VI of the paper).

The original benchmark consists of 10 public relations with manually
annotated design schemas.  Without network access, this subpackage builds
*synthetic stand-ins*: generators that reproduce each relation's shape
(attribute structure, value skew, NULLs, near-unique columns) and plant a
design schema with the same number of perfect and approximate design FDs
as reported in Table II.  See DESIGN.md, "Substitutions".
"""

from repro.rwd.schema import DesignSchema, RwdRelation
from repro.rwd.benchmark import RwdBenchmark, build_rwd_benchmark, overview_table
from repro.rwd.annotate import enumerate_inspection_candidates
from repro.rwd.datasets import DATASET_BUILDERS, build_dataset

__all__ = [
    "DATASET_BUILDERS",
    "DesignSchema",
    "RwdBenchmark",
    "RwdRelation",
    "build_dataset",
    "build_rwd_benchmark",
    "enumerate_inspection_candidates",
    "overview_table",
]
