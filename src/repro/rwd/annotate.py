"""Annotation support: ranking linear FD candidates for manual inspection.

The paper's RWD ground truth was produced by manually annotating a design
schema per relation.  This module reproduces the tooling side of that
process: enumerate every linear candidate ``A -> B``, attach a cheap
``g3`` score (computed from stripped partitions, no full statistics pass)
and the exact-satisfaction flag, and order the list so a human annotator
reviews the most FD-like candidates first.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Union

from repro.core.statistics import FdStatistics
from repro.relation.fd import FunctionalDependency
from repro.relation.nulls import is_null
from repro.relation.partition import StrippedPartition
from repro.relation.relation import Relation
from repro.rwd.schema import RwdRelation


@dataclass(frozen=True)
class InspectionCandidate:
    """One linear candidate with the evidence shown to the annotator."""

    fd: FunctionalDependency
    g3_score: float
    satisfied: bool
    in_design_schema: Optional[bool] = None


def enumerate_inspection_candidates(
    source: Union[Relation, RwdRelation],
    max_candidates: Optional[int] = None,
    include_satisfied: bool = True,
) -> List[InspectionCandidate]:
    """All linear candidates of ``source``, most FD-like first.

    Accepts a plain :class:`Relation` or an :class:`RwdRelation`; in the
    latter case each candidate is additionally flagged with whether it is
    already part of the annotated design schema.  ``g3`` is computed via
    partition algebra (one stripped partition per attribute plus one
    product per pair), the same shortcut TANE-style discovery uses.
    """
    if isinstance(source, RwdRelation):
        relation = source.relation
        schema_fds = set(source.design_schema.fds)
    else:
        relation = source
        schema_fds = None
    partitions: Dict[str, StrippedPartition] = {
        attribute: StrippedPartition.from_relation(relation, attribute)
        for attribute in relation.attributes
    }
    has_nulls = {
        attribute: any(is_null(value) for value in relation.column(attribute))
        for attribute in relation.attributes
    }
    candidates: List[InspectionCandidate] = []
    for lhs in relation.attributes:
        for rhs in relation.attributes:
            if lhs == rhs:
                continue
            fd = FunctionalDependency(lhs, rhs)
            if has_nulls[lhs] or has_nulls[rhs]:
                # Partitions treat NULL as an ordinary value; the paper's
                # semantics (Section VI-A) drop NULL tuples, so fall back
                # to the statistics path every measure uses.
                statistics = FdStatistics.compute(relation, fd)
                satisfied = statistics.is_empty or statistics.satisfied
                g3_error = (
                    0.0
                    if satisfied
                    else 1.0 - statistics.max_subrelation_size() / statistics.num_rows
                )
            else:
                joint = partitions[lhs].intersect(partitions[rhs])
                g3_error = partitions[lhs].g3_error(joint)
                satisfied = g3_error == 0.0
            if satisfied and not include_satisfied:
                continue
            candidates.append(
                InspectionCandidate(
                    fd=fd,
                    g3_score=1.0 - g3_error,
                    satisfied=satisfied,
                    in_design_schema=None if schema_fds is None else fd in schema_fds,
                )
            )
    candidates.sort(key=lambda candidate: (-candidate.g3_score, str(candidate.fd)))
    if max_candidates is not None:
        candidates = candidates[:max_candidates]
    return candidates
