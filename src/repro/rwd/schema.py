"""Design schemas and annotated benchmark relations.

The *design schema* ``∆(R)`` of a relation is the set of semantically
meaningful FDs a database designer would declare.  On a concrete instance
it splits into the *perfect* design FDs ``PFD(R)`` (satisfied by the
instance) and the *approximate* design FDs ``AFD(R)`` (violated because
of errors) — the latter form the ground truth for AFD discovery
(Section VI-A of the paper).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import FrozenSet, Iterable, List, Optional, Tuple

from repro.relation.fd import FunctionalDependency
from repro.relation.relation import Relation


@dataclass(frozen=True)
class DesignSchema:
    """A set of design FDs ``∆(R)``."""

    fds: FrozenSet[FunctionalDependency]

    def __init__(self, fds: Iterable[FunctionalDependency]):
        object.__setattr__(self, "fds", frozenset(fds))

    def __iter__(self):
        return iter(sorted(self.fds))

    def __len__(self) -> int:
        return len(self.fds)

    def __contains__(self, fd: FunctionalDependency) -> bool:
        return fd in self.fds

    def linear_fds(self) -> List[FunctionalDependency]:
        """Only the linear FDs of the schema (the paper's RWD restriction)."""
        return sorted(fd for fd in self.fds if fd.is_linear)

    def partition(
        self, relation: Relation
    ) -> Tuple[List[FunctionalDependency], List[FunctionalDependency]]:
        """Split into ``(PFD(R), AFD(R))`` by satisfaction on ``relation``."""
        perfect: List[FunctionalDependency] = []
        approximate: List[FunctionalDependency] = []
        for fd in sorted(self.fds):
            if relation.satisfies(fd):
                perfect.append(fd)
            else:
                approximate.append(fd)
        return perfect, approximate

    def union(self, other: "DesignSchema") -> "DesignSchema":
        return DesignSchema(self.fds | other.fds)


@dataclass
class RwdRelation:
    """A benchmark relation with its planted design schema."""

    key: str
    title: str
    relation: Relation
    design_schema: DesignSchema
    description: str = ""
    _pfd_cache: Optional[List[FunctionalDependency]] = field(default=None, repr=False)
    _afd_cache: Optional[List[FunctionalDependency]] = field(default=None, repr=False)

    def _ensure_partition(self) -> None:
        if self._pfd_cache is None or self._afd_cache is None:
            perfect, approximate = self.design_schema.partition(self.relation)
            self._pfd_cache = perfect
            self._afd_cache = approximate

    @property
    def perfect_fds(self) -> List[FunctionalDependency]:
        """``PFD(R)``: design FDs satisfied by the instance."""
        self._ensure_partition()
        return list(self._pfd_cache or [])

    @property
    def approximate_fds(self) -> List[FunctionalDependency]:
        """``AFD(R)``: design FDs violated by the instance (the ground truth)."""
        self._ensure_partition()
        return list(self._afd_cache or [])

    @property
    def num_rows(self) -> int:
        return self.relation.num_rows

    @property
    def num_attributes(self) -> int:
        return self.relation.num_attributes

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"<RwdRelation {self.key}: {self.num_rows} rows, "
            f"{self.num_attributes} attrs, {len(self.design_schema)} design FDs>"
        )
