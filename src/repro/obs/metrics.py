"""Thread-safe metrics: named counters, gauges and histograms with labels.

The registry is the mergeable-partial of observability: every process —
the serving front end and each forked shard worker — keeps one local
:class:`MetricsRegistry`, increments it from the hot paths (a dict probe
plus a lock, cheap enough to leave on in production), and exports a
plain-JSON snapshot via :meth:`MetricsRegistry.to_dict`.  Snapshots
merge associatively (:func:`merge_snapshots`), so the dispatcher folds
per-worker snapshots collected over the existing pipe protocol into one
fleet-wide view — the same discipline
:class:`~repro.core.partial.PartialFdCounts` established for chunked
statistics.  :func:`render_prometheus` turns any snapshot (local or
merged) into the text exposition format ``GET /v1/metrics`` serves.

Metric vocabulary:

* **counter** — monotone float/int total (``requests_total``); merge
  sums sample values keywise;
* **gauge** — last-written level (``dispatcher_queue_depth``); merge
  *sums* across snapshots, which is the useful fleet semantics for the
  gauges this repo exports (per-worker queue depths and session counts
  add up to the fleet total);
* **histogram** — fixed cumulative buckets + sum + count
  (``stage_seconds``); merge adds bucket-wise (bucket layouts must
  match).

Metrics auto-register on first use: ``registry.inc("requests_total",
route="/v1/healthz", code="200")`` creates the counter with the label
names of the call.  Later calls must use the same label names (the
Prometheus consistency rule); :meth:`declare_counter` /
:meth:`declare_gauge` / :meth:`declare_histogram` pre-register with
help text.

**Observability is read-only.**  Nothing reads a metric to make a
decision; disabling the registry (:func:`set_enabled`, or the
``REPRO_OBS_DISABLED=1`` environment variable, inherited by forked
workers) turns every write into a no-op and must not change any result
— the bit-identity tests assert exactly that.
"""

from __future__ import annotations

import json
import math
import os
import re
import threading
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

__all__ = [
    "DEFAULT_BUCKETS",
    "SNAPSHOT_KIND",
    "SNAPSHOT_VERSION",
    "MetricsRegistry",
    "get_registry",
    "merge_snapshots",
    "render_prometheus",
    "set_enabled",
]

#: Default histogram buckets (seconds): spans sub-millisecond cache hits
#: through multi-second statistics passes.
DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)

SNAPSHOT_KIND = "metrics_snapshot"
SNAPSHOT_VERSION = 1

#: Environment switch: set to ``1`` to start every process (including
#: forked/spawned workers) with the registry disabled.
DISABLED_ENV = "REPRO_OBS_DISABLED"

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")

_TYPES = ("counter", "gauge", "histogram")


class _Metric:
    """One named metric family: fixed type/labels, per-label-set samples."""

    __slots__ = ("name", "type", "help", "label_names", "buckets", "samples")

    def __init__(
        self,
        name: str,
        type_: str,
        help_: str,
        label_names: Tuple[str, ...],
        buckets: Optional[Tuple[float, ...]] = None,
    ):
        self.name = name
        self.type = type_
        self.help = help_
        self.label_names = label_names
        self.buckets = buckets
        #: label-values tuple -> float (counter/gauge) or
        #: ``[bucket_counts, sum, count]`` (histogram).
        self.samples: Dict[Tuple[str, ...], object] = {}


def _label_key(metric: _Metric, labels: Dict[str, object]) -> Tuple[str, ...]:
    # Hot path: callers pass kwargs in the canonical (sorted) order, so
    # the insertion-order tuple usually matches without a sort.
    if tuple(labels) != metric.label_names and tuple(sorted(labels)) != metric.label_names:
        raise ValueError(
            f"metric {metric.name!r} has label names {list(metric.label_names)}, "
            f"got {sorted(labels)}"
        )
    return tuple(str(labels[name]) for name in metric.label_names)


class MetricsRegistry:
    """A process-local, thread-safe collection of named metrics."""

    def __init__(self, enabled: bool = True):
        self.enabled = enabled
        self._lock = threading.Lock()
        self._metrics: Dict[str, _Metric] = {}

    # ------------------------------------------------------------------
    # Declaration
    # ------------------------------------------------------------------
    def _declare(
        self,
        name: str,
        type_: str,
        help_: str,
        label_names: Iterable[str],
        buckets: Optional[Sequence[float]] = None,
    ) -> _Metric:
        """Register (or fetch, when identically typed) one metric family."""
        if not _NAME_RE.match(name):
            raise ValueError(f"invalid metric name {name!r}")
        labels = tuple(sorted(label_names))
        for label in labels:
            if not _LABEL_RE.match(label):
                raise ValueError(f"invalid label name {label!r} on metric {name!r}")
        existing = self._metrics.get(name)
        if existing is not None:
            if existing.type != type_:
                raise ValueError(
                    f"metric {name!r} is a {existing.type}, not a {type_}"
                )
            if existing.label_names != labels:
                raise ValueError(
                    f"metric {name!r} has label names {list(existing.label_names)}, "
                    f"got {list(labels)}"
                )
            return existing
        metric = _Metric(
            name,
            type_,
            help_,
            labels,
            None if buckets is None else tuple(float(b) for b in buckets),
        )
        self._metrics[name] = metric
        return metric

    def declare_counter(self, name: str, help: str = "", label_names: Iterable[str] = ()):
        with self._lock:
            self._declare(name, "counter", help, label_names)

    def declare_gauge(self, name: str, help: str = "", label_names: Iterable[str] = ()):
        with self._lock:
            self._declare(name, "gauge", help, label_names)

    def declare_histogram(
        self,
        name: str,
        help: str = "",
        label_names: Iterable[str] = (),
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ):
        if not buckets or list(buckets) != sorted(float(b) for b in buckets):
            raise ValueError(f"histogram buckets must be sorted and non-empty: {buckets}")
        with self._lock:
            self._declare(name, "histogram", help, label_names, buckets)

    # ------------------------------------------------------------------
    # Writes (no-ops while disabled)
    # ------------------------------------------------------------------
    def inc(self, name: str, value: float = 1, **labels) -> None:
        """Add ``value`` to the counter ``name{**labels}`` (auto-registering)."""
        if not self.enabled:
            return
        if value < 0:
            raise ValueError(f"counter {name!r} cannot decrease (value={value})")
        with self._lock:
            metric = self._metrics.get(name) or self._declare(name, "counter", "", labels)
            if metric.type != "counter":
                raise ValueError(f"metric {name!r} is a {metric.type}, not a counter")
            key = _label_key(metric, labels)
            metric.samples[key] = metric.samples.get(key, 0) + value

    def set_gauge(self, name: str, value: float, **labels) -> None:
        """Set the gauge ``name{**labels}`` to ``value`` (auto-registering)."""
        if not self.enabled:
            return
        with self._lock:
            metric = self._metrics.get(name) or self._declare(name, "gauge", "", labels)
            if metric.type != "gauge":
                raise ValueError(f"metric {name!r} is a {metric.type}, not a gauge")
            metric.samples[_label_key(metric, labels)] = value

    def observe(self, name: str, value: float, **labels) -> None:
        """Record ``value`` into the histogram ``name{**labels}``."""
        if not self.enabled:
            return
        with self._lock:
            metric = self._metrics.get(name) or self._declare(
                name, "histogram", "", labels, DEFAULT_BUCKETS
            )
            if metric.type != "histogram":
                raise ValueError(f"metric {name!r} is a {metric.type}, not a histogram")
            key = _label_key(metric, labels)
            sample = metric.samples.get(key)
            if sample is None:
                sample = [[0] * len(metric.buckets), 0.0, 0]
                metric.samples[key] = sample
            buckets, _, _ = sample
            for index, bound in enumerate(metric.buckets):
                if value <= bound:
                    buckets[index] += 1
                    break
            sample[1] += value
            sample[2] += 1

    # ------------------------------------------------------------------
    # Reads
    # ------------------------------------------------------------------
    def value(self, name: str, **labels) -> float:
        """Current value of a counter/gauge sample (0 when never written).

        For histograms, returns the observation *count* of the sample.
        """
        with self._lock:
            metric = self._metrics.get(name)
            if metric is None:
                return 0
            key = _label_key(metric, labels)
            sample = metric.samples.get(key)
            if sample is None:
                return 0
            if metric.type == "histogram":
                return sample[2]  # type: ignore[index]
            return sample  # type: ignore[return-value]

    def totals(self) -> Dict[str, float]:
        """Per-metric totals summed over label sets (histograms: count)."""
        with self._lock:
            out: Dict[str, float] = {}
            for name, metric in self._metrics.items():
                if metric.type == "histogram":
                    out[name] = sum(s[2] for s in metric.samples.values())  # type: ignore[index]
                else:
                    out[name] = sum(metric.samples.values())  # type: ignore[arg-type]
            return out

    def to_dict(self) -> Dict[str, object]:
        """The versioned, JSON-ready, mergeable snapshot of every metric."""
        with self._lock:
            metrics: Dict[str, object] = {}
            for name, metric in self._metrics.items():
                samples: Dict[str, object] = {}
                for key, sample in metric.samples.items():
                    encoded = json.dumps(list(key))
                    if metric.type == "histogram":
                        samples[encoded] = {
                            "buckets": list(sample[0]),  # type: ignore[index]
                            "sum": sample[1],  # type: ignore[index]
                            "count": sample[2],  # type: ignore[index]
                        }
                    else:
                        samples[encoded] = sample
                entry: Dict[str, object] = {
                    "type": metric.type,
                    "help": metric.help,
                    "label_names": list(metric.label_names),
                    "samples": samples,
                }
                if metric.buckets is not None:
                    entry["buckets"] = list(metric.buckets)
                metrics[name] = entry
            return {
                "kind": SNAPSHOT_KIND,
                "version": SNAPSHOT_VERSION,
                "metrics": metrics,
            }

    def reset(self) -> None:
        """Drop every metric (tests, benchmark isolation)."""
        with self._lock:
            self._metrics.clear()


# ----------------------------------------------------------------------
# Snapshot algebra
# ----------------------------------------------------------------------
def _check_snapshot(snapshot: Dict[str, object]) -> Dict[str, Dict]:
    if (
        not isinstance(snapshot, dict)
        or snapshot.get("kind") != SNAPSHOT_KIND
        or not isinstance(snapshot.get("metrics"), dict)
    ):
        raise ValueError("not a metrics snapshot (expected to_dict() output)")
    return snapshot["metrics"]  # type: ignore[return-value]


def merge_snapshots(*snapshots: Dict[str, object]) -> Dict[str, object]:
    """Fold snapshots into one (associative and commutative up to help text).

    Counters, gauges and histogram cells sum keywise; a metric present in
    only some snapshots contributes its samples unchanged.  Conflicting
    types, label names or bucket layouts for the same metric name raise.
    """
    merged: Dict[str, Dict] = {}
    for snapshot in snapshots:
        for name, entry in _check_snapshot(snapshot).items():
            target = merged.get(name)
            if target is None:
                merged[name] = {
                    "type": entry["type"],
                    "help": entry["help"],
                    "label_names": list(entry["label_names"]),
                    "samples": {k: _copy_sample(v) for k, v in entry["samples"].items()},
                    **({"buckets": list(entry["buckets"])} if "buckets" in entry else {}),
                }
                continue
            if target["type"] != entry["type"] or target["label_names"] != list(
                entry["label_names"]
            ):
                raise ValueError(f"snapshot conflict on metric {name!r}")
            if target.get("buckets") != (
                list(entry["buckets"]) if "buckets" in entry else None
            ):
                raise ValueError(f"histogram bucket mismatch on metric {name!r}")
            if not target["help"] and entry["help"]:
                target["help"] = entry["help"]
            for key, sample in entry["samples"].items():
                existing = target["samples"].get(key)
                if existing is None:
                    target["samples"][key] = _copy_sample(sample)
                elif isinstance(sample, dict):
                    existing["buckets"] = [
                        a + b for a, b in zip(existing["buckets"], sample["buckets"])
                    ]
                    existing["sum"] += sample["sum"]
                    existing["count"] += sample["count"]
                else:
                    target["samples"][key] = existing + sample
    return {"kind": SNAPSHOT_KIND, "version": SNAPSHOT_VERSION, "metrics": merged}


def _copy_sample(sample):
    if isinstance(sample, dict):
        return {"buckets": list(sample["buckets"]), "sum": sample["sum"], "count": sample["count"]}
    return sample


# ----------------------------------------------------------------------
# Prometheus text exposition
# ----------------------------------------------------------------------
#: The Content-Type of the text exposition format.
PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"


def _escape_label(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _format_value(value: float) -> str:
    if isinstance(value, bool):  # pragma: no cover - defensive
        return "1" if value else "0"
    if isinstance(value, int) or (isinstance(value, float) and value.is_integer()):
        return str(int(value))
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    return repr(float(value))


def _format_labels(names: Sequence[str], values: Sequence[str], extra: str = "") -> str:
    parts = [f'{n}="{_escape_label(v)}"' for n, v in zip(names, values)]
    if extra:
        parts.append(extra)
    return "{" + ",".join(parts) + "}" if parts else ""


def render_prometheus(snapshot: Dict[str, object]) -> str:
    """A snapshot (local or merged) in Prometheus text exposition format."""
    metrics = _check_snapshot(snapshot)
    lines: List[str] = []
    for name in sorted(metrics):
        entry = metrics[name]
        if entry["help"]:
            lines.append(f"# HELP {name} {entry['help']}")
        lines.append(f"# TYPE {name} {entry['type']}")
        label_names = list(entry["label_names"])
        samples = sorted(entry["samples"].items())
        for key, sample in samples:
            values = [str(v) for v in json.loads(key)]
            if entry["type"] == "histogram":
                cumulative = 0
                for bound, count in zip(entry["buckets"], sample["buckets"]):
                    cumulative += count
                    labels = _format_labels(
                        label_names, values, f'le="{_format_value(float(bound))}"'
                    )
                    lines.append(f"{name}_bucket{labels} {cumulative}")
                labels = _format_labels(label_names, values, 'le="+Inf"')
                lines.append(f"{name}_bucket{labels} {sample['count']}")
                labels = _format_labels(label_names, values)
                lines.append(f"{name}_sum{labels} {_format_value(sample['sum'])}")
                lines.append(f"{name}_count{labels} {sample['count']}")
            else:
                labels = _format_labels(label_names, values)
                lines.append(f"{name}{labels} {_format_value(sample)}")
    return "\n".join(lines) + "\n"


# ----------------------------------------------------------------------
# The process-default registry
# ----------------------------------------------------------------------
REGISTRY = MetricsRegistry(enabled=os.environ.get(DISABLED_ENV, "") != "1")


def get_registry() -> MetricsRegistry:
    """The process-default registry every instrumentation hook writes to."""
    return REGISTRY


def set_enabled(enabled: bool) -> None:
    """Enable/disable the default registry, inherited by future workers.

    Also mirrors the choice into :data:`DISABLED_ENV` so processes
    started later (spawn-based pools, subprocess benchmarks) come up in
    the same state; fork-based workers inherit the flag directly.
    """
    REGISTRY.enabled = enabled
    if enabled:
        os.environ.pop(DISABLED_ENV, None)
    else:
        os.environ[DISABLED_ENV] = "1"
