"""``repro.obs`` — stdlib-only observability for the AFD service.

Three small layers, threaded through the whole stack:

* :mod:`repro.obs.metrics` — thread-safe :class:`MetricsRegistry` of
  labelled counters/gauges/histograms with mergeable snapshots and
  Prometheus text rendering (``GET /v1/metrics`` aggregates one
  snapshot per forked shard worker);
* :mod:`repro.obs.trace` — contextvars-propagated ``Trace``/span API
  carrying a per-request ``trace_id`` across the shard pipes into
  :class:`~repro.service.session.AfdSession`;
* :mod:`repro.obs.logging` — one structured JSON log line per request
  with slow-request flagging (``--slow-ms``).

Everything here is read-only with respect to results: disabling the
registry (``repro.obs.metrics.set_enabled(False)`` or
``REPRO_OBS_DISABLED=1``) must never change any score, discovery
output, or wire response — the bit-identity tests enforce it.
"""

from repro.obs.logging import RequestLogger, format_line
from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    MetricsRegistry,
    PROMETHEUS_CONTENT_TYPE,
    get_registry,
    merge_snapshots,
    render_prometheus,
    set_enabled,
)
from repro.obs.trace import Trace, add_span, current_trace, new_trace_id, span, use_trace

__all__ = [
    "DEFAULT_BUCKETS",
    "MetricsRegistry",
    "PROMETHEUS_CONTENT_TYPE",
    "RequestLogger",
    "Trace",
    "add_span",
    "current_trace",
    "format_line",
    "get_registry",
    "merge_snapshots",
    "new_trace_id",
    "render_prometheus",
    "set_enabled",
    "span",
    "use_trace",
]
