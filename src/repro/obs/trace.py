"""Request tracing: contextvars-propagated trace ids + per-stage spans.

A :class:`Trace` is one request's identity (``trace_id``) plus the
ordered list of stage spans recorded while it was current.  The front
end opens a trace per HTTP request (honouring an ``X-Trace-Id`` request
header so callers can correlate), installs it with :func:`use_trace`,
and every layer below — dispatcher, shard worker, session, discovery —
records into whatever trace is current via :func:`add_span` without
threading a handle through the call stack.

Crossing the shard pipes: the dispatcher stamps each pipe message with
the trace id; the worker opens its *own* ``Trace(trace_id)`` around
:func:`repro.service.ops.execute`, ships the collected spans back in
the reply, and the front end folds them into the request's trace with
:meth:`Trace.extend`.  Worker-side spans are therefore observed into
the worker's histogram registry (where the stage actually ran), not
double-counted at the front end.

Stage vocabulary (the ``stage_seconds{stage=...}`` histogram): ``parse``
(request body decode), ``pipe`` (dispatch + pipe round-trip), ``execute``
(worker/inline operation), ``statistics`` (one FD statistics pass),
``scoring`` (measure evaluation), ``discovery`` (lattice / chunked
screen).

Like all of ``repro.obs``, tracing is read-only with respect to
results: with no current trace (or a disabled registry) every call here
is a cheap no-op and outputs are bit-identical.
"""

from __future__ import annotations

import contextlib
import time
import uuid
from contextvars import ContextVar
from typing import Dict, Iterable, List, Optional

from repro.obs.metrics import get_registry

__all__ = [
    "Trace",
    "add_span",
    "current_trace",
    "new_trace_id",
    "span",
    "use_trace",
]


def new_trace_id() -> str:
    """A fresh 16-hex-char request id (collision-safe at service scale)."""
    return uuid.uuid4().hex[:16]


class Trace:
    """One request's trace: an id plus the spans recorded under it."""

    __slots__ = ("trace_id", "spans")

    def __init__(self, trace_id: Optional[str] = None):
        self.trace_id = trace_id or new_trace_id()
        self.spans: List[Dict[str, object]] = []

    def record(self, name: str, seconds: float, **extra) -> None:
        """Append one span (also observed into ``stage_seconds``)."""
        span_ = {"name": name, "seconds": seconds}
        span_.update(extra)
        self.spans.append(span_)

    def extend(self, spans: Optional[Iterable[Dict[str, object]]]) -> None:
        """Fold spans shipped back from a worker (already observed there)."""
        if spans:
            self.spans.extend(dict(span_) for span_ in spans)

    def span_dicts(self) -> List[Dict[str, object]]:
        return [dict(span_) for span_ in self.spans]


_CURRENT: ContextVar[Optional[Trace]] = ContextVar("repro_obs_trace", default=None)


def current_trace() -> Optional[Trace]:
    """The trace installed by the innermost :func:`use_trace`, if any."""
    return _CURRENT.get()


@contextlib.contextmanager
def use_trace(trace: Trace):
    """Install ``trace`` as the current trace for the enclosed block."""
    token = _CURRENT.set(trace)
    try:
        yield trace
    finally:
        _CURRENT.reset(token)


def add_span(name: str, seconds: float, **extra) -> None:
    """Record a completed stage: histogram observation + current-trace span.

    The ``stage_seconds{stage=name}`` observation happens in *this*
    process's registry whether or not a trace is current, so stage
    timings aggregate fleet-wide even for untraced work (CLI runs,
    benchmark loops).  The span itself attaches only when a request
    trace is active.
    """
    get_registry().observe("stage_seconds", seconds, stage=name)
    trace = _CURRENT.get()
    if trace is not None:
        trace.record(name, seconds, **extra)


@contextlib.contextmanager
def span(name: str, **extra):
    """Time the enclosed block as one stage (see :func:`add_span`)."""
    start = time.perf_counter()
    try:
        yield
    finally:
        add_span(name, time.perf_counter() - start, **extra)
