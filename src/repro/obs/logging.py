"""Structured request logging: one compact JSON line per HTTP request.

The front end builds a record per request (trace id, route, status,
duration, spans) and hands it to a :class:`RequestLogger`, which stamps
a ``slow`` flag (``duration_ms >= slow_ms``) and emits it as one
sorted-key JSON line — machine-parseable (the e2e trace tests read the
stream back with ``json.loads`` per line) and stable under ``grep``.

``log_all=False`` turns the stream into a slow-request log: only
requests at or above ``slow_ms`` are written, which is the
``--slow-ms`` serving mode.
"""

from __future__ import annotations

import json
import sys
from typing import Dict, IO, Optional

__all__ = ["RequestLogger", "format_line"]


def format_line(record: Dict[str, object]) -> str:
    """One record as a compact, sorted-key JSON line (no trailing newline)."""
    return json.dumps(record, sort_keys=True, separators=(",", ":"), default=str)


class RequestLogger:
    """Emit request records as JSON lines, flagging slow requests.

    ``sink`` (a callable taking the formatted line) wins over ``stream``
    (a writable file object, default ``sys.stderr``); tests use sinks to
    capture the log in memory.
    """

    def __init__(
        self,
        stream: Optional[IO[str]] = None,
        sink=None,
        slow_ms: Optional[float] = None,
        log_all: bool = True,
    ):
        self._stream = stream
        self._sink = sink
        self.slow_ms = slow_ms
        self.log_all = log_all

    def log(self, record: Dict[str, object]) -> None:
        """Stamp the ``slow`` flag and emit (subject to ``log_all``)."""
        slow = (
            self.slow_ms is not None
            and float(record.get("duration_ms", 0)) >= self.slow_ms
        )
        record = dict(record, slow=slow)
        if not (self.log_all or slow):
            return
        line = format_line(record)
        if self._sink is not None:
            self._sink(line)
            return
        stream = self._stream if self._stream is not None else sys.stderr
        try:
            stream.write(line + "\n")
            stream.flush()
        except (ValueError, OSError):  # closed stream at shutdown
            pass
