"""Result persistence: JSON and CSV artifacts under ``results/``.

Every experiment driver emits one machine-readable JSON payload (the full
summary, for downstream plotting) plus flat CSV files (one row per
measure / table / step, for spreadsheet inspection).  Writers are
deliberately dependency-free.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import Iterable, Mapping, Sequence, Union

PathLike = Union[str, Path]


def ensure_directory(path: PathLike) -> Path:
    directory = Path(path)
    directory.mkdir(parents=True, exist_ok=True)
    return directory


def write_json(path: PathLike, payload: object) -> Path:
    """Write ``payload`` as deterministic, human-diffable JSON."""
    target = Path(path)
    ensure_directory(target.parent)
    with target.open("w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return target


def write_csv(
    path: PathLike,
    fieldnames: Sequence[str],
    rows: Iterable[Mapping[str, object]],
) -> Path:
    """Write dict rows as CSV; missing fields become empty cells."""
    target = Path(path)
    ensure_directory(target.parent)
    with target.open("w", encoding="utf-8", newline="") as handle:
        writer = csv.DictWriter(handle, fieldnames=list(fieldnames), restval="")
        writer.writeheader()
        for row in rows:
            writer.writerow(row)
    return target
