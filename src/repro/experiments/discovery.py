"""Driver for the lattice-discovery experiment over the RWD benchmark.

For every RWD stand-in relation: run the level-wise lattice discovery of
:func:`repro.discovery.discover_afds` up to ``max_lhs_size``, rank the
non-exact candidates against the relation's design-schema ground truth
(``AFD(R)``, the approximate design FDs), and report per-measure ranking
metrics together with the lattice's pruning counters — how many
statistics passes the traversal performed versus the one-per-candidate
cost of brute force.

Multi-attribute candidates enlarge the negative pool (the planted design
schemas are linear), so this experiment probes how well each measure
keeps ranking the true AFDs on top when the candidate space grows
beyond linear FDs.  Exactly satisfied candidates are excluded from the
ranking pool for the same reason as in the RWDe sweep: every measure
scores them 1.0 by convention.  Relations whose candidate pool ends up
degenerate (no positives) report ``NaN`` ranking metrics.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from repro.discovery.single import discover_afds
from repro.evaluation.metrics import ranking_summary
from repro.evaluation.scoring import MeasureConfig
from repro.experiments.io import ensure_directory, write_csv, write_json
from repro.rwd.benchmark import build_rwd_benchmark
from repro.rwd.datasets import dataset_keys


@dataclass(frozen=True)
class DiscoveryConfig:
    """Configuration of one lattice-discovery run."""

    datasets: Tuple[str, ...] = tuple(dataset_keys())
    num_rows: int = 400
    seed: int = 0
    max_lhs_size: int = 2
    threshold: float = 0.9
    g3_bound: Optional[float] = None
    expectation: str = "monte-carlo"
    mc_samples: int = 100
    sfi_alpha: float = 0.5
    measure_seed: int = 0
    backend: Optional[str] = None

    def measure_config(self) -> MeasureConfig:
        return MeasureConfig(
            expectation=self.expectation,
            mc_samples=self.mc_samples,
            sfi_alpha=self.sfi_alpha,
            seed=self.measure_seed,
            backend=self.backend,
        )


def _run_relation(rwd, config: DiscoveryConfig, measures) -> Dict[str, object]:
    """Lattice discovery + ground-truth ranking for one RWD relation."""
    relation = rwd.relation
    ground_truth = set(rwd.approximate_fds)
    result = discover_afds(
        relation,
        measures=measures,
        threshold=config.threshold,
        max_lhs_size=config.max_lhs_size,
        g3_bound=config.g3_bound,
        backend=config.backend,
    )
    measure_names = result.measure_names
    labels: List[int] = []
    scores_per_measure: Dict[str, List[float]] = {name: [] for name in measure_names}
    excluded_exact = 0
    for candidate in result.candidates:
        if candidate.exact:
            excluded_exact += 1
            continue
        labels.append(1 if candidate.fd in ground_truth else 0)
        for name in measure_names:
            scores_per_measure[name].append(candidate.scores[name])
    per_measure: Dict[str, Dict[str, float]] = {}
    for name in measure_names:
        entry = ranking_summary(labels, scores_per_measure[name])
        entry["accepted"] = float(len(result.accepted(name)))
        per_measure[name] = entry
    counters = result.counters()
    return {
        "key": rwd.key,
        "title": rwd.title,
        "num_rows": relation.num_rows,
        "num_attributes": relation.num_attributes,
        "ground_truth_fds": len(ground_truth),
        "ranked_candidates": len(labels),
        "positives": sum(labels),
        "excluded_exact": excluded_exact,
        # One statistics pass per candidate is what brute force would pay;
        # bound-pruned candidates are not in the result, so add them back.
        "brute_force_statistics": counters["candidates"] + counters["pruned_bound"],
        **counters,
        "measures": per_measure,
    }


def run_discovery(
    config: DiscoveryConfig = DiscoveryConfig(),
    output_dir: Optional[str] = "results",
) -> Dict[str, object]:
    """Run lattice discovery over the configured RWD relations.

    Returns the JSON payload; with ``output_dir`` set, writes
    ``summary.json`` and ``summary.csv`` under ``<output_dir>/discovery/``.
    """
    benchmark = build_rwd_benchmark(
        num_rows=config.num_rows, seed=config.seed, keys=list(config.datasets)
    )
    measures = config.measure_config().build()
    relations = [_run_relation(rwd, config, measures) for rwd in benchmark]
    payload: Dict[str, object] = {
        "experiment": "discovery",
        "config": asdict(config),
        "relations": relations,
    }
    if output_dir is not None:
        directory = ensure_directory(Path(output_dir) / "discovery")
        write_json(directory / "summary.json", payload)
        fields = [
            "key",
            "measure",
            "pr_auc",
            "rank_at_max_recall",
            "normalized_rank_at_max_recall",
            "separation",
            "accepted",
            "ranked_candidates",
            "positives",
            "candidates",
            "pruned_exact",
            "pruned_key",
            "pruned_bound",
            "statistics_computed",
            "brute_force_statistics",
        ]
        write_csv(
            directory / "summary.csv",
            fields,
            (
                {
                    "key": entry["key"],
                    "measure": name,
                    "ranked_candidates": entry["ranked_candidates"],
                    "positives": entry["positives"],
                    "candidates": entry["candidates"],
                    "pruned_exact": entry["pruned_exact"],
                    "pruned_key": entry["pruned_key"],
                    "pruned_bound": entry["pruned_bound"],
                    "statistics_computed": entry["statistics_computed"],
                    "brute_force_statistics": entry["brute_force_statistics"],
                    **metrics,
                }
                for entry in relations
                for name, metrics in entry["measures"].items()  # type: ignore[union-attr]
            ),
        )
    return payload
