"""Driver for the ERR / UNIQ / SKEW sensitivity experiments (Section V).

One call runs a full benchmark sweep: build the table specs, score every
registered measure in parallel, aggregate PR-AUC / rank-at-max-recall /
separation / runtimes, derive the per-step sensitivity curves behind the
Section V figures, and persist everything as JSON + CSV under
``results/<benchmark>/``.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Dict, Optional

from repro.evaluation.harness import EvaluationResult, evaluate_specs
from repro.evaluation.scoring import MeasureConfig
from repro.experiments.io import ensure_directory, write_csv, write_json
from repro.synthetic.benchmarks import benchmark_specs


@dataclass(frozen=True)
class SensitivityConfig:
    """Everything that determines one sensitivity run (and its cache key).

    The defaults are laptop-scale; ``steps=50, tables_per_step=50,
    max_rows=10_000, expectation="exact"`` is the full-paper configuration
    on the identical code path.
    """

    benchmark: str = "err"
    steps: int = 5
    tables_per_step: int = 3
    jobs: int = 1
    seed: Optional[int] = None
    min_rows: int = 100
    max_rows: int = 1000
    expectation: str = "monte-carlo"
    mc_samples: int = 100
    sfi_alpha: float = 0.5
    measure_seed: int = 0
    backend: Optional[str] = None

    def measure_config(self) -> MeasureConfig:
        return MeasureConfig(
            expectation=self.expectation,
            mc_samples=self.mc_samples,
            sfi_alpha=self.sfi_alpha,
            seed=self.measure_seed,
            backend=self.backend,
        )


def run_sensitivity(
    config: SensitivityConfig = SensitivityConfig(),
    output_dir: Optional[str] = "results",
) -> Dict[str, object]:
    """Run one synthetic sensitivity benchmark end to end.

    Returns the JSON payload; with ``output_dir`` set, also writes
    ``summary.json`` plus ``summary.csv`` / ``scores.csv`` / ``curves.csv``
    under ``<output_dir>/<benchmark>/``.
    """
    specs = benchmark_specs(
        config.benchmark,
        steps=config.steps,
        tables_per_step=config.tables_per_step,
        seed=config.seed,
        min_rows=config.min_rows,
        max_rows=config.max_rows,
    )
    result = evaluate_specs(specs, config.measure_config(), jobs=config.jobs)
    payload = build_payload(config, result)
    if output_dir is not None:
        write_artifacts(Path(output_dir) / config.benchmark.lower(), payload, result)
    return payload


def build_payload(config: SensitivityConfig, result: EvaluationResult) -> Dict[str, object]:
    return {
        "experiment": "sensitivity",
        "benchmark": result.benchmark,
        "parameter_name": result.parameter_name,
        "config": asdict(config),
        "num_tables": len(result.rows),
        "measures": result.measure_names,
        "summary": result.summary(),
        "curves": result.step_curves(),
    }


def write_artifacts(
    directory: Path, payload: Dict[str, object], result: EvaluationResult
) -> Dict[str, Path]:
    """Persist the JSON payload and the three flat CSV views."""
    ensure_directory(directory)
    summary = payload["summary"]
    paths = {"summary_json": write_json(directory / "summary.json", payload)}

    summary_fields = [
        "measure",
        "pr_auc",
        "rank_at_max_recall",
        "normalized_rank_at_max_recall",
        "separation",
        "total_seconds",
        "mean_seconds",
        "max_seconds",
    ]
    paths["summary_csv"] = write_csv(
        directory / "summary.csv",
        summary_fields,
        (
            {"measure": name, **metrics}
            for name, metrics in summary.items()  # type: ignore[union-attr]
        ),
    )

    score_fields = [
        "table",
        "step",
        "index",
        "positive",
        "parameter_value",
        "num_rows",
        "statistics_seconds",
    ] + result.measure_names
    paths["scores_csv"] = write_csv(
        directory / "scores.csv",
        score_fields,
        (
            {
                "table": row.table,
                "step": row.step,
                "index": row.index,
                "positive": int(row.positive),
                "parameter_value": row.parameter_value,
                "num_rows": row.num_rows,
                "statistics_seconds": row.statistics_seconds,
                **row.scores,
            }
            for row in result.rows
        ),
    )

    curve_fields = [
        "measure",
        "step",
        "parameter_value",
        "mean_positive_score",
        "mean_negative_score",
    ]
    curves = payload["curves"]
    paths["curves_csv"] = write_csv(
        directory / "curves.csv",
        curve_fields,
        (
            {"measure": name, **point}
            for name, points in curves.items()  # type: ignore[union-attr]
            for point in points
        ),
    )
    return paths
