"""Figure generation from persisted experiment artifacts.

The sensitivity drivers persist their per-step curve data as
``results/<benchmark>/curves.csv`` (one row per measure and step:
``measure, step, parameter_value, mean_positive_score,
mean_negative_score``) — the data behind the Section V figures.
``python -m repro.experiments --plot`` renders every discovered curve
file to one figure per benchmark: mean positive score (solid) and mean
negative score (dashed) per measure over the swept parameter.

matplotlib is an *optional* dependency: loading and summarising the CSV
data works without it, and rendering degrades to a clean skip with an
actionable message (exit code 0) when it is absent, so the CLI never
breaks a pipeline that merely lacks the plotting extra.
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from repro.core.registry import paper_label

#: File formats the --plot mode can emit.
PLOT_FORMATS = ("png", "svg")

#: The message printed when rendering is requested without matplotlib.
MATPLOTLIB_MISSING = (
    "matplotlib is not installed — skipping figure rendering "
    "(install it with `pip install matplotlib` and re-run --plot)"
)


def matplotlib_available() -> bool:
    """True when figures can actually be rendered in this process."""
    try:  # pragma: no cover - trivially environment-dependent
        import matplotlib  # noqa: F401
    except ImportError:
        return False
    return True


CurvePoint = Dict[str, float]


def load_curves(path) -> Dict[str, List[CurvePoint]]:
    """Parse one ``curves.csv`` into per-measure point lists.

    Points are ordered by step, exactly as persisted; values are floats.
    Raises :class:`ValueError` on a CSV missing the curve columns, so a
    mis-pointed ``--plot`` fails loudly instead of rendering nonsense.
    """
    path = Path(path)
    curves: Dict[str, List[CurvePoint]] = {}
    with path.open(newline="") as handle:
        reader = csv.DictReader(handle)
        required = {
            "measure",
            "step",
            "parameter_value",
            "mean_positive_score",
            "mean_negative_score",
        }
        missing = required - set(reader.fieldnames or ())
        if missing:
            raise ValueError(
                f"{path} is not a curves.csv artifact: missing columns {sorted(missing)}"
            )
        for row in reader:
            curves.setdefault(row["measure"], []).append(
                {
                    "step": float(row["step"]),
                    "parameter_value": float(row["parameter_value"]),
                    "mean_positive_score": float(row["mean_positive_score"]),
                    "mean_negative_score": float(row["mean_negative_score"]),
                }
            )
    for points in curves.values():
        points.sort(key=lambda point: point["step"])
    return curves


def discover_curve_files(results_dir) -> List[Tuple[str, Path]]:
    """``(benchmark, path)`` pairs for every ``results/*/curves.csv``."""
    results = Path(results_dir)
    if not results.is_dir():
        return []
    return sorted(
        (path.parent.name, path) for path in results.glob("*/curves.csv")
    )


def render_curves(
    curves: Dict[str, List[CurvePoint]],
    output_path,
    title: str = "",
    parameter_name: str = "parameter",
) -> Optional[Path]:
    """Render one benchmark's curves to ``output_path`` (format by suffix).

    Returns the written path, or ``None`` (after printing
    :data:`MATPLOTLIB_MISSING`) when matplotlib is unavailable.
    """
    if not matplotlib_available():
        print(MATPLOTLIB_MISSING)
        return None
    import matplotlib

    matplotlib.use("Agg")  # never require a display
    from matplotlib import pyplot

    output_path = Path(output_path)
    figure, axes = pyplot.subplots(figsize=(8.0, 5.0))
    color_cycle = pyplot.rcParams["axes.prop_cycle"].by_key().get("color", ["C0"])
    for index, (measure, points) in enumerate(curves.items()):
        color = color_cycle[index % len(color_cycle)]
        xs = [point["parameter_value"] for point in points]
        axes.plot(
            xs,
            [point["mean_positive_score"] for point in points],
            color=color,
            linestyle="-",
            linewidth=1.2,
            label=paper_label(measure),
        )
        axes.plot(
            xs,
            [point["mean_negative_score"] for point in points],
            color=color,
            linestyle="--",
            linewidth=0.8,
        )
    axes.set_xlabel(parameter_name)
    axes.set_ylabel("mean score (solid: B+, dashed: B-)")
    if title:
        axes.set_title(title)
    axes.legend(loc="center left", bbox_to_anchor=(1.02, 0.5), fontsize=8)
    figure.tight_layout()
    output_path.parent.mkdir(parents=True, exist_ok=True)
    figure.savefig(output_path)
    pyplot.close(figure)
    return output_path


def run_plot(
    results_dir: str = "results",
    output_dir: Optional[str] = None,
    image_format: str = "png",
) -> Dict[str, object]:
    """Render every ``results/*/curves.csv`` to ``<benchmark>.<format>``.

    Figures land next to their source data (or under ``output_dir`` when
    given).  Returns a summary payload: rendered paths, plus the
    benchmarks skipped because matplotlib is missing — callers can treat
    ``skipped`` as a soft condition (the CLI exits 0 either way).
    """
    if image_format not in PLOT_FORMATS:
        raise ValueError(
            f"unknown plot format {image_format!r}; known formats: {list(PLOT_FORMATS)}"
        )
    sources = discover_curve_files(results_dir)
    rendered: List[str] = []
    skipped: List[str] = []
    for benchmark, path in sources:
        curves = load_curves(path)
        # The parameter swept is benchmark-specific; recover its name
        # from the companion summary when present.
        parameter_name = _parameter_name(path.parent)
        target_dir = Path(output_dir) if output_dir is not None else path.parent
        target = target_dir / f"{benchmark}.{image_format}"
        written = render_curves(
            curves, target, title=benchmark.upper(), parameter_name=parameter_name
        )
        if written is None:
            skipped.append(benchmark)
        else:
            rendered.append(str(written))
    return {
        "results_dir": str(results_dir),
        "format": image_format,
        "sources": [str(path) for _, path in sources],
        "rendered": rendered,
        "skipped": skipped,
        "matplotlib_available": matplotlib_available(),
    }


def _parameter_name(directory: Path) -> str:
    import json

    summary = directory / "summary.json"
    if summary.exists():
        try:
            payload = json.loads(summary.read_text())
        except (OSError, ValueError):  # pragma: no cover - defensive
            return "parameter"
        name = payload.get("parameter_name")
        if isinstance(name, str) and name:
            return name
    return "parameter"
