"""Driver for the service benchmark: warm speedup + serving throughput.

Quantifies what the ``repro.service`` front door buys over per-request
recomputation, on the same deterministic fixed relations as the runtime
benchmark (Table V protocol):

* **cold** — a fresh :class:`~repro.service.AfdSession` per request, so
  every request pays the full sufficient-statistics pass plus scoring
  (today's direct-call discipline; the columnar encoding is paid once,
  untimed, exactly like the runtime driver's warm-up);
* **warm** — one long-lived session serving every request, so the
  statistics object and every derived quantity cached on it (including
  the permutation expectation) are computed once and shared; the
  headline ``warm_speedup`` is cold-median over warm-median on the
  largest fixed relation;
* **throughput** — the real HTTP server on a loopback ephemeral port,
  hammered by 1/4/8/16 client threads (each holding one persistent
  HTTP/1.1 connection) issuing ``POST /v1/relations/<name>/score``
  requests, in both serving modes: **serial** (in-process, the
  ``--workers 0`` deployment) and **sharded** (``--workers N`` worker
  processes behind the async front end, same-relation requests
  coalesced into batched passes).  Requests/sec per thread count and
  the sharded-over-serial / 8-over-1-thread scaling ratios are
  recorded; sharded responses are asserted bit-identical to serial
  ones (:func:`~repro.service.model.stable_view` strips the volatile
  timing fields first).

Warm scores are asserted ``==``-identical to cold scores on every
relation.  Artifacts: ``summary.json`` + ``summary.csv`` under
``<output_dir>/service/`` and the compact repo-root
``BENCH_service.json`` perf record.
"""

from __future__ import annotations

import http.client
import json
import threading
import time
from dataclasses import asdict, dataclass, replace
from pathlib import Path
from statistics import median
from typing import Dict, List, Optional, Tuple

from repro.experiments.io import ensure_directory, write_csv, write_json
from repro.obs.metrics import set_enabled as obs_set_enabled
from repro.experiments.runtime import build_fixed_relation
from repro.service.model import stable_view
from repro.service.server import ServiceState, make_server, make_sharded_server
from repro.service.session import AfdSession
from repro.synthetic.generator import SYNTHETIC_FD


@dataclass(frozen=True)
class ServiceConfig:
    """Everything that determines one service benchmark run."""

    sizes: Tuple[int, ...] = (1_000, 5_000, 20_000)
    client_threads: Tuple[int, ...] = (1, 4, 8, 16)
    requests_per_thread: int = 25
    repeats: int = 7
    workers: int = 4
    seed: int = 97
    expectation: str = "monte-carlo"
    mc_samples: int = 50
    sfi_alpha: float = 0.5
    backend: Optional[str] = None

    def measure_options(self) -> Dict[str, object]:
        return {
            "expectation": self.expectation,
            "mc_samples": self.mc_samples,
            "sfi_alpha": self.sfi_alpha,
        }

    def session(self, relation) -> AfdSession:
        return AfdSession(relation, backend=self.backend, **self.measure_options())


#: Smoke-scale override used by ``--smoke`` (CI): same code path and
#: artifact schema, laptop-friendly sizes.
SMOKE_SIZES: Tuple[int, ...] = (500, 2_000)
SMOKE_THREADS: Tuple[int, ...] = (1, 2)
SMOKE_REQUESTS = 5
SMOKE_REPEATS = 3
SMOKE_WORKERS = 2


def _time_cold(relation, config: ServiceConfig) -> Tuple[List[float], Dict[str, float]]:
    """Per-request sessions: every request recomputes the statistics."""
    config.session(relation).score(SYNTHETIC_FD)  # untimed: pays the columnar encode
    runs: List[float] = []
    scores: Dict[str, float] = {}
    for _ in range(config.repeats):
        session = config.session(relation)
        started = time.perf_counter()
        result = session.score(SYNTHETIC_FD)
        runs.append(time.perf_counter() - started)
        scores = result.scores
    return runs, scores


def _time_warm(relation, config: ServiceConfig) -> Tuple[List[float], Dict[str, float], AfdSession]:
    """One session for all requests: statistics computed once, then hits."""
    session = config.session(relation)
    session.score(SYNTHETIC_FD)  # untimed: populates the cache
    runs: List[float] = []
    scores: Dict[str, float] = {}
    for _ in range(config.repeats):
        started = time.perf_counter()
        result = session.score(SYNTHETIC_FD)
        runs.append(time.perf_counter() - started)
        if not result.cache_hit:
            raise RuntimeError("warm request missed the session cache")
        scores = result.scores
    return runs, scores, session


# ----------------------------------------------------------------------
# Throughput over the wire
# ----------------------------------------------------------------------
def _post_on(connection: http.client.HTTPConnection, path: str, body: bytes) -> bytes:
    connection.request(
        "POST", path, body=body, headers={"Content-Type": "application/json"}
    )
    response = connection.getresponse()
    data = response.read()
    if response.status not in (200, 201):  # pragma: no cover - server contract
        raise RuntimeError(f"unexpected status {response.status}: {data[:200]!r}")
    return data


def _throughput_mode(
    relation, config: ServiceConfig, mode: str
) -> Tuple[List[Dict[str, object]], Dict[str, object]]:
    """Requests/sec of ``POST /v1/relations/<name>/score`` in one mode.

    ``mode`` is ``"serial"`` (in-process serving) or ``"sharded"``
    (``config.workers`` worker processes).  Every client thread keeps one
    persistent HTTP/1.1 connection — both modes measured identically.
    Returns the per-thread-count cells plus one reference response body
    for the cross-mode bit-identity assertion.
    """
    if mode == "sharded":
        server, _pool = make_sharded_server(
            workers=config.workers,
            backend=config.backend,
            measure_options=config.measure_options(),
        )
    else:
        state = ServiceState(
            backend=config.backend, measure_options=config.measure_options()
        )
        server, _ = make_server(state=state)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    host, port = server.server_address[:2]
    score_path = f"/v1/relations/{relation.name}/score"
    score_body = json.dumps({"fd": str(SYNTHETIC_FD)}).encode("utf-8")

    results: List[Dict[str, object]] = []
    try:
        setup = http.client.HTTPConnection(host, port)
        _post_on(
            setup,
            "/v1/relations",
            json.dumps(
                {
                    "name": relation.name,
                    "attributes": list(relation.attributes),
                    "rows": [list(row) for row in relation.rows()],
                }
            ).encode("utf-8"),
        )
        reference = json.loads(_post_on(setup, score_path, score_body))  # warm, untimed
        setup.close()
        for threads in config.client_threads:
            total = threads * config.requests_per_thread
            errors: List[BaseException] = []

            def worker() -> None:
                connection = http.client.HTTPConnection(host, port)
                try:
                    for _ in range(config.requests_per_thread):
                        _post_on(connection, score_path, score_body)
                except BaseException as error:  # pragma: no cover - rethrown below
                    errors.append(error)
                finally:
                    connection.close()

            workers = [threading.Thread(target=worker) for _ in range(threads)]
            started = time.perf_counter()
            for worker_thread in workers:
                worker_thread.start()
            for worker_thread in workers:
                worker_thread.join()
            elapsed = time.perf_counter() - started
            if errors:
                raise errors[0]
            results.append(
                {
                    "mode": mode,
                    "threads": threads,
                    "requests": total,
                    "seconds": elapsed,
                    "requests_per_second": total / elapsed if elapsed > 0 else 0.0,
                }
            )
    finally:
        server.shutdown()
        thread.join(timeout=10)
        server.server_close()
    return results, reference


def _observability_overhead(relation, config: ServiceConfig) -> Dict[str, object]:
    """Sharded throughput with instrumentation on vs off, interleaved.

    ``repro.obs`` must be effectively free: the front end pays a few
    registry increments per request against a statistics-pass-sized
    request cost.  Measured on the given (smallest, most
    request-rate-bound) relation — the honest worst case for a
    per-request overhead.  Runs alternate disabled/enabled so clock
    drift and cache warmth bias neither mode; ``set_enabled`` flips the
    module flag *before* the pool forks, so workers inherit the state.
    """
    threads = config.client_threads[-1] if config.client_threads else 1
    # Longer runs than the scaling sweep: a 0.1s burst is dominated by
    # thread scheduling, not by the per-request instrumentation cost.
    requests = max(config.requests_per_thread, 600 // max(threads, 1))
    single = replace(
        config, client_threads=(threads,), requests_per_thread=requests
    )
    pairs = max(3, min(config.repeats, 5))
    runs: Dict[str, List[float]] = {"enabled": [], "disabled": []}
    try:
        for _ in range(pairs):
            obs_set_enabled(False)
            cells, _ = _throughput_mode(relation, single, "sharded")
            runs["disabled"].append(float(cells[0]["requests_per_second"]))
            obs_set_enabled(True)
            cells, _ = _throughput_mode(relation, single, "sharded")
            runs["enabled"].append(float(cells[0]["requests_per_second"]))
    finally:
        obs_set_enabled(True)
    # Best-of-runs: the least-interfered run of each mode.  Medians of
    # sub-second throughput bursts carry scheduler noise an order of
    # magnitude above the instrumentation cost being measured.
    enabled_rps = max(runs["enabled"])
    disabled_rps = max(runs["disabled"])
    overhead = 1.0 - enabled_rps / disabled_rps if disabled_rps > 0 else None
    return {
        "relation": relation.name,
        "num_rows": relation.num_rows,
        "threads": threads,
        "requests_per_thread": requests,
        "pairs": pairs,
        "runs": runs,
        "enabled_rps_best": enabled_rps,
        "disabled_rps_best": disabled_rps,
        # Fraction of sharded throughput lost with instrumentation on
        # (negative = measured faster than the disabled run; noise).
        "overhead_fraction": overhead,
    }


def _scaling(cells: List[Dict[str, object]], numerator: int, denominator: int):
    """Throughput ratio between two thread counts of one mode's cells."""
    by_threads = {cell["threads"]: cell["requests_per_second"] for cell in cells}
    high, low = by_threads.get(numerator), by_threads.get(denominator)
    if high is None or low is None or low <= 0:
        return None
    return high / low


def run_service(
    config: ServiceConfig = ServiceConfig(),
    output_dir: Optional[str] = "results",
    bench_path: Optional[str] = "BENCH_service.json",
) -> Dict[str, object]:
    """Run the full service benchmark and persist its artifacts."""
    relations: List[Dict[str, object]] = []
    for num_rows in config.sizes:
        relation = build_fixed_relation(num_rows, config.seed)
        cold_runs, cold_scores = _time_cold(relation, config)
        warm_runs, warm_scores, _ = _time_warm(relation, config)
        if warm_scores != cold_scores:
            raise RuntimeError(
                f"warm-session scores diverged from cold recompute on {relation.name}"
            )
        serial_cells, serial_reference = _throughput_mode(relation, config, "serial")
        sharded_cells, sharded_reference = _throughput_mode(relation, config, "sharded")
        if stable_view(serial_reference) != stable_view(sharded_reference):
            raise RuntimeError(
                f"sharded /score response diverged from serial serving on "
                f"{relation.name}"
            )
        cold_median = median(cold_runs)
        warm_median = median(warm_runs)
        peak = config.client_threads[-1] if config.client_threads else 1
        base = config.client_threads[0] if config.client_threads else 1
        relations.append(
            {
                "name": relation.name,
                "num_rows": relation.num_rows,
                "cold_seconds_median": cold_median,
                "warm_seconds_median": warm_median,
                "warm_speedup": cold_median / warm_median if warm_median > 0 else None,
                "cold_seconds_runs": cold_runs,
                "warm_seconds_runs": warm_runs,
                "throughput": {"serial": serial_cells, "sharded": sharded_cells},
                "sharded_matches_serial": True,
                # Thread-scaling ratios: peak-thread over single-thread
                # requests/sec within each serving mode.  >= 1.0 means
                # no collapse under concurrency.
                "serial_scaling": _scaling(serial_cells, peak, base),
                "sharded_scaling": _scaling(sharded_cells, peak, base),
                "sharded_scaling_8_over_1": _scaling(sharded_cells, 8, 1),
            }
        )
    largest = max(relations, key=lambda entry: entry["num_rows"]) if relations else None
    smallest = min(relations, key=lambda entry: entry["num_rows"]) if relations else None
    observability = None
    if smallest is not None:
        observability = _observability_overhead(
            build_fixed_relation(int(smallest["num_rows"]), config.seed), config
        )
    payload: Dict[str, object] = {
        "experiment": "service",
        "config": asdict(config),
        "client_threads": list(config.client_threads),
        "workers": config.workers,
        "scores_verified": True,
        "sharded_matches_serial": all(
            entry["sharded_matches_serial"] for entry in relations
        ),
        "relations": relations,
        "largest": None
        if largest is None
        else {
            "name": largest["name"],
            "num_rows": largest["num_rows"],
            "warm_speedup": largest["warm_speedup"],
        },
        # The headline number: warm-session over cold per-request median
        # wall-clock of one /score profile on the largest fixed relation.
        "speedup": None if largest is None else largest["warm_speedup"],
        # The sharding headline: peak-thread over single-thread sharded
        # requests/sec on the smallest (most request-rate-bound) relation.
        "sharded_scaling": None if smallest is None else smallest["sharded_scaling"],
        # Instrumentation cost: sharded requests/sec with repro.obs
        # enabled vs disabled on the smallest relation (worst case for a
        # per-request overhead).  Acceptance: overhead_fraction <= 0.05.
        "observability": observability,
    }
    if output_dir is not None:
        _write_artifacts(Path(output_dir) / "service", payload)
    if bench_path is not None:
        write_json(bench_path, payload)
    return payload


def _write_artifacts(directory: Path, payload: Dict[str, object]) -> None:
    ensure_directory(directory)
    write_json(directory / "summary.json", payload)
    fields = ["relation", "num_rows", "metric", "value"]

    def rows():
        for entry in payload["relations"]:  # type: ignore[union-attr]
            for metric in (
                "cold_seconds_median",
                "warm_seconds_median",
                "warm_speedup",
                "serial_scaling",
                "sharded_scaling",
            ):
                yield {
                    "relation": entry["name"],
                    "num_rows": entry["num_rows"],
                    "metric": metric,
                    "value": entry[metric],
                }
            for mode, cells in entry["throughput"].items():
                for cell in cells:
                    yield {
                        "relation": entry["name"],
                        "num_rows": entry["num_rows"],
                        "metric": f"requests_per_second[{mode},{cell['threads']}]",
                        "value": cell["requests_per_second"],
                    }
        observability = payload.get("observability")
        if observability is not None:
            for metric in (
                "enabled_rps_best",
                "disabled_rps_best",
                "overhead_fraction",
            ):
                yield {
                    "relation": observability["relation"],
                    "num_rows": observability["num_rows"],
                    "metric": f"observability[{metric}]",
                    "value": observability[metric],
                }

    write_csv(directory / "summary.csv", fields, rows())
