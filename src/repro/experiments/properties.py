"""Driver for the Table III property check.

Two layers of verification of the paper's qualitative property catalogue
(:mod:`repro.core.properties`):

* **static** — every registered measure instance must agree with the
  catalogue on its measure class, baseline possession and efficient
  computability (catching drift between implementation and catalogue);
* **empirical** — small ERR / UNIQ / SKEW sweeps are evaluated and the
  correlation between the swept parameter and the mean B+ score is
  compared against the catalogued sensitivity claims (inverse error
  proportionality; LHS-uniqueness / RHS-skew insensitivity).

The empirical layer is a smoke-level reproduction of Section V, not a
statistical test: correlations on laptop-scale grids are noisy, so
disagreements are reported, not raised.
"""

from __future__ import annotations

import math
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Dict, List, Optional, Sequence

from repro.core.properties import PAPER_PROPERTIES
from repro.evaluation.harness import evaluate_specs
from repro.evaluation.scoring import MeasureConfig
from repro.experiments.io import ensure_directory, write_csv, write_json
from repro.synthetic.benchmarks import benchmark_specs

#: |correlation| below this counts as "insensitive" in the empirical check.
INSENSITIVITY_CUTOFF = 0.5


@dataclass(frozen=True)
class PropertiesConfig:
    """Configuration of the property-check run.

    ``seed`` is the root seed of each sensitivity sweep (``None`` keeps
    the classical per-family seeds 0/1/2).
    """

    steps: int = 5
    tables_per_step: int = 3
    jobs: int = 1
    seed: Optional[int] = None
    min_rows: int = 100
    max_rows: int = 1000
    expectation: str = "monte-carlo"
    mc_samples: int = 100
    sfi_alpha: float = 0.5
    measure_seed: int = 0
    backend: Optional[str] = None

    def measure_config(self) -> MeasureConfig:
        return MeasureConfig(
            expectation=self.expectation,
            mc_samples=self.mc_samples,
            sfi_alpha=self.sfi_alpha,
            seed=self.measure_seed,
            backend=self.backend,
        )


def _pearson(xs: Sequence[float], ys: Sequence[float]) -> float:
    """Plain Pearson correlation; 0.0 when either side is constant."""
    n = len(xs)
    if n < 2:
        return 0.0
    mean_x = sum(xs) / n
    mean_y = sum(ys) / n
    cov = sum((x - mean_x) * (y - mean_y) for x, y in zip(xs, ys))
    var_x = sum((x - mean_x) ** 2 for x in xs)
    var_y = sum((y - mean_y) ** 2 for y in ys)
    if var_x <= 0.0 or var_y <= 0.0:
        return 0.0
    return cov / math.sqrt(var_x * var_y)


Curves = Dict[str, List[Dict[str, float]]]


def _curve_correlations(curves: Curves) -> Dict[str, float]:
    """Correlation of the swept parameter with the mean B+ score, per measure."""
    correlations: Dict[str, float] = {}
    for name, points in curves.items():
        xs = [point["parameter_value"] for point in points]
        ys = [point["mean_positive_score"] for point in points]
        correlations[name] = _pearson(xs, ys)
    return correlations


def _sweep_curves(kind: str, config: PropertiesConfig) -> Curves:
    """Run one sensitivity sweep and return its per-measure step curves."""
    specs = benchmark_specs(
        kind,
        steps=config.steps,
        tables_per_step=config.tables_per_step,
        seed=config.seed,
        min_rows=config.min_rows,
        max_rows=config.max_rows,
    )
    return evaluate_specs(specs, config.measure_config(), jobs=config.jobs).step_curves()


def run_properties(
    config: PropertiesConfig = PropertiesConfig(),
    output_dir: Optional[str] = "results",
    precomputed_curves: Optional[Dict[str, Curves]] = None,
) -> Dict[str, object]:
    """Check the Table III catalogue statically and empirically.

    ``precomputed_curves`` maps a benchmark kind (``"err"``/``"uniq"``/
    ``"skew"``) to already-computed step curves (the ``"curves"`` entry
    of a sensitivity payload), so a caller that just ran the sweeps —
    e.g. ``--benchmark all`` — does not pay for them twice; missing
    kinds are evaluated here.  Returns the JSON payload; with
    ``output_dir`` set, writes ``table3.json`` and ``table3.csv`` under
    ``<output_dir>/properties/``.
    """
    precomputed_curves = precomputed_curves or {}

    def correlations(kind: str) -> Dict[str, float]:
        curves = precomputed_curves.get(kind)
        if curves is None:
            curves = _sweep_curves(kind, config)
        return _curve_correlations(curves)

    measures = config.measure_config().build()
    err = correlations("err")
    uniq = correlations("uniq")
    skew = correlations("skew")

    rows: List[Dict[str, object]] = []
    static_ok = True
    for name, measure in measures.items():
        # SFI renames itself under a non-default alpha ("sfi_1"); its
        # catalogue entry is keyed "sfi" regardless of the parameter.
        catalogue_key = "sfi" if name.startswith("sfi") else name
        catalogue = PAPER_PROPERTIES.get(catalogue_key)
        if catalogue is None:
            # Registered extension measures have no catalogue entry.
            continue
        class_ok = measure.measure_class == catalogue.measure_class
        baselines_ok = measure.has_baselines == catalogue.has_baselines
        efficiency_ok = measure.efficiently_computable == catalogue.efficiently_computable
        static_ok = static_ok and class_ok and baselines_ok and efficiency_ok

        error_correlation = err.get(name, 0.0)
        uniq_correlation = uniq.get(name, 0.0)
        skew_correlation = skew.get(name, 0.0)
        observed_inverse_error = error_correlation < -INSENSITIVITY_CUTOFF
        observed_uniq_insensitive = abs(uniq_correlation) < INSENSITIVITY_CUTOFF
        observed_skew_insensitive = abs(skew_correlation) < INSENSITIVITY_CUTOFF

        rows.append(
            {
                "measure": name,
                "label": catalogue.label,
                "measure_class": str(catalogue.measure_class),
                "static_class_ok": class_ok,
                "static_baselines_ok": baselines_ok,
                "static_efficiency_ok": efficiency_ok,
                "paper_inverse_error": catalogue.inversely_proportional_to_error,
                "observed_error_correlation": error_correlation,
                "observed_inverse_error": observed_inverse_error,
                "paper_uniq_insensitive": catalogue.insensitive_to_lhs_uniqueness,
                "observed_uniq_correlation": uniq_correlation,
                "observed_uniq_insensitive": observed_uniq_insensitive,
                "paper_skew_insensitive": catalogue.insensitive_to_rhs_skew,
                "observed_skew_correlation": skew_correlation,
                "observed_skew_insensitive": observed_skew_insensitive,
                "paper_auc_on_rwd": catalogue.auc_on_rwd_paper,
            }
        )

    payload: Dict[str, object] = {
        "experiment": "properties",
        "config": asdict(config),
        "static_catalogue_consistent": static_ok,
        "insensitivity_cutoff": INSENSITIVITY_CUTOFF,
        "rows": rows,
    }
    if output_dir is not None:
        directory = ensure_directory(Path(output_dir) / "properties")
        write_json(directory / "table3.json", payload)
        write_csv(directory / "table3.csv", list(rows[0].keys()) if rows else ["measure"], rows)
    return payload
