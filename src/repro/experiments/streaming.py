"""Driver for the streaming (incremental-vs-recompute) benchmark.

The runtime experiment (Table V) prices the *static* cost discipline:
one sufficient-statistics pass per candidate FD.  This driver prices the
*streaming* discipline of :mod:`repro.stream`: a relation under a
synthetic insert/delete workload, re-scored after every batch, once
through the incremental path (apply Δ deltas, re-assemble statistics)
and once through a full recompute (snapshot + statistics pass), with all
fourteen measures scored on both results and the scores asserted
bit-identical per batch.

Protocol, mirroring the runtime driver where it applies:

* **fixed relations** — the Table V fixed B+ relations (same sizes, same
  seed discipline) are the stream's initial state;
* **fixed workload** — one deterministic insert/delete workload per
  relation size (appends drawn from the relation's generation domains,
  plus a fraction of *novel* values that grow the dynamic code tables
  past the initial dictionary; deletes drawn uniformly from the live
  rows), replayed identically for every backend;
* **medians** — per-batch wall-clock is summarised by the median over
  batches, separately for the statistics phase (incremental: delta
  application + re-assembly; recompute: snapshot + ``compute``) and for
  per-measure scoring on each path.

Artifacts: ``summary.json`` + ``summary.csv`` under
``<output_dir>/streaming/`` and a compact ``BENCH_streaming.json`` at
the repository root whose ``speedup`` headline is the recompute-over-
incremental statistics-phase median ratio on the largest fixed relation
(per the process-default backend).
"""

from __future__ import annotations

import time
from dataclasses import asdict, dataclass
from pathlib import Path
from statistics import median
from typing import Dict, List, Optional, Tuple

from repro.core.backends import available_backends, resolve_backend
from repro.core.statistics import FdStatistics
from repro.experiments.io import ensure_directory, write_csv, write_json
from repro.experiments.runtime import build_fixed_relation, fixed_relation_parameters
from repro.relation.relation import Relation
from repro.stream.dynamic import DynamicRelation
from repro.stream.statistics import assert_scores_identical
from repro.synthetic.generator import SYNTHETIC_FD


@dataclass(frozen=True)
class StreamingConfig:
    """Everything that determines one streaming benchmark run.

    ``batch_size`` appends and ``int(batch_size * delete_fraction)``
    deletes form one batch (the small-Δ regime the incremental path is
    built for); ``novel_fraction`` of appended LHS values are brand new,
    so the dynamic dictionary encoding must grow its code tables
    mid-stream.  ``backends`` restricts the benchmarked backend set
    (default: every backend available in the process).
    """

    sizes: Tuple[int, ...] = (1_000, 5_000, 20_000)
    backends: Tuple[str, ...] = ()
    batches: int = 12
    batch_size: int = 16
    delete_fraction: float = 0.25
    novel_fraction: float = 0.1
    seed: int = 97
    expectation: str = "monte-carlo"
    mc_samples: int = 50
    sfi_alpha: float = 0.5
    measure_seed: int = 0

    def resolved_backends(self) -> Tuple[str, ...]:
        chosen = self.backends if self.backends else available_backends()
        missing = [name for name in chosen if name not in available_backends()]
        if missing:
            raise ValueError(
                f"backends {missing} are not available in this process "
                f"(available: {list(available_backends())})"
            )
        return tuple(chosen)

    def build_measures(self):
        from repro.core.registry import all_measures

        return all_measures(
            expectation=self.expectation,
            mc_samples=self.mc_samples,
            sfi_alpha=self.sfi_alpha,
            seed=self.measure_seed,
        )


#: Smoke-scale override used by ``--smoke`` (CI): small fixed relations,
#: fewer batches — same code path, same artifact schema.
SMOKE_SIZES: Tuple[int, ...] = (500, 2_000)
SMOKE_BATCHES = 4

Batch = Tuple[List[Tuple[int, int]], List[int]]


def build_workload(num_rows: int, config: StreamingConfig) -> List[Batch]:
    """The deterministic insert/delete batches for one relation size.

    Returned deletes are *row ids* under the id assignment a
    :class:`DynamicRelation` seeded with the fixed relation performs
    (initial rows take ids ``0 .. num_rows - 1``, appends continue from
    there), so the same workload replays identically on every backend.
    """
    import numpy as np

    parameters = fixed_relation_parameters(num_rows)
    rng = np.random.default_rng(config.seed + num_rows + 1)
    live_ids = list(range(num_rows))
    next_id = num_rows
    novel = 0
    batches: List[Batch] = []
    for _ in range(config.batches):
        appends: List[Tuple[int, int]] = []
        for _ in range(config.batch_size):
            if float(rng.random()) < config.novel_fraction:
                # A value outside the initial domain: the dynamic code
                # table must grow to admit it.
                x = parameters.domain_x_size + novel
                novel += 1
            else:
                x = int(rng.integers(0, parameters.domain_x_size))
            y = int(rng.integers(0, parameters.domain_y_size))
            appends.append((x, y))
            live_ids.append(next_id)
            next_id += 1
        deletes: List[int] = []
        for _ in range(min(int(config.batch_size * config.delete_fraction), len(live_ids))):
            position = int(rng.integers(0, len(live_ids)))
            deletes.append(live_ids[position])
            live_ids[position] = live_ids[-1]
            live_ids.pop()
        batches.append((appends, deletes))
    return batches


def _replay_backend(
    relation: Relation,
    workload: List[Batch],
    config: StreamingConfig,
    backend: str,
) -> Dict[str, object]:
    """Timed incremental-vs-recompute passes of one (relation, backend) cell.

    Raises :class:`RuntimeError` on any score divergence — bit-identity
    of the incremental path is part of the benchmark's contract, not an
    aspiration.
    """
    measures = config.build_measures()
    # The workload's delete ids are precomputed against forever-stable
    # row ids, so history compaction (which re-bases ids) must stay off.
    dynamic = DynamicRelation.from_relation(relation, compact_threshold=None)
    tracker = dynamic.track(SYNTHETIC_FD)

    # Warm-up (untimed): both paths run once on the initial state, paying
    # one-off costs (allocator, columnar encoding) outside the timed window.
    for measure in measures.values():
        measure.score_from_statistics(tracker.statistics())
        measure.score_from_statistics(
            FdStatistics.compute(dynamic.snapshot(), SYNTHETIC_FD, backend=backend)
        )

    incremental_runs: List[float] = []
    recompute_runs: List[float] = []
    incremental_total_runs: List[float] = []
    recompute_total_runs: List[float] = []
    incremental_measure_runs: Dict[str, List[float]] = {name: [] for name in measures}
    recompute_measure_runs: Dict[str, List[float]] = {name: [] for name in measures}
    for appends, deletes in workload:
        started = time.perf_counter()
        dynamic.append(appends)
        dynamic.delete(deletes)
        incremental_statistics = tracker.statistics()
        incremental_seconds = time.perf_counter() - started
        incremental_scores = {}
        incremental_scoring = 0.0
        for name, measure in measures.items():
            started = time.perf_counter()
            incremental_scores[name] = measure.score_from_statistics(incremental_statistics)
            seconds = time.perf_counter() - started
            incremental_measure_runs[name].append(seconds)
            incremental_scoring += seconds

        started = time.perf_counter()
        snapshot = dynamic.snapshot()
        recomputed_statistics = FdStatistics.compute(snapshot, SYNTHETIC_FD, backend=backend)
        recompute_seconds = time.perf_counter() - started
        recompute_scores = {}
        recompute_scoring = 0.0
        for name, measure in measures.items():
            started = time.perf_counter()
            recompute_scores[name] = measure.score_from_statistics(recomputed_statistics)
            seconds = time.perf_counter() - started
            recompute_measure_runs[name].append(seconds)
            recompute_scoring += seconds

        assert_scores_identical(
            incremental_scores, recompute_scores, f"{relation.name}, {backend} backend"
        )
        incremental_runs.append(incremental_seconds)
        recompute_runs.append(recompute_seconds)
        incremental_total_runs.append(incremental_seconds + incremental_scoring)
        recompute_total_runs.append(recompute_seconds + recompute_scoring)

    incremental_median = median(incremental_runs)
    recompute_median = median(recompute_runs)
    return {
        "incremental_seconds_median": incremental_median,
        "recompute_seconds_median": recompute_median,
        "statistics_speedup": (
            recompute_median / incremental_median if incremental_median > 0.0 else None
        ),
        "incremental_total_seconds_median": median(incremental_total_runs),
        "recompute_total_seconds_median": median(recompute_total_runs),
        "total_speedup": (
            median(recompute_total_runs) / median(incremental_total_runs)
            if median(incremental_total_runs) > 0.0
            else None
        ),
        "incremental_measure_seconds_median": {
            name: median(runs) for name, runs in incremental_measure_runs.items()
        },
        "recompute_measure_seconds_median": {
            name: median(runs) for name, runs in recompute_measure_runs.items()
        },
        "final_live_rows": dynamic.num_rows,
        "incremental_seconds_runs": incremental_runs,
        "recompute_seconds_runs": recompute_runs,
    }


def run_streaming(
    config: StreamingConfig = StreamingConfig(),
    output_dir: Optional[str] = "results",
    bench_path: Optional[str] = "BENCH_streaming.json",
) -> Dict[str, object]:
    """Run the full streaming benchmark and persist its artifacts.

    Returns the JSON payload; with ``output_dir`` set, writes
    ``summary.json`` / ``summary.csv`` under ``<output_dir>/streaming/``;
    with ``bench_path`` set, writes the compact benchmark record there
    (the repo-root ``BENCH_streaming.json`` by default).
    """
    backends = config.resolved_backends()
    default_backend = resolve_backend(None).name
    relations: List[Dict[str, object]] = []
    for num_rows in config.sizes:
        relation = build_fixed_relation(num_rows, config.seed)
        workload = build_workload(num_rows, config)
        per_backend = {
            name: _replay_backend(relation, workload, config, name) for name in backends
        }
        relations.append(
            {
                "name": relation.name,
                "num_rows": relation.num_rows,
                "parameters": asdict(fixed_relation_parameters(num_rows)),
                "batches": config.batches,
                "batch_size": config.batch_size,
                "deletes_per_batch": int(config.batch_size * config.delete_fraction),
                "backends": per_backend,
            }
        )
    largest = max(relations, key=lambda entry: entry["num_rows"]) if relations else None
    headline_backend = default_backend if default_backend in backends else (
        backends[0] if backends else None
    )
    payload: Dict[str, object] = {
        "experiment": "streaming",
        "config": asdict(config),
        "backends": list(backends),
        "scores_verified": True,  # _replay_backend raises on any divergence
        "relations": relations,
        "headline_backend": headline_backend,
        "largest": None
        if largest is None
        else {
            "name": largest["name"],
            "num_rows": largest["num_rows"],
            "statistics_speedup": {
                name: cell["statistics_speedup"]
                for name, cell in largest["backends"].items()
            },
            "total_speedup": {
                name: cell["total_speedup"] for name, cell in largest["backends"].items()
            },
        },
        # The headline number: recompute-over-incremental median wall-clock
        # of the statistics phase on the largest fixed relation, for the
        # process-default backend.
        "speedup": None
        if largest is None or headline_backend is None
        else largest["backends"][headline_backend]["statistics_speedup"],
    }
    if output_dir is not None:
        _write_artifacts(Path(output_dir) / "streaming", payload)
    if bench_path is not None:
        write_json(bench_path, payload)
    return payload


def _write_artifacts(directory: Path, payload: Dict[str, object]) -> None:
    ensure_directory(directory)
    write_json(directory / "summary.json", payload)
    fields = ["relation", "num_rows", "backend", "metric", "median_seconds"]

    def rows():
        for entry in payload["relations"]:  # type: ignore[union-attr]
            for backend, cell in entry["backends"].items():  # type: ignore[union-attr]
                for metric in (
                    "incremental_seconds_median",
                    "recompute_seconds_median",
                    "incremental_total_seconds_median",
                    "recompute_total_seconds_median",
                ):
                    yield {
                        "relation": entry["name"],
                        "num_rows": entry["num_rows"],
                        "backend": backend,
                        "metric": metric.replace("_seconds_median", ""),
                        "median_seconds": cell[metric],
                    }
                for path, runs in (
                    ("incremental", cell["incremental_measure_seconds_median"]),
                    ("recompute", cell["recompute_measure_seconds_median"]),
                ):
                    for measure, seconds in runs.items():
                        yield {
                            "relation": entry["name"],
                            "num_rows": entry["num_rows"],
                            "backend": backend,
                            "metric": f"{path}:{measure}",
                            "median_seconds": seconds,
                        }

    write_csv(directory / "summary.csv", fields, rows())
