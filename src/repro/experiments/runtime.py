"""Driver for the runtime experiment (Table V).

The paper's Table V reports per-measure runtimes on fixed relations,
under the cost discipline the whole study is built on: one sufficient-
statistics pass per candidate FD, shared by all fourteen measures.  This
driver reproduces that protocol and doubles as the benchmark harness for
the pluggable statistics backends (:mod:`repro.core.backends`):

* **fixed relations** — one deterministic B+ relation per configured
  size (fixed generation parameters, fixed seed), so runs are comparable
  across machines and across PRs;
* **warm-up discipline** — per (relation, backend) the full
  statistics+scoring pass runs untimed ``warmup_runs`` times first; the
  warm-up also pays one-off costs (the columnar dictionary encoding of
  the numpy backend, allocator warm-up) exactly once, outside the timed
  window;
* **medians** — each timed quantity (the statistics pass, every
  measure's scoring time, their total) is the median over ``repeats``
  timed runs, the robust choice for wall-clock on shared hardware.

Artifacts: ``summary.json`` + ``summary.csv`` under
``<output_dir>/runtime/`` and a compact ``BENCH_runtime.json`` at the
repository root recording the per-backend medians and the
python-over-numpy speedups, so the performance trajectory of the
statistics substrate is tracked in-repo.
"""

from __future__ import annotations

import os
import time
from dataclasses import asdict, dataclass
from pathlib import Path
from statistics import median
from typing import Dict, Iterator, List, Optional, Tuple

from repro.core.backends import available_backends
from repro.evaluation.scoring import MeasureConfig
from repro.service.session import AfdSession
from repro.experiments.io import ensure_directory, write_csv, write_json
from repro.synthetic.generator import (
    SYNTHETIC_FD,
    GenerationParameters,
    generate_positive_relation,
)


@dataclass(frozen=True)
class RuntimeConfig:
    """Everything that determines one runtime benchmark run.

    ``sizes`` are the row counts of the fixed relations (ascending; the
    last one is "the largest fixed relation" the speedup headline is
    reported for).  ``backends`` restricts the backend set (default:
    every backend available in the process).  The default expectation is
    Monte-Carlo: the exact hypergeometric expectation is Table V's
    documented pain point and would dominate the wall-clock of every
    backend equally, drowning the statistics-pass comparison this
    benchmark exists to track.
    """

    sizes: Tuple[int, ...] = (1_000, 5_000, 20_000)
    backends: Tuple[str, ...] = ()
    repeats: int = 5
    warmup_runs: int = 1
    seed: int = 97
    expectation: str = "monte-carlo"
    mc_samples: int = 50
    sfi_alpha: float = 0.5
    measure_seed: int = 0
    #: Row counts of the chunked-scaling section (empty tuple disables
    #: it).  Each relation is timed single-chunk (monolithic compute) vs
    #: chunked map-merge at every ``chunked_jobs`` worker count, per
    #: backend, with the chunked statistics asserted ``==`` monolithic.
    chunked_sizes: Tuple[int, ...] = (1_000_000,)
    chunk_size: int = 100_000
    chunked_jobs: Tuple[int, ...] = (1, 2)
    chunked_repeats: int = 3
    #: Row count of the out-of-core chunked-discovery smoke (0 disables
    #: it; CLI-gated via ``--runtime-discovery-rows``).  The smoke
    #: streams a block-generated synthetic relation straight into a
    #: :class:`ChunkedRelation`, discovers on it partition-free, and
    #: asserts — under tracemalloc — that no row list was materialised.
    discovery_rows: int = 0

    def resolved_backends(self) -> Tuple[str, ...]:
        chosen = self.backends if self.backends else available_backends()
        missing = [name for name in chosen if name not in available_backends()]
        if missing:
            raise ValueError(
                f"backends {missing} are not available in this process "
                f"(available: {list(available_backends())})"
            )
        return tuple(chosen)

    def measure_config(self, backend: str) -> MeasureConfig:
        return MeasureConfig(
            expectation=self.expectation,
            mc_samples=self.mc_samples,
            sfi_alpha=self.sfi_alpha,
            seed=self.measure_seed,
            backend=backend,
        )


#: Smoke-scale override used by ``--smoke`` (CI): small fixed relations,
#: fewer repeats — same code path, same artifact schema.
SMOKE_SIZES: Tuple[int, ...] = (500, 2_000)
SMOKE_REPEATS = 2
SMOKE_CHUNKED_SIZES: Tuple[int, ...] = (20_000,)
SMOKE_CHUNK_SIZE = 5_000


def fixed_relation_parameters(num_rows: int) -> GenerationParameters:
    """The fixed generation parameters of the size-``num_rows`` relation.

    Low-cardinality LHS/RHS domains (the RWD regime) with mild skew and a
    1% error channel: the FD is approximate, every measure takes its
    violated code path, and the group structure is rich enough that the
    statistics pass dominates.
    """
    domain_x = max(20, num_rows // 20)
    return GenerationParameters(
        num_rows=num_rows,
        domain_x_size=domain_x,
        domain_y_size=min(50, max(5, domain_x // 2)),
        alpha_x=2.0,
        beta_x=5.0,
        alpha_y=2.0,
        beta_y=5.0,
        error_rate=0.01,
    )


def build_fixed_relation(num_rows: int, seed: int):
    """Materialise one fixed benchmark relation (deterministic per size)."""
    import numpy as np

    rng = np.random.default_rng(seed + num_rows)
    relation = generate_positive_relation(
        fixed_relation_parameters(num_rows), rng, name=f"runtime[{num_rows}]"
    )
    return relation


def _time_backend(relation, config: RuntimeConfig, backend: str) -> Dict[str, object]:
    """Timed statistics+scoring passes of one (relation, backend) cell.

    Each pass uses a fresh one-shot :class:`AfdSession` so the shared
    statistics are recomputed every run (the quantity being timed).
    """
    measures = config.measure_config(backend).build()

    def one_pass():
        session = AfdSession(relation, measures=dict(measures), backend=backend)
        return session.score(SYNTHETIC_FD)

    for _ in range(config.warmup_runs):
        one_pass()
    statistics_runs: List[float] = []
    total_runs: List[float] = []
    measure_runs: Dict[str, List[float]] = {name: [] for name in measures}
    for _ in range(config.repeats):
        started = time.perf_counter()
        result = one_pass()
        total_runs.append(time.perf_counter() - started)
        statistics_runs.append(result.statistics_seconds)
        for name, seconds in result.runtimes.items():
            measure_runs[name].append(seconds)
    return {
        "statistics_seconds_median": median(statistics_runs),
        "total_seconds_median": median(total_runs),
        "measure_seconds_median": {
            name: median(runs) for name, runs in measure_runs.items()
        },
        "statistics_seconds_runs": statistics_runs,
        "total_seconds_runs": total_runs,
    }


def _speedup(baseline: Optional[float], contender: Optional[float]) -> Optional[float]:
    if baseline is None or contender is None or contender <= 0.0:
        return None
    return baseline / contender


def _time_chunked_cell(relation, config: RuntimeConfig, backend: str) -> Dict[str, object]:
    """Single-chunk vs chunked×jobs statistics-pass timings for one backend.

    "Single-chunk" is today's monolithic whole-relation ``compute`` — the
    baseline the chunked map-merge path is measured against.  Every
    chunked variant's statistics are asserted ``==`` to the monolithic
    pass, and the fourteen measure scores are compared exactly, so the
    recorded speedups are speedups of a *bit-identical* result.
    """
    from repro.core.chunked import uses_array_partials
    from repro.core.statistics import FdStatistics

    def timed(compute):
        result = compute()  # warm-up: columnar encode, allocator, pool fork
        runs: List[float] = []
        for _ in range(config.chunked_repeats):
            started = time.perf_counter()
            result = compute()
            runs.append(time.perf_counter() - started)
        return result, runs

    monolithic, single_runs = timed(
        lambda: FdStatistics.compute(relation, SYNTHETIC_FD, backend=backend)
    )
    single_median = median(single_runs)
    measures = config.measure_config(backend).build()
    monolithic_scores = {
        name: measure.score_from_statistics(monolithic)
        for name, measure in measures.items()
    }
    per_jobs: Dict[str, Dict[str, object]] = {}
    best_parallel: Optional[float] = None
    for jobs in config.chunked_jobs:
        chunked, runs = timed(
            lambda jobs=jobs: FdStatistics.compute(
                relation,
                SYNTHETIC_FD,
                backend=backend,
                chunk_size=config.chunk_size,
                jobs=jobs,
            )
        )
        if chunked != monolithic:
            raise AssertionError(
                f"chunked statistics (backend={backend}, jobs={jobs}) differ "
                f"from the monolithic pass on {relation.name}"
            )
        chunked_scores = {
            name: measure.score_from_statistics(chunked)
            for name, measure in measures.items()
        }
        if chunked_scores != monolithic_scores:
            raise AssertionError(
                f"chunked scores (backend={backend}, jobs={jobs}) differ "
                f"from the monolithic pass on {relation.name}"
            )
        jobs_median = median(runs)
        per_jobs[str(jobs)] = {
            "statistics_seconds_median": jobs_median,
            "statistics_seconds_runs": runs,
            "speedup_vs_single_chunk": _speedup(single_median, jobs_median),
        }
        if jobs > 1:
            best_parallel = (
                jobs_median if best_parallel is None else min(best_parallel, jobs_median)
            )
    return {
        "single_chunk_seconds_median": single_median,
        "single_chunk_seconds_runs": single_runs,
        "jobs": per_jobs,
        "identical": True,
        "chunked_speedup": _speedup(single_median, best_parallel),
        # Whether the chunked runs above took the vectorised array-
        # partial merge (numpy backend, pack-safe radix products) or the
        # tuple-partial fallback — both bit-identical, very different
        # constants.
        "array_partials": uses_array_partials(relation, SYNTHETIC_FD, backend=backend),
    }


def _run_chunked_section(
    config: RuntimeConfig, backends: Tuple[str, ...]
) -> Optional[Dict[str, object]]:
    """The scaling-curve section of the payload (None when disabled)."""
    if not config.chunked_sizes:
        return None
    entries: List[Dict[str, object]] = []
    for num_rows in config.chunked_sizes:
        relation = build_fixed_relation(num_rows, config.seed)
        per_backend = {
            name: _time_chunked_cell(relation, config, name) for name in backends
        }
        best: Optional[Dict[str, object]] = None
        for name, cell in per_backend.items():
            speedup = cell["chunked_speedup"]
            if speedup is not None and (best is None or speedup > best["speedup"]):  # type: ignore[index,operator]
                best = {"backend": name, "speedup": speedup}
        entries.append(
            {
                "name": relation.name,
                "num_rows": relation.num_rows,
                "parameters": asdict(fixed_relation_parameters(num_rows)),
                "backends": per_backend,
                "best": best,
            }
        )
    largest = max(entries, key=lambda entry: entry["num_rows"])
    return {
        "chunk_size": config.chunk_size,
        "jobs": list(config.chunked_jobs),
        "repeats": config.chunked_repeats,
        "relations": entries,
        "largest": {
            "name": largest["name"],
            "num_rows": largest["num_rows"],
            "best": largest["best"],
        },
    }


def _array_merge_summary(chunked: Optional[Dict[str, object]]) -> Optional[Dict[str, object]]:
    """The array-merge headline: numpy serial-chunked vs monolithic.

    Distilled from the chunked section's largest relation — the number
    the "within 10% of monolithic" acceptance bar is checked against.
    """
    if chunked is None:
        return None
    entries: List[Dict[str, object]] = chunked["relations"]  # type: ignore[assignment]
    largest = max(entries, key=lambda entry: entry["num_rows"])
    cell = largest["backends"].get("numpy")  # type: ignore[union-attr]
    if cell is None or "1" not in cell["jobs"]:
        return None
    monolithic = cell["single_chunk_seconds_median"]
    serial = cell["jobs"]["1"]["statistics_seconds_median"]
    ratio = serial / monolithic if monolithic > 0 else None
    return {
        "name": largest["name"],
        "num_rows": largest["num_rows"],
        "array_partials": cell["array_partials"],
        "monolithic_seconds_median": monolithic,
        "serial_chunked_seconds_median": serial,
        "serial_over_monolithic": ratio,
        "within_10pct": ratio is not None and ratio <= 1.1,
    }


def _run_chunked_discovery_section(
    config: RuntimeConfig, backends: Tuple[str, ...]
) -> Optional[Dict[str, object]]:
    """Partition-free discovery on the largest chunked relation, per backend.

    The chunked screen runs on a :class:`ChunkedRelation` encoding of
    the relation while :func:`brute_force_afds` (``max_lhs_size=1``)
    scores the same candidates monolithically on the row-list form —
    candidate order, all fourteen scores and exactness flags are
    asserted identical in-run, so the recorded seconds time a verified
    result.
    """
    from repro.discovery import brute_force_afds, chunked_discover
    from repro.relation.chunked import ChunkedRelation

    if not config.chunked_sizes:
        return None
    num_rows = max(config.chunked_sizes)
    relation = build_fixed_relation(num_rows, config.seed)
    chunked_relation = ChunkedRelation.from_relation(
        relation, chunk_size=config.chunk_size
    )
    per_backend: Dict[str, Dict[str, object]] = {}
    for backend in backends:
        measures = config.measure_config(backend).build()
        started = time.perf_counter()
        result = chunked_discover(
            chunked_relation, measures=dict(measures), backend=backend
        )
        seconds = time.perf_counter() - started
        oracle = brute_force_afds(
            relation, measures=dict(measures), max_lhs_size=1, backend=backend
        )
        if [str(c.fd) for c in result.candidates] != [str(c.fd) for c in oracle.candidates]:
            raise AssertionError(
                f"chunked discovery candidate order (backend={backend}) "
                f"differs from brute force on {relation.name}"
            )
        for chunked_candidate, oracle_candidate in zip(result.candidates, oracle.candidates):
            if (
                chunked_candidate.scores != oracle_candidate.scores
                or chunked_candidate.exact != oracle_candidate.exact
            ):
                raise AssertionError(
                    f"chunked discovery scores (backend={backend}, "
                    f"fd={chunked_candidate.fd}) differ from brute force "
                    f"on {relation.name}"
                )
        per_backend[backend] = {
            "seconds": seconds,
            "candidates": len(result.candidates),
            "statistics_computed": result.statistics_computed,
            "identical_to_brute_force": True,
        }
    return {
        "name": relation.name,
        "num_rows": num_rows,
        "chunk_size": config.chunk_size,
        "backends": per_backend,
    }


#: Rows generated per block in the streamed synthetic generator: big
#: enough for vectorised sampling to amortise, small enough that one
#: block's transient Python ints stay far under the smoke's memory bar.
_STREAM_BLOCK_ROWS = 200_000


def _stream_synthetic_rows(
    num_rows: int, seed: int, block_rows: int = _STREAM_BLOCK_ROWS
) -> Iterator[Tuple[int, int]]:
    """Block-wise streamed ``(X, Y)`` rows of the fixed benchmark family.

    The same planted-FD-plus-error-channel shape as
    :func:`build_fixed_relation` (Beta-skewed X, dictionary Y, ~1%
    corrupted Y), generated one block at a time and yielded row by row —
    the full row list never exists, which is the point of the smoke this
    feeds.  The *domains* are capped at the 1M-relation family's
    (``domain_x`` 50k): the smoke scales rows, not cardinality, so the
    statistics' O(distinct) structures stay bounded and the memory
    budget isolates exactly the thing under test — whether a row list
    was materialised.
    """
    import numpy as np

    from repro.synthetic.beta import sample_domain_values

    parameters = fixed_relation_parameters(min(num_rows, 1_000_000))
    rng = np.random.default_rng(seed + num_rows)
    dictionary = sample_domain_values(
        rng,
        parameters.domain_y_size,
        parameters.domain_x_size,
        parameters.alpha_y,
        parameters.beta_y,
    )
    remaining = num_rows
    while remaining > 0:
        block = min(block_rows, remaining)
        x_values = sample_domain_values(
            rng, parameters.domain_x_size, block, parameters.alpha_x, parameters.beta_x
        )
        y_values = dictionary[x_values].copy()
        errors = rng.random(block) < parameters.error_rate
        error_count = int(errors.sum())
        if error_count:
            y_values[errors] = rng.integers(
                0, parameters.domain_y_size, error_count
            )
        yield from zip(x_values.tolist(), y_values.tolist())
        remaining -= block


#: Fixed allowance on top of the 48 bytes/row budget: one generator
#: block of transient Python ints plus interpreter noise.  Sized so it
#: cannot hide a 10M-row list (>= 500 MB) while letting small CLI
#: sanity runs pass.
_SMOKE_FIXED_ALLOWANCE = 64 * 1024 * 1024


def run_discovery_smoke(
    num_rows: int,
    seed: int = 97,
    chunk_size: int = 100_000,
    backend: Optional[str] = None,
    measures=None,
) -> Dict[str, object]:
    """Out-of-core chunked-discovery smoke: ingest + discover, row-list free.

    Streams ``num_rows`` synthetic rows straight into a
    :class:`ChunkedRelation` and runs the partition-free discovery
    screen on it, all under ``tracemalloc``; the traced peak must stay
    under 48 bytes/row (plus a fixed block-transient allowance) — a
    ceiling a materialised list of 10M row tuples (≥ 500 MB of tuple+int
    overhead alone) cannot fit, so passing proves the pipeline never
    built one.  Scoring uses the paper's "efficiently computable"
    measure subset: SFI's smoothed ``|dom(X)| x |dom(Y)|`` table and the
    permutation expectations' O(rows) sampling columns are inherent to
    those measures (not to the pipeline) and would dominate the traced
    peak without touching the row-list property under test.  Returns the
    timings, peak and discovery counters for the bench payload.
    """
    import tracemalloc

    from repro.core.registry import fast_measures
    from repro.discovery import chunked_discover
    from repro.relation.chunked import ChunkedRelation

    if num_rows < 1:
        raise ValueError(f"discovery smoke needs num_rows >= 1, got {num_rows}")
    if measures is None:
        measures = fast_measures()
    budget_bytes = num_rows * 48 + _SMOKE_FIXED_ALLOWANCE
    tracemalloc.start()
    try:
        started = time.perf_counter()
        relation = ChunkedRelation(
            ("X", "Y"),
            _stream_synthetic_rows(num_rows, seed),
            name=f"runtime-stream[{num_rows}]",
            chunk_size=chunk_size,
        )
        ingest_seconds = time.perf_counter() - started
        started = time.perf_counter()
        result = chunked_discover(relation, measures=dict(measures), backend=backend)
        discover_seconds = time.perf_counter() - started
        _, peak_bytes = tracemalloc.get_traced_memory()
    finally:
        tracemalloc.stop()
    if peak_bytes >= budget_bytes:
        raise AssertionError(
            f"chunked-discovery smoke peaked at {peak_bytes} bytes "
            f"(budget {budget_bytes} = {num_rows} rows x 48); a row list "
            f"has been materialised somewhere in the pipeline"
        )
    return {
        "num_rows": num_rows,
        "chunk_size": chunk_size,
        "backend": backend,
        "ingest_seconds": ingest_seconds,
        "discover_seconds": discover_seconds,
        "measures": list(measures),
        "candidates": len(result.candidates),
        "statistics_computed": result.statistics_computed,
        "peak_bytes": peak_bytes,
        "budget_bytes": budget_bytes,
        "row_list_free": True,
    }


def run_runtime(
    config: RuntimeConfig = RuntimeConfig(),
    output_dir: Optional[str] = "results",
    bench_path: Optional[str] = "BENCH_runtime.json",
) -> Dict[str, object]:
    """Run the full runtime benchmark and persist its artifacts.

    Returns the JSON payload; with ``output_dir`` set, writes
    ``summary.json`` / ``summary.csv`` under ``<output_dir>/runtime/``;
    with ``bench_path`` set, writes the compact benchmark record there
    (the repo-root ``BENCH_runtime.json`` by default).
    """
    backends = config.resolved_backends()
    relations: List[Dict[str, object]] = []
    for num_rows in config.sizes:
        relation = build_fixed_relation(num_rows, config.seed)
        per_backend = {name: _time_backend(relation, config, name) for name in backends}

        def _median_of(backend: str, key: str) -> Optional[float]:
            cell = per_backend.get(backend)
            return None if cell is None else cell[key]  # type: ignore[return-value]

        relations.append(
            {
                "name": relation.name,
                "num_rows": relation.num_rows,
                "parameters": asdict(fixed_relation_parameters(num_rows)),
                "backends": per_backend,
                "statistics_speedup": _speedup(
                    _median_of("python", "statistics_seconds_median"),
                    _median_of("numpy", "statistics_seconds_median"),
                ),
                "total_speedup": _speedup(
                    _median_of("python", "total_seconds_median"),
                    _median_of("numpy", "total_seconds_median"),
                ),
            }
        )
    largest = max(relations, key=lambda entry: entry["num_rows"]) if relations else None
    chunked = _run_chunked_section(config, backends)
    chunked_best = None if chunked is None else chunked["largest"]["best"]  # type: ignore[index]
    chunked_discovery = _run_chunked_discovery_section(config, backends)
    if config.discovery_rows:
        smoke = run_discovery_smoke(
            config.discovery_rows,
            seed=config.seed,
            chunk_size=config.chunk_size,
            backend="numpy" if "numpy" in backends else backends[0],
        )
        if chunked_discovery is None:
            chunked_discovery = {"smoke": smoke}
        else:
            chunked_discovery["smoke"] = smoke
    payload: Dict[str, object] = {
        "experiment": "runtime",
        "config": asdict(config),
        "backends": list(backends),
        # Hardware context for the parallel numbers: a jobs=2 speedup
        # from a single-core runner is noise, not signal.
        "metadata": {"cpu_count": os.cpu_count()},
        "relations": relations,
        "largest": None
        if largest is None
        else {
            "name": largest["name"],
            "num_rows": largest["num_rows"],
            "statistics_speedup": largest["statistics_speedup"],
            "total_speedup": largest["total_speedup"],
        },
        # The headline number: python-backend over numpy-backend median
        # wall-clock of the shared statistics pass on the largest fixed
        # relation (None when only one backend ran).
        "speedup": None if largest is None else largest["statistics_speedup"],
        # Scaling curve: single-chunk vs chunked×jobs per backend on the
        # large fixed relations, all variants asserted bit-identical.
        "chunked": chunked,
        # Best chunked-jobs>1-over-single-chunk speedup on the largest
        # chunked relation (None when the section is disabled).
        "chunked_speedup": None if chunked_best is None else chunked_best["speedup"],  # type: ignore[index]
        # Array-merge headline: numpy serial-chunked over monolithic on
        # the largest chunked relation (the within-10% acceptance bar).
        "array_merge": _array_merge_summary(chunked),
        # Partition-free discovery on the largest chunked relation
        # (parity-asserted against brute force), plus the optional
        # out-of-core smoke when ``discovery_rows`` is set.
        "chunked_discovery": chunked_discovery,
    }
    if output_dir is not None:
        _write_artifacts(Path(output_dir) / "runtime", payload)
    if bench_path is not None:
        write_json(bench_path, payload)
    return payload


def _write_artifacts(directory: Path, payload: Dict[str, object]) -> None:
    ensure_directory(directory)
    write_json(directory / "summary.json", payload)
    fields = ["relation", "num_rows", "backend", "metric", "median_seconds"]

    def rows():
        for entry in payload["relations"]:  # type: ignore[union-attr]
            for backend, cell in entry["backends"].items():  # type: ignore[union-attr]
                yield {
                    "relation": entry["name"],
                    "num_rows": entry["num_rows"],
                    "backend": backend,
                    "metric": "statistics",
                    "median_seconds": cell["statistics_seconds_median"],
                }
                yield {
                    "relation": entry["name"],
                    "num_rows": entry["num_rows"],
                    "backend": backend,
                    "metric": "total",
                    "median_seconds": cell["total_seconds_median"],
                }
                for measure, seconds in cell["measure_seconds_median"].items():
                    yield {
                        "relation": entry["name"],
                        "num_rows": entry["num_rows"],
                        "backend": backend,
                        "metric": measure,
                        "median_seconds": seconds,
                    }
        chunked = payload.get("chunked")
        if chunked is not None:
            for entry in chunked["relations"]:  # type: ignore[index]
                for backend, cell in entry["backends"].items():
                    yield {
                        "relation": entry["name"],
                        "num_rows": entry["num_rows"],
                        "backend": backend,
                        "metric": "statistics_single_chunk",
                        "median_seconds": cell["single_chunk_seconds_median"],
                    }
                    for jobs, timing in cell["jobs"].items():
                        yield {
                            "relation": entry["name"],
                            "num_rows": entry["num_rows"],
                            "backend": backend,
                            "metric": f"statistics_chunked_jobs{jobs}",
                            "median_seconds": timing["statistics_seconds_median"],
                        }

    write_csv(directory / "summary.csv", fields, rows())
