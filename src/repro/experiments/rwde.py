"""Driver for the RWDe error-sensitivity sweep (Appendix G, Table VIII).

For every ``(error type, error level)`` grid cell: corrupt the RWD
stand-in relations, score all linear candidates per relation via
:func:`repro.discovery.discover_afds` (shared statistics + partition
pruning), label candidates by membership in the ground truth (design
AFDs plus the newly corrupted FDs), and aggregate PR-AUC per measure.
Grid cells are independent, so they shard across a process pool.

Exactly satisfied candidates (key FDs, uncorrupted perfect design FDs,
exact spurious derivations) are excluded from the ranking pool: every
measure scores them 1.0 by convention, so keeping them as negatives
would saturate the top of every ranking identically and the comparison
would measure the benchmark's key count rather than the measures.  The
ground truth itself is never exactly satisfied (AFDs are violated by
construction), so the exclusion only removes trivial negatives.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from dataclasses import asdict, dataclass
from functools import lru_cache
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from repro.discovery.single import discover_afds
from repro.errors.channels import ErrorType
from repro.errors.rwde import build_rwde_benchmark
from repro.evaluation.metrics import pr_auc, rank_at_max_recall, separation
from repro.evaluation.scoring import MeasureConfig
from repro.experiments.io import ensure_directory, write_csv, write_json
from repro.rwd.benchmark import build_rwd_benchmark


@dataclass(frozen=True)
class RwdeConfig:
    """Configuration of one RWDe sweep."""

    error_types: Tuple[str, ...] = ("copy", "typo", "bogus")
    error_levels: Tuple[float, ...] = (0.01, 0.02, 0.05)
    num_rows: int = 400
    seed: int = 0
    jobs: int = 1
    expectation: str = "monte-carlo"
    mc_samples: int = 100
    sfi_alpha: float = 0.5
    measure_seed: int = 0
    backend: Optional[str] = None

    def measure_config(self) -> MeasureConfig:
        return MeasureConfig(
            expectation=self.expectation,
            mc_samples=self.mc_samples,
            sfi_alpha=self.sfi_alpha,
            seed=self.measure_seed,
            backend=self.backend,
        )


@lru_cache(maxsize=4)
def _cached_rwd_relations(num_rows: int, seed: int) -> tuple:
    """The uncorrupted base benchmark, built once per process.

    Every grid cell starts from the identical base relations; the
    per-process cache avoids regenerating them error_types x error_levels
    times (corruption itself copies rows, so sharing the base is safe).
    """
    return tuple(build_rwd_benchmark(num_rows=num_rows, seed=seed))


def _run_cell(task: Tuple[str, float, RwdeConfig]) -> Dict[str, object]:
    """One grid cell, self-contained so it can run in a worker process."""
    error_type_name, error_level, config = task
    error_type = ErrorType(error_type_name)
    rwd = _cached_rwd_relations(config.num_rows, config.seed)
    rwde = build_rwde_benchmark(list(rwd), error_type, error_level, seed=config.seed)
    measures = config.measure_config().build()
    measure_names = list(measures)
    labels: List[int] = []
    scores_per_measure: Dict[str, List[float]] = {name: [] for name in measure_names}
    candidate_count = 0
    excluded_exact = 0
    for corrupted in rwde:
        relation = corrupted.corrupted.relation
        ground_truth = set(corrupted.ground_truth)
        discovered = discover_afds(
            relation, measures=measures, threshold=0.0, backend=config.backend
        )
        for candidate in discovered.candidates:
            if candidate.exact:
                excluded_exact += 1
                continue
            labels.append(1 if candidate.fd in ground_truth else 0)
            for name in measure_names:
                scores_per_measure[name].append(candidate.scores[name])
            candidate_count += 1
    per_measure: Dict[str, Dict[str, float]] = {}
    for name in measure_names:
        per_measure[name] = {
            "pr_auc": pr_auc(labels, scores_per_measure[name]),
            "rank_at_max_recall": float(rank_at_max_recall(labels, scores_per_measure[name])),
            "separation": separation(labels, scores_per_measure[name]),
        }
    return {
        "error_type": error_type_name,
        "error_level": error_level,
        "relations": len(rwde),
        "candidates": candidate_count,
        "excluded_exact": excluded_exact,
        "positives": sum(labels),
        "measures": per_measure,
    }


def run_rwde(
    config: RwdeConfig = RwdeConfig(),
    output_dir: Optional[str] = "results",
) -> Dict[str, object]:
    """Run the full ``error type x error level`` grid.

    Returns the JSON payload; with ``output_dir`` set, writes
    ``summary.json`` and ``summary.csv`` under ``<output_dir>/rwde/``.
    """
    tasks = [
        (error_type, float(error_level), config)
        for error_type in config.error_types
        for error_level in config.error_levels
    ]
    if config.jobs <= 1:
        cells = [_run_cell(task) for task in tasks]
    else:
        with ProcessPoolExecutor(max_workers=config.jobs) as executor:
            cells = list(executor.map(_run_cell, tasks))
    payload: Dict[str, object] = {
        "experiment": "rwde",
        "config": asdict(config),
        "cells": cells,
    }
    if output_dir is not None:
        directory = ensure_directory(Path(output_dir) / "rwde")
        write_json(directory / "summary.json", payload)
        fields = [
            "error_type",
            "error_level",
            "measure",
            "pr_auc",
            "rank_at_max_recall",
            "separation",
            "candidates",
            "excluded_exact",
            "positives",
        ]
        write_csv(
            directory / "summary.csv",
            fields,
            (
                {
                    "error_type": cell["error_type"],
                    "error_level": cell["error_level"],
                    "measure": name,
                    "candidates": cell["candidates"],
                    "excluded_exact": cell["excluded_exact"],
                    "positives": cell["positives"],
                    **metrics,
                }
                for cell in cells
                for name, metrics in cell["measures"].items()  # type: ignore[union-attr]
            ),
        )
    return payload
