"""Experiment drivers: one per paper artifact, emitting JSON + CSV.

* :mod:`repro.experiments.sensitivity` — the ERR / UNIQ / SKEW sweeps of
  Section V (PR-AUC summaries and per-step sensitivity curves);
* :mod:`repro.experiments.rwde` — the RWDe error-type x error-level grid
  of Appendix G / Table VIII;
* :mod:`repro.experiments.properties` — the Table III property catalogue
  check (static + empirical);
* :mod:`repro.experiments.discovery` — lattice (multi-attribute LHS)
  AFD discovery over the RWD benchmark, ranked against the design-schema
  ground truth (the paper's Section VII discovery discussion);
* :mod:`repro.experiments.runtime` — the Table V runtime protocol over
  the pluggable statistics backends (``BENCH_runtime.json``);
* :mod:`repro.experiments.streaming` — the incremental-vs-recompute
  benchmark of :mod:`repro.stream` (``BENCH_streaming.json``);
* :mod:`repro.experiments.plotting` — figure generation from persisted
  ``curves.csv`` artifacts (matplotlib optional).

All drivers share the parallel evaluation harness and write their
artifacts under ``results/`` by default; ``python -m repro.experiments``
is the command-line front end.
"""

from repro.experiments.discovery import DiscoveryConfig, run_discovery
from repro.experiments.plotting import run_plot
from repro.experiments.properties import PropertiesConfig, run_properties
from repro.experiments.rwde import RwdeConfig, run_rwde
from repro.experiments.sensitivity import SensitivityConfig, run_sensitivity
from repro.experiments.streaming import StreamingConfig, run_streaming

__all__ = [
    "DiscoveryConfig",
    "PropertiesConfig",
    "RwdeConfig",
    "SensitivityConfig",
    "StreamingConfig",
    "run_discovery",
    "run_plot",
    "run_properties",
    "run_rwde",
    "run_sensitivity",
    "run_streaming",
]
