"""Experiment drivers: one per paper artifact, emitting JSON + CSV.

* :mod:`repro.experiments.sensitivity` — the ERR / UNIQ / SKEW sweeps of
  Section V (PR-AUC summaries and per-step sensitivity curves);
* :mod:`repro.experiments.rwde` — the RWDe error-type x error-level grid
  of Appendix G / Table VIII;
* :mod:`repro.experiments.properties` — the Table III property catalogue
  check (static + empirical);
* :mod:`repro.experiments.discovery` — lattice (multi-attribute LHS)
  AFD discovery over the RWD benchmark, ranked against the design-schema
  ground truth (the paper's Section VII discovery discussion).

All drivers share the parallel evaluation harness and write their
artifacts under ``results/`` by default; ``python -m repro.experiments``
is the command-line front end.
"""

from repro.experiments.discovery import DiscoveryConfig, run_discovery
from repro.experiments.properties import PropertiesConfig, run_properties
from repro.experiments.rwde import RwdeConfig, run_rwde
from repro.experiments.sensitivity import SensitivityConfig, run_sensitivity

__all__ = [
    "DiscoveryConfig",
    "PropertiesConfig",
    "RwdeConfig",
    "SensitivityConfig",
    "run_discovery",
    "run_properties",
    "run_rwde",
    "run_sensitivity",
]
