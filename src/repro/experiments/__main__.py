"""Command-line entry point: ``python -m repro.experiments``.

Examples::

    # laptop-scale ERR sweep, two workers
    python -m repro.experiments --benchmark err --steps 5 --tables-per-step 3 --jobs 2

    # the full-paper configuration (same code path, bigger grid)
    python -m repro.experiments --benchmark err --steps 50 --tables-per-step 50 \
        --max-rows 10000 --expectation exact --jobs 8

    # multi-attribute lattice discovery over the RWD benchmark
    python -m repro.experiments --benchmark discovery --max-lhs-size 2

    # incremental-vs-recompute streaming benchmark (repro.stream)
    python -m repro.experiments --benchmark streaming

    # render results/*/curves.csv to PNG (requires matplotlib)
    python -m repro.experiments --plot

    # everything: ERR + UNIQ + SKEW + RWDe + discovery + Table III
    python -m repro.experiments --benchmark all
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Dict, List, Optional

from repro.core.registry import paper_label
from repro.experiments.discovery import DiscoveryConfig, run_discovery
from repro.experiments.plotting import PLOT_FORMATS, run_plot
from repro.experiments.properties import PropertiesConfig, run_properties
from repro.experiments.runtime import (
    SMOKE_CHUNK_SIZE,
    SMOKE_CHUNKED_SIZES,
    SMOKE_REPEATS,
    SMOKE_SIZES,
    RuntimeConfig,
    run_runtime,
)
from repro.experiments.rwde import RwdeConfig, run_rwde
from repro.experiments.service import (
    SMOKE_REPEATS as SERVICE_SMOKE_REPEATS,
)
from repro.experiments.service import (
    SMOKE_REQUESTS,
    SMOKE_THREADS,
    SMOKE_WORKERS,
    ServiceConfig,
    run_service,
)
from repro.experiments.service import (
    SMOKE_SIZES as SERVICE_SMOKE_SIZES,
)
from repro.experiments.sensitivity import SensitivityConfig, run_sensitivity
from repro.experiments.streaming import (
    SMOKE_BATCHES,
    StreamingConfig,
    run_streaming,
)
from repro.experiments.streaming import SMOKE_SIZES as STREAMING_SMOKE_SIZES

SENSITIVITY_BENCHMARKS = ("err", "uniq", "skew")
BENCHMARK_CHOICES = SENSITIVITY_BENCHMARKS + (
    "rwde",
    "discovery",
    "properties",
    "runtime",
    "streaming",
    "service",
    "all",
)

#: Per-benchmark default target of the repo-root benchmark record.
DEFAULT_BENCH_PATHS = {
    "runtime": "BENCH_runtime.json",
    "streaming": "BENCH_streaming.json",
    "service": "BENCH_service.json",
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Run the paper's comparative AFD-measure experiments.",
    )
    parser.add_argument(
        "--benchmark",
        choices=BENCHMARK_CHOICES,
        default="err",
        help="which experiment to run (default: err)",
    )
    parser.add_argument("--steps", type=int, default=5, help="sweep steps (default: 5)")
    parser.add_argument(
        "--tables-per-step",
        type=int,
        default=3,
        help="B+/B- tables per step and subset (default: 3)",
    )
    parser.add_argument("--jobs", type=int, default=1, help="worker processes (default: 1)")
    parser.add_argument(
        "--seed",
        type=int,
        default=None,
        help="root seed (default: the benchmark's classical seed)",
    )
    parser.add_argument("--min-rows", type=int, default=100, help="minimum table size")
    parser.add_argument(
        "--max-rows",
        type=int,
        default=1000,
        help="maximum table size (paper: 10000; default: 1000 for laptop runs)",
    )
    parser.add_argument(
        "--expectation",
        choices=("exact", "monte-carlo"),
        default="monte-carlo",
        help="permutation-expectation strategy for RFI+/RFI'+ "
        "(default: monte-carlo; the paper uses exact)",
    )
    parser.add_argument(
        "--mc-samples",
        type=int,
        default=100,
        help="Monte-Carlo samples for the permutation expectation (default: 100)",
    )
    parser.add_argument(
        "--sfi-alpha", type=float, default=0.5, help="SFI smoothing parameter (default: 0.5)"
    )
    parser.add_argument(
        "--backend",
        choices=("auto", "python", "numpy"),
        default=None,
        help="statistics backend for every benchmark (default: process default; "
        "scores are bit-identical across backends).  For --benchmark runtime "
        "this restricts the compared backend set instead.",
    )
    parser.add_argument(
        "--output-dir",
        default="results",
        help="artifact directory (default: results/); use '-' to skip writing",
    )
    parser.add_argument(
        "--rwde-num-rows",
        type=int,
        default=400,
        help="rows per RWD stand-in relation in the RWDe sweep (default: 400)",
    )
    parser.add_argument(
        "--rwde-error-levels",
        default="0.01,0.02,0.05",
        help="comma-separated RWDe error levels (default: 0.01,0.02,0.05)",
    )
    parser.add_argument(
        "--rwde-error-types",
        default="copy,typo,bogus",
        help="comma-separated RWDe error types (default: copy,typo,bogus)",
    )
    parser.add_argument(
        "--max-lhs-size",
        type=int,
        default=2,
        help="LHS lattice depth of the discovery experiment (default: 2)",
    )
    parser.add_argument(
        "--discovery-threshold",
        type=float,
        default=0.9,
        help="acceptance threshold of the discovery experiment (default: 0.9)",
    )
    parser.add_argument(
        "--g3-bound",
        type=float,
        default=None,
        help="optional partition-g3 prefilter for the discovery experiment "
        "(default: off)",
    )
    parser.add_argument(
        "--discovery-num-rows",
        type=int,
        default=400,
        help="rows per RWD relation in the discovery experiment (default: 400)",
    )
    parser.add_argument(
        "--runtime-sizes",
        default="1000,5000,20000",
        help="comma-separated fixed relation sizes of the runtime benchmark "
        "(default: 1000,5000,20000)",
    )
    parser.add_argument(
        "--runtime-repeats",
        type=int,
        default=5,
        help="timed repetitions per (relation, backend) cell (default: 5)",
    )
    parser.add_argument(
        "--runtime-chunked-sizes",
        default="1000000",
        help="comma-separated relation sizes of the chunked-scaling section "
        "of the runtime benchmark; '-' disables it (default: 1000000; pass "
        "e.g. 1000000,10000000 for the 10M point)",
    )
    parser.add_argument(
        "--runtime-chunk-size",
        type=int,
        default=100_000,
        help="rows per map-merge chunk in the chunked-scaling section "
        "(default: 100000)",
    )
    parser.add_argument(
        "--runtime-chunked-jobs",
        default="1,2",
        help="comma-separated worker counts of the chunked-scaling section "
        "(default: 1,2; 1 = serial map-merge)",
    )
    parser.add_argument(
        "--runtime-discovery-rows",
        type=int,
        default=0,
        help="row count of the out-of-core chunked-discovery smoke (streamed "
        "ingest + partition-free discovery under a tracemalloc row-list "
        "guard); 0 disables it (default: 0; pass e.g. 10000000 for the "
        "10M-row smoke)",
    )
    parser.add_argument(
        "--streaming-sizes",
        default="1000,5000,20000",
        help="comma-separated fixed relation sizes of the streaming benchmark "
        "(default: 1000,5000,20000)",
    )
    parser.add_argument(
        "--streaming-batches",
        type=int,
        default=12,
        help="insert/delete batches per relation of the streaming benchmark "
        "(default: 12)",
    )
    parser.add_argument(
        "--streaming-batch-size",
        type=int,
        default=16,
        help="appended rows per streaming batch, the Δ of the incremental path "
        "(default: 16)",
    )
    parser.add_argument(
        "--streaming-delete-fraction",
        type=float,
        default=0.25,
        help="deletes per streaming batch as a fraction of the batch size "
        "(default: 0.25)",
    )
    parser.add_argument(
        "--service-sizes",
        default="1000,5000,20000",
        help="comma-separated fixed relation sizes of the service benchmark "
        "(default: 1000,5000,20000)",
    )
    parser.add_argument(
        "--service-threads",
        default="1,4,8,16",
        help="comma-separated client thread counts of the service throughput "
        "run (default: 1,4,8,16)",
    )
    parser.add_argument(
        "--service-workers",
        type=int,
        default=4,
        help="shard worker processes of the sharded throughput run "
        "(default: 4)",
    )
    parser.add_argument(
        "--service-requests",
        type=int,
        default=25,
        help="/score requests per client thread (default: 25)",
    )
    parser.add_argument(
        "--service-repeats",
        type=int,
        default=7,
        help="timed cold/warm requests per relation of the service benchmark "
        "(default: 7)",
    )
    parser.add_argument(
        "--bench-path",
        default=None,
        help="where the runtime/streaming/service benchmark record is written "
        "(default: BENCH_runtime.json / BENCH_streaming.json / "
        "BENCH_service.json at the repo root; '-' to skip)",
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="smoke-scale runtime/streaming benchmark (small fixed relations, "
        "fewer repeats/batches) for CI artifact validation",
    )
    parser.add_argument(
        "--plot",
        action="store_true",
        help="instead of running a benchmark, render every "
        "<output-dir>/*/curves.csv to a figure (clean skip when matplotlib "
        "is not installed)",
    )
    parser.add_argument(
        "--plot-format",
        choices=PLOT_FORMATS,
        default="png",
        help="figure format for --plot (default: png)",
    )
    return parser


def _print_summary(title: str, summary: Dict[str, Dict[str, float]]) -> None:
    print(f"\n{title}")
    header = f"{'measure':<16} {'PR-AUC':>8} {'rank@maxR':>10} {'separation':>11} {'total s':>9}"
    print(header)
    print("-" * len(header))
    for name, metrics in summary.items():
        print(
            f"{paper_label(name):<16} "
            f"{metrics['pr_auc']:>8.3f} "
            f"{metrics['rank_at_max_recall']:>10.0f} "
            f"{metrics['separation']:>11.3f} "
            f"{metrics.get('total_seconds', 0.0):>9.3f}"
        )


def _run_sensitivity(
    args: argparse.Namespace, benchmark: str, output_dir: Optional[str]
) -> Dict[str, object]:
    config = SensitivityConfig(
        benchmark=benchmark,
        steps=args.steps,
        tables_per_step=args.tables_per_step,
        jobs=args.jobs,
        seed=args.seed,
        min_rows=args.min_rows,
        max_rows=args.max_rows,
        expectation=args.expectation,
        mc_samples=args.mc_samples,
        sfi_alpha=args.sfi_alpha,
        backend=args.backend,
    )
    started = time.perf_counter()
    payload = run_sensitivity(config, output_dir=output_dir)
    elapsed = time.perf_counter() - started
    _print_summary(
        f"{payload['benchmark']} ({payload['num_tables']} tables, {elapsed:.1f}s)",
        payload["summary"],  # type: ignore[arg-type]
    )
    if output_dir is not None:
        print(f"artifacts: {output_dir}/{benchmark}/{{summary.json,summary.csv,scores.csv,curves.csv}}")
    return payload


def _run_rwde(args: argparse.Namespace, output_dir: Optional[str]) -> None:
    config = RwdeConfig(
        error_types=tuple(part.strip() for part in args.rwde_error_types.split(",") if part.strip()),
        error_levels=tuple(
            float(part) for part in args.rwde_error_levels.split(",") if part.strip()
        ),
        num_rows=args.rwde_num_rows,
        seed=args.seed if args.seed is not None else 0,
        jobs=args.jobs,
        expectation=args.expectation,
        mc_samples=args.mc_samples,
        sfi_alpha=args.sfi_alpha,
        backend=args.backend,
    )
    started = time.perf_counter()
    payload = run_rwde(config, output_dir=output_dir)
    elapsed = time.perf_counter() - started
    print(f"\nRWDe grid ({len(payload['cells'])} cells, {elapsed:.1f}s)")
    for cell in payload["cells"]:  # type: ignore[union-attr]
        best = max(cell["measures"].items(), key=lambda item: item[1]["pr_auc"])
        print(
            f"  {cell['error_type']:<6} eta={cell['error_level']:<5g} "
            f"candidates={cell['candidates']:<4} positives={cell['positives']:<3} "
            f"best={paper_label(best[0])} (PR-AUC {best[1]['pr_auc']:.3f})"
        )
    if output_dir is not None:
        print(f"artifacts: {output_dir}/rwde/{{summary.json,summary.csv}}")


def _run_discovery(args: argparse.Namespace, output_dir: Optional[str]) -> None:
    config = DiscoveryConfig(
        num_rows=args.discovery_num_rows,
        seed=args.seed if args.seed is not None else 0,
        max_lhs_size=args.max_lhs_size,
        threshold=args.discovery_threshold,
        g3_bound=args.g3_bound,
        expectation=args.expectation,
        mc_samples=args.mc_samples,
        sfi_alpha=args.sfi_alpha,
        backend=args.backend,
    )
    started = time.perf_counter()
    payload = run_discovery(config, output_dir=output_dir)
    elapsed = time.perf_counter() - started
    print(
        f"\nLattice discovery (max_lhs_size={config.max_lhs_size}, "
        f"{len(payload['relations'])} relations, {elapsed:.1f}s)"
    )
    for entry in payload["relations"]:  # type: ignore[union-attr]
        ranked = {
            name: metrics
            for name, metrics in entry["measures"].items()
            if metrics["pr_auc"] == metrics["pr_auc"]  # drop NaN (degenerate pools)
        }
        best = (
            f"best={paper_label(max(ranked, key=lambda name: ranked[name]['pr_auc']))} "
            f"(PR-AUC {max(m['pr_auc'] for m in ranked.values()):.3f})"
            if ranked
            else "no positives in candidate pool"
        )
        print(
            f"  {entry['key']:<3} candidates={entry['candidates']:<4} "
            f"stats={entry['statistics_computed']}/{entry['brute_force_statistics']} "
            f"(pruned {entry['pruned_exact']} exact, {entry['pruned_key']} key, "
            f"{entry['pruned_bound']} bound) {best}"
        )
    if output_dir is not None:
        print(f"artifacts: {output_dir}/discovery/{{summary.json,summary.csv}}")


def _bench_path(args: argparse.Namespace, benchmark: str) -> Optional[str]:
    if args.bench_path == "-":
        return None
    if args.bench_path is None:
        return DEFAULT_BENCH_PATHS[benchmark]
    return args.bench_path


def _run_runtime(args: argparse.Namespace, output_dir: Optional[str]) -> None:
    if args.smoke:
        sizes: tuple = SMOKE_SIZES
        repeats = SMOKE_REPEATS
        chunked_sizes: tuple = SMOKE_CHUNKED_SIZES
        chunk_size = SMOKE_CHUNK_SIZE
        chunked_repeats = SMOKE_REPEATS
    else:
        sizes = tuple(
            int(part) for part in args.runtime_sizes.split(",") if part.strip()
        )
        repeats = args.runtime_repeats
        chunked_sizes = (
            ()
            if args.runtime_chunked_sizes.strip() == "-"
            else tuple(
                int(part)
                for part in args.runtime_chunked_sizes.split(",")
                if part.strip()
            )
        )
        chunk_size = args.runtime_chunk_size
        chunked_repeats = 3
    chunked_jobs = tuple(
        int(part) for part in args.runtime_chunked_jobs.split(",") if part.strip()
    )
    backends: tuple = ()
    if args.backend is not None and args.backend != "auto":
        backends = (args.backend,)
    config = RuntimeConfig(
        sizes=sizes,
        backends=backends,
        repeats=repeats,
        expectation=args.expectation,
        mc_samples=args.mc_samples,
        sfi_alpha=args.sfi_alpha,
        chunked_sizes=chunked_sizes,
        chunk_size=chunk_size,
        chunked_jobs=chunked_jobs,
        chunked_repeats=chunked_repeats,
        discovery_rows=args.runtime_discovery_rows,
    )
    bench_path = _bench_path(args, "runtime")
    started = time.perf_counter()
    payload = run_runtime(config, output_dir=output_dir, bench_path=bench_path)
    elapsed = time.perf_counter() - started
    print(f"\nRuntime benchmark (Table V protocol, {elapsed:.1f}s)")
    header = f"{'relation':<16} {'backend':<8} {'stats ms':>9} {'total ms':>9}"
    print(header)
    print("-" * len(header))
    for entry in payload["relations"]:  # type: ignore[union-attr]
        for backend, cell in entry["backends"].items():
            print(
                f"{entry['name']:<16} {backend:<8} "
                f"{cell['statistics_seconds_median'] * 1000:>9.2f} "
                f"{cell['total_seconds_median'] * 1000:>9.2f}"
            )
        if entry["statistics_speedup"] is not None:
            print(
                f"{'':<16} speedup: statistics {entry['statistics_speedup']:.1f}x, "
                f"total {entry['total_speedup']:.1f}x"
            )
    if payload["speedup"] is not None:
        print(
            f"largest relation statistics speedup (python/numpy): "
            f"{payload['speedup']:.1f}x"
        )
    chunked = payload.get("chunked")
    if chunked is not None:
        print(
            f"\nChunked scaling (chunk_size={chunked['chunk_size']}, "  # type: ignore[index]
            f"statistics pass, bit-identical to monolithic)"
        )
        header = f"{'relation':<18} {'backend':<8} {'variant':<14} {'stats ms':>10}"
        print(header)
        print("-" * len(header))
        for entry in chunked["relations"]:  # type: ignore[index]
            for backend, cell in entry["backends"].items():
                print(
                    f"{entry['name']:<18} {backend:<8} {'single-chunk':<14} "
                    f"{cell['single_chunk_seconds_median'] * 1000:>10.2f}"
                )
                for jobs, timing in cell["jobs"].items():
                    print(
                        f"{'':<18} {'':<8} {'chunked x' + jobs:<14} "
                        f"{timing['statistics_seconds_median'] * 1000:>10.2f}"
                    )
        if payload.get("chunked_speedup") is not None:
            best = chunked["largest"]["best"]  # type: ignore[index]
            print(
                f"largest chunked relation: chunked jobs>1 over single-chunk "
                f"{payload['chunked_speedup']:.2f}x ({best['backend']} backend)"
            )
    array_merge = payload.get("array_merge")
    if array_merge is not None:
        print(
            f"array merge ({array_merge['name']}): numpy serial-chunked "  # type: ignore[index]
            f"{array_merge['serial_chunked_seconds_median'] * 1000:.2f} ms vs "  # type: ignore[index]
            f"monolithic {array_merge['monolithic_seconds_median'] * 1000:.2f} ms "  # type: ignore[index]
            f"(ratio {array_merge['serial_over_monolithic']:.2f}, "  # type: ignore[index]
            f"array partials {'on' if array_merge['array_partials'] else 'off'}, "  # type: ignore[index]
            f"within 10%: {array_merge['within_10pct']})"  # type: ignore[index]
        )
    discovery = payload.get("chunked_discovery")
    if discovery is not None:
        if "backends" in discovery:  # type: ignore[operator]
            print(
                f"\nChunked discovery ({discovery['name']}, partition-free, "  # type: ignore[index]
                f"parity-asserted vs brute force)"
            )
            for backend, cell in discovery["backends"].items():  # type: ignore[index]
                print(
                    f"  {backend:<8} {cell['seconds'] * 1000:>10.2f} ms for "
                    f"{cell['candidates']} candidates"
                )
        smoke = discovery.get("smoke")  # type: ignore[union-attr]
        if smoke is not None:
            print(
                f"out-of-core smoke: {smoke['num_rows']} rows ingested in "
                f"{smoke['ingest_seconds']:.1f}s, discovered in "
                f"{smoke['discover_seconds']:.1f}s, peak "
                f"{smoke['peak_bytes'] / 1e6:.0f} MB < budget "
                f"{smoke['budget_bytes'] / 1e6:.0f} MB (row-list free)"
            )
    if output_dir is not None:
        print(f"artifacts: {output_dir}/runtime/{{summary.json,summary.csv}}")
    if bench_path is not None:
        print(f"benchmark record: {bench_path}")


def _run_streaming(args: argparse.Namespace, output_dir: Optional[str]) -> None:
    if args.smoke:
        sizes: tuple = STREAMING_SMOKE_SIZES
        batches = SMOKE_BATCHES
    else:
        sizes = tuple(
            int(part) for part in args.streaming_sizes.split(",") if part.strip()
        )
        batches = args.streaming_batches
    backends: tuple = ()
    if args.backend is not None and args.backend != "auto":
        backends = (args.backend,)
    config = StreamingConfig(
        sizes=sizes,
        backends=backends,
        batches=batches,
        batch_size=args.streaming_batch_size,
        delete_fraction=args.streaming_delete_fraction,
        expectation=args.expectation,
        mc_samples=args.mc_samples,
        sfi_alpha=args.sfi_alpha,
    )
    bench_path = _bench_path(args, "streaming")
    started = time.perf_counter()
    payload = run_streaming(config, output_dir=output_dir, bench_path=bench_path)
    elapsed = time.perf_counter() - started
    print(
        f"\nStreaming benchmark ({config.batches} batches x "
        f"{config.batch_size} appends + "
        f"{int(config.batch_size * config.delete_fraction)} deletes, {elapsed:.1f}s)"
    )
    header = (
        f"{'relation':<16} {'backend':<8} {'incr ms':>9} {'recomp ms':>10} {'speedup':>8}"
    )
    print(header)
    print("-" * len(header))
    for entry in payload["relations"]:  # type: ignore[union-attr]
        for backend, cell in entry["backends"].items():
            speedup = cell["statistics_speedup"]
            speedup_text = "n/a" if speedup is None else f"{speedup:.1f}x"
            print(
                f"{entry['name']:<16} {backend:<8} "
                f"{cell['incremental_seconds_median'] * 1000:>9.3f} "
                f"{cell['recompute_seconds_median'] * 1000:>10.3f} "
                f"{speedup_text:>8}"
            )
    if payload["speedup"] is not None:
        print(
            f"largest relation statistics-phase speedup "
            f"({payload['headline_backend']} backend, incremental over recompute): "
            f"{payload['speedup']:.1f}x"
        )
    print("scores verified bit-identical on every batch")
    if output_dir is not None:
        print(f"artifacts: {output_dir}/streaming/{{summary.json,summary.csv}}")
    if bench_path is not None:
        print(f"benchmark record: {bench_path}")


def _run_service(args: argparse.Namespace, output_dir: Optional[str]) -> None:
    if args.smoke:
        sizes: tuple = SERVICE_SMOKE_SIZES
        threads: tuple = SMOKE_THREADS
        requests = SMOKE_REQUESTS
        repeats = SERVICE_SMOKE_REPEATS
        workers = SMOKE_WORKERS
    else:
        sizes = tuple(int(part) for part in args.service_sizes.split(",") if part.strip())
        threads = tuple(
            int(part) for part in args.service_threads.split(",") if part.strip()
        )
        requests = args.service_requests
        repeats = args.service_repeats
        workers = args.service_workers
    backend = None if args.backend in (None, "auto") else args.backend
    config = ServiceConfig(
        sizes=sizes,
        client_threads=threads,
        requests_per_thread=requests,
        repeats=repeats,
        workers=workers,
        expectation=args.expectation,
        mc_samples=args.mc_samples,
        sfi_alpha=args.sfi_alpha,
        backend=backend,
    )
    bench_path = _bench_path(args, "service")
    started = time.perf_counter()
    payload = run_service(config, output_dir=output_dir, bench_path=bench_path)
    elapsed = time.perf_counter() - started
    print(f"\nService benchmark (warm session vs cold recompute, {elapsed:.1f}s)")
    header = f"{'relation':<16} {'cold ms':>9} {'warm ms':>9} {'speedup':>8}"
    print(header)
    print("-" * len(header))
    for entry in payload["relations"]:  # type: ignore[union-attr]
        speedup = entry["warm_speedup"]
        print(
            f"{entry['name']:<16} "
            f"{entry['cold_seconds_median'] * 1000:>9.3f} "
            f"{entry['warm_seconds_median'] * 1000:>9.3f} "
            f"{'n/a' if speedup is None else f'{speedup:.1f}x':>8}"
        )
        for mode, cells in entry["throughput"].items():
            for cell in cells:
                print(
                    f"{'':<16} {mode:<8} {cell['threads']:>2} client thread(s): "
                    f"{cell['requests_per_second']:.0f} req/s "
                    f"({cell['requests']} requests)"
                )
        scaling = entry["sharded_scaling"]
        serial_scaling = entry["serial_scaling"]
        serial_text = "n/a" if serial_scaling is None else f"{serial_scaling:.2f}x"
        if scaling is not None:
            print(
                f"{'':<16} sharded peak-over-base-thread scaling: {scaling:.2f}x "
                f"(serial: {serial_text})"
            )
    if payload["speedup"] is not None:
        print(
            f"largest relation warm-session speedup over cold per-request "
            f"recompute: {payload['speedup']:.1f}x"
        )
    print("warm scores verified identical to cold recompute")
    print("sharded responses verified bit-identical to serial serving")
    observability = payload.get("observability")  # type: ignore[union-attr]
    if observability is not None:
        overhead = observability["overhead_fraction"]
        overhead_text = "n/a" if overhead is None else f"{overhead * 100:.1f}%"
        print(
            f"observability overhead on {observability['relation']}: "
            f"{overhead_text} ({observability['enabled_rps_best']:.0f} req/s "
            f"instrumented vs {observability['disabled_rps_best']:.0f} req/s "
            f"disabled)"
        )
    if output_dir is not None:
        print(f"artifacts: {output_dir}/service/{{summary.json,summary.csv}}")
    if bench_path is not None:
        print(f"benchmark record: {bench_path}")


def _run_plot(args: argparse.Namespace, output_dir: Optional[str]) -> None:
    results_dir = output_dir if output_dir is not None else "results"
    payload = run_plot(results_dir=results_dir, image_format=args.plot_format)
    if not payload["sources"]:
        print(
            f"no curves.csv artifacts under {results_dir}/ — run a sensitivity "
            f"benchmark first (e.g. --benchmark err)"
        )
        return
    for path in payload["rendered"]:  # type: ignore[union-attr]
        print(f"rendered: {path}")
    if payload["skipped"]:
        print(f"skipped (no matplotlib): {', '.join(payload['skipped'])}")


def _run_properties(
    args: argparse.Namespace,
    output_dir: Optional[str],
    precomputed_curves: Optional[Dict[str, object]] = None,
) -> None:
    config = PropertiesConfig(
        steps=args.steps,
        tables_per_step=args.tables_per_step,
        jobs=args.jobs,
        seed=args.seed,
        min_rows=args.min_rows,
        max_rows=args.max_rows,
        expectation=args.expectation,
        mc_samples=args.mc_samples,
        sfi_alpha=args.sfi_alpha,
        backend=args.backend,
    )
    started = time.perf_counter()
    payload = run_properties(config, output_dir=output_dir, precomputed_curves=precomputed_curves)
    elapsed = time.perf_counter() - started
    consistent = payload["static_catalogue_consistent"]
    print(f"\nTable III property check ({elapsed:.1f}s)")
    print(f"  static catalogue consistency: {'OK' if consistent else 'MISMATCH'}")
    for row in payload["rows"]:  # type: ignore[union-attr]
        print(
            f"  {row['label']:<8} err-corr={row['observed_error_correlation']:+.2f} "
            f"uniq-corr={row['observed_uniq_correlation']:+.2f} "
            f"skew-corr={row['observed_skew_correlation']:+.2f}"
        )
    if output_dir is not None:
        print(f"artifacts: {output_dir}/properties/{{table3.json,table3.csv}}")


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    output_dir = None if args.output_dir == "-" else args.output_dir
    if args.plot:
        _run_plot(args, output_dir)
    elif args.benchmark in SENSITIVITY_BENCHMARKS:
        _run_sensitivity(args, args.benchmark, output_dir)
    elif args.benchmark == "rwde":
        _run_rwde(args, output_dir)
    elif args.benchmark == "discovery":
        _run_discovery(args, output_dir)
    elif args.benchmark == "runtime":
        _run_runtime(args, output_dir)
    elif args.benchmark == "streaming":
        _run_streaming(args, output_dir)
    elif args.benchmark == "service":
        _run_service(args, output_dir)
    elif args.benchmark == "properties":
        _run_properties(args, output_dir)
    else:  # all
        curves = {}
        for benchmark in SENSITIVITY_BENCHMARKS:
            payload = _run_sensitivity(args, benchmark, output_dir)
            curves[benchmark] = payload["curves"]
        _run_rwde(args, output_dir)
        _run_discovery(args, output_dir)
        # The property check reuses the curves computed above instead of
        # re-evaluating the three sweeps.
        _run_properties(args, output_dir, precomputed_curves=curves)
    return 0


if __name__ == "__main__":
    sys.exit(main())
