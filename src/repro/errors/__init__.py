"""Error channels and the RWDe benchmark construction (Appendix G).

Implements the three Arocena-style cell error types (copy, typo, bogus)
and the procedure that derives the RWDe benchmarks from RWD relations by
corrupting selected perfect design FDs at a controlled error level.
"""

from repro.errors.channels import (
    ErrorType,
    apply_error_channel,
    corrupt_fd,
    modifiable_positions,
)
from repro.errors.rwde import (
    RwdeBenchmark,
    RwdeRelation,
    build_rwde_benchmark,
    build_rwde_grid,
    build_rwde_relation,
)

__all__ = [
    "ErrorType",
    "RwdeBenchmark",
    "RwdeRelation",
    "apply_error_channel",
    "build_rwde_benchmark",
    "build_rwde_grid",
    "build_rwde_relation",
    "corrupt_fd",
    "modifiable_positions",
]
