"""Construction of the RWDe benchmark (Appendix G).

RWDe is obtained by passing RWD relations through an error channel so
that some perfect design FDs become approximate; existing AFDs are always
maintained.  The corrupted FDs are selected under the paper's
interference-avoidance rules:

* at most one FD ``X -> Y`` per unique RHS attribute ``Y`` per relation;
* ``Y`` must not appear in an existing design AFD;
* no previously selected FD may have ``Y`` as (part of) its LHS.

For every error type ``t`` and error level ``η`` this yields a benchmark
``RWDe[t, η]`` whose ground truth is ``AFD(R)`` plus the newly corrupted
FDs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors.channels import ErrorType, apply_error_channel
from repro.relation.fd import FunctionalDependency
from repro.rwd.schema import RwdRelation


@dataclass
class RwdeRelation:
    """One corrupted relation of RWDe together with its ground truth."""

    base: RwdRelation
    error_type: ErrorType
    error_level: float
    corrupted: "RwdRelation"
    corrupted_fds: List[FunctionalDependency]

    @property
    def ground_truth(self) -> List[FunctionalDependency]:
        """All AFDs of the corrupted relation (original AFDs plus new ones)."""
        return self.corrupted.approximate_fds


@dataclass
class RwdeBenchmark:
    """The RWDe benchmark for one (error type, error level) combination."""

    error_type: ErrorType
    error_level: float
    relations: List[RwdeRelation]

    def total_afds(self) -> int:
        return sum(len(relation.ground_truth) for relation in self.relations)

    def __iter__(self):
        return iter(self.relations)

    def __len__(self) -> int:
        return len(self.relations)


def _select_corruptible_fds(rwd_relation: RwdRelation) -> List[FunctionalDependency]:
    """Perfect design FDs eligible for corruption under the interference rules."""
    existing_afd_attributes = set()
    for fd in rwd_relation.approximate_fds:
        existing_afd_attributes.update(fd.attributes)
    selected: List[FunctionalDependency] = []
    used_rhs: set = set()
    for fd in rwd_relation.perfect_fds:
        if len(fd.rhs) != 1:
            continue
        rhs_attribute = fd.rhs[0]
        if rhs_attribute in used_rhs:
            continue
        if rhs_attribute in existing_afd_attributes:
            continue
        if any(rhs_attribute in earlier.lhs for earlier in selected):
            continue
        selected.append(fd)
        used_rhs.add(rhs_attribute)
    return selected


def build_rwde_relation(
    rwd_relation: RwdRelation,
    error_type: ErrorType,
    error_level: float,
    rng: Optional[np.random.Generator] = None,
) -> Optional[RwdeRelation]:
    """Corrupt one RWD relation; returns ``None`` if it has no corruptible PFD.

    Relations without perfect design FDs (R8 and R9 in the paper) are
    excluded from RWDe.
    """
    rng = rng if rng is not None else np.random.default_rng(0)
    candidates = _select_corruptible_fds(rwd_relation)
    if not candidates:
        return None
    relation = rwd_relation.relation
    corrupted_fds: List[FunctionalDependency] = []
    for fd in candidates:
        result = apply_error_channel(relation, fd, error_level, error_type, rng)
        if result is None:
            # The per-group cap cannot absorb this many errors; omit the FD.
            continue
        relation = result
        corrupted_fds.append(fd)
    corrupted = RwdRelation(
        key=f"{rwd_relation.key}[{error_type},{error_level:g}]",
        title=rwd_relation.title,
        relation=relation,
        design_schema=rwd_relation.design_schema,
        description=rwd_relation.description,
    )
    return RwdeRelation(
        base=rwd_relation,
        error_type=error_type,
        error_level=error_level,
        corrupted=corrupted,
        corrupted_fds=corrupted_fds,
    )


def build_rwde_benchmark(
    rwd_relations: Sequence[RwdRelation],
    error_type: ErrorType,
    error_level: float,
    seed: int = 0,
) -> RwdeBenchmark:
    """Build ``RWDe[error_type, error_level]`` from a list of RWD relations."""
    relations: List[RwdeRelation] = []
    for index, rwd_relation in enumerate(rwd_relations):
        rng = np.random.default_rng(seed + 1000 * index)
        corrupted = build_rwde_relation(rwd_relation, error_type, error_level, rng)
        if corrupted is not None:
            relations.append(corrupted)
    return RwdeBenchmark(error_type=error_type, error_level=error_level, relations=relations)


def build_rwde_grid(
    rwd_relations: Sequence[RwdRelation],
    error_types: Sequence[ErrorType] = (ErrorType.COPY, ErrorType.BOGUS, ErrorType.TYPO),
    error_levels: Sequence[float] = (0.01, 0.02, 0.05, 0.10),
    seed: int = 0,
) -> Dict[Tuple[ErrorType, float], RwdeBenchmark]:
    """All RWDe benchmarks for a grid of error types and levels (Table VIII)."""
    grid: Dict[Tuple[ErrorType, float], RwdeBenchmark] = {}
    for error_type in error_types:
        for error_level in error_levels:
            grid[(error_type, error_level)] = build_rwde_benchmark(
                rwd_relations, error_type, error_level, seed=seed
            )
    return grid
