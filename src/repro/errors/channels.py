"""Cell-level error channels (Appendix G of the paper).

Given an FD ``X -> Y`` that holds perfectly in a relation, the channel
modifies ``k = ⌊η |R|⌋`` Y-values so that the FD becomes approximate.
Three error types are supported, inspired by Arocena et al. (BART):

* ``copy``  — replace ``w|Y`` by the Y-value of another tuple with a
  different Y-value (no new values are introduced; ``dom_R(Y)`` is stable);
* ``typo``  — replace ``w|Y`` by one of three typo variants associated with
  the original value (a bounded number of new values);
* ``bogus`` — replace ``w|Y`` by a freshly generated unique value
  (the number of new values grows with the error level).

To ensure that increasing the error level never *reduces* violations, at
most ``⌊N_x / 2⌋`` tuples are modified per X-group, where ``N_x`` is the
group size; the X column is never touched.
"""

from __future__ import annotations

import enum
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.relation.fd import FunctionalDependency
from repro.relation.relation import Relation


class ErrorType(enum.Enum):
    """The three cell error types of Appendix G."""

    COPY = "copy"
    TYPO = "typo"
    BOGUS = "bogus"

    def __str__(self) -> str:
        return self.value


def modifiable_positions(
    relation: Relation, fd: FunctionalDependency, rng: np.random.Generator
) -> List[int]:
    """Row positions eligible for modification under the per-group cap.

    For each X-group of size ``N_x`` at most ``⌊N_x / 2⌋`` positions are
    selected (uniformly at random without replacement), so repeated
    applications at increasing error levels can only add violations.
    Rows with a NULL on an FD attribute are never modified.
    """
    lhs_indices = relation._attribute_indices(fd.lhs)
    fd_indices = relation._attribute_indices(fd.attributes)
    groups: Dict[Tuple, List[int]] = {}
    for position, row in enumerate(relation):
        if any(row[i] is None for i in fd_indices):
            continue
        key = tuple(row[i] for i in lhs_indices)
        groups.setdefault(key, []).append(position)
    eligible: List[int] = []
    for positions in groups.values():
        cap = len(positions) // 2
        if cap == 0:
            continue
        chosen = rng.choice(len(positions), size=cap, replace=False)
        eligible.extend(positions[i] for i in chosen)
    return sorted(eligible)


def _typo_variants(value: object) -> List[str]:
    """Three deterministic typo variants of a value (common typo classes)."""
    text = str(value)
    swapped = text[1] + text[0] + text[2:] if len(text) >= 2 else text + "_"
    dropped = text[:-1] if len(text) >= 2 else text + "-"
    doubled = text + text[-1] if text else "?"
    return [f"{swapped}", f"{dropped}", f"{doubled}"]


def corrupt_fd(
    relation: Relation,
    fd: FunctionalDependency,
    error_count: int,
    error_type: ErrorType,
    rng: np.random.Generator,
    eligible_positions: Optional[Sequence[int]] = None,
) -> Optional[Relation]:
    """Corrupt ``error_count`` Y-cells of ``relation`` for the FD ``X -> Y``.

    Returns the corrupted relation, or ``None`` when the per-group cap does
    not leave enough modifiable positions to realise ``error_count`` errors
    (the paper omits such FDs from RWDe).
    """
    if error_count <= 0:
        return relation.with_rows(relation.rows())
    if len(fd.rhs) != 1:
        raise ValueError(f"error channels corrupt a single RHS attribute, got FD {fd}")
    rows = relation.rows()
    rhs_index = relation.attributes.index(fd.rhs[0])
    positions = (
        list(eligible_positions)
        if eligible_positions is not None
        else modifiable_positions(relation, fd, rng)
    )
    if len(positions) < error_count:
        return None
    chosen = rng.choice(len(positions), size=error_count, replace=False)
    targets = [positions[i] for i in chosen]
    distinct_rhs = sorted({row[rhs_index] for row in rows if row[rhs_index] is not None}, key=repr)
    if error_type is ErrorType.COPY and len(distinct_rhs) < 2:
        return None
    bogus_counter = 0
    for position in targets:
        row = list(rows[position])
        current = row[rhs_index]
        if error_type is ErrorType.COPY:
            alternatives = [value for value in distinct_rhs if value != current]
            row[rhs_index] = alternatives[int(rng.integers(0, len(alternatives)))]
        elif error_type is ErrorType.TYPO:
            variants = _typo_variants(current)
            row[rhs_index] = variants[int(rng.integers(0, len(variants)))]
        elif error_type is ErrorType.BOGUS:
            bogus_counter += 1
            row[rhs_index] = f"__bogus_{fd.rhs[0]}_{position}_{bogus_counter}"
        else:  # pragma: no cover - exhaustive enum
            raise ValueError(f"unknown error type {error_type!r}")
        rows[position] = tuple(row)
    return relation.with_rows(rows)


def apply_error_channel(
    relation: Relation,
    fd: FunctionalDependency,
    error_level: float,
    error_type: ErrorType,
    rng: np.random.Generator,
) -> Optional[Relation]:
    """Corrupt ``⌊error_level * |R|⌋`` Y-cells of ``relation`` for ``fd``.

    Returns ``None`` when the FD cannot absorb that many errors under the
    per-group cap (such FDs are omitted from RWDe).
    """
    error_count = int(error_level * relation.num_rows)
    return corrupt_fd(relation, fd, error_count, error_type, rng)
