"""TANE-style level-wise discovery of multi-attribute AFDs.

The candidate space of non-linear AFDs ``X -> A`` (multi-attribute LHS,
single-attribute RHS) forms a lattice over LHS attribute sets.  This
module traverses it breadth-first up to a configurable ``max_lhs_size``:
level-``k`` nodes are generated from surviving level-``(k-1)`` nodes by
the classical prefix join, and their stripped partitions are built as
cached :meth:`StrippedPartition.intersect` products of two parent
partitions — a level-``k`` partition never rescans the relation.

Three pruning rules skip the expensive part (one :class:`FdStatistics`
pass plus scoring every registered measure) whenever the outcome is
already known:

* **exact-FD refinement** — ``π_X`` refining ``π_A`` proves ``X -> A``
  holds exactly; the candidate and every superset-LHS candidate for the
  same RHS are scored 1.0 by convention (the score every measure assigns
  to satisfied FDs) without computing statistics (``pruned_exact``);
* **key pruning** — ``π_X.error() == 0`` makes ``X`` a key, so ``X -> A``
  holds for every ``A`` and every superset of ``X`` is again a key; the
  node's candidates are scored 1.0 and the node is removed from lattice
  expansion (``pruned_key``);
* **g3 bound** (optional) — with ``g3_bound`` set, the exact partition
  ``g3`` score ``1 - π_X.g3_error(π_XA)`` is computed first and the
  candidate is dropped entirely when it falls below the bound
  (``pruned_bound``).  The ``g3`` error is monotonically non-increasing
  along the LHS lattice, so a bound-pruned node's supersets may still
  qualify and expansion is unaffected.

Partition-based shortcuts treat NULL as an ordinary value while the
paper's semantics (Section VI-A) drop NULL tuples, so the refinement and
g3-bound rules only apply to NULL-free candidates; the rest fall through
to the statistics path.  Key pruning and exactness propagation to
superset LHSs remain sound under NULLs: dropping tuples and enlarging
the LHS both preserve FD satisfaction.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Mapping, Optional, Sequence, Tuple, Union

from repro.core.backends import resolve_backend
from repro.core.base import AfdMeasure
from repro.core.registry import all_measures
from repro.core.statistics import FdStatistics
from repro.obs.metrics import get_registry
from repro.relation.attribute import canonical_attributes
from repro.relation.fd import FunctionalDependency
from repro.relation.nulls import is_null
from repro.relation.partition import StrippedPartition
from repro.relation.relation import Relation

from repro.discovery.single import (
    CandidateScore,
    DiscoveryResult,
    Thresholds,
    _resolve_thresholds,
)


class PartitionCache:
    """Stripped partitions keyed by canonical attribute set.

    Singleton partitions are computed from the relation; larger sets are
    partition products of cached parents.  The level-wise traversal
    guarantees that both size-``(k-1)`` parents of a level-``k`` node are
    already cached, so products combine two maximally refined partitions
    (whose cached probe tables are reused across all the products they
    participate in) instead of rebuilding from column scans.
    """

    def __init__(self, relation: Relation):
        self._relation = relation
        self._partitions: Dict[Tuple[str, ...], StrippedPartition] = {}
        self._null_flags: Dict[str, bool] = {}
        #: Cache effectiveness counters (read by ``AfdSession.cache_info``).
        self.hits = 0
        self.misses = 0

    @property
    def relation(self) -> Relation:
        """The relation this cache's partitions were built from."""
        return self._relation

    def has_nulls(self, attribute: str) -> bool:
        cached = self._null_flags.get(attribute)
        if cached is None:
            cached = any(is_null(value) for value in self._relation.column(attribute))
            self._null_flags[attribute] = cached
        return cached

    def any_nulls(self, attributes: Sequence[str]) -> bool:
        return any(self.has_nulls(attribute) for attribute in attributes)

    def partition(self, attributes: Union[Sequence[str], str]) -> StrippedPartition:
        key = canonical_attributes(attributes)
        cached = self._partitions.get(key)
        if cached is not None:
            # `.hits`/`.misses` stay as the deprecated per-cache fields;
            # `partitions_total{result}` is the canonical metric.
            self.hits += 1
            get_registry().inc("partitions_total", result="hit")
            return cached
        self.misses += 1
        get_registry().inc("partitions_total", result="miss")
        if len(key) == 1:
            computed = StrippedPartition.from_relation(self._relation, key)
        else:
            parents: List[Tuple[StrippedPartition, int]] = []
            for index in range(len(key)):
                subset = key[:index] + key[index + 1 :]
                parent = self._partitions.get(subset)
                if parent is not None:
                    parents.append((parent, index))
                    if len(parents) == 2:
                        break
            if len(parents) == 2:
                computed = parents[0][0].intersect(parents[1][0])
            elif len(parents) == 1:
                parent, missing = parents[0]
                computed = parent.intersect(self.partition((key[missing],)))
            else:
                computed = self.partition(key[:-1]).intersect(self.partition((key[-1],)))
        self._partitions[key] = computed
        return computed

    def __len__(self) -> int:
        return len(self._partitions)


def _generate_next_level(survivors: List[Tuple[str, ...]]) -> List[Tuple[str, ...]]:
    """Prefix-join candidate generation (TANE's ``GENERATE_NEXT_LEVEL``).

    Two surviving size-``k`` nodes sharing their first ``k - 1``
    attributes join into a size-``(k+1)`` node; the node is kept only if
    *all* of its size-``k`` subsets survived, so descendants of pruned
    (key) nodes are never generated.
    """
    survivor_set = set(survivors)
    by_prefix: Dict[Tuple[str, ...], List[str]] = {}
    for node in survivors:
        by_prefix.setdefault(node[:-1], []).append(node[-1])
    next_level: List[Tuple[str, ...]] = []
    for prefix, tails in by_prefix.items():
        for i in range(len(tails)):
            for j in range(i + 1, len(tails)):
                joined = prefix + (tails[i], tails[j])
                subsets_survive = all(
                    joined[:drop] + joined[drop + 1 :] in survivor_set
                    for drop in range(len(joined))
                )
                if subsets_survive:
                    next_level.append(joined)
    return next_level


def lattice_discover(
    relation: Relation,
    measures: Optional[Mapping[str, AfdMeasure]] = None,
    threshold: Thresholds = 0.9,
    max_lhs_size: int = 2,
    lhs_attributes: Optional[Sequence[str]] = None,
    rhs_attributes: Optional[Sequence[str]] = None,
    g3_bound: Optional[float] = None,
    backend: Optional[str] = None,
    partition_cache: Optional[PartitionCache] = None,
    statistics_provider=None,
) -> DiscoveryResult:
    """Score every lattice candidate ``X -> A`` with ``|X| <= max_lhs_size``.

    Every candidate that reaches the statistics path is scored by every
    measure on one shared :class:`FdStatistics` object, exactly as the
    brute-force path would — pruned candidates are the ones whose scores
    are provably 1.0 (or, with ``g3_bound``, provably uninteresting), so
    reported scores are bit-identical to brute-force scoring.

    ``DiscoveryResult.statistics_computed`` counts the statistics passes
    actually performed; brute force would need one per candidate.

    ``partition_cache`` / ``statistics_provider`` are the artifact-sharing
    hooks of :class:`repro.service.AfdSession`: a supplied cache (built on
    the *same* relation) contributes and retains partitions across calls,
    and a provider ``(relation, fd) -> (FdStatistics, computed)`` replaces
    the direct :meth:`FdStatistics.compute` call so the session can serve
    and keep statistics — ``computed`` is False when the provider served a
    cache hit, keeping ``statistics_computed`` an honest count of the
    passes actually performed.  Both hooks must be bit-identical to the
    defaults: the provider's statistics must be exactly what ``compute``
    would return.
    """
    if max_lhs_size < 1:
        raise ValueError(f"max_lhs_size must be >= 1, got {max_lhs_size}")
    if g3_bound is not None and not 0.0 <= g3_bound <= 1.0:
        raise ValueError(f"g3_bound must be in [0, 1], got {g3_bound}")
    measures = measures if measures is not None else all_measures()
    measure_names = list(measures)
    thresholds = _resolve_thresholds(threshold, measure_names)
    lhs_pool = list(lhs_attributes) if lhs_attributes is not None else list(relation.attributes)
    rhs_pool = list(rhs_attributes) if rhs_attributes is not None else list(relation.attributes)
    backend_name = resolve_backend(backend).name
    if backend_name == "numpy":
        # Build the columnar view up front: the statistics backend needs
        # it anyway, and once it exists the partition layer derives every
        # level-1 partition from the cached code arrays too.
        relation.columnar()
    if partition_cache is not None and partition_cache.relation is not relation:
        raise ValueError(
            "the supplied partition_cache was built on a different relation"
        )
    cache = partition_cache if partition_cache is not None else PartitionCache(relation)
    result = DiscoveryResult(
        relation_name=relation.name,
        measure_names=measure_names,
        thresholds=thresholds,
        max_lhs_size=max_lhs_size,
    )
    # Minimal exact LHS sets seen so far, per RHS attribute: any candidate
    # whose LHS contains one of them is exact by Armstrong augmentation.
    exact_lhs_by_rhs: Dict[str, List[FrozenSet[str]]] = {rhs: [] for rhs in rhs_pool}
    level: List[Tuple[str, ...]] = [(attribute,) for attribute in lhs_pool]
    for depth in range(1, max_lhs_size + 1):
        survivors: List[Tuple[str, ...]] = []
        for lhs in level:
            lhs_partition = cache.partition(lhs)
            lhs_set = frozenset(lhs)
            lhs_is_key = lhs_partition.is_key()
            for rhs in rhs_pool:
                if rhs in lhs_set:
                    continue
                fd = FunctionalDependency(lhs, rhs)
                if any(exact <= lhs_set for exact in exact_lhs_by_rhs[rhs]):
                    result.pruned_exact += 1
                    scores = {name: 1.0 for name in measure_names}
                    result.candidates.append(CandidateScore(fd, scores, exact=True))
                    continue
                if lhs_is_key:
                    result.pruned_key += 1
                    scores = {name: 1.0 for name in measure_names}
                    result.candidates.append(CandidateScore(fd, scores, exact=True))
                    continue
                if not cache.any_nulls(fd.attributes):
                    if lhs_partition.refines(cache.partition((rhs,))):
                        exact_lhs_by_rhs[rhs].append(lhs_set)
                        result.pruned_exact += 1
                        scores = {name: 1.0 for name in measure_names}
                        result.candidates.append(CandidateScore(fd, scores, exact=True))
                        continue
                    if g3_bound is not None:
                        joint = cache.partition(lhs + (rhs,))
                        if 1.0 - lhs_partition.g3_error(joint) < g3_bound:
                            result.pruned_bound += 1
                            continue
                if statistics_provider is None:
                    statistics = FdStatistics.compute(relation, fd, backend=backend_name)
                    result.statistics_computed += 1
                else:
                    statistics, computed = statistics_provider(relation, fd)
                    if computed:
                        result.statistics_computed += 1
                scores = {
                    name: measure.score_from_statistics(statistics)
                    for name, measure in measures.items()
                }
                exact = statistics.satisfied or statistics.is_empty
                if exact:
                    exact_lhs_by_rhs[rhs].append(lhs_set)
                result.candidates.append(CandidateScore(fd, scores, exact=exact))
            if not lhs_is_key:
                survivors.append(lhs)
        if depth == max_lhs_size:
            break
        level = _generate_next_level(survivors)
        if not level:
            break
    registry = get_registry()
    registry.inc("discovery_statistics_computed_total", result.statistics_computed)
    for rule, count in (
        ("exact", result.pruned_exact),
        ("key", result.pruned_key),
        ("bound", result.pruned_bound),
    ):
        if count:
            registry.inc("discovery_pruned_total", count, rule=rule)
    return result


def brute_force_afds(
    relation: Relation,
    measures: Optional[Mapping[str, AfdMeasure]] = None,
    threshold: Thresholds = 0.9,
    max_lhs_size: int = 2,
    lhs_attributes: Optional[Sequence[str]] = None,
    rhs_attributes: Optional[Sequence[str]] = None,
    backend: Optional[str] = None,
) -> DiscoveryResult:
    """Reference implementation: one statistics pass per lattice candidate.

    Enumerates the *full* candidate lattice (no pruning, so it is a
    superset of what :func:`lattice_discover` emits when keys cut the
    lattice short) and scores every candidate through
    :meth:`FdStatistics.compute`.  Exists as the cross-validation oracle
    for :func:`lattice_discover` — and as the baseline its
    ``statistics_computed`` counter is compared against.
    """
    if max_lhs_size < 1:
        raise ValueError(f"max_lhs_size must be >= 1, got {max_lhs_size}")
    measures = measures if measures is not None else all_measures()
    measure_names = list(measures)
    thresholds = _resolve_thresholds(threshold, measure_names)
    lhs_pool = list(lhs_attributes) if lhs_attributes is not None else list(relation.attributes)
    rhs_pool = list(rhs_attributes) if rhs_attributes is not None else list(relation.attributes)
    result = DiscoveryResult(
        relation_name=relation.name,
        measure_names=measure_names,
        thresholds=thresholds,
        max_lhs_size=max_lhs_size,
    )
    level: List[Tuple[str, ...]] = [(attribute,) for attribute in lhs_pool]
    for depth in range(1, max_lhs_size + 1):
        for lhs in level:
            lhs_set = frozenset(lhs)
            for rhs in rhs_pool:
                if rhs in lhs_set:
                    continue
                fd = FunctionalDependency(lhs, rhs)
                statistics = FdStatistics.compute(relation, fd, backend=backend)
                result.statistics_computed += 1
                scores = {
                    name: measure.score_from_statistics(statistics)
                    for name, measure in measures.items()
                }
                exact = statistics.satisfied or statistics.is_empty
                result.candidates.append(CandidateScore(fd, scores, exact=exact))
        if depth == max_lhs_size:
            break
        level = _generate_next_level(level)
    return result
