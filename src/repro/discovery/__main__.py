"""Command-line entry point: ``python -m repro.discovery``.

Runs measure-based AFD discovery (lattice traversal up to
``--max-lhs-size``) on a relation loaded from a CSV file or on one of
the named RWD stand-in datasets, and emits the accepted FDs as JSON or
CSV.

Examples::

    # multi-attribute discovery on your own data, JSON to stdout
    python -m repro.discovery data.csv --max-lhs-size 2 --threshold 0.9

    # a named RWD dataset, two measures, CSV artifact
    python -m repro.discovery --dataset R1 --rows 300 \\
        --measures g3,mu_plus --format csv --output accepted.csv

    # prefilter hopeless candidates with the partition g3 bound
    python -m repro.discovery data.csv --max-lhs-size 3 --g3-bound 0.5
"""

from __future__ import annotations

import argparse
import csv
import io
import json
import sys
import time
from pathlib import Path
from typing import Dict, List, Optional

from repro.core.registry import all_measures, select_measures
from repro.relation.attribute import attribute_label
from repro.relation.io import read_csv
from repro.relation.relation import Relation
from repro.rwd.datasets import build_dataset, dataset_keys
from repro.service.model import DiscoveryResult
from repro.service.session import AfdSession


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.discovery",
        description="Discover approximate functional dependencies with every "
        "registered AFD measure.",
    )
    source = parser.add_mutually_exclusive_group(required=True)
    source.add_argument(
        "csv",
        nargs="?",
        default=None,
        help="relation CSV file (header row; empty/NULL/NA cells become NULL)",
    )
    source.add_argument(
        "--dataset",
        choices=dataset_keys(),
        help="named RWD stand-in dataset instead of a CSV file",
    )
    parser.add_argument(
        "--rows", type=int, default=400, help="rows for --dataset relations (default: 400)"
    )
    parser.add_argument(
        "--seed", type=int, default=0, help="seed for --dataset relations (default: 0)"
    )
    parser.add_argument(
        "--max-lhs-size",
        type=int,
        default=1,
        help="maximum LHS attribute count of a candidate (default: 1)",
    )
    parser.add_argument(
        "--threshold",
        type=float,
        default=0.9,
        help="acceptance threshold applied to every measure (default: 0.9)",
    )
    parser.add_argument(
        "--measures",
        default=None,
        help="comma-separated measure names (default: all fourteen)",
    )
    parser.add_argument(
        "--g3-bound",
        type=float,
        default=None,
        help="drop candidates whose partition g3 score is below this bound "
        "before scoring (default: off)",
    )
    parser.add_argument(
        "--minimal-cover",
        action="store_true",
        help="drop candidates implied by an accepted exact FD with a "
        "proper-subset LHS (minimal-cover reduction of the result)",
    )
    parser.add_argument(
        "--expectation",
        choices=("exact", "monte-carlo"),
        default="monte-carlo",
        help="permutation-expectation strategy for RFI+/RFI'+ (default: monte-carlo)",
    )
    parser.add_argument(
        "--mc-samples",
        type=int,
        default=100,
        help="Monte-Carlo samples for the permutation expectation (default: 100)",
    )
    parser.add_argument(
        "--sfi-alpha", type=float, default=0.5, help="SFI smoothing parameter (default: 0.5)"
    )
    parser.add_argument(
        "--backend",
        choices=("auto", "python", "numpy"),
        default=None,
        help="statistics backend (default: process default; scores are "
        "bit-identical across backends)",
    )
    parser.add_argument(
        "--format",
        choices=("json", "csv"),
        default="json",
        help="output format (default: json)",
    )
    parser.add_argument(
        "--output",
        default="-",
        help="output file (default: '-' for stdout)",
    )
    return parser


def _accepted_records(result: DiscoveryResult) -> List[Dict[str, object]]:
    """Flat ``measure, lhs, rhs, score, exact`` rows, best score first."""
    records: List[Dict[str, object]] = []
    for measure in result.measure_names:
        for scored in result.accepted(measure):
            records.append(
                {
                    "measure": measure,
                    "lhs": attribute_label(scored.lhs),
                    "rhs": attribute_label(scored.rhs),
                    "score": scored.scores[measure],
                    "exact": scored.exact,
                }
            )
    return records


def _json_payload(
    relation: Relation, result: DiscoveryResult, elapsed_seconds: float
) -> Dict[str, object]:
    return {
        "relation": relation.name,
        "num_rows": relation.num_rows,
        "num_attributes": relation.num_attributes,
        "max_lhs_size": result.max_lhs_size,
        "thresholds": result.thresholds,
        "counters": dict(result.counters),
        "elapsed_seconds": elapsed_seconds,
        "accepted": {
            measure: [
                {
                    "lhs": list(scored.lhs),
                    "rhs": list(scored.rhs),
                    "score": scored.scores[measure],
                    "exact": scored.exact,
                }
                for scored in result.accepted(measure)
            ]
            for measure in result.measure_names
        },
    }


def _write_output(text: str, output: str) -> None:
    if output == "-":
        sys.stdout.write(text)
        if not text.endswith("\n"):
            sys.stdout.write("\n")
    else:
        target = Path(output)
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(text if text.endswith("\n") else text + "\n", encoding="utf-8")


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.dataset is not None:
        relation = build_dataset(args.dataset, num_rows=args.rows, seed=args.seed).relation
    else:
        relation = read_csv(args.csv)
    try:
        measures = select_measures(
            all_measures(
                expectation=args.expectation,
                mc_samples=args.mc_samples,
                sfi_alpha=args.sfi_alpha,
            ),
            args.measures,
        )
    except KeyError as error:
        print(error.args[0], file=sys.stderr)
        return 2
    # One front door: the CLI is a thin client of the session facade.
    session = AfdSession(relation, measures=measures, backend=args.backend)
    started = time.perf_counter()
    result = session.discover(
        threshold=args.threshold,
        max_lhs_size=args.max_lhs_size,
        g3_bound=args.g3_bound,
        minimal_cover=args.minimal_cover,
    )
    elapsed = time.perf_counter() - started
    if args.format == "json":
        text = json.dumps(_json_payload(relation, result, elapsed), indent=2, sort_keys=True)
    else:
        records = _accepted_records(result)
        buffer = io.StringIO()
        writer = csv.DictWriter(buffer, fieldnames=["measure", "lhs", "rhs", "score", "exact"])
        writer.writeheader()
        for record in records:
            writer.writerow(record)
        text = buffer.getvalue()
    _write_output(text, args.output)
    counters = result.counters
    cover_note = (
        f", minimal cover dropped {counters['dropped_non_minimal']}"
        if args.minimal_cover
        else ""
    )
    print(
        f"{relation.name or 'relation'}: {relation.num_rows} rows, "
        f"{relation.num_attributes} attributes, max_lhs_size={result.max_lhs_size} — "
        f"{counters['candidates']} candidates, "
        f"{counters['statistics_computed']} statistics passes "
        f"(pruned: {counters['pruned_exact']} exact, {counters['pruned_key']} key, "
        f"{counters['pruned_bound']} bound{cover_note}) in {elapsed:.2f}s",
        file=sys.stderr,
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
