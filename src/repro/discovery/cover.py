"""Minimal-cover reduction of discovered AFD sets.

The lattice traversal reports *every* candidate ``X -> A`` it scores —
including candidates that carry no information of their own because a
smaller LHS already determines the same RHS **exactly**: once ``Z -> A``
holds exactly, every superset ``X ⊃ Z`` satisfies ``X -> A`` by
Armstrong augmentation, and the traversal indeed emits all of them with
score 1.0 (that is what the ``pruned_exact`` shortcut proves).  For
reporting and for downstream schema work those implied candidates are
noise; the classical remedy is a minimal cover.

:func:`minimal_cover` drops exactly the implied candidates: a candidate
``X -> A`` is removed when some *accepted exact* FD ``Z -> A`` with
``Z ⊊ X`` exists among the result's candidates.  Approximate (non-exact)
candidates are never implied this way — a proper superset of an exact
LHS is itself exact — so the reduction only ever removes provably
redundant 1.0-scored candidates, and the surviving exact FDs are
precisely the minimal-LHS generators of the exact set.  Scores are
untouched; the result is the same :class:`DiscoveryResult` shape with
``dropped_non_minimal`` recording the reduction.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, FrozenSet, List, Tuple

from repro.discovery.single import CandidateScore, DiscoveryResult


def minimal_exact_lhs_sets(
    candidates: List[CandidateScore],
) -> Dict[Tuple[str, ...], List[FrozenSet[str]]]:
    """Per RHS, the inclusion-minimal LHS sets among the exact candidates."""
    by_rhs: Dict[Tuple[str, ...], List[FrozenSet[str]]] = {}
    for candidate in candidates:
        if not candidate.exact:
            continue
        lhs = frozenset(candidate.fd.lhs)
        kept = by_rhs.setdefault(candidate.fd.rhs, [])
        if any(existing <= lhs for existing in kept):
            continue
        kept[:] = [existing for existing in kept if not lhs < existing]
        kept.append(lhs)
    return by_rhs


def is_implied(candidate: CandidateScore, minimal_exact: Dict[Tuple[str, ...], List[FrozenSet[str]]]) -> bool:
    """True when an exact FD with a *proper-subset* LHS covers the candidate."""
    lhs = frozenset(candidate.fd.lhs)
    return any(
        exact < lhs for exact in minimal_exact.get(candidate.fd.rhs, ())
    )


def minimal_cover(result: DiscoveryResult) -> DiscoveryResult:
    """A copy of ``result`` without candidates implied by smaller exact FDs.

    Candidate order, scores and the pruning counters are preserved;
    ``dropped_non_minimal`` counts the removed candidates.  Idempotent:
    reducing an already-minimal result drops nothing.
    """
    minimal_exact = minimal_exact_lhs_sets(result.candidates)
    kept = [
        candidate
        for candidate in result.candidates
        if not is_implied(candidate, minimal_exact)
    ]
    return replace(
        result,
        candidates=kept,
        dropped_non_minimal=result.dropped_non_minimal
        + (len(result.candidates) - len(kept)),
    )
