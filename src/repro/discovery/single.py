"""Measure-based AFD discovery with single-attribute LHS.

Exhaustive search over all linear candidates ``A -> B`` of a relation:
every candidate is scored by every requested measure on one shared
:class:`FdStatistics` object, and accepted when its score reaches the
(per-measure) threshold.

Two layers of reuse keep the quadratic candidate space cheap:

* one :class:`StrippedPartition` per attribute, computed once and shared
  by all candidates touching that attribute — partition refinement
  (``π_A`` refines ``π_B`` iff ``A -> B`` holds exactly) prunes exactly
  satisfied candidates before any statistics are computed, since every
  measure scores them 1 by convention;
* one :class:`FdStatistics` per surviving candidate, shared across all
  measures (the same discipline as the evaluation harness).

The partition shortcut is only applied to NULL-free attribute pairs:
partitions treat NULL as an ordinary value while the paper's semantics
(Section VI-A) drop NULL tuples, so candidates with NULLs fall through to
the statistics path, whose ``satisfied`` check uses the paper semantics.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Union

from repro.core.base import AfdMeasure
from repro.core.registry import all_measures
from repro.core.statistics import FdStatistics
from repro.relation.fd import FunctionalDependency
from repro.relation.nulls import is_null
from repro.relation.partition import StrippedPartition
from repro.relation.relation import Relation

Thresholds = Union[float, Mapping[str, float]]


@dataclass
class CandidateScore:
    """One linear candidate FD with its scores under all measures."""

    fd: FunctionalDependency
    scores: Dict[str, float]
    exact: bool

    def accepted_by(self, measure: str, threshold: float) -> bool:
        return self.scores[measure] >= threshold


@dataclass
class DiscoveryResult:
    """All scored candidates of one relation plus the acceptance view."""

    relation_name: str
    measure_names: List[str]
    thresholds: Dict[str, float]
    candidates: List[CandidateScore] = field(default_factory=list)
    pruned_exact: int = 0

    def accepted(self, measure: str) -> List[CandidateScore]:
        """Candidates meeting the measure's threshold, best score first."""
        threshold = self.thresholds[measure]
        hits = [c for c in self.candidates if c.accepted_by(measure, threshold)]
        return sorted(hits, key=lambda c: -c.scores[measure])

    def accepted_fds(self, measure: str) -> List[FunctionalDependency]:
        return [candidate.fd for candidate in self.accepted(measure)]

    def exact_fds(self) -> List[FunctionalDependency]:
        return [candidate.fd for candidate in self.candidates if candidate.exact]

    def __len__(self) -> int:
        return len(self.candidates)


class _PartitionCache:
    """Per-attribute stripped partitions plus NULL flags, computed lazily."""

    def __init__(self, relation: Relation):
        self._relation = relation
        self._partitions: Dict[str, StrippedPartition] = {}
        self._has_nulls: Dict[str, bool] = {}

    def partition(self, attribute: str) -> StrippedPartition:
        cached = self._partitions.get(attribute)
        if cached is None:
            cached = StrippedPartition.from_relation(self._relation, attribute)
            self._partitions[attribute] = cached
        return cached

    def has_nulls(self, attribute: str) -> bool:
        cached = self._has_nulls.get(attribute)
        if cached is None:
            cached = any(is_null(value) for value in self._relation.column(attribute))
            self._has_nulls[attribute] = cached
        return cached

    def exactly_satisfied(self, lhs: str, rhs: str) -> Optional[bool]:
        """Partition-refinement check; ``None`` when NULLs make it unsound."""
        if self.has_nulls(lhs) or self.has_nulls(rhs):
            return None
        return self.partition(lhs).refines(self.partition(rhs))


def _resolve_thresholds(
    threshold: Thresholds, measure_names: Sequence[str]
) -> Dict[str, float]:
    if isinstance(threshold, Mapping):
        missing = [name for name in measure_names if name not in threshold]
        if missing:
            raise KeyError(f"no threshold given for measures {missing}")
        return {name: float(threshold[name]) for name in measure_names}
    return {name: float(threshold) for name in measure_names}


def discover_afds(
    relation: Relation,
    measures: Optional[Mapping[str, AfdMeasure]] = None,
    threshold: Thresholds = 0.9,
    lhs_attributes: Optional[Sequence[str]] = None,
    rhs_attributes: Optional[Sequence[str]] = None,
) -> DiscoveryResult:
    """Exhaustively score all single-LHS candidates of ``relation``.

    ``threshold`` is either one global acceptance level or a per-measure
    mapping.  ``lhs_attributes`` / ``rhs_attributes`` restrict the
    candidate grid (defaults: every attribute on both sides).
    """
    measures = measures if measures is not None else all_measures()
    measure_names = list(measures)
    thresholds = _resolve_thresholds(threshold, measure_names)
    lhs_pool = list(lhs_attributes) if lhs_attributes is not None else list(relation.attributes)
    rhs_pool = list(rhs_attributes) if rhs_attributes is not None else list(relation.attributes)
    cache = _PartitionCache(relation)
    result = DiscoveryResult(
        relation_name=relation.name, measure_names=measure_names, thresholds=thresholds
    )
    for lhs in lhs_pool:
        for rhs in rhs_pool:
            if lhs == rhs:
                continue
            fd = FunctionalDependency(lhs, rhs)
            exact = cache.exactly_satisfied(lhs, rhs)
            if exact:
                # Every measure scores a satisfied FD 1.0 by convention —
                # skip the statistics computation entirely.
                result.pruned_exact += 1
                scores = {name: 1.0 for name in measure_names}
                result.candidates.append(CandidateScore(fd, scores, exact=True))
                continue
            statistics = FdStatistics.compute(relation, fd)
            scores = {
                name: measure.score_from_statistics(statistics)
                for name, measure in measures.items()
            }
            result.candidates.append(
                CandidateScore(fd, scores, exact=statistics.satisfied or statistics.is_empty)
            )
    return result
