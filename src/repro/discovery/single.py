"""Measure-based AFD discovery: result model and the unified facade.

:func:`discover_afds` is the single entry point for measure-based AFD
search.  With the default ``max_lhs_size=1`` it performs the exhaustive
linear-candidate search ``A -> B`` of the paper's Section VII discussion;
with ``max_lhs_size > 1`` it extends the search to multi-attribute LHS
candidates via the TANE-style level-wise traversal of
:mod:`repro.discovery.lattice`.  Both configurations share one engine,
one result model and one cost discipline:

* one :class:`~repro.relation.partition.StrippedPartition` per lattice
  node, computed once (level 1) or as a cached partition product
  (deeper levels) and shared by every candidate touching that node —
  partition refinement, key detection and the optional g3 bound prune
  exactly satisfied or hopeless candidates before any statistics are
  computed, since every measure scores satisfied FDs 1.0 by convention;
* one :class:`FdStatistics` per surviving candidate, shared across all
  measures (the same discipline as the evaluation harness).

Partition shortcuts are only applied to NULL-free candidates: partitions
treat NULL as an ordinary value while the paper's semantics
(Section VI-A) drop NULL tuples, so candidates with NULLs fall through
to the statistics path, whose ``satisfied`` check uses the paper
semantics.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Union

from repro.core.base import AfdMeasure
from repro.relation.fd import FunctionalDependency
from repro.relation.relation import Relation

Thresholds = Union[float, Mapping[str, float]]


@dataclass
class CandidateScore:
    """One candidate FD with its scores under all measures."""

    fd: FunctionalDependency
    scores: Dict[str, float]
    exact: bool

    def accepted_by(self, measure: str, threshold: float) -> bool:
        return self.scores[measure] >= threshold


@dataclass
class DiscoveryResult:
    """All scored candidates of one relation plus the acceptance view.

    The pruning counters report how much work the lattice traversal
    avoided: ``pruned_exact`` candidates were proven exactly satisfied
    (by partition refinement or by containing a known exact LHS),
    ``pruned_key`` candidates had a key LHS, ``pruned_bound`` candidates
    fell below the optional g3 bound and were dropped, and
    ``statistics_computed`` counts the :meth:`FdStatistics.compute`
    passes actually performed (brute force needs one per candidate).
    """

    relation_name: str
    measure_names: List[str]
    thresholds: Dict[str, float]
    candidates: List[CandidateScore] = field(default_factory=list)
    pruned_exact: int = 0
    pruned_key: int = 0
    pruned_bound: int = 0
    statistics_computed: int = 0
    max_lhs_size: int = 1
    #: Candidates removed by :func:`repro.discovery.cover.minimal_cover`
    #: (0 until a minimal-cover reduction has been applied).
    dropped_non_minimal: int = 0

    def accepted(self, measure: str) -> List[CandidateScore]:
        """Candidates meeting the measure's threshold, best score first."""
        threshold = self.thresholds[measure]
        hits = [c for c in self.candidates if c.accepted_by(measure, threshold)]
        return sorted(hits, key=lambda c: -c.scores[measure])

    def accepted_fds(self, measure: str) -> List[FunctionalDependency]:
        return [candidate.fd for candidate in self.accepted(measure)]

    def exact_fds(self) -> List[FunctionalDependency]:
        return [candidate.fd for candidate in self.candidates if candidate.exact]

    def counters(self) -> Dict[str, int]:
        """The pruning/work counters as one report-friendly mapping."""
        return {
            "candidates": len(self.candidates),
            "pruned_exact": self.pruned_exact,
            "pruned_key": self.pruned_key,
            "pruned_bound": self.pruned_bound,
            "statistics_computed": self.statistics_computed,
            "dropped_non_minimal": self.dropped_non_minimal,
        }

    def __len__(self) -> int:
        return len(self.candidates)


def _resolve_thresholds(
    threshold: Thresholds, measure_names: Sequence[str]
) -> Dict[str, float]:
    if isinstance(threshold, Mapping):
        missing = [name for name in measure_names if name not in threshold]
        if missing:
            raise KeyError(f"no threshold given for measures {missing}")
        return {name: float(threshold[name]) for name in measure_names}
    return {name: float(threshold) for name in measure_names}


def discover_afds(
    relation: Relation,
    measures: Optional[Mapping[str, AfdMeasure]] = None,
    threshold: Thresholds = 0.9,
    lhs_attributes: Optional[Sequence[str]] = None,
    rhs_attributes: Optional[Sequence[str]] = None,
    max_lhs_size: int = 1,
    g3_bound: Optional[float] = None,
    backend: Optional[str] = None,
) -> DiscoveryResult:
    """Score all candidates ``X -> A`` of ``relation`` with ``|X| <= max_lhs_size``.

    ``threshold`` is either one global acceptance level or a per-measure
    mapping.  ``lhs_attributes`` / ``rhs_attributes`` restrict the
    candidate grid (defaults: every attribute on both sides);
    multi-attribute LHS nodes are built from ``lhs_attributes`` only.
    ``g3_bound`` (optional) drops candidates whose partition-computed
    ``g3`` score falls below the bound before any statistics are
    computed; dropped candidates do not appear in the result.
    ``backend`` selects the statistics backend (``"python"`` /
    ``"numpy"``; default: the process default) — scores are bit-identical
    either way.

    Scores are bit-identical to brute-force :meth:`FdStatistics.compute`
    scoring of the same candidates for every ``max_lhs_size``.

    A :class:`~repro.relation.chunked.ChunkedRelation` is routed to the
    partition-free screen of
    :func:`~repro.discovery.chunked.chunked_discover` (``max_lhs_size``
    must be 1 and ``g3_bound`` ``None`` there) — same scores, same
    candidate order, no row list.
    """
    from repro.discovery.lattice import lattice_discover
    from repro.relation.chunked import ChunkedRelation

    if isinstance(relation, ChunkedRelation):
        from repro.discovery.chunked import chunked_discover

        return chunked_discover(
            relation,
            measures=measures,
            threshold=threshold,
            lhs_attributes=lhs_attributes,
            rhs_attributes=rhs_attributes,
            max_lhs_size=max_lhs_size,
            g3_bound=g3_bound,
            backend=backend,
        )

    return lattice_discover(
        relation,
        measures=measures,
        threshold=threshold,
        max_lhs_size=max_lhs_size,
        lhs_attributes=lhs_attributes,
        rhs_attributes=rhs_attributes,
        g3_bound=g3_bound,
        backend=backend,
    )
