"""Partition-free AFD discovery over chunked statistics.

The lattice engine of :mod:`repro.discovery.lattice` leans on
:class:`~repro.relation.partition.StrippedPartition` for its pruning —
which requires materialised row indices and therefore an in-memory
:class:`Relation`.  At the scale the chunked layer exists for (millions
of rows, no row list) that is exactly what must not happen, so
:func:`chunked_discover` runs the **single-LHS** candidate screen from
chunked map-merge statistics alone: one
:func:`~repro.core.chunked.compute_chunked` pass per candidate
``A -> B``, every measure scored from that one shared
:class:`FdStatistics`, no partitions, no row list, peak memory bounded
by the chunk size and the merged distinct counts.

Parity is a hard contract, not an approximation: for ``max_lhs_size=1``
the scores, exactness flags and candidate order are identical (``==``)
to :func:`~repro.discovery.lattice.lattice_discover` /
:func:`~repro.discovery.lattice.brute_force_afds` on the materialised
relation, because chunked statistics are bit-identical to monolithic
ones and the lattice's partition prunes only replace scores that are
exactly 1.0 by the repo's satisfied-FD convention.  The two deliberate
non-features:

* ``max_lhs_size > 1`` is rejected — multi-attribute LHS traversal
  needs the partition lattice; materialise explicitly
  (``.to_relation()``) for small data, or widen the screen's RHS/LHS
  pools instead;
* ``g3_bound`` is rejected — the bound is computed from partitions,
  whose NULL semantics (NULL as ordinary value) differ from the
  statistics path (NULL rows dropped), so a chunked emulation could
  silently prune different candidates.
"""

from __future__ import annotations

from typing import Mapping, Optional, Sequence

from repro.core.base import AfdMeasure
from repro.core.registry import all_measures
from repro.discovery.single import (
    CandidateScore,
    DiscoveryResult,
    Thresholds,
    _resolve_thresholds,
)
from repro.relation.fd import FunctionalDependency


def chunked_discover(
    source,
    measures: Optional[Mapping[str, AfdMeasure]] = None,
    threshold: Thresholds = 0.9,
    lhs_attributes: Optional[Sequence[str]] = None,
    rhs_attributes: Optional[Sequence[str]] = None,
    max_lhs_size: int = 1,
    g3_bound: Optional[float] = None,
    chunk_size: Optional[int] = None,
    jobs: int = 1,
    backend: Optional[str] = None,
    statistics_provider=None,
) -> DiscoveryResult:
    """Score every single-LHS candidate ``A -> B`` from chunked statistics.

    ``source`` is a :class:`~repro.relation.chunked.ChunkedRelation`
    (the intended caller) or a :class:`Relation` (chunked on the fly).
    Candidates are enumerated in the lattice's level-1 order — LHS pool
    outer, RHS pool inner, ``rhs == lhs`` skipped — and every candidate
    is scored by every measure on one shared statistics object;
    ``exact`` is the statistics-level check (``satisfied or is_empty``),
    identical to the lattice's statistics path.

    ``chunk_size`` / ``jobs`` / ``backend`` forward to
    :func:`~repro.core.chunked.compute_chunked` (a ChunkedRelation's own
    chunking wins, jobs > 1 uses the shared worker pool).
    ``statistics_provider`` is the session's artifact-sharing hook,
    ``(source, fd) -> (FdStatistics, computed)``, replacing the direct
    chunked compute; ``max_lhs_size`` must be 1 and ``g3_bound`` must be
    ``None`` (see the module docstring for why both are rejected rather
    than emulated).
    """
    from repro.core.chunked import compute_chunked

    if max_lhs_size != 1:
        raise ValueError(
            "chunked discovery is a single-LHS screen (partition-free); "
            f"max_lhs_size must be 1, got {max_lhs_size} — materialise "
            "the relation (.to_relation()) to search multi-attribute LHS"
        )
    if g3_bound is not None:
        raise ValueError(
            "g3_bound needs partition semantics (NULL as ordinary value) "
            "that chunked statistics deliberately do not reproduce; "
            "filter on the scored g3 column instead"
        )
    measures = measures if measures is not None else all_measures()
    measure_names = list(measures)
    thresholds = _resolve_thresholds(threshold, measure_names)
    attributes = list(source.attributes)
    lhs_pool = list(lhs_attributes) if lhs_attributes is not None else attributes
    rhs_pool = list(rhs_attributes) if rhs_attributes is not None else attributes
    for attribute in dict.fromkeys(lhs_pool + rhs_pool):
        if attribute not in source.attributes:
            raise KeyError(
                f"unknown attribute {attribute!r}; available: {attributes}"
            )
    result = DiscoveryResult(
        relation_name=getattr(source, "name", ""),
        measure_names=measure_names,
        thresholds=thresholds,
        max_lhs_size=1,
    )
    for lhs in lhs_pool:
        for rhs in rhs_pool:
            if rhs == lhs:
                continue
            fd = FunctionalDependency(lhs, rhs)
            if statistics_provider is None:
                statistics = compute_chunked(
                    source,
                    fd,
                    chunk_size=chunk_size,
                    jobs=jobs,
                    backend=backend,
                )
                result.statistics_computed += 1
            else:
                statistics, computed = statistics_provider(source, fd)
                if computed:
                    result.statistics_computed += 1
            scores = {
                name: measure.score_from_statistics(statistics)
                for name, measure in measures.items()
            }
            exact = statistics.satisfied or statistics.is_empty
            result.candidates.append(CandidateScore(fd, scores, exact=exact))
    return result
