"""Measure-based AFD discovery (single- and multi-attribute LHS).

:func:`discover_afds` is the unified facade: ``max_lhs_size=1`` (the
default) gives the exhaustive linear-candidate search, larger values
extend the search over the LHS lattice via the TANE-style level-wise
traversal of :mod:`repro.discovery.lattice` — partition-product caching,
exact-FD refinement, key pruning and an optional g3 bound keep the
exponential candidate space tractable.  :func:`chunked_discover` runs
the single-LHS screen partition-free over chunked map-merge statistics,
so out-of-core relations can be discovered on without ever building a
row list.  ``python -m repro.discovery`` exposes the same search on CSV
files and the named RWD datasets.
"""

from repro.discovery.chunked import chunked_discover
from repro.discovery.cover import minimal_cover
from repro.discovery.lattice import (
    PartitionCache,
    brute_force_afds,
    lattice_discover,
)
from repro.discovery.single import (
    CandidateScore,
    DiscoveryResult,
    discover_afds,
)

__all__ = [
    "CandidateScore",
    "DiscoveryResult",
    "PartitionCache",
    "brute_force_afds",
    "chunked_discover",
    "discover_afds",
    "lattice_discover",
    "minimal_cover",
]
