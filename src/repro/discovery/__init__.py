"""Measure-based AFD discovery (single-attribute LHS).

Exhaustive linear-candidate search with partition-refinement pruning and
shared sufficient statistics; the discovery counterpart of the paper's
"measures as discovery criteria" discussion (Section VII).  Multi-attribute
LHS search over the candidate lattice is a roadmap item.
"""

from repro.discovery.single import (
    CandidateScore,
    DiscoveryResult,
    discover_afds,
)

__all__ = [
    "CandidateScore",
    "DiscoveryResult",
    "discover_afds",
]
