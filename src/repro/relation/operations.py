"""Module-level relational operations and grouping helpers.

The AFD measures of :mod:`repro.core` are all functions of three families
of counts derived from a relation ``R`` and an FD ``X -> Y``:

* ``marginal_counts(R, X)`` — the multiplicity of each distinct ``x``;
* ``marginal_counts(R, Y)`` — the multiplicity of each distinct ``y``;
* ``joint_counts(R, X, Y)`` — the multiplicity of each distinct ``(x, y)``;
* ``group_counts(R, X, Y)`` — the same information grouped per ``x``.

These helpers centralise the computation so measures never have to touch
raw rows.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, Iterable, Sequence, Tuple

from repro.relation.attribute import canonical_attributes
from repro.relation.relation import Relation, Row


def project(relation: Relation, attributes: Iterable[str] | str) -> Relation:
    """Functional wrapper around :meth:`Relation.project`."""
    return relation.project(attributes)


def select_equal(
    relation: Relation, attributes: Iterable[str] | str, values: Sequence[object]
) -> Relation:
    """Functional wrapper around :meth:`Relation.select_equal`."""
    return relation.select_equal(attributes, values)


def marginal_counts(relation: Relation, attributes: Iterable[str] | str) -> Counter:
    """Multiplicities of the distinct projected tuples on ``attributes``."""
    return relation.frequencies(attributes)


def joint_counts(
    relation: Relation, lhs: Iterable[str] | str, rhs: Iterable[str] | str
) -> Counter:
    """Multiplicities of distinct ``(x, y)`` pairs for ``lhs``/``rhs``.

    Keys are ``(x, y)`` with ``x`` and ``y`` tuples over the canonical
    attribute orderings of ``lhs`` and ``rhs``.
    """
    lhs_key = canonical_attributes(lhs)
    rhs_key = canonical_attributes(rhs)
    lhs_indices = relation._attribute_indices(lhs_key)
    rhs_indices = relation._attribute_indices(rhs_key)
    counter: Counter = Counter()
    for row in relation:
        x = tuple(row[i] for i in lhs_indices)
        y = tuple(row[i] for i in rhs_indices)
        counter[(x, y)] += 1
    return counter


def group_counts(
    relation: Relation, lhs: Iterable[str] | str, rhs: Iterable[str] | str
) -> Dict[Row, Counter]:
    """Per-``x`` counters of ``y`` values.

    Returns a mapping ``x -> Counter({y: multiplicity})``; the total over a
    counter equals the multiplicity of the group ``x``.
    """
    groups: Dict[Row, Counter] = {}
    for (x, y), count in joint_counts(relation, lhs, rhs).items():
        groups.setdefault(x, Counter())[y] += count
    return groups


def contingency_table(
    relation: Relation, lhs: Iterable[str] | str, rhs: Iterable[str] | str
) -> Tuple[list, list, list]:
    """A dense contingency table of ``lhs`` x ``rhs`` value combinations.

    Returns ``(x_values, y_values, table)`` where ``table[i][j]`` is the
    multiplicity of ``(x_values[i], y_values[j])`` in ``relation``.  Used by
    the smoothed-FI measure and by the exact permutation-model expectation.
    """
    joint = joint_counts(relation, lhs, rhs)
    x_values = sorted({x for (x, _y) in joint}, key=repr)
    y_values = sorted({y for (_x, y) in joint}, key=repr)
    x_index = {x: i for i, x in enumerate(x_values)}
    y_index = {y: j for j, y in enumerate(y_values)}
    table = [[0 for _ in y_values] for _ in x_values]
    for (x, y), count in joint.items():
        table[x_index[x]][y_index[y]] = count
    return x_values, y_values, table
