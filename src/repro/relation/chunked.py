"""Out-of-core chunked relations: streamed ingest, encoded chunk storage.

:class:`~repro.relation.relation.Relation` materialises every row as a
Python tuple — fine at paper scale, ruinous at millions of rows (a 1M-row
relation costs hundreds of MB of tuple/object overhead before a single
statistic is computed).  :class:`ChunkedRelation` is the out-of-core
counterpart: rows are consumed **streamed** (from a CSV reader, a
generator, or an existing relation), dictionary-encoded incrementally
with the same extendable value -> code tables the dynamic store grows
(:mod:`repro.stream.dynamic`), and stored as fixed-size
:class:`CodeChunk`\\ s of ``int32`` code arrays — 4 bytes per cell plus
one decode table per attribute, never a full row list.

The chunk iterator feeds the map-merge statistics driver
(:mod:`repro.core.chunked`) directly: each chunk becomes one
:class:`~repro.core.partial.PartialFdCounts`, merged in chunk order into
statistics bit-identical to a monolithic scan.  Because the encoding is
global (one growing table per attribute, first-occurrence codes), the
per-chunk counts are keyed by code tuples that mean the same thing in
every chunk.

Without numpy the chunks fall back to ``array.array("i")`` — same 4-byte
cells, pure stdlib — so the chunked path works wherever the ``python``
statistics backend does.
"""

from __future__ import annotations

from array import array
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple, Union

from repro.relation.relation import Relation, Row

try:  # pragma: no cover - exercised by the no-numpy CI job
    import numpy as np
except ImportError:  # pragma: no cover
    np = None  # type: ignore[assignment]

#: Reserved code for NULL cells (the columnar convention).
NULL_CODE = -1

#: Default rows per stored chunk: big enough that per-chunk numpy
#: group-bys amortise, small enough that one chunk's transient Python
#: objects stay a rounding error next to the relation.
DEFAULT_CHUNK_SIZE = 65_536


def assign_code(mapping: Dict[object, int], values: List[object], value: object) -> int:
    """One step of extendable first-occurrence dictionary encoding.

    The shared idiom of every encoder in the repo (the columnar view, the
    dynamic store's growing columns, the chunked ingest below): NULL gets
    the reserved code, known values their existing code, novel values the
    next dense code — appended to ``values`` so the decode table stays in
    first-occurrence order.
    """
    if value is None:
        return NULL_CODE
    code = mapping.get(value)
    if code is None:
        code = len(values)
        mapping[value] = code
        values.append(value)
    return code


class CodeChunk:
    """One fixed-size slice of dictionary-encoded rows.

    ``columns[attribute]`` holds the chunk's codes for that attribute —
    an ``int32`` numpy array, an ``array.array("i")``, or a plain list —
    with ``-1`` marking NULL.  Chunks are cheap to pickle (raw 4-byte
    buffers), which is what lets the map-merge driver ship them to
    worker processes instead of Python row tuples.
    """

    __slots__ = ("attributes", "columns", "num_rows")

    def __init__(
        self,
        attributes: Tuple[str, ...],
        columns: Dict[str, Sequence[int]],
        num_rows: int,
    ):
        self.attributes = attributes
        self.columns = columns
        self.num_rows = num_rows

    def column(self, attribute: str) -> Sequence[int]:
        """The chunk's code sequence for one attribute."""
        try:
            return self.columns[attribute]
        except KeyError:
            raise KeyError(
                f"unknown attribute {attribute!r}; available: {list(self.attributes)}"
            ) from None

    def column_list(self, attribute: str) -> List[int]:
        """The codes as a plain list of Python ints (the scalar hot-loop form)."""
        codes = self.column(attribute)
        if isinstance(codes, list):
            return codes
        return list(codes) if np is None else _as_int_list(codes)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"<CodeChunk: {self.num_rows} rows x {len(self.attributes)} attributes>"


def _as_int_list(codes) -> List[int]:
    tolist = getattr(codes, "tolist", None)
    return tolist() if tolist is not None else list(codes)


class _StreamingColumn:
    """One attribute's growing value -> code table plus running stats."""

    __slots__ = ("mapping", "values", "null_count")

    def __init__(self):
        self.mapping: Dict[object, int] = {}
        self.values: List[object] = []
        self.null_count = 0


def _freeze_codes(codes: List[int]):
    """Pack a buffered code list into its compact per-chunk storage."""
    if np is not None:
        return np.asarray(codes, dtype=np.int32)
    return array("i", codes)


class ChunkedRelation:
    """A relation stored as dictionary-encoded chunks, never as a row list.

    Parameters
    ----------
    attributes:
        Ordered attribute names (duplicates rejected, like
        :class:`Relation`).
    rows:
        Any iterable of row tuples — consumed once, streamed; rows are
        encoded and discarded chunk by chunk, so peak Python-object
        memory is O(``chunk_size``) regardless of the total row count.
    name:
        Relation name stamped on derived statistics.
    chunk_size:
        Rows per stored chunk (and per map-merge work unit).
    """

    def __init__(
        self,
        attributes: Sequence[str],
        rows: Iterable[Sequence[object]] = (),
        name: str = "",
        chunk_size: int = DEFAULT_CHUNK_SIZE,
    ):
        self._attributes: Tuple[str, ...] = tuple(attributes)
        if len(set(self._attributes)) != len(self._attributes):
            raise ValueError(f"duplicate attribute names in schema {self._attributes}")
        if chunk_size < 1:
            raise ValueError(f"chunk_size must be >= 1, got {chunk_size}")
        self.name = name
        self.chunk_size = chunk_size
        self._columns: List[_StreamingColumn] = [
            _StreamingColumn() for _ in self._attributes
        ]
        self._chunks: List[CodeChunk] = []
        self._num_rows = 0
        self._ingest(rows)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_relation(
        cls, relation: Relation, chunk_size: int = DEFAULT_CHUNK_SIZE
    ) -> "ChunkedRelation":
        """Encode an in-memory relation into chunks (rows are streamed)."""
        return cls(
            relation.attributes, iter(relation), name=relation.name, chunk_size=chunk_size
        )

    @classmethod
    def read_csv(
        cls,
        path: Union[str, Path],
        chunk_size: int = DEFAULT_CHUNK_SIZE,
        name: Optional[str] = None,
        max_rows: Optional[int] = None,
        **csv_options,
    ) -> "ChunkedRelation":
        """Stream a CSV file (plain or ``.gz``) into a chunked relation.

        The file is parsed row by row through the same reader as
        :func:`repro.relation.io.read_csv` (identical NULL markers and
        type inference — the round-trip test in ``tests/test_chunked.py``
        pins this), but rows flow straight into the incremental encoder:
        the full row list never exists.  ``csv_options`` are forwarded to
        :func:`~repro.relation.io.stream_csv_rows` (``null_markers``,
        ``infer_types``, ``delimiter``).
        """
        from repro.relation.io import stream_csv_rows

        path = Path(path)
        header, rows = stream_csv_rows(path, max_rows=max_rows, **csv_options)
        return cls(
            header, rows, name=name if name is not None else path.stem, chunk_size=chunk_size
        )

    @classmethod
    def read_parquet(
        cls,
        path: Union[str, Path],
        chunk_size: int = DEFAULT_CHUNK_SIZE,
        name: Optional[str] = None,
        max_rows: Optional[int] = None,
        columns: Optional[Sequence[str]] = None,
    ) -> "ChunkedRelation":
        """Stream a Parquet file into a chunked relation (needs pyarrow).

        Record batches are read one at a time (``iter_batches``) and fed
        straight into the incremental encoder — like :meth:`read_csv`,
        the full row list never exists, so peak memory is one batch plus
        the code chunks.  Float NaN cells become NULL (the CSV reader's
        convention: NaN != NaN would break grouping equality).
        ``columns`` restricts and orders the ingested attributes;
        ``max_rows`` caps the number of data rows.

        ``pyarrow`` is an optional dependency: when it is absent this
        raises ``ImportError`` with an actionable message instead of a
        bare module-not-found deep in the stack.
        """
        try:
            import pyarrow.parquet as parquet_module
        except ImportError as error:
            raise ImportError(
                "ChunkedRelation.read_parquet requires the optional "
                "'pyarrow' package, which is not installed; install "
                "pyarrow or convert the file to CSV and use read_csv"
            ) from error

        path = Path(path)
        if max_rows is not None and max_rows < 0:
            raise ValueError(f"max_rows must be >= 0, got {max_rows}")
        parquet_file = parquet_module.ParquetFile(path)
        if columns is not None:
            attributes: Tuple[str, ...] = tuple(columns)
        else:
            attributes = tuple(parquet_file.schema_arrow.names)

        def rows() -> Iterator[Row]:
            emitted = 0
            for batch in parquet_file.iter_batches(columns=list(attributes)):
                batch_columns = [
                    batch.column(position).to_pylist()
                    for position in range(batch.num_columns)
                ]
                for row in zip(*batch_columns):
                    if max_rows is not None and emitted >= max_rows:
                        return
                    yield tuple(
                        None
                        if value is None or (isinstance(value, float) and value != value)
                        else value
                        for value in row
                    )
                    emitted += 1

        return cls(
            attributes,
            rows(),
            name=name if name is not None else path.stem,
            chunk_size=chunk_size,
        )

    def _ingest(self, rows: Iterable[Sequence[object]]) -> None:
        arity = len(self._attributes)
        chunk_size = self.chunk_size
        columns = self._columns
        buffers: List[List[int]] = [[] for _ in self._attributes]
        buffered = 0
        for row in rows:
            if len(row) != arity:
                raise ValueError(
                    f"row {tuple(row)!r} has arity {len(row)}, "
                    f"expected {arity} for schema {self._attributes}"
                )
            for column, buffer, value in zip(columns, buffers, row):
                if value is None:
                    column.null_count += 1
                    buffer.append(NULL_CODE)
                else:
                    buffer.append(assign_code(column.mapping, column.values, value))
            buffered += 1
            if buffered == chunk_size:
                self._flush(buffers, buffered)
                buffers = [[] for _ in self._attributes]
                buffered = 0
        if buffered:
            self._flush(buffers, buffered)

    def _flush(self, buffers: List[List[int]], num_rows: int) -> None:
        self._chunks.append(
            CodeChunk(
                self._attributes,
                {
                    attribute: _freeze_codes(buffer)
                    for attribute, buffer in zip(self._attributes, buffers)
                },
                num_rows,
            )
        )
        self._num_rows += num_rows

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------
    @property
    def attributes(self) -> Tuple[str, ...]:
        return self._attributes

    @property
    def num_rows(self) -> int:
        return self._num_rows

    def __len__(self) -> int:
        return self._num_rows

    @property
    def num_chunks(self) -> int:
        return len(self._chunks)

    def cardinality(self, attribute: str) -> int:
        """Number of distinct non-NULL values of one attribute."""
        return len(self._column(attribute).values)

    def null_count(self, attribute: str) -> int:
        return self._column(attribute).null_count

    def decode_tables(self) -> Dict[str, List[object]]:
        """Per-attribute code -> value tables (live references; don't mutate)."""
        return {
            attribute: column.values
            for attribute, column in zip(self._attributes, self._columns)
        }

    def code_bytes(self) -> int:
        """Bytes held by the stored code arrays (4 per cell)."""
        total = 0
        for chunk in self._chunks:
            for codes in chunk.columns.values():
                nbytes = getattr(codes, "nbytes", None)
                total += nbytes if nbytes is not None else len(codes) * codes.itemsize
        return total

    def _column(self, attribute: str) -> _StreamingColumn:
        try:
            return self._columns[self._attributes.index(attribute)]
        except ValueError:
            raise KeyError(
                f"unknown attribute {attribute!r}; available: {list(self._attributes)}"
            ) from None

    # ------------------------------------------------------------------
    # Chunk iteration and decoding
    # ------------------------------------------------------------------
    def iter_chunks(self) -> Iterator[CodeChunk]:
        """The stored chunks, in row order (the map-merge input)."""
        return iter(self._chunks)

    def iter_rows(self) -> Iterator[Row]:
        """Decode rows chunk by chunk (never more than one chunk live)."""
        tables = [column.values for column in self._columns]
        for chunk in self._chunks:
            columns = [chunk.column_list(attribute) for attribute in self._attributes]
            for index in range(chunk.num_rows):
                yield tuple(
                    tables[position][codes[index]] if codes[index] >= 0 else None
                    for position, codes in enumerate(columns)
                )

    def to_relation(self) -> Relation:
        """Materialise the full :class:`Relation` (tests / small data only).

        This is the one deliberate escape hatch back to row-tuple land —
        it allocates the O(rows) list the chunked store exists to avoid.
        """
        return Relation(self._attributes, self.iter_rows(), name=self.name)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        label = self.name or "ChunkedRelation"
        return (
            f"<{label}: {self._num_rows} rows x {len(self._attributes)} attributes "
            f"in {len(self._chunks)} chunks>"
        )
