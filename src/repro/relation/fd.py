"""Functional dependencies.

A functional dependency (FD) is an expression ``X -> Y`` over disjoint
attribute sets ``X`` (the left-hand side, LHS) and ``Y`` (the right-hand
side, RHS).  An FD is *linear* when both sides consist of a single
attribute; the paper's real-world benchmark only considers linear FDs
while the synthetic analysis and the discovery extension also handle the
non-linear case.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Tuple

from repro.relation.attribute import attribute_label, canonical_attributes


@dataclass(frozen=True, order=True)
class FunctionalDependency:
    """An FD ``lhs -> rhs`` with canonically ordered attribute sets."""

    lhs: Tuple[str, ...]
    rhs: Tuple[str, ...]

    def __init__(self, lhs: Iterable[str] | str, rhs: Iterable[str] | str):
        lhs_canonical = canonical_attributes(lhs)
        rhs_canonical = canonical_attributes(rhs)
        if not lhs_canonical:
            raise ValueError("the LHS of a functional dependency must be non-empty")
        if not rhs_canonical:
            raise ValueError("the RHS of a functional dependency must be non-empty")
        overlap = set(lhs_canonical) & set(rhs_canonical)
        if overlap:
            raise ValueError(
                f"LHS and RHS of a functional dependency must be disjoint; "
                f"both contain {sorted(overlap)}"
            )
        object.__setattr__(self, "lhs", lhs_canonical)
        object.__setattr__(self, "rhs", rhs_canonical)

    @property
    def attributes(self) -> Tuple[str, ...]:
        """All attributes mentioned by the FD (``X ∪ Y``), canonically ordered."""
        return canonical_attributes(self.lhs + self.rhs)

    @property
    def is_linear(self) -> bool:
        """True when both sides consist of exactly one attribute."""
        return len(self.lhs) == 1 and len(self.rhs) == 1

    @classmethod
    def parse(cls, text: str) -> "FunctionalDependency":
        """Parse an FD from text such as ``"A,B -> C"``.

        >>> FunctionalDependency.parse("A, B -> C")
        FunctionalDependency(lhs=('A', 'B'), rhs=('C',))
        """
        if "->" not in text:
            raise ValueError(f"cannot parse functional dependency from {text!r}")
        lhs_text, rhs_text = text.split("->", 1)
        lhs = [part.strip() for part in lhs_text.split(",") if part.strip()]
        rhs = [part.strip() for part in rhs_text.split(",") if part.strip()]
        return cls(lhs, rhs)

    def __str__(self) -> str:
        return f"{attribute_label(self.lhs)} -> {attribute_label(self.rhs)}"

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"FunctionalDependency(lhs={self.lhs!r}, rhs={self.rhs!r})"
