"""Bag-based relations.

A relation over a schema ``W`` is a bag (multiset) of tuples over ``W``
(Section III of the paper).  The implementation stores the bag as a list
of value tuples — duplicates are kept — together with the ordered list of
attribute names.  All derived quantities (frequencies, projections,
active domains) are computed lazily and cached where it pays off.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, Iterable, Iterator, List, Mapping, Optional, Sequence, Tuple

from repro.relation.attribute import canonical_attributes, validate_attributes
from repro.relation.fd import FunctionalDependency
from repro.relation.nulls import has_null

Row = Tuple[object, ...]


class Relation:
    """A finite bag-based relation ``R(W)``.

    Parameters
    ----------
    attributes:
        Ordered attribute names of the schema ``W``.
    rows:
        Iterable of tuples; each tuple must have the same arity as
        ``attributes``.  Duplicates are preserved (bag semantics).
    name:
        Optional human-readable name used in reports.
    """

    def __init__(
        self,
        attributes: Sequence[str],
        rows: Iterable[Sequence[object]] = (),
        name: str = "",
    ):
        self._attributes: Tuple[str, ...] = tuple(attributes)
        if len(set(self._attributes)) != len(self._attributes):
            raise ValueError(f"duplicate attribute names in schema {self._attributes}")
        self.name = name
        self._rows: List[Row] = []
        arity = len(self._attributes)
        for row in rows:
            value_tuple = tuple(row)
            if len(value_tuple) != arity:
                raise ValueError(
                    f"row {value_tuple!r} has arity {len(value_tuple)}, "
                    f"expected {arity} for schema {self._attributes}"
                )
            self._rows.append(value_tuple)
        self._index_cache: Dict[Tuple[str, ...], Tuple[int, ...]] = {}
        self._frequency_cache: Dict[Tuple[str, ...], Counter] = {}
        self._columnar_cache: Optional[object] = None

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def from_dicts(
        cls,
        records: Iterable[Mapping[str, object]],
        attributes: Optional[Sequence[str]] = None,
        name: str = "",
    ) -> "Relation":
        """Build a relation from dictionaries (missing keys become NULL)."""
        records = list(records)
        if attributes is None:
            seen: List[str] = []
            for record in records:
                for key in record:
                    if key not in seen:
                        seen.append(key)
            attributes = seen
        rows = [tuple(record.get(attribute) for attribute in attributes) for record in records]
        return cls(attributes, rows, name=name)

    @classmethod
    def from_columns(
        cls, columns: Mapping[str, Sequence[object]], name: str = ""
    ) -> "Relation":
        """Build a relation from a column-oriented mapping."""
        attributes = list(columns)
        if not attributes:
            return cls([], [], name=name)
        lengths = {attribute: len(columns[attribute]) for attribute in attributes}
        if len(set(lengths.values())) > 1:
            raise ValueError(f"columns have inconsistent lengths: {lengths}")
        n_rows = lengths[attributes[0]]
        rows = [
            tuple(columns[attribute][i] for attribute in attributes) for i in range(n_rows)
        ]
        return cls(attributes, rows, name=name)

    @classmethod
    def from_counter(
        cls, attributes: Sequence[str], counts: Mapping[Row, int], name: str = ""
    ) -> "Relation":
        """Build a relation from a tuple -> multiplicity mapping."""
        rows: List[Row] = []
        for row, count in counts.items():
            if count < 0:
                raise ValueError(f"negative multiplicity {count} for row {row!r}")
            rows.extend([tuple(row)] * count)
        return cls(attributes, rows, name=name)

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------
    @property
    def attributes(self) -> Tuple[str, ...]:
        """Ordered schema of the relation."""
        return self._attributes

    @property
    def num_attributes(self) -> int:
        return len(self._attributes)

    @property
    def num_rows(self) -> int:
        """Total number of tuples ``|R|`` (counting multiplicity)."""
        return len(self._rows)

    def __len__(self) -> int:
        return len(self._rows)

    def __bool__(self) -> bool:
        return bool(self._rows)

    def __iter__(self) -> Iterator[Row]:
        """Iterate over rows, including duplicates."""
        return iter(self._rows)

    def __eq__(self, other: object) -> bool:
        """Bag equality: same schema and same tuple multiplicities."""
        if not isinstance(other, Relation):
            return NotImplemented
        return self._attributes == other._attributes and Counter(self._rows) == Counter(
            other._rows
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        label = self.name or "Relation"
        return f"<{label}: {self.num_rows} rows x {self.num_attributes} attributes>"

    def rows(self) -> List[Row]:
        """A copy of the underlying row list."""
        return list(self._rows)

    def records(self) -> List[Dict[str, object]]:
        """Rows as dictionaries keyed by attribute name."""
        return [dict(zip(self._attributes, row)) for row in self._rows]

    def column(self, attribute: str) -> List[object]:
        """All values (with multiplicity) of a single attribute."""
        index = self._attribute_index(attribute)
        return [row[index] for row in self._rows]

    # ------------------------------------------------------------------
    # Cache invalidation
    # ------------------------------------------------------------------
    def invalidate_caches(self) -> None:
        """Drop every derived cache: frequencies, attribute indices, columnar view.

        The public API never mutates a relation, so the caches are
        normally valid for the relation's lifetime.  Anything that *does*
        change the row store in place — external code reaching into
        ``_rows``, or future mutable wrappers — must call this before the
        next read, or cached frequencies and the cached columnar view
        keep answering for the old rows (``repro.stream`` sidesteps the
        problem entirely: :class:`~repro.stream.dynamic.DynamicRelation`
        copies the rows it wraps and re-snapshots instead of mutating).
        """
        self._index_cache.clear()
        self._frequency_cache.clear()
        self._columnar_cache = None

    # ------------------------------------------------------------------
    # Columnar view
    # ------------------------------------------------------------------
    def columnar(self, build: bool = True):
        """The dictionary-encoded columnar view of this relation, or ``None``.

        Built lazily on first request and cached for the relation's
        lifetime, so the encoding cost is paid once and amortised over
        every candidate FD scored on the relation (the cost discipline of
        the paper's runtime experiment).  Returns ``None`` when numpy is
        unavailable, or when ``build=False`` and no view has been built
        yet — ``build=False`` lets opportunistic callers (the partition
        layer) use the view only "when it exists".
        """
        if self._columnar_cache is None:
            from repro.relation.columnar import ColumnarRelation, numpy_available

            if not numpy_available():
                return None
            if not build:
                return None
            self._columnar_cache = ColumnarRelation.encode(self)
        return self._columnar_cache

    # ------------------------------------------------------------------
    # Frequencies and active domains
    # ------------------------------------------------------------------
    def frequencies(self, attributes: Optional[Iterable[str] | str] = None) -> Counter:
        """Multiplicity of each distinct tuple of ``attributes``.

        With ``attributes=None`` the multiplicities of full tuples over the
        whole schema are returned, i.e. the map ``w -> R(w)``.
        """
        key = (
            self._attributes
            if attributes is None
            else validate_attributes(
                canonical_attributes(attributes), self._attributes, "projection"
            )
        )
        cached = self._frequency_cache.get(key)
        if cached is not None:
            return Counter(cached)
        indices = self._attribute_indices(key)
        counter: Counter = Counter(tuple(row[i] for i in indices) for row in self._rows)
        self._frequency_cache[key] = Counter(counter)
        return counter

    def active_domain(self, attributes: Iterable[str] | str) -> set:
        """``dom_R(attributes)``: the set of distinct projected tuples."""
        return set(self.frequencies(attributes))

    def distinct_count(self, attributes: Iterable[str] | str) -> int:
        """``|dom_R(attributes)|``."""
        return len(self.frequencies(attributes))

    # ------------------------------------------------------------------
    # Relational operations (bag semantics)
    # ------------------------------------------------------------------
    def project(self, attributes: Iterable[str] | str) -> "Relation":
        """Bag projection ``π_attributes(R)`` (duplicates preserved)."""
        key = validate_attributes(
            canonical_attributes(attributes), self._attributes, "projection"
        )
        indices = self._attribute_indices(key)
        rows = [tuple(row[i] for i in indices) for row in self._rows]
        return Relation(key, rows, name=self.name)

    def select_equal(self, attributes: Iterable[str] | str, values: Sequence[object]) -> "Relation":
        """Bag selection ``σ_{attributes=values}(R)``."""
        key = validate_attributes(
            canonical_attributes(attributes), self._attributes, "selection"
        )
        target = tuple(values) if not isinstance(values, tuple) else values
        if len(target) != len(key):
            raise ValueError(
                f"selection values {target!r} do not match attributes {key!r}"
            )
        indices = self._attribute_indices(key)
        rows = [row for row in self._rows if tuple(row[i] for i in indices) == target]
        return Relation(self._attributes, rows, name=self.name)

    def drop_nulls(self, attributes: Optional[Iterable[str] | str] = None) -> "Relation":
        """Subrelation of tuples with no NULL on any of ``attributes``.

        This implements the NULL semantics of Section VI-A of the paper.
        With ``attributes=None`` all attributes are required non-NULL.
        """
        key = (
            self._attributes
            if attributes is None
            else validate_attributes(
                canonical_attributes(attributes), self._attributes, "drop_nulls"
            )
        )
        indices = self._attribute_indices(key)
        rows = [
            row for row in self._rows if not has_null(tuple(row[i] for i in indices))
        ]
        return Relation(self._attributes, rows, name=self.name)

    def with_rows(self, rows: Iterable[Sequence[object]], name: Optional[str] = None) -> "Relation":
        """A new relation over the same schema with different rows."""
        return Relation(self._attributes, rows, name=self.name if name is None else name)

    def rename(self, mapping: Mapping[str, str]) -> "Relation":
        """Rename attributes according to ``mapping`` (missing keys keep their name)."""
        new_attributes = [mapping.get(attribute, attribute) for attribute in self._attributes]
        return Relation(new_attributes, self._rows, name=self.name)

    def concat(self, other: "Relation") -> "Relation":
        """Bag union (row concatenation) of two relations over the same schema."""
        if self._attributes != other._attributes:
            raise ValueError(
                f"cannot concatenate relations with different schemas: "
                f"{self._attributes} vs {other._attributes}"
            )
        return Relation(self._attributes, self._rows + other._rows, name=self.name)

    # ------------------------------------------------------------------
    # Functional dependencies
    # ------------------------------------------------------------------
    def satisfies(self, fd: FunctionalDependency, ignore_nulls: bool = True) -> bool:
        """Check whether the relation satisfies ``fd``.

        With ``ignore_nulls=True`` (the paper's convention) tuples with a
        NULL in ``lhs ∪ rhs`` are ignored.
        """
        validate_attributes(fd.lhs, self._attributes, "FD LHS")
        validate_attributes(fd.rhs, self._attributes, "FD RHS")
        relation = self.drop_nulls(fd.attributes) if ignore_nulls else self
        lhs_indices = relation._attribute_indices(fd.lhs)
        rhs_indices = relation._attribute_indices(fd.rhs)
        seen: Dict[Row, Row] = {}
        for row in relation._rows:
            lhs_value = tuple(row[i] for i in lhs_indices)
            rhs_value = tuple(row[i] for i in rhs_indices)
            previous = seen.get(lhs_value)
            if previous is None:
                seen[lhs_value] = rhs_value
            elif previous != rhs_value:
                return False
        return True

    def violations(self, fd: FunctionalDependency, ignore_nulls: bool = True) -> List[Row]:
        """All rows that participate in at least one violating pair for ``fd``.

        This is the tuple set ``G2(X -> Y, R)`` of the paper.
        """
        validate_attributes(fd.lhs, self._attributes, "FD LHS")
        validate_attributes(fd.rhs, self._attributes, "FD RHS")
        relation = self.drop_nulls(fd.attributes) if ignore_nulls else self
        lhs_indices = relation._attribute_indices(fd.lhs)
        rhs_indices = relation._attribute_indices(fd.rhs)
        rhs_values_per_group: Dict[Row, set] = {}
        for row in relation._rows:
            lhs_value = tuple(row[i] for i in lhs_indices)
            rhs_value = tuple(row[i] for i in rhs_indices)
            rhs_values_per_group.setdefault(lhs_value, set()).add(rhs_value)
        violating_groups = {
            lhs_value
            for lhs_value, rhs_values in rhs_values_per_group.items()
            if len(rhs_values) > 1
        }
        return [
            row
            for row in relation._rows
            if tuple(row[i] for i in lhs_indices) in violating_groups
        ]

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _attribute_index(self, attribute: str) -> int:
        try:
            return self._attributes.index(attribute)
        except ValueError:
            raise KeyError(
                f"unknown attribute {attribute!r}; available: {list(self._attributes)}"
            ) from None

    def _attribute_indices(self, attributes: Sequence[str]) -> Tuple[int, ...]:
        cached = self._index_cache.get(tuple(attributes))
        if cached is not None:
            return cached
        indices = tuple(self._attribute_index(attribute) for attribute in attributes)
        self._index_cache[tuple(attributes)] = indices
        return indices
