"""CSV input/output for relations.

The RWD benchmark relations are distributed as CSV files; this module
provides loading (with configurable NULL markers and optional numeric
type inference) and saving so that users can run the library on their own
data.  Gzip-compressed files are detected by magic bytes on read (the
extension is not trusted) and written for ``.gz`` paths;
:func:`stream_csv_rows` exposes the row stream without
materialising it, which is what the out-of-core ingest in
:mod:`repro.relation.chunked` builds on.
"""

from __future__ import annotations

import csv
import gzip
from pathlib import Path
from typing import Iterable, Iterator, List, Optional, Sequence, Tuple, Union

from repro.relation.relation import Relation, Row

DEFAULT_NULL_MARKERS = ("", "NULL", "null", "NA", "N/A", "?", "NaN", "nan")


def _coerce(value: str) -> object:
    """Best-effort conversion of a CSV cell to int or float.

    Cells that parse to IEEE NaN (``"NaN"``, ``"-nan"``, ...) become NULL:
    NaN != NaN would break dictionary-encoding and grouping equality, and
    a non-value is what such cells mean anyway.
    """
    try:
        return int(value)
    except ValueError:
        pass
    try:
        number = float(value)
    except ValueError:
        return value
    if number != number:
        return None
    return number


#: The two-byte gzip magic number (RFC 1952).
_GZIP_MAGIC = b"\x1f\x8b"


def _is_gzip_file(path: Path) -> bool:
    """True when the file *content* starts with the gzip magic bytes.

    Extensions lie: mislabeled dumps (gzip bytes in a ``.csv``, plain
    text renamed ``.gz``) are common in the wild, and trusting the
    suffix turns them into ``UnicodeDecodeError`` / ``BadGzipFile``
    noise far from the cause.
    """
    with path.open("rb") as handle:
        return handle.read(2) == _GZIP_MAGIC


def _open_text(path: Path, mode: str = "r"):
    """Open a possibly gzip-compressed text file for csv reading/writing.

    Reads sniff the gzip magic bytes instead of trusting the ``.gz``
    extension; writes (nothing to sniff yet) keep the extension
    convention.
    """
    if "r" in mode:
        if _is_gzip_file(path):
            return gzip.open(path, mode + "t", newline="")
        return path.open(mode, newline="")
    if path.suffix == ".gz":
        return gzip.open(path, mode + "t", newline="")
    return path.open(mode, newline="")


def stream_csv_rows(
    path: Union[str, Path],
    null_markers: Sequence[str] = DEFAULT_NULL_MARKERS,
    infer_types: bool = True,
    delimiter: str = ",",
    max_rows: Optional[int] = None,
) -> Tuple[List[str], Iterator[Row]]:
    """Open a CSV file and return ``(header, lazy row iterator)``.

    The iterator applies the same NULL-marker and type-inference rules as
    :func:`read_csv` but yields rows one at a time, holding the file open
    until exhausted (or closed by garbage collection) — the building block
    for out-of-core ingest.  ``max_rows`` caps the number of data rows
    yielded; ``.gz`` paths are decompressed transparently.
    """
    path = Path(path)
    if max_rows is not None and max_rows < 0:
        raise ValueError(f"max_rows must be >= 0, got {max_rows}")
    null_set = set(null_markers)
    handle = _open_text(path)
    reader = csv.reader(handle, delimiter=delimiter)
    try:
        header = next(reader)
    except StopIteration:
        handle.close()
        raise ValueError(f"CSV file {path} is empty (no header row)") from None

    def rows() -> Iterator[Row]:
        emitted = 0
        with handle:
            for raw_row in reader:
                if max_rows is not None and emitted >= max_rows:
                    break
                if len(raw_row) != len(header):
                    raise ValueError(
                        f"row {raw_row!r} in {path} has {len(raw_row)} cells, "
                        f"expected {len(header)}"
                    )
                converted = []
                for cell in raw_row:
                    if cell in null_set:
                        converted.append(None)
                    elif infer_types:
                        converted.append(_coerce(cell))
                    else:
                        converted.append(cell)
                yield tuple(converted)
                emitted += 1

    return header, rows()


def read_csv(
    path: Union[str, Path],
    null_markers: Sequence[str] = DEFAULT_NULL_MARKERS,
    infer_types: bool = True,
    delimiter: str = ",",
    name: Optional[str] = None,
    max_rows: Optional[int] = None,
) -> Relation:
    """Load a relation from a CSV file with a header row.

    Cells equal to one of ``null_markers`` become NULL (``None``).  With
    ``infer_types=True`` integer- and float-looking cells are converted to
    Python numbers (NaN-parsing cells become NULL).  ``max_rows`` loads
    only the first N data rows; paths ending in ``.gz`` are decompressed
    transparently.
    """
    path = Path(path)
    header, rows = stream_csv_rows(
        path,
        null_markers=null_markers,
        infer_types=infer_types,
        delimiter=delimiter,
        max_rows=max_rows,
    )
    return Relation(header, rows, name=name or path.stem)


def write_csv(
    relation: Relation,
    path: Union[str, Path],
    null_marker: str = "",
    delimiter: str = ",",
) -> Path:
    """Write a relation to a CSV file with a header row.

    NULL cells are written as ``null_marker``; a ``.gz`` path is written
    gzip-compressed.  Returns the path written.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with _open_text(path, "w") as handle:
        writer = csv.writer(handle, delimiter=delimiter)
        writer.writerow(relation.attributes)
        for row in relation:
            writer.writerow([null_marker if cell is None else cell for cell in row])
    return path


def read_csv_directory(
    directory: Union[str, Path], pattern: str = "*.csv", **kwargs
) -> Iterable[Relation]:
    """Load every CSV file in ``directory`` matching ``pattern``."""
    directory = Path(directory)
    for path in sorted(directory.glob(pattern)):
        yield read_csv(path, **kwargs)
