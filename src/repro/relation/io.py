"""CSV input/output for relations.

The RWD benchmark relations are distributed as CSV files; this module
provides loading (with configurable NULL markers and optional numeric
type inference) and saving so that users can run the library on their own
data.
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Iterable, Optional, Sequence, Union

from repro.relation.relation import Relation

DEFAULT_NULL_MARKERS = ("", "NULL", "null", "NA", "N/A", "?")


def _coerce(value: str) -> object:
    """Best-effort conversion of a CSV cell to int or float."""
    try:
        return int(value)
    except ValueError:
        pass
    try:
        return float(value)
    except ValueError:
        return value


def read_csv(
    path: Union[str, Path],
    null_markers: Sequence[str] = DEFAULT_NULL_MARKERS,
    infer_types: bool = True,
    delimiter: str = ",",
    name: Optional[str] = None,
) -> Relation:
    """Load a relation from a CSV file with a header row.

    Cells equal to one of ``null_markers`` become NULL (``None``).  With
    ``infer_types=True`` integer- and float-looking cells are converted to
    Python numbers.
    """
    path = Path(path)
    null_set = set(null_markers)
    with path.open(newline="") as handle:
        reader = csv.reader(handle, delimiter=delimiter)
        try:
            header = next(reader)
        except StopIteration:
            raise ValueError(f"CSV file {path} is empty (no header row)") from None
        rows = []
        for raw_row in reader:
            if len(raw_row) != len(header):
                raise ValueError(
                    f"row {raw_row!r} in {path} has {len(raw_row)} cells, "
                    f"expected {len(header)}"
                )
            converted = []
            for cell in raw_row:
                if cell in null_set:
                    converted.append(None)
                elif infer_types:
                    converted.append(_coerce(cell))
                else:
                    converted.append(cell)
            rows.append(tuple(converted))
    return Relation(header, rows, name=name or path.stem)


def write_csv(
    relation: Relation,
    path: Union[str, Path],
    null_marker: str = "",
    delimiter: str = ",",
) -> Path:
    """Write a relation to a CSV file with a header row.

    NULL cells are written as ``null_marker``.  Returns the path written.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle, delimiter=delimiter)
        writer.writerow(relation.attributes)
        for row in relation:
            writer.writerow([null_marker if cell is None else cell for cell in row])
    return path


def read_csv_directory(
    directory: Union[str, Path], pattern: str = "*.csv", **kwargs
) -> Iterable[Relation]:
    """Load every CSV file in ``directory`` matching ``pattern``."""
    directory = Path(directory)
    for path in sorted(directory.glob(pattern)):
        yield read_csv(path, **kwargs)
