"""Attribute handling utilities.

Attributes are plain strings.  Sets of attributes are represented as
tuples of strings in a canonical (sorted) order so that they can be used
as dictionary keys and compared structurally, mirroring the boldface
``X``, ``Y`` notation of the paper.
"""

from __future__ import annotations

from typing import Iterable, Sequence, Tuple


def canonical_attributes(attributes: Iterable[str] | str) -> Tuple[str, ...]:
    """Return the canonical (sorted, duplicate-free) form of an attribute set.

    A single attribute may be passed as a bare string.

    >>> canonical_attributes("B")
    ('B',)
    >>> canonical_attributes(["B", "A", "B"])
    ('A', 'B')
    """
    if isinstance(attributes, str):
        return (attributes,)
    return tuple(sorted(set(attributes)))


def validate_attributes(
    attributes: Sequence[str], available: Sequence[str], context: str = "attribute set"
) -> Tuple[str, ...]:
    """Validate that ``attributes`` all occur in ``available``.

    Returns the canonical form of ``attributes``.  Raises :class:`KeyError`
    naming the missing attributes otherwise.
    """
    canonical = canonical_attributes(attributes)
    missing = [attribute for attribute in canonical if attribute not in set(available)]
    if missing:
        raise KeyError(
            f"{context} refers to unknown attribute(s) {missing}; "
            f"available attributes are {list(available)}"
        )
    return canonical


def attribute_label(attributes: Sequence[str]) -> str:
    """Human-readable label for an attribute set, e.g. ``"A,B"``."""
    return ",".join(attributes)
