"""Columnar (dictionary-encoded) view of a relation.

The row-oriented :class:`~repro.relation.relation.Relation` stores a bag
of Python tuples — ideal for the paper's formal definitions, hopeless for
the runtime experiment (Table V), where one relation is scanned once per
candidate FD.  :class:`ColumnarRelation` dictionary-encodes each
attribute **once per relation** into an ``int32`` code array (NULL is the
reserved code ``-1``) so that every later scan — NULL restriction,
projection, grouping, partitioning — becomes an array operation:

* :meth:`non_null_mask` replaces a Python ``drop_nulls`` row scan;
* :meth:`packed` row-packs several attributes into one dense ``int64``
  code per row (iterated pairwise with overflow-safe re-densification);
* :meth:`grouped` is a first-occurrence-ordered group-by built on
  ``np.unique`` over packed codes.

Crucially for the pluggable statistics backends
(:mod:`repro.core.backends`), codes are assigned in **first-occurrence
order**: the group enumeration order of the columnar group-by is exactly
the insertion order of the ``Counter``-based Python path, which is what
makes cross-backend bit-identical scores possible.

The view is cached on the relation (see :meth:`Relation.columnar`) and
requires numpy; :func:`numpy_available` gates every caller so the pure
Python paths keep working when numpy is absent.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

try:  # pragma: no cover - exercised by the no-numpy CI job
    import numpy as np
except ImportError:  # pragma: no cover
    np = None  # type: ignore[assignment]

#: Reserved code for NULL cells in every encoded column.
NULL_CODE = -1

#: Re-densify packed codes before the accumulator could overflow int64.
_PACK_LIMIT = 2**62


def numpy_available() -> bool:
    """True when the columnar substrate can be used at all."""
    return np is not None


class _EncodedColumn:
    """One dictionary-encoded attribute: codes, decode table, null count."""

    __slots__ = ("codes", "values", "first_rows", "null_count")

    def __init__(
        self,
        codes: "np.ndarray",
        values: List[object],
        first_rows: List[int],
        null_count: int,
    ):
        self.codes = codes
        self.values = values
        self.first_rows = first_rows
        self.null_count = null_count

    @property
    def cardinality(self) -> int:
        """Number of distinct non-NULL values."""
        return len(self.values)


class GroupBy:
    """Result of a first-occurrence-ordered group-by over packed codes.

    ``codes[i]`` is the dense group id (``0 .. num_groups - 1``) of the
    ``i``-th *selected* row (all rows, or the rows of the mask given to
    :meth:`ColumnarRelation.grouped`); group ids are assigned in order of
    each group's first selected row.  ``counts[g]`` is the group's
    multiplicity and ``first_rows[g]`` the original row index of its
    first occurrence, so callers can rebuild the group's value tuple in
    O(1) per group instead of O(1) per row.
    """

    __slots__ = ("codes", "counts", "first_rows")

    def __init__(self, codes: "np.ndarray", counts: "np.ndarray", first_rows: "np.ndarray"):
        self.codes = codes
        self.counts = counts
        self.first_rows = first_rows

    @property
    def num_groups(self) -> int:
        return int(self.counts.shape[0])


def _dense_first_occurrence(packed: "np.ndarray") -> Tuple["np.ndarray", "np.ndarray", "np.ndarray"]:
    """Densify arbitrary int codes into first-occurrence-ordered group ids.

    Returns ``(dense_codes, counts, first_positions)`` where
    ``first_positions`` indexes into ``packed``.
    """
    unique, first, inverse, counts = np.unique(
        packed, return_index=True, return_inverse=True, return_counts=True
    )
    del unique
    order = np.argsort(first, kind="stable")
    rank = np.empty(order.shape[0], dtype=np.int64)
    rank[order] = np.arange(order.shape[0], dtype=np.int64)
    return rank[inverse], counts[order], first[order]


class ColumnarRelation:
    """Dictionary-encoded columns of one relation.

    Build via :meth:`encode` (or, preferably, :meth:`Relation.columnar`,
    which caches the view on the relation).  The view holds a reference
    to the relation's row list for O(1) value-tuple reconstruction; it
    never mutates the relation.
    """

    def __init__(
        self,
        attributes: Tuple[str, ...],
        rows: Sequence[Tuple[object, ...]],
        columns: Dict[str, _EncodedColumn],
    ):
        self.attributes = attributes
        self._rows = rows
        self._columns = columns
        self.num_rows = len(rows)
        self._pack_cache: Dict[Tuple[str, ...], "np.ndarray"] = {}
        self._group_cache: Dict[Tuple[str, ...], GroupBy] = {}

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def encode(cls, relation) -> "ColumnarRelation":
        """Dictionary-encode every attribute of ``relation``.

        This is the only O(rows x attributes) Python pass of the columnar
        substrate; everything downstream operates on the code arrays.
        """
        if np is None:  # pragma: no cover - guarded by numpy_available()
            raise ImportError("the columnar relation view requires numpy")
        rows = relation._rows
        num_rows = len(rows)
        columns: Dict[str, _EncodedColumn] = {}
        for position, attribute in enumerate(relation.attributes):
            codes = np.empty(num_rows, dtype=np.int32)
            mapping: Dict[object, int] = {}
            values: List[object] = []
            first_rows: List[int] = []
            null_count = 0
            for index, row in enumerate(rows):
                value = row[position]
                if value is None:
                    codes[index] = NULL_CODE
                    null_count += 1
                    continue
                code = mapping.get(value)
                if code is None:
                    code = len(values)
                    mapping[value] = code
                    values.append(value)
                    first_rows.append(index)
                codes[index] = code
            columns[attribute] = _EncodedColumn(codes, values, first_rows, null_count)
        return cls(tuple(relation.attributes), rows, columns)

    # ------------------------------------------------------------------
    # Column access
    # ------------------------------------------------------------------
    def codes(self, attribute: str) -> "np.ndarray":
        """The int32 code array of one attribute (``-1`` marks NULL)."""
        return self._column(attribute).codes

    def cardinality(self, attribute: str) -> int:
        """Number of distinct non-NULL values of one attribute."""
        return self._column(attribute).cardinality

    def decode_table(self, attribute: str) -> List[object]:
        """Code -> value table of one attribute, in first-occurrence order."""
        return self._column(attribute).values

    def null_count(self, attribute: str) -> int:
        return self._column(attribute).null_count

    def has_nulls(self, attributes: Sequence[str]) -> bool:
        return any(self._column(attribute).null_count > 0 for attribute in attributes)

    def _column(self, attribute: str) -> _EncodedColumn:
        try:
            return self._columns[attribute]
        except KeyError:
            raise KeyError(
                f"unknown attribute {attribute!r}; available: {list(self.attributes)}"
            ) from None

    # ------------------------------------------------------------------
    # NULL restriction
    # ------------------------------------------------------------------
    def non_null_mask(self, attributes: Sequence[str]) -> Optional["np.ndarray"]:
        """Boolean row mask: non-NULL on *every* given attribute.

        Returns ``None`` when no row is masked out (the common case),
        letting callers skip the fancy-indexing copy entirely.
        """
        mask: Optional["np.ndarray"] = None
        for attribute in attributes:
            column = self._column(attribute)
            if column.null_count == 0:
                continue
            column_mask = column.codes >= 0
            mask = column_mask if mask is None else (mask & column_mask)
        return mask

    # ------------------------------------------------------------------
    # Row packing and grouping
    # ------------------------------------------------------------------
    def packed(self, attributes: Sequence[str]) -> "np.ndarray":
        """One dense ``int64`` code per row over the attribute combination.

        NULL participates as an ordinary value (matching dict grouping,
        where ``None`` is a regular key); codes are densified via
        ``np.unique`` and therefore **sorted-order** dense, not
        first-occurrence-ordered — use :meth:`grouped` when enumeration
        order matters.  Cached per attribute tuple.
        """
        key = tuple(attributes)
        cached = self._pack_cache.get(key)
        if cached is not None:
            return cached
        packed = self._pack([self._column(a) for a in key], mask=None)
        if len(key) > 1:
            _, packed = np.unique(packed, return_inverse=True)
        self._pack_cache[key] = packed
        return packed

    def _pack(self, columns: List[_EncodedColumn], mask: Optional["np.ndarray"]) -> "np.ndarray":
        """Pairwise mixed-radix packing with overflow-safe densification."""
        first = columns[0]
        accumulator = first.codes.astype(np.int64)
        if mask is not None:
            accumulator = accumulator[mask]
        accumulator = accumulator + 1  # NULL_CODE -> 0
        maximum = first.cardinality  # codes now in [0, cardinality]
        for column in columns[1:]:
            radix = column.cardinality + 2  # room for the NULL slot
            if maximum >= _PACK_LIMIT // radix:
                _, accumulator = np.unique(accumulator, return_inverse=True)
                maximum = int(accumulator.max(initial=0))
            codes = column.codes
            if mask is not None:
                codes = codes[mask]
            accumulator = accumulator * radix + (codes.astype(np.int64) + 1)
            maximum = maximum * radix + column.cardinality + 1
        return accumulator

    def grouped(self, attributes: Sequence[str], mask: Optional["np.ndarray"] = None) -> GroupBy:
        """First-occurrence-ordered group-by over an attribute combination.

        With ``mask`` given, only the masked rows participate and group
        order follows first occurrence *within the masked subset* (NULL
        restriction can reorder first occurrences, so masked grouping
        never reuses the unmasked dense codes).

        Unmasked group-bys are cached per attribute tuple: the
        FD-independent groupings (single attributes, the full-tuple
        grouping of NULL-free relations) are computed once per relation
        and shared by every candidate FD.  Callers must not mutate the
        returned arrays.
        """
        key = tuple(attributes)
        if mask is None:
            cached = self._group_cache.get(key)
            if cached is not None:
                return cached
        columns = [self._column(a) for a in key]
        if mask is None and len(columns) == 1 and columns[0].null_count == 0:
            # The encoding itself already is a dense first-occurrence
            # group-by of a single NULL-free attribute.
            column = columns[0]
            counts = np.bincount(column.codes, minlength=column.cardinality)
            result = GroupBy(
                column.codes.astype(np.int64),
                counts.astype(np.int64),
                np.asarray(column.first_rows, dtype=np.int64),
            )
        else:
            packed = self._pack(columns, mask)
            dense, counts, first_positions = _dense_first_occurrence(packed)
            if mask is not None:
                first_positions = np.flatnonzero(mask)[first_positions]
            result = GroupBy(dense, counts, first_positions)
        if mask is None:
            self._group_cache[key] = result
        return result

    def group_pair(self, left: GroupBy, right: GroupBy) -> GroupBy:
        """Group-by of the pair of two already-dense groupings.

        Both groupings must cover the same row selection.  Unlike
        :meth:`grouped`, the result's ``first_rows`` are *selection-local*
        positions (indices into ``left.codes``/``right.codes``), which is
        what pair-level callers need to look up each pair group's parent
        group ids.
        """
        packed = left.codes * np.int64(right.num_groups + 1) + right.codes
        dense, counts, first_positions = _dense_first_occurrence(packed)
        return GroupBy(dense, counts, first_positions)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"<ColumnarRelation: {self.num_rows} rows x "
            f"{len(self.attributes)} encoded attributes>"
        )
