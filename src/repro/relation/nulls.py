"""NULL value handling.

The paper (Section VI-A) ignores NULL values when checking FD satisfaction
and when computing measure scores: the score of a measure ``f`` on
``(X -> Y, R)`` is computed on the subrelation of ``R`` consisting of all
tuples that are non-NULL on every attribute in ``X ∪ Y``.

We represent NULL as Python ``None``; the helpers below centralise the
convention so that the rest of the code never compares against ``None``
directly.
"""

from __future__ import annotations

from typing import Any

#: The canonical NULL marker used throughout the library.
NULL = None


def is_null(value: Any) -> bool:
    """Return True if ``value`` represents a NULL cell.

    ``None`` is NULL.  For convenience when loading CSV files, the empty
    string is *not* treated as NULL here; :mod:`repro.relation.io` maps
    configurable textual null markers to ``None`` at parse time.
    """
    return value is None


def has_null(values: tuple) -> bool:
    """Return True if any component of a tuple is NULL."""
    return any(value is None for value in values)
