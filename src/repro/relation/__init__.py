"""Bag-based relation substrate.

This subpackage implements the relational machinery the paper relies on:
bag-based relations (Section III of the paper), attribute handling,
functional dependencies and their satisfaction, bag projection and
selection, NULL handling (Section VI-A), stripped partitions (position
list indices) and CSV input/output.
"""

from repro.relation.attribute import canonical_attributes, validate_attributes
from repro.relation.chunked import ChunkedRelation, CodeChunk
from repro.relation.fd import FunctionalDependency
from repro.relation.nulls import NULL, is_null
from repro.relation.partition import StrippedPartition
from repro.relation.relation import Relation
from repro.relation.operations import (
    group_counts,
    joint_counts,
    marginal_counts,
    project,
    select_equal,
)

__all__ = [
    "ChunkedRelation",
    "CodeChunk",
    "FunctionalDependency",
    "NULL",
    "Relation",
    "StrippedPartition",
    "canonical_attributes",
    "group_counts",
    "is_null",
    "joint_counts",
    "marginal_counts",
    "project",
    "select_equal",
    "validate_attributes",
]
