"""Stripped partitions (position list indices).

A *partition* of a relation ``R`` under an attribute set ``X`` groups the
row positions of ``R`` by their ``X``-value.  The *stripped* partition
drops singleton groups; it is the classical data structure (also called a
position list index, PLI) used by TANE-style dependency discovery
algorithms and gives linear-time computation of the ``g3`` error as well
as cheap partition products for lattice traversal.

The partition substrate is used by :mod:`repro.discovery.lattice` (the
non-linear AFD discovery extension) and provides an independent
implementation of FD satisfaction and ``g3`` used for cross-validation in
the test suite.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence, Tuple

from repro.relation.attribute import canonical_attributes
from repro.relation.relation import Relation


class StrippedPartition:
    """A stripped partition of row positions grouped by attribute values.

    Parameters
    ----------
    num_rows:
        Number of rows of the underlying relation.
    clusters:
        Groups of row positions with identical values, each of size >= 2.
    attributes:
        The attribute set the partition was computed over (informational).
    """

    def __init__(
        self,
        num_rows: int,
        clusters: Iterable[Sequence[int]],
        attributes: Tuple[str, ...] = (),
    ):
        self.num_rows = num_rows
        self.attributes = tuple(attributes)
        self.clusters: List[Tuple[int, ...]] = [
            tuple(sorted(cluster)) for cluster in clusters if len(cluster) >= 2
        ]
        self.clusters.sort()

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_relation(
        cls, relation: Relation, attributes: Iterable[str] | str
    ) -> "StrippedPartition":
        """Compute the stripped partition of ``relation`` under ``attributes``."""
        key = canonical_attributes(attributes)
        indices = relation._attribute_indices(key)
        groups: Dict[Tuple[object, ...], List[int]] = {}
        for position, row in enumerate(relation):
            value = tuple(row[i] for i in indices)
            groups.setdefault(value, []).append(position)
        return cls(relation.num_rows, groups.values(), attributes=key)

    # ------------------------------------------------------------------
    # Derived quantities
    # ------------------------------------------------------------------
    @property
    def size(self) -> int:
        """Number of non-singleton clusters, ``|π|`` in TANE notation."""
        return len(self.clusters)

    @property
    def total_positions(self) -> int:
        """Number of row positions covered by non-singleton clusters, ``||π||``."""
        return sum(len(cluster) for cluster in self.clusters)

    @property
    def num_groups(self) -> int:
        """Total number of equivalence classes, including singletons."""
        return self.num_rows - self.total_positions + self.size

    def error(self) -> float:
        """The TANE error ``e(X) = (||π|| - |π|) / |R|``.

        This equals ``1 - |dom_R(X)| / |R|`` and is 0 exactly when the
        attribute set is a key of the relation.
        """
        if self.num_rows == 0:
            return 0.0
        return (self.total_positions - self.size) / self.num_rows

    # ------------------------------------------------------------------
    # Partition algebra
    # ------------------------------------------------------------------
    def refines(self, other: "StrippedPartition") -> bool:
        """True when every cluster of ``self`` is contained in a cluster of ``other``.

        ``π_X`` refines ``π_Y`` if and only if the FD ``X -> Y`` holds.
        """
        owner = [-1] * self.num_rows
        for cluster_id, cluster in enumerate(other.clusters):
            for position in cluster:
                owner[position] = cluster_id
        for cluster in self.clusters:
            # Singleton clusters of ``other`` have owner -1; all positions in a
            # cluster of ``self`` must map to the same owner, and that owner
            # must not be a singleton unless the cluster itself is trivial.
            owners = {owner[position] for position in cluster}
            if len(owners) > 1:
                return False
            if owners == {-1} and len(cluster) > 1:
                return False
        return True

    def intersect(self, other: "StrippedPartition") -> "StrippedPartition":
        """The partition product ``π_X · π_Z`` (grouping by ``X ∪ Z``)."""
        if self.num_rows != other.num_rows:
            raise ValueError(
                f"cannot intersect partitions over relations of different sizes "
                f"({self.num_rows} vs {other.num_rows})"
            )
        owner = [-1] * self.num_rows
        for cluster_id, cluster in enumerate(other.clusters):
            for position in cluster:
                owner[position] = cluster_id
        new_clusters: List[List[int]] = []
        for cluster in self.clusters:
            sub_groups: Dict[int, List[int]] = {}
            for position in cluster:
                other_id = owner[position]
                if other_id == -1:
                    continue
                sub_groups.setdefault(other_id, []).append(position)
            for group in sub_groups.values():
                if len(group) >= 2:
                    new_clusters.append(group)
        attributes = canonical_attributes(self.attributes + other.attributes)
        return StrippedPartition(self.num_rows, new_clusters, attributes=attributes)

    # ------------------------------------------------------------------
    # FD-related quantities
    # ------------------------------------------------------------------
    def g3_error(self, joint: "StrippedPartition") -> float:
        """``1 - g3`` computed from the LHS partition and the LHS∪RHS partition.

        Using the classical identity: the maximal satisfying subrelation keeps,
        for every LHS group, the largest sub-group that agrees on the RHS.
        """
        if self.num_rows == 0:
            return 0.0
        # Map positions to the size of their joint cluster (1 for singletons).
        joint_cluster_size = [1] * self.num_rows
        joint_cluster_id = [-1] * self.num_rows
        for cluster_id, cluster in enumerate(joint.clusters):
            for position in cluster:
                joint_cluster_size[position] = len(cluster)
                joint_cluster_id[position] = cluster_id
        kept = 0
        covered = 0
        for cluster in self.clusters:
            best = 1
            seen: Dict[int, int] = {}
            for position in cluster:
                cluster_id = joint_cluster_id[position]
                if cluster_id == -1:
                    continue
                seen[cluster_id] = joint_cluster_size[position]
            if seen:
                best = max(best, max(seen.values()))
            kept += best
            covered += len(cluster)
        # Rows outside any LHS cluster are singletons on the LHS and always kept.
        kept += self.num_rows - covered
        return (self.num_rows - kept) / self.num_rows

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        label = ",".join(self.attributes) or "?"
        return f"<StrippedPartition over {label}: {self.size} clusters>"


def partition_for(relation: Relation, attributes: Iterable[str] | str) -> StrippedPartition:
    """Convenience wrapper for :meth:`StrippedPartition.from_relation`."""
    return StrippedPartition.from_relation(relation, attributes)
