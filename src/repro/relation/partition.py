"""Stripped partitions (position list indices).

A *partition* of a relation ``R`` under an attribute set ``X`` groups the
row positions of ``R`` by their ``X``-value.  The *stripped* partition
drops singleton groups; it is the classical data structure (also called a
position list index, PLI) used by TANE-style dependency discovery
algorithms and gives linear-time computation of the ``g3`` error as well
as cheap partition products for lattice traversal.

The partition substrate backs :mod:`repro.discovery.lattice`, the
level-wise multi-attribute AFD discovery engine: lattice nodes are
attribute sets whose partitions are built incrementally as products of
their parents' partitions.  To keep level-``k`` products cheaper than
recomputing from the relation, every partition lazily materialises one
*probe table* (a position -> cluster-id array) that is shared by
:meth:`refines`, :meth:`intersect` and :meth:`g3_error`; repeated
products against the same partition therefore pay the ``O(|R|)`` table
construction only once.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.relation.attribute import canonical_attributes
from repro.relation.relation import Relation

try:  # pragma: no cover - exercised by the no-numpy CI job
    import numpy as np
except ImportError:  # pragma: no cover
    np = None  # type: ignore[assignment]

#: Below this many covered positions the dict-probing product is cheaper
#: than materialising numpy owner arrays; above it the vectorised
#: group-by wins.  Both paths produce identical partitions.
_VECTORISE_THRESHOLD = 512


def _split_clusters(positions: "np.ndarray", codes: "np.ndarray") -> List[Tuple[int, ...]]:
    """Group ``positions`` by their parallel ``codes`` into position clusters.

    Shared tail of every code-array grouping (:func:`_clusters_from_codes`
    and the vectorised :meth:`StrippedPartition.intersect`): stable-sort
    by code, split at code boundaries.  Input pairs whose code occurs
    once survive as singleton clusters, which the
    :class:`StrippedPartition` constructor strips.
    """
    if positions.shape[0] == 0:
        return []
    order = np.argsort(codes, kind="stable")
    sorted_positions = positions[order]
    boundaries = np.flatnonzero(np.diff(codes[order])) + 1
    return [tuple(chunk.tolist()) for chunk in np.split(sorted_positions, boundaries)]


def _clusters_from_codes(codes: "np.ndarray") -> List[Tuple[int, ...]]:
    """Non-singleton position clusters of a dense int code array."""
    counts = np.bincount(codes)
    keep = counts >= 2
    if not keep.any():
        return []
    positions = np.flatnonzero(keep[codes])
    return _split_clusters(positions, codes[positions])


class StrippedPartition:
    """A stripped partition of row positions grouped by attribute values.

    Parameters
    ----------
    num_rows:
        Number of rows of the underlying relation.
    clusters:
        Groups of row positions with identical values, each of size >= 2.
    attributes:
        The attribute set the partition was computed over (informational).
    """

    def __init__(
        self,
        num_rows: int,
        clusters: Iterable[Sequence[int]],
        attributes: Tuple[str, ...] = (),
    ):
        self.num_rows = num_rows
        self.attributes = tuple(attributes)
        self.clusters: List[Tuple[int, ...]] = [
            tuple(sorted(cluster)) for cluster in clusters if len(cluster) >= 2
        ]
        self.clusters.sort()
        self._probe_cache: Optional[List[int]] = None
        self._owner_cache = None  # numpy mirror of the probe table
        self._error_cache: Optional[float] = None

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_relation(
        cls, relation: Relation, attributes: Iterable[str] | str
    ) -> "StrippedPartition":
        """Compute the stripped partition of ``relation`` under ``attributes``.

        When the relation's columnar view exists (see
        :meth:`Relation.columnar`), the grouping runs over the cached
        code arrays instead of probing a dict per row; both paths yield
        identical partitions (partitions treat NULL as an ordinary
        value, exactly like the ``None`` dict key of the row scan).
        """
        key = canonical_attributes(attributes)
        columnar = relation.columnar(build=False)
        if columnar is not None:
            return cls(
                relation.num_rows,
                _clusters_from_codes(columnar.packed(key)),
                attributes=key,
            )
        indices = relation._attribute_indices(key)
        groups: Dict[Tuple[object, ...], List[int]] = {}
        for position, row in enumerate(relation):
            value = tuple(row[i] for i in indices)
            groups.setdefault(value, []).append(position)
        return cls(relation.num_rows, groups.values(), attributes=key)

    # ------------------------------------------------------------------
    # Derived quantities
    # ------------------------------------------------------------------
    @property
    def size(self) -> int:
        """Number of non-singleton clusters, ``|π|`` in TANE notation."""
        return len(self.clusters)

    @property
    def total_positions(self) -> int:
        """Number of row positions covered by non-singleton clusters, ``||π||``."""
        return sum(len(cluster) for cluster in self.clusters)

    @property
    def num_groups(self) -> int:
        """Total number of equivalence classes, including singletons."""
        return self.num_rows - self.total_positions + self.size

    def error(self) -> float:
        """The TANE error ``e(X) = (||π|| - |π|) / |R|``.

        This equals ``1 - |dom_R(X)| / |R|`` and is 0 exactly when the
        attribute set is a key of the relation.
        """
        if self._error_cache is None:
            if self.num_rows == 0:
                self._error_cache = 0.0
            else:
                self._error_cache = (self.total_positions - self.size) / self.num_rows
        return self._error_cache

    def is_key(self) -> bool:
        """True when the attribute set is a key (every cluster is a singleton)."""
        return not self.clusters

    # ------------------------------------------------------------------
    # Probe table
    # ------------------------------------------------------------------
    def probe_table(self) -> List[int]:
        """Position -> cluster-id array (-1 for stripped singletons).

        Built once and cached; callers must not mutate the returned list.
        The table is what makes repeated partition products against the
        same partition cheap: :meth:`intersect`, :meth:`refines` and
        :meth:`g3_error` all probe it instead of rebuilding an owner map.
        """
        if self._probe_cache is None:
            owner = [-1] * self.num_rows
            for cluster_id, cluster in enumerate(self.clusters):
                for position in cluster:
                    owner[position] = cluster_id
            self._probe_cache = owner
        return self._probe_cache

    def _owner_array(self) -> "np.ndarray":
        """The probe table as a cached numpy array (requires numpy)."""
        if self._owner_cache is None:
            if self._probe_cache is not None:
                self._owner_cache = np.asarray(self._probe_cache, dtype=np.int64)
            else:
                owner = np.full(self.num_rows, -1, dtype=np.int64)
                for cluster_id, cluster in enumerate(self.clusters):
                    owner[list(cluster)] = cluster_id
                self._owner_cache = owner
        return self._owner_cache

    def _check_compatible(self, other: "StrippedPartition", operation: str) -> None:
        if self.num_rows != other.num_rows:
            raise ValueError(
                f"cannot {operation} partitions over relations of different sizes "
                f"({self.num_rows} vs {other.num_rows})"
            )

    # ------------------------------------------------------------------
    # Partition algebra
    # ------------------------------------------------------------------
    def refines(self, other: "StrippedPartition") -> bool:
        """True when every cluster of ``self`` is contained in a cluster of ``other``.

        ``π_X`` refines ``π_Y`` if and only if the FD ``X -> Y`` holds.
        """
        self._check_compatible(other, "compare")
        owner = other.probe_table()
        for cluster in self.clusters:
            # Singleton clusters of ``other`` have owner -1; all positions in a
            # cluster of ``self`` must map to the same owner, and that owner
            # must not be a singleton unless the cluster itself is trivial.
            owners = {owner[position] for position in cluster}
            if len(owners) > 1:
                return False
            if owners == {-1} and len(cluster) > 1:
                return False
        return True

    def intersect(self, other: "StrippedPartition") -> "StrippedPartition":
        """The partition product ``π_X · π_Z`` (grouping by ``X ∪ Z``).

        The product is symmetric; internally the side covering fewer
        positions walks its clusters and probes the other side's cached
        :meth:`probe_table`, so chains of products — as produced by the
        lattice traversal — only pay for the positions that can still
        collide.  Large products (both sides covering many positions)
        take a vectorised route over the cached numpy owner arrays
        instead of dict probing; the resulting partition is identical.
        """
        self._check_compatible(other, "intersect")
        if (
            np is not None
            and min(self.total_positions, other.total_positions) >= _VECTORISE_THRESHOLD
        ):
            own = self._owner_array()
            theirs = other._owner_array()
            positions = np.flatnonzero((own >= 0) & (theirs >= 0))
            pair_codes = own[positions] * np.int64(len(other.clusters)) + theirs[positions]
            _, dense = np.unique(pair_codes, return_inverse=True)
            keep = (np.bincount(dense) >= 2)[dense]
            new_clusters = _split_clusters(positions[keep], dense[keep])
            attributes = canonical_attributes(self.attributes + other.attributes)
            return StrippedPartition(self.num_rows, new_clusters, attributes=attributes)
        if self.total_positions <= other.total_positions:
            walk, probe = self, other
        else:
            walk, probe = other, self
        owner = probe.probe_table()
        new_clusters: List[List[int]] = []
        for cluster in walk.clusters:
            sub_groups: Dict[int, List[int]] = {}
            for position in cluster:
                other_id = owner[position]
                if other_id == -1:
                    continue
                sub_groups.setdefault(other_id, []).append(position)
            for group in sub_groups.values():
                if len(group) >= 2:
                    new_clusters.append(group)
        attributes = canonical_attributes(self.attributes + other.attributes)
        return StrippedPartition(self.num_rows, new_clusters, attributes=attributes)

    # ------------------------------------------------------------------
    # FD-related quantities
    # ------------------------------------------------------------------
    def g3_error(self, joint: "StrippedPartition") -> float:
        """``1 - g3`` computed from the LHS partition and the LHS∪RHS partition.

        Using the classical identity: the maximal satisfying subrelation keeps,
        for every LHS group, the largest sub-group that agrees on the RHS.
        """
        self._check_compatible(joint, "compute the g3 error from")
        if self.num_rows == 0:
            return 0.0
        joint_owner = joint.probe_table()
        joint_sizes = [len(cluster) for cluster in joint.clusters]
        kept = 0
        covered = 0
        for cluster in self.clusters:
            best = 1
            for position in cluster:
                cluster_id = joint_owner[position]
                if cluster_id == -1:
                    continue
                size = joint_sizes[cluster_id]
                if size > best:
                    best = size
            kept += best
            covered += len(cluster)
        # Rows outside any LHS cluster are singletons on the LHS and always kept.
        kept += self.num_rows - covered
        return (self.num_rows - kept) / self.num_rows

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        label = ",".join(self.attributes) or "?"
        return f"<StrippedPartition over {label}: {self.size} clusters>"


def partition_for(relation: Relation, attributes: Iterable[str] | str) -> StrippedPartition:
    """Convenience wrapper for :meth:`StrippedPartition.from_relation`."""
    return StrippedPartition.from_relation(relation, attributes)
