"""The service application core: named sessions + one operation executor.

This module is the HTTP- and transport-agnostic half of the server:

* :class:`ServiceState` — the thread-safe registry of named
  :class:`~repro.service.session.AfdSession`\\ s (one per relation);
* :func:`execute` — the single entry point that runs one named
  operation (``healthz``, ``relations``, ``register``, ``score``,
  ``score_batch``, ``discover``, ``delta``) against a state and returns
  ``(http_status, json_body)``, converting every failure into the
  :class:`~repro.service.model.ServiceError` envelope contract.

Both serving modes share it verbatim: the in-process (``--workers 0``)
front end calls :func:`execute` directly, and every shard worker of
:mod:`repro.service.shard` calls it inside its own process — which is
what makes sharded responses bit-identical to single-process serving.
"""

from __future__ import annotations

import os
import threading
import time
from typing import Callable, Dict, List, Optional, Tuple

from repro import __version__
from repro.obs.metrics import get_registry
from repro.relation.relation import Relation
from repro.service.model import (
    BatchScoreRequest,
    ProfileRequest,
    ServiceError,
)
from repro.service.session import AfdSession


class ServiceState:
    """The server's session registry (thread-safe)."""

    def __init__(
        self,
        backend: Optional[str] = None,
        measure_options: Optional[Dict[str, object]] = None,
    ):
        self._backend = backend
        self._measure_options = dict(measure_options or {})
        self._sessions: Dict[str, AfdSession] = {}
        self._lock = threading.Lock()
        self.started = time.time()

    def register_session(self, name: str, session: AfdSession, replace: bool = False) -> None:
        with self._lock:
            if name in self._sessions and not replace:
                raise FileExistsError(
                    f"relation {name!r} is already registered (pass 'replace': true)"
                )
            self._sessions[name] = session

    def register_relation(self, payload: Dict[str, object]) -> AfdSession:
        """Build and register a session from a ``POST /v1/relations`` body."""
        for key in ("name", "attributes", "rows"):
            if key not in payload:
                raise ValueError(f"relation payload is missing {key!r}")
        name = str(payload["name"])
        if not name:
            raise ValueError("relation name must be non-empty")
        attributes = payload["attributes"]
        rows = [tuple(row) for row in payload["rows"]]  # type: ignore[union-attr]
        window = payload.get("window")
        dynamic = bool(payload.get("dynamic", False)) or window is not None
        chunk_size = payload.get("chunk_size")
        jobs = payload.get("jobs", 1)
        chunked = bool(payload.get("chunked", False)) or chunk_size is not None
        if dynamic and chunked:
            raise ValueError(
                "a relation cannot be both dynamic and chunked; dynamic "
                "sessions scale through incremental trackers"
            )
        session_options: Dict[str, object] = {}
        if dynamic:
            from repro.stream.dynamic import DynamicRelation

            relation = DynamicRelation(
                attributes,  # type: ignore[arg-type]
                rows,
                name=name,
                window=None if window is None else int(window),  # type: ignore[arg-type]
            )
        elif chunked:
            from repro.relation.chunked import ChunkedRelation

            chunk_options = (
                {} if chunk_size is None else {"chunk_size": int(chunk_size)}  # type: ignore[arg-type]
            )
            relation = ChunkedRelation(attributes, rows, name=name, **chunk_options)  # type: ignore[arg-type]
            session_options["jobs"] = int(jobs)  # type: ignore[arg-type]
        else:
            relation = Relation(attributes, rows, name=name)  # type: ignore[arg-type]
            if jobs != 1:
                session_options["jobs"] = int(jobs)  # type: ignore[arg-type]
        session = AfdSession(
            relation,
            backend=self._backend,
            name=name,
            **session_options,
            **self._measure_options,
        )
        self.register_session(name, session, replace=bool(payload.get("replace", False)))
        return session

    def session(self, name: str) -> AfdSession:
        with self._lock:
            session = self._sessions.get(name)
        if session is None:
            raise KeyError(f"unknown relation {name!r}; registered: {self.session_names()}")
        return session

    def session_names(self) -> List[str]:
        with self._lock:
            return sorted(self._sessions)

    def describe(self) -> List[Dict[str, object]]:
        with self._lock:
            sessions = list(self._sessions.values())
        return sorted(
            (session.describe() for session in sessions),
            key=lambda entry: str(entry["name"]),
        )


# ----------------------------------------------------------------------
# Operation executor
# ----------------------------------------------------------------------
def _resolve_session(state: ServiceState, payload: Dict[str, object]) -> AfdSession:
    name = payload.get("relation")
    if not isinstance(name, str) or not name:
        raise ServiceError(
            "malformed_record", "the request must name the target relation"
        )
    try:
        return state.session(name)
    except KeyError:
        raise ServiceError(
            "unknown_relation",
            f"unknown relation {name!r}",
            detail={"relation": name, "registered": state.session_names()},
        ) from None


def _op_healthz(state: ServiceState, payload: Dict[str, object]) -> Tuple[int, Dict]:
    return 200, {
        "status": "ok",
        "version": __version__,
        "sessions": state.session_names(),
        "uptime_seconds": time.time() - state.started,
    }


def _op_relations(state: ServiceState, payload: Dict[str, object]) -> Tuple[int, Dict]:
    return 200, {"relations": state.describe()}


def _op_metrics(state: ServiceState, payload: Dict[str, object]) -> Tuple[int, Dict]:
    """This process's metrics snapshot (mergeable; see ``repro.obs.metrics``)."""
    return 200, get_registry().to_dict()


def _op_stats(state: ServiceState, payload: Dict[str, object]) -> Tuple[int, Dict]:
    """Operational JSON snapshot: caches, pool counters, metric totals."""
    from repro.core.chunked import pool_info

    sessions = []
    for name in state.session_names():
        session = state.session(name)
        sessions.append(
            {
                "name": name,
                "num_rows": session.num_rows,
                "cache": session.cache_info(),
            }
        )
    return 200, {
        "pid": os.getpid(),
        "sessions": sessions,
        "pool": pool_info(),
        "metrics_totals": get_registry().totals(),
    }


def _op_worker_info(state: ServiceState, payload: Dict[str, object]) -> Tuple[int, Dict]:
    """Cheap liveness probe payload for the sharded healthz detail."""
    names = state.session_names()
    return 200, {"pid": os.getpid(), "relations": names, "sessions": len(names)}


def _op_register(state: ServiceState, payload: Dict[str, object]) -> Tuple[int, Dict]:
    try:
        session = state.register_relation(payload)
    except FileExistsError as error:
        raise ServiceError(
            "relation_exists", str(error), detail={"relation": payload.get("name")}
        ) from None
    except (TypeError, ValueError) as error:
        raise ServiceError("malformed_record", str(error)) from None
    return 201, session.describe()


def _op_score(state: ServiceState, payload: Dict[str, object]) -> Tuple[int, Dict]:
    session = _resolve_session(state, payload)
    request = ProfileRequest.from_dict(
        {"fd": payload.get("fd"), "measures": payload.get("measures")}
    )
    return 200, session.profile(request).to_dict()


def _op_score_batch(state: ServiceState, payload: Dict[str, object]) -> Tuple[int, Dict]:
    session = _resolve_session(state, payload)
    batch = BatchScoreRequest.from_dict(
        {"kind": "batch_score_request", "requests": payload.get("requests")}
    )
    return 200, session.score_many(batch).to_dict()


def _op_discover(state: ServiceState, payload: Dict[str, object]) -> Tuple[int, Dict]:
    session = _resolve_session(state, payload)
    result = session.discover(
        threshold=payload.get("threshold", 0.9),
        max_lhs_size=int(payload.get("max_lhs_size", 1)),  # type: ignore[arg-type]
        lhs_attributes=payload.get("lhs_attributes"),  # type: ignore[arg-type]
        rhs_attributes=payload.get("rhs_attributes"),  # type: ignore[arg-type]
        g3_bound=payload.get("g3_bound"),  # type: ignore[arg-type]
        minimal_cover=bool(payload.get("minimal_cover", False)),
        measures=payload.get("measures"),  # type: ignore[arg-type]
    )
    return 200, result.to_dict()


def _op_delta(state: ServiceState, payload: Dict[str, object]) -> Tuple[int, Dict]:
    session = _resolve_session(state, payload)
    try:
        update = session.apply_delta(
            inserts=[tuple(row) for row in payload.get("inserts", ())],  # type: ignore[union-attr]
            deletes=[int(row_id) for row_id in payload.get("deletes", ())],  # type: ignore[union-attr]
            measures=payload.get("measures"),  # type: ignore[arg-type]
        )
    except ValueError as error:
        if "dynamic session" in str(error):
            raise ServiceError(
                "not_dynamic",
                f"relation {payload.get('relation')!r} is static; "
                f"register it with 'dynamic': true to stream deltas",
            ) from None
        raise
    return 200, update.to_dict()


#: Operation name -> handler.  This is the complete service vocabulary;
#: the HTTP routing table and the shard-worker pipe protocol both
#: address operations by these names.
OPERATIONS: Dict[str, Callable[[ServiceState, Dict[str, object]], Tuple[int, Dict]]] = {
    "healthz": _op_healthz,
    "relations": _op_relations,
    "register": _op_register,
    "score": _op_score,
    "score_batch": _op_score_batch,
    "discover": _op_discover,
    "delta": _op_delta,
    "metrics": _op_metrics,
    "stats": _op_stats,
    "worker_info": _op_worker_info,
}

#: Operations that address one relation (and therefore route to the
#: shard owning it); the remainder are global and answered by
#: broadcast/front-door state.
RELATION_OPS = frozenset({"score", "score_batch", "discover", "delta"})


def execute(
    state: ServiceState, op: str, payload: Optional[Dict[str, object]] = None
) -> Tuple[int, Dict[str, object]]:
    """Run one operation; always returns ``(http_status, json_body)``.

    Failures never escape as exceptions: they come back as the error
    envelope with its mapped status, so transports (HTTP front end,
    shard pipes) forward the pair verbatim.
    """
    payload = payload if payload is not None else {}
    handler = OPERATIONS.get(op)
    if handler is None:
        error = ServiceError("unknown_route", f"unknown operation {op!r}")
        return error.status, error.envelope()
    try:
        return handler(state, payload)
    except ServiceError as error:
        return error.status, error.envelope()
    except KeyError as error:
        # Payload-level lookup failures surface as KeyError from the
        # session (unknown measure names being the canonical case).
        message = error.args[0] if error.args else str(error)
        code = "unknown_measure" if "measure" in str(message) else "malformed_record"
        error_ = ServiceError(code, str(message))
        return error_.status, error_.envelope()
    except (TypeError, ValueError) as error:
        error_ = ServiceError("malformed_record", str(error))
        return error_.status, error_.envelope()
    except Exception as error:  # pragma: no cover - defensive catch-all
        error_ = ServiceError("internal_error", f"{type(error).__name__}: {error}")
        return error_.status, error_.envelope()
