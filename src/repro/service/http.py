"""A selector-based asynchronous HTTP/1.1 front end (stdlib only).

One thread, one :mod:`selectors` event loop, non-blocking sockets: the
front end parses requests, hands them to an application callback, and
writes responses — without a thread (or a GIL convoy) per connection.
The callback may answer immediately (in-process serving) or hold the
``respond`` handle and fire it later from the event loop (the shard
dispatcher's path, driven by worker-pipe readability registered through
:meth:`AsyncHttpServer.add_reader`).

The server intentionally mirrors the ``ThreadingHTTPServer`` surface the
rest of the repo already drives — ``serve_forever()`` /
``shutdown()`` / ``server_close()`` / ``server_address`` — so tests and
benchmarks run it identically: start ``serve_forever`` in a thread, call
``shutdown()`` from anywhere.

Protocol support is deliberately minimal but correct for the service
API: ``GET``/``POST`` with JSON bodies, ``Content-Length`` framing,
HTTP/1.1 keep-alive (``Connection: close`` honoured), bounded request
bodies.  Anything fancier (chunked uploads, TLS, HTTP/2) is out of
scope for a loopback profiling service.
"""

from __future__ import annotations

import heapq
import itertools
import json
import selectors
import socket
import threading
import time
from http.client import responses as _REASONS
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.obs.metrics import get_registry
from repro.service.model import ServiceError

#: Default request-body cap (16 MiB) — plenty for benchmark-scale
#: relation uploads, small enough to bound a hostile payload.
MAX_BODY_BYTES = 16 * 1024 * 1024

#: Cap on buffered request headers before the blank line.
MAX_HEADER_BYTES = 64 * 1024

Headers = Sequence[Tuple[str, str]]
#: ``respond(status, body, extra_headers)`` — ``body`` is a JSON-ready
#: object, or pre-encoded JSON ``bytes`` (written verbatim).
Respond = Callable[..., None]
#: ``handler(method, path, body_bytes, respond)``.
Handler = Callable[[str, str, Optional[bytes], Respond], None]


class _Connection:
    """Per-client parser + buffer state."""

    __slots__ = (
        "sock",
        "inbuf",
        "outbuf",
        "method",
        "path",
        "headers",
        "content_length",
        "header_end",
        "keep_alive",
        "in_flight",
        "close_after_write",
        "closed",
    )

    def __init__(self, sock: socket.socket):
        self.sock = sock
        self.inbuf = bytearray()
        self.outbuf = bytearray()
        self.method: Optional[str] = None
        self.path: Optional[str] = None
        self.headers: Dict[str, str] = {}
        self.content_length = 0
        self.header_end = -1
        self.keep_alive = True
        #: A request has been dispatched and not yet answered; parsing
        #: pauses until the response is queued (no pipelined execution).
        self.in_flight = False
        self.close_after_write = False
        self.closed = False

    def reset_request(self) -> None:
        self.method = None
        self.path = None
        self.headers = {}
        self.content_length = 0
        self.header_end = -1
        self.in_flight = False


class AsyncHttpServer:
    """The event-loop server.  ``handler`` serves every parsed request.

    ``port=0`` binds an ephemeral port (read it back from
    :attr:`server_address`) — the in-process testing and benchmarking
    entry point.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        handler: Optional[Handler] = None,
        quiet: bool = True,
        max_body_bytes: int = MAX_BODY_BYTES,
    ):
        self.handler: Handler = handler if handler is not None else _default_handler
        self.quiet = quiet
        self.max_body_bytes = max_body_bytes
        self._selector = selectors.DefaultSelector()
        self._listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._listener.bind((host, port))
        self._listener.listen(128)
        self._listener.setblocking(False)
        self._selector.register(self._listener, selectors.EVENT_READ, ("accept", None))
        # Self-pipe: shutdown() can wake the loop from any thread.
        self._wake_recv, self._wake_send = socket.socketpair()
        self._wake_recv.setblocking(False)
        self._selector.register(self._wake_recv, selectors.EVENT_READ, ("wake", None))
        self._connections: Dict[int, _Connection] = {}
        self._shutdown_requested = threading.Event()
        self._serving = threading.Event()
        self._closed = False
        #: Callbacks to run after loop exit (e.g. stopping a shard pool).
        self.on_close: List[Callable[[], None]] = []
        # Deadline-ordered timers for call_later (healthz ping timeouts).
        self._timers: List[Tuple[float, int, Callable[[], None]]] = []
        self._timer_lock = threading.Lock()
        self._timer_seq = itertools.count()

    # ------------------------------------------------------------------
    # Public surface (ThreadingHTTPServer-compatible)
    # ------------------------------------------------------------------
    @property
    def server_address(self) -> Tuple[str, int]:
        return self._listener.getsockname()[:2]

    def add_reader(self, fileobj, callback: Callable[[], None]) -> None:
        """Watch an extra readable fd (worker pipe) from the event loop."""
        self._selector.register(fileobj, selectors.EVENT_READ, ("reader", callback))

    def remove_reader(self, fileobj) -> None:
        try:
            self._selector.unregister(fileobj)
        except (KeyError, ValueError):  # pragma: no cover - already gone
            pass

    def call_later(self, delay: float, callback: Callable[[], None]) -> None:
        """Run ``callback`` on the event loop after ``delay`` seconds.

        Thread-safe; used for deferred-response deadlines (the sharded
        healthz ping timeout).  Callbacks run at-most-once, best-effort
        after the deadline — not a general-purpose scheduler.
        """
        with self._timer_lock:
            heapq.heappush(
                self._timers, (time.monotonic() + delay, next(self._timer_seq), callback)
            )
        try:
            self._wake_send.send(b"t")
        except OSError:  # pragma: no cover - already closed
            pass

    def _run_due_timers(self) -> float:
        """Fire expired timers; return the select timeout until the next."""
        due: List[Callable[[], None]] = []
        with self._timer_lock:
            now = time.monotonic()
            while self._timers and self._timers[0][0] <= now:
                due.append(heapq.heappop(self._timers)[2])
            timeout = 1.0
            if self._timers:
                timeout = min(timeout, max(0.0, self._timers[0][0] - now))
        for callback in due:
            callback()
        return timeout

    def serve_forever(self, poll_interval: Optional[float] = None) -> None:
        """Run the event loop until :meth:`shutdown` is called."""
        del poll_interval  # signature compatibility; the self-pipe wakes us
        self._serving.set()
        try:
            while not self._shutdown_requested.is_set():
                timeout = self._run_due_timers()
                events = self._selector.select(timeout=timeout)
                for key, mask in events:
                    kind, payload = key.data
                    if kind == "accept":
                        self._accept()
                    elif kind == "wake":
                        self._drain_wake()
                    elif kind == "reader":
                        payload()
                    elif kind == "client":
                        self._service_client(payload, mask)
        finally:
            self._serving.clear()

    def shutdown(self) -> None:
        """Stop ``serve_forever`` (thread-safe, idempotent)."""
        self._shutdown_requested.set()
        try:
            self._wake_send.send(b"x")
        except OSError:  # pragma: no cover - already closed
            pass

    def server_close(self) -> None:
        """Release every socket (call after ``serve_forever`` returns)."""
        if self._closed:
            return
        self._closed = True
        for connection in list(self._connections.values()):
            self._close_connection(connection)
        for sock in (self._listener, self._wake_recv, self._wake_send):
            try:
                sock.close()
            except OSError:  # pragma: no cover - defensive
                pass
        self._selector.close()
        for callback in self.on_close:
            callback()

    # ------------------------------------------------------------------
    # Event handling
    # ------------------------------------------------------------------
    def _accept(self) -> None:
        while True:
            try:
                sock, _ = self._listener.accept()
            except (BlockingIOError, OSError):
                return
            sock.setblocking(False)
            try:
                sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            except OSError:  # pragma: no cover - platform-dependent
                pass
            connection = _Connection(sock)
            self._connections[sock.fileno()] = connection
            self._selector.register(sock, selectors.EVENT_READ, ("client", connection))
            registry = get_registry()
            registry.inc("http_connections_total")
            registry.set_gauge("http_connections_open", len(self._connections))

    def _drain_wake(self) -> None:
        try:
            while self._wake_recv.recv(4096):
                pass
        except (BlockingIOError, OSError):
            pass

    def _service_client(self, connection: _Connection, mask: int) -> None:
        if connection.closed:
            return
        if mask & selectors.EVENT_WRITE:
            self._flush(connection)
        if connection.closed or not (mask & selectors.EVENT_READ):
            return
        try:
            chunk = connection.sock.recv(65536)
        except (BlockingIOError, InterruptedError):
            return
        except OSError:
            self._close_connection(connection)
            return
        if not chunk:
            self._close_connection(connection)
            return
        connection.inbuf += chunk
        self._advance(connection)

    def _advance(self, connection: _Connection) -> None:
        """Parse and dispatch as many buffered requests as possible."""
        while not connection.closed and not connection.in_flight:
            if connection.header_end < 0:
                end = connection.inbuf.find(b"\r\n\r\n")
                if end < 0:
                    if len(connection.inbuf) > MAX_HEADER_BYTES:
                        self._refuse(connection, ServiceError(
                            "malformed_record", "request headers too large"
                        ))
                    return
                if not self._parse_head(connection, end):
                    return
            total = connection.header_end + 4 + connection.content_length
            if len(connection.inbuf) < total:
                return
            body = bytes(
                connection.inbuf[connection.header_end + 4 : total]
            ) if connection.content_length else None
            del connection.inbuf[:total]
            method, path = connection.method, connection.path
            connection.in_flight = True
            respond = self._make_respond(connection)
            # Expose the request headers to the application (trace ids).
            respond.request_headers = dict(connection.headers)  # type: ignore[attr-defined]
            try:
                self.handler(method, path, body, respond)  # type: ignore[arg-type]
            except ServiceError as error:
                respond(error.status, error.envelope())
            except Exception as error:  # pragma: no cover - defensive
                fallback = ServiceError(
                    "internal_error", f"{type(error).__name__}: {error}"
                )
                respond(fallback.status, fallback.envelope())

    def _parse_head(self, connection: _Connection, end: int) -> bool:
        """Parse the request line + headers ending at ``end``; False on error."""
        head = bytes(connection.inbuf[:end])
        connection.header_end = end
        try:
            lines = head.decode("latin-1").split("\r\n")
            method, path, version = lines[0].split(" ", 2)
        except (UnicodeDecodeError, ValueError):
            self._refuse(
                connection, ServiceError("malformed_record", "malformed HTTP request line")
            )
            return False
        headers: Dict[str, str] = {}
        for line in lines[1:]:
            name, _, value = line.partition(":")
            headers[name.strip().lower()] = value.strip()
        connection.method = method.upper()
        connection.path = path
        connection.headers = headers
        wants_close = headers.get("connection", "").lower() == "close"
        connection.keep_alive = version.endswith("1.1") and not wants_close
        try:
            connection.content_length = int(headers.get("content-length", 0))
        except ValueError:
            self._refuse(
                connection, ServiceError("malformed_record", "bad Content-Length header")
            )
            return False
        if connection.content_length > self.max_body_bytes:
            self._refuse(
                connection,
                ServiceError(
                    "body_too_large",
                    f"request body exceeds {self.max_body_bytes} bytes",
                ),
            )
            return False
        return True

    def _refuse(self, connection: _Connection, error: ServiceError) -> None:
        """Answer an unparseable/oversized request and close afterwards."""
        connection.in_flight = True
        connection.keep_alive = False
        self._make_respond(connection)(error.status, error.envelope())

    # ------------------------------------------------------------------
    # Responses
    # ------------------------------------------------------------------
    def _make_respond(self, connection: _Connection) -> Respond:
        answered = [False]

        def respond(status: int, body: object, headers: Headers = ()) -> None:
            if answered[0] or connection.closed:
                return
            answered[0] = True
            if isinstance(body, (bytes, bytearray)):
                data = bytes(body)
            else:
                data = json.dumps(body, sort_keys=True).encode("utf-8")
            reason = _REASONS.get(status, "Unknown")
            keep = connection.keep_alive
            # An explicit Content-Type in the extra headers overrides the
            # JSON default (the Prometheus text exposition needs this).
            extra = [(n, v) for n, v in headers if n.lower() != "content-type"]
            content_type = next(
                (v for n, v in headers if n.lower() == "content-type"),
                "application/json",
            )
            head = [
                f"HTTP/1.1 {status} {reason}",
                f"Content-Type: {content_type}",
                f"Content-Length: {len(data)}",
                f"Connection: {'keep-alive' if keep else 'close'}",
            ]
            head.extend(f"{name}: {value}" for name, value in extra)
            connection.outbuf += "\r\n".join(head).encode("latin-1") + b"\r\n\r\n" + data
            connection.close_after_write = not keep
            connection.reset_request()
            self._flush(connection)
            if not connection.closed:
                if connection.outbuf:
                    self._set_events(
                        connection, selectors.EVENT_READ | selectors.EVENT_WRITE
                    )
                else:
                    # Fully flushed: more pipelined input may be buffered.
                    self._advance(connection)

        return respond

    def _flush(self, connection: _Connection) -> None:
        while connection.outbuf:
            try:
                sent = connection.sock.send(connection.outbuf)
            except (BlockingIOError, InterruptedError):
                return
            except OSError:
                self._close_connection(connection)
                return
            if sent <= 0:  # pragma: no cover - send never returns 0 here
                return
            del connection.outbuf[:sent]
        if connection.close_after_write:
            self._close_connection(connection)
        else:
            self._set_events(connection, selectors.EVENT_READ)

    def _set_events(self, connection: _Connection, events: int) -> None:
        try:
            self._selector.modify(connection.sock, events, ("client", connection))
        except (KeyError, ValueError):  # pragma: no cover - already closed
            pass

    def _close_connection(self, connection: _Connection) -> None:
        if connection.closed:
            return
        connection.closed = True
        self._connections.pop(connection.sock.fileno(), -1)
        get_registry().set_gauge("http_connections_open", len(self._connections))
        try:
            self._selector.unregister(connection.sock)
        except (KeyError, ValueError):
            pass
        try:
            connection.sock.close()
        except OSError:  # pragma: no cover - defensive
            pass


def _default_handler(method, path, body, respond) -> None:
    """Placeholder handler: every route 404s (server built without app)."""
    error = ServiceError("unknown_route", f"no handler installed for {method} {path}")
    respond(error.status, error.envelope())
