"""Sharded multi-process serving: consistent hashing, workers, dispatch.

The GIL wall (``BENCH_service.json``, PR 5): a thread-per-request server
serialises CPU-bound statistics passes, so ``/score`` throughput
*collapses* as client concurrency grows.  This module breaks it by
moving every session out of the front-end process:

* :class:`HashRing` — deterministic consistent hashing of relation
  names onto worker ids (virtual nodes, SHA-1; identical on every
  process, so ownership is a pure function of the name);
* :func:`worker_main` — the worker-process loop: one
  :class:`~repro.service.ops.ServiceState` per worker owning the
  sessions of exactly the relations that hash to it, executing
  operations via the same :func:`repro.service.ops.execute` the
  in-process server uses (which is what keeps sharded responses
  bit-identical to single-process serial serving);
* :class:`ShardPool` — spawns the workers and owns the
  ``multiprocessing`` pipes; messages are plain dicts carrying the
  versioned ``to_dict()`` records of :mod:`repro.service.model`,
  replies carry pre-encoded JSON bytes so the front end writes them
  verbatim;
* :class:`ShardDispatcher` — the event-loop-side router: a per-worker
  FIFO with **at most one in-flight message per worker**.  While a
  worker is busy, queued same-relation ``score`` requests coalesce into
  one ``score_batch`` message — a single pipe round trip and a single
  batched statistics pass (with in-batch dedup of identical probes) —
  and the reply is split back to the waiting clients.  Mutating
  operations are never reordered: only the *consecutive* run of
  same-relation scores at the queue head coalesces, so a ``delta``
  queued between two scores keeps its position and streaming sessions
  stay correct.

Ownership is enforced twice: the dispatcher routes by the ring, and the
worker re-checks every relation-scoped message, answering the
``wrong_shard`` error envelope if a message ever reaches the wrong
process.
"""

from __future__ import annotations

import bisect
import hashlib
import itertools
import json
import multiprocessing
import signal
import threading
import time
from collections import deque
from typing import Callable, Deque, Dict, List, Optional, Tuple

from repro.obs.metrics import get_registry
from repro.obs.trace import Trace, use_trace
from repro.service.model import ServiceError
from repro.service.ops import RELATION_OPS, ServiceState, execute

#: Virtual nodes per worker on the ring.  Enough for a near-uniform
#: spread of relation names at any worker count we run.
DEFAULT_REPLICAS = 64


class HashRing:
    """Consistent hashing of relation names onto ``num_workers`` ids.

    Uses SHA-1 (stable across processes and Python versions — the
    builtin ``hash`` is salted per process and therefore useless here)
    with ``replicas`` virtual nodes per worker.  Growing the pool moves
    only the keys landing on the new worker's arcs; everything else
    keeps its owner — the property that makes rebalancing cheap.
    """

    def __init__(self, num_workers: int, replicas: int = DEFAULT_REPLICAS):
        if num_workers <= 0:
            raise ValueError(f"num_workers must be positive, got {num_workers}")
        if replicas <= 0:
            raise ValueError(f"replicas must be positive, got {replicas}")
        self.num_workers = num_workers
        self.replicas = replicas
        points: List[Tuple[int, int]] = []
        for worker in range(num_workers):
            for replica in range(replicas):
                points.append((self._hash(f"worker-{worker}:{replica}"), worker))
        points.sort()
        self._hashes = [point for point, _ in points]
        self._owners = [owner for _, owner in points]

    @staticmethod
    def _hash(key: str) -> int:
        return int.from_bytes(hashlib.sha1(key.encode("utf-8")).digest()[:8], "big")

    def owner(self, name: str) -> int:
        """The worker id owning ``name`` (deterministic)."""
        point = self._hash(f"relation:{name}")
        index = bisect.bisect_right(self._hashes, point)
        if index == len(self._hashes):
            index = 0
        return self._owners[index]


def _encode(body: object) -> bytes:
    return json.dumps(body, sort_keys=True).encode("utf-8")


def _wrong_shard(worker_id: int, owner: int, name: object) -> ServiceError:
    return ServiceError(
        "wrong_shard",
        f"relation {name!r} is owned by worker {owner}, not worker {worker_id}",
        detail={"relation": name, "owner": owner, "worker": worker_id},
    )


def handle_message(
    state: ServiceState, ring: HashRing, worker_id: int, message: Dict[str, object]
) -> Dict[str, object]:
    """Serve one pipe message; always returns a reply dict.

    Reply shapes: ``{"id", "status", "json": bytes}`` for a plain
    operation, or ``{"id", "parts": [[status, bytes], ...]}`` for a
    dispatcher-coalesced batch (``"split": true``), one part per
    original request in order.
    """
    message_id = message.get("id")
    op = str(message.get("op"))
    payload = message.get("payload") or {}
    if not isinstance(payload, dict):
        error = ServiceError("malformed_record", "message payload must be a mapping")
        return {"id": message_id, "status": error.status, "json": _encode(error.envelope())}
    # Ownership re-check: the dispatcher should never misroute, but the
    # contract is enforced where the session lives.
    owned_name = payload.get("name") if op == "register" else payload.get("relation")
    if (op in RELATION_OPS or op == "register") and isinstance(owned_name, str) and owned_name:
        owner = ring.owner(owned_name)
        if owner != worker_id:
            error = _wrong_shard(worker_id, owner, owned_name)
            if message.get("split"):
                part = [error.status, _encode(error.envelope())]
                requests = payload.get("requests") or [None]
                return {"id": message_id, "parts": [part] * len(requests)}
            return {
                "id": message_id,
                "status": error.status,
                "json": _encode(error.envelope()),
            }
    status, body = execute(state, op, payload)
    if message.get("split"):
        # A coalesced single-score batch: split the BatchScoreResult
        # into one ProfileResult part per originating request.
        requests = payload.get("requests") or []
        if status != 200:
            part = [status, _encode(body)]
            return {"id": message_id, "parts": [part] * max(1, len(requests))}
        parts = [[200, _encode(result)] for result in body["results"]]
        return {"id": message_id, "parts": parts}
    return {"id": message_id, "status": status, "json": _encode(body)}


def worker_main(
    conn,
    worker_id: int,
    num_workers: int,
    replicas: int,
    backend: Optional[str],
    measure_options: Dict[str, object],
) -> None:
    """The shard worker process: recv → execute → send, until stopped."""
    try:
        # The parent orchestrates shutdown (stop message / pipe EOF); a
        # terminal ^C must not kill workers before sessions finish.
        signal.signal(signal.SIGINT, signal.SIG_IGN)
    except (ValueError, OSError):  # pragma: no cover - non-main thread
        pass
    ring = HashRing(num_workers, replicas)
    state = ServiceState(backend=backend, measure_options=measure_options)
    while True:
        try:
            message = conn.recv()
        except (EOFError, OSError, KeyboardInterrupt):
            break
        if not isinstance(message, dict) or message.get("op") == "stop":
            break
        try:
            trace_id = message.get("trace")
            if trace_id:
                # Re-open the front end's trace in this process: spans
                # recorded here (statistics, scoring, discovery) observe
                # into the *worker's* registry and ship back in the
                # reply for the front end to fold into the request log.
                trace = Trace(str(trace_id))
                with use_trace(trace):
                    reply = handle_message(state, ring, worker_id, message)
                reply["spans"] = trace.span_dicts()
            else:
                reply = handle_message(state, ring, worker_id, message)
        except Exception as error:  # pragma: no cover - defensive
            fallback = ServiceError("internal_error", f"{type(error).__name__}: {error}")
            reply = {
                "id": message.get("id"),
                "status": fallback.status,
                "json": _encode(fallback.envelope()),
            }
        try:
            conn.send(reply)
        except (BrokenPipeError, OSError):  # pragma: no cover - parent gone
            break
    conn.close()


class ShardPool:
    """The worker processes plus their pipes (one duplex pipe each).

    ``start_method=None`` prefers ``fork`` (cheap, and the parent
    creates the pool before any serving thread runs) and falls back to
    the platform default.  The blocking :meth:`request` /
    :meth:`broadcast` helpers drive the pipes directly — use them only
    while no :class:`ShardDispatcher` event loop owns the pipes (setup,
    tests, CLIs).
    """

    def __init__(
        self,
        num_workers: int,
        backend: Optional[str] = None,
        measure_options: Optional[Dict[str, object]] = None,
        replicas: int = DEFAULT_REPLICAS,
        start_method: Optional[str] = None,
    ):
        self.ring = HashRing(num_workers, replicas)
        if start_method is None and "fork" in multiprocessing.get_all_start_methods():
            start_method = "fork"
        context = multiprocessing.get_context(start_method)
        self._connections = []
        self._processes = []
        self._ids = itertools.count(1)
        self._lock = threading.Lock()
        for worker_id in range(num_workers):
            parent_conn, child_conn = context.Pipe(duplex=True)
            process = context.Process(
                target=worker_main,
                args=(
                    child_conn,
                    worker_id,
                    num_workers,
                    replicas,
                    backend,
                    dict(measure_options or {}),
                ),
                name=f"repro-shard-{worker_id}",
                daemon=True,
            )
            process.start()
            child_conn.close()
            self._connections.append(parent_conn)
            self._processes.append(process)
        self._stopped = False

    @property
    def num_workers(self) -> int:
        return len(self._processes)

    @property
    def connections(self):
        return list(self._connections)

    def owner(self, name: str) -> int:
        return self.ring.owner(name)

    def next_id(self) -> int:
        return next(self._ids)

    def alive(self) -> List[bool]:
        return [process.is_alive() for process in self._processes]

    def pids(self) -> List[Optional[int]]:
        return [process.pid for process in self._processes]

    def request(
        self, worker_id: int, op: str, payload: Optional[Dict[str, object]] = None
    ) -> Tuple[int, Dict[str, object]]:
        """Blocking round trip to one worker → ``(status, body)``."""
        with self._lock:
            connection = self._connections[worker_id]
            connection.send({"id": self.next_id(), "op": op, "payload": payload or {}})
            reply = connection.recv()
        return reply["status"], json.loads(reply["json"])

    def broadcast(
        self, op: str, payload: Optional[Dict[str, object]] = None
    ) -> List[Tuple[int, Dict[str, object]]]:
        """Blocking :meth:`request` against every worker, in worker order."""
        return [
            self.request(worker_id, op, payload)
            for worker_id in range(self.num_workers)
        ]

    def stop(self, timeout: float = 5.0) -> None:
        """Stop every worker (idempotent): stop message, join, terminate."""
        with self._lock:
            # Check-and-set under the lock: two concurrent stop() calls
            # (signal handler + atexit is the real-world pair) must not
            # both pass the guard and double-send/double-join.
            if self._stopped:
                return
            self._stopped = True
        for connection in self._connections:
            try:
                connection.send({"op": "stop"})
            except (BrokenPipeError, OSError):
                pass
        for process in self._processes:
            process.join(timeout=timeout)
        for process in self._processes:
            if process.is_alive():  # pragma: no cover - unresponsive worker
                process.terminate()
                process.join(timeout=1.0)
        for connection in self._connections:
            try:
                connection.close()
            except OSError:  # pragma: no cover - defensive
                pass


class _Queued:
    """One not-yet-dispatched operation waiting for its worker."""

    __slots__ = ("op", "payload", "callback", "trace")

    def __init__(
        self,
        op: str,
        payload: Dict[str, object],
        callback: Callable,
        trace: Optional[Trace] = None,
    ):
        self.op = op
        self.payload = payload
        self.callback = callback
        self.trace = trace


class ShardDispatcher:
    """Event-loop-side request router over a :class:`ShardPool`.

    Single-threaded by construction: every method runs on the server's
    event loop (submissions from the HTTP handler, replies from the
    worker-pipe readers registered via ``add_reader``), so no locking is
    needed.  Callbacks receive ``(status, body)`` where ``body`` is
    pre-encoded JSON bytes (or a dict for locally-generated errors).
    """

    def __init__(self, pool: ShardPool, add_reader: Callable[[object, Callable], None]):
        self._pool = pool
        workers = pool.num_workers
        self._queues: List[Deque[_Queued]] = [deque() for _ in range(workers)]
        self._busy = [False] * workers
        #: In-flight bookkeeping per worker:
        #: ``("single", callback, traces, send_time)`` or
        #: ``("split", [callbacks], traces, send_time)``.
        self._inflight: List[Optional[Tuple[str, object, List[Trace], float]]] = (
            [None] * workers
        )
        #: Coalescing tallies (also exported as metrics; kept as plain
        #: ints so ``stats()`` reads without touching the registry).
        self.coalesced_batches = 0
        self.coalesced_requests = 0
        for worker_id, connection in enumerate(pool.connections):
            add_reader(
                connection,
                lambda worker_id=worker_id: self._on_reply(worker_id),
            )

    @property
    def pool(self) -> ShardPool:
        return self._pool

    def submit(
        self,
        worker_id: int,
        op: str,
        payload: Dict[str, object],
        callback: Callable,
        trace: Optional[Trace] = None,
    ) -> None:
        """Queue one operation for ``worker_id`` and pump its pipe."""
        self._queues[worker_id].append(_Queued(op, payload, callback, trace))
        self._pump(worker_id)

    def stats(self) -> Dict[str, object]:
        """Live dispatcher state for ``GET /v1/stats``."""
        self.refresh_gauges()
        return {
            "queue_depth": [len(queue) for queue in self._queues],
            "busy": list(self._busy),
            "coalesced_batches": self.coalesced_batches,
            "coalesced_requests": self.coalesced_requests,
        }

    def refresh_gauges(self) -> None:
        """Mirror queue depths into the registry (at scrape time).

        A gauge is a level, not an event stream: writing it on every
        queue transition would cost two registry writes per request on
        the event-loop thread for a value only ever read when ``/v1/stats``
        or ``/v1/metrics`` is scraped.
        """
        registry = get_registry()
        for worker_id, queue in enumerate(self._queues):
            registry.set_gauge(
                "dispatcher_queue_depth", len(queue), worker=str(worker_id)
            )

    def submit_broadcast(
        self,
        op: str,
        payload: Dict[str, object],
        callback: Callable,
        merge: Callable[[List[Tuple[int, Dict[str, object]]]], Tuple[int, object]],
    ) -> None:
        """Run ``op`` on every worker; ``merge`` folds the decoded replies."""
        workers = self._pool.num_workers
        replies: Dict[int, Tuple[int, Dict[str, object]]] = {}

        def part(worker_id: int) -> Callable:
            def on_reply(status: int, body: object) -> None:
                if isinstance(body, (bytes, bytearray)):
                    body = json.loads(bytes(body))
                replies[worker_id] = (status, body)
                if len(replies) == workers:
                    status_, merged = merge(
                        [replies[w] for w in range(workers)]
                    )
                    callback(status_, merged)

            return on_reply

        for worker_id in range(workers):
            self.submit(worker_id, op, dict(payload), part(worker_id))

    # ------------------------------------------------------------------
    # Pipe pumping
    # ------------------------------------------------------------------
    def _send(
        self,
        worker_id: int,
        message: Dict[str, object],
        callbacks: List[Callable],
    ) -> bool:
        """Send one message; on a dead pipe fail ``callbacks`` and re-pump."""
        try:
            self._pool.connections[worker_id].send(message)
            return True
        except (BrokenPipeError, OSError):
            error = ServiceError(
                "internal_error", f"shard worker {worker_id} is unreachable"
            )
            for callback in callbacks:
                callback(error.status, error.envelope())
            # Drain whatever else is queued for the dead worker (depth is
            # bounded by the handful of concurrently waiting clients).
            self._pump(worker_id)
            return False

    def _pump(self, worker_id: int) -> None:
        if self._busy[worker_id]:
            return
        queue = self._queues[worker_id]
        if not queue:
            return
        first = queue.popleft()
        if first.op == "score":
            # Coalesce the *consecutive* run of same-relation single
            # scores at the queue head into one batched pass.  Stopping
            # at the first non-score (or other-relation) item preserves
            # operation order, so deltas interleave exactly as queued.
            relation = first.payload.get("relation")
            group = [first]
            while (
                queue
                and queue[0].op == "score"
                and queue[0].payload.get("relation") == relation
            ):
                group.append(queue.popleft())
            if len(group) > 1:
                payload = {
                    "relation": relation,
                    "requests": [
                        {"fd": item.payload.get("fd"), "measures": item.payload.get("measures")}
                        for item in group
                    ],
                }
                traces = [item.trace for item in group if item.trace is not None]
                message: Dict[str, object] = {
                    "id": self._pool.next_id(),
                    "op": "score_batch",
                    "payload": payload,
                    "split": True,
                }
                if traces:
                    message["trace"] = traces[0].trace_id
                self.coalesced_batches += 1
                self.coalesced_requests += len(group)
                registry = get_registry()
                registry.inc("dispatcher_coalesced_batches_total")
                registry.inc("dispatcher_coalesced_requests_total", len(group))
                callbacks = [item.callback for item in group]
                if not self._send(worker_id, message, callbacks):
                    return
                self._busy[worker_id] = True
                self._inflight[worker_id] = (
                    "split", callbacks, traces, time.perf_counter()
                )
                return
        message = {"id": self._pool.next_id(), "op": first.op, "payload": first.payload}
        traces = [first.trace] if first.trace is not None else []
        if traces:
            message["trace"] = traces[0].trace_id
        if not self._send(worker_id, message, [first.callback]):
            return
        self._busy[worker_id] = True
        self._inflight[worker_id] = ("single", first.callback, traces, time.perf_counter())

    def _on_reply(self, worker_id: int) -> None:
        connection = self._pool.connections[worker_id]
        try:
            reply = connection.recv()
        except (EOFError, OSError):  # pragma: no cover - worker died
            inflight = self._inflight[worker_id]
            self._inflight[worker_id] = None
            error = ServiceError("internal_error", f"shard worker {worker_id} died")
            if inflight is not None:
                kind, target = inflight[0], inflight[1]
                callbacks = target if kind == "split" else [target]
                for callback in callbacks:
                    callback(error.status, error.envelope())
            return
        kind_target = self._inflight[worker_id]
        self._inflight[worker_id] = None
        self._busy[worker_id] = False
        if kind_target is not None:
            kind, target, traces, sent_at = kind_target
            elapsed = time.perf_counter() - sent_at
            # The pipe round trip is a front-end stage: observe it here
            # and fold the worker-side spans shipped in the reply into
            # each waiting request's trace.
            get_registry().observe("stage_seconds", elapsed, stage="pipe")
            spans = reply.get("spans") if isinstance(reply, dict) else None
            for trace in traces:
                trace.record("pipe", elapsed, worker=worker_id)
                trace.extend(spans)
            if kind == "split":
                parts = reply.get("parts") or []
                for callback, part in zip(target, parts):
                    callback(part[0], part[1])
            else:
                target(reply.get("status", 500), reply.get("json"))
        self._pump(worker_id)
