"""The :class:`AfdSession` facade — one front door per relation.

A session owns one :class:`~repro.relation.relation.Relation` (static)
or one :class:`~repro.stream.dynamic.DynamicRelation` (mutable) together
with every expensive artifact derived from it:

* the **columnar encoding** (cached on the relation itself, built once);
* **stripped partitions** keyed by attribute set (one
  :class:`~repro.discovery.lattice.PartitionCache` per mutation epoch,
  shared by every :meth:`discover` call at that epoch);
* **sufficient statistics** keyed by FD (one :class:`FdStatistics` per
  FD per epoch, shared by :meth:`score`, :meth:`discover` and
  :meth:`snapshot_scores` — and with it every derived quantity cached on
  the statistics object, including the permutation expectation);
* on dynamic sessions, **incremental trackers**
  (:class:`~repro.stream.statistics.IncrementalFdStatistics`) for every
  FD scored through the session, so re-scoring after
  :meth:`apply_delta` costs O(Δ) instead of O(rows).

Scoring an FD after discovery, re-scoring after a stream batch, or
discovering twice therefore never recomputes what the session already
holds; :meth:`cache_info` exposes hit/miss counters proving it.

**Bit-identity.**  Every cached artifact is exactly what the direct call
path would produce — :meth:`score` equals ``FdStatistics.compute`` +
``score_from_statistics``, :meth:`discover` equals
:func:`~repro.discovery.single.discover_afds`, and dynamic re-scoring
equals a from-scratch recompute on the snapshot (the ``repro.stream``
contract) — so session results are ``==``-identical to the legacy
surfaces on both statistics backends.

**Concurrency.**  All public methods serialise on one reentrant
per-session lock: concurrent callers (the HTTP server's worker threads)
share cached artifacts safely and produce bit-identical results to
serial execution.  Different sessions do not contend.
"""

from __future__ import annotations

import threading
import time
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple, Union

from repro.core.base import AfdMeasure
from repro.core.registry import all_measures
from repro.core.statistics import FdStatistics
from repro.obs.metrics import get_registry
from repro.obs.trace import add_span, span
from repro.relation.fd import FunctionalDependency
from repro.relation.relation import Relation
from repro.service.model import (
    BatchScoreRequest,
    BatchScoreResult,
    DiscoveryResult,
    ProfileRequest,
    ProfileResult,
    ScoredFd,
    StreamUpdate,
    fd_from_value,
)

FdLike = Union[FunctionalDependency, str, Mapping]

#: Static relations above this row count score through the chunked
#: map-merge path automatically (results are ``==`` either way; chunking
#: bounds the per-pass working set on huge relations).
AUTO_CHUNK_THRESHOLD = 250_000

#: Chunk size used by the automatic selection above the threshold.
AUTO_CHUNK_SIZE = 65_536


class AfdSession:
    """A profiling session over one relation with shared artifact caches.

    Parameters
    ----------
    relation:
        A :class:`Relation` (static session) or
        :class:`~repro.stream.dynamic.DynamicRelation` (dynamic session
        supporting :meth:`apply_delta`).
    measures:
        Optional pre-built ``name -> AfdMeasure`` mapping.  When omitted,
        the full registry is built from ``measure_options`` (the
        ``expectation`` / ``mc_samples`` / ``sfi_alpha`` / ``seed``
        vocabulary of :func:`repro.core.registry.all_measures`).
    backend:
        Statistics backend (``"python"`` / ``"numpy"`` / ``None`` for the
        process default).  Scores are bit-identical either way.
    name:
        Session name (defaults to the relation's name).
    chunk_size / jobs:
        Route the statistics pass through the chunked map-merge driver
        (:func:`repro.core.chunked.compute_chunked`): ``chunk_size`` rows
        per work unit, ``jobs`` worker processes (1 = serial in-process).
        Results are bit-identical (``==``) to the monolithic pass.  When
        neither is given, static relations above
        :data:`AUTO_CHUNK_THRESHOLD` rows auto-select chunking (serial),
        so ``/score`` and ``/profile`` on huge relations just work.
        Sessions over a :class:`~repro.relation.chunked.ChunkedRelation`
        always score through the chunked path (its stored chunking
        wins); dynamic sessions scale via incremental trackers instead
        and reject these knobs.
    """

    def __init__(
        self,
        relation,
        measures: Optional[Mapping[str, AfdMeasure]] = None,
        backend: Optional[str] = None,
        name: Optional[str] = None,
        chunk_size: Optional[int] = None,
        jobs: int = 1,
        **measure_options,
    ):
        from repro.relation.chunked import ChunkedRelation
        from repro.stream.dynamic import DynamicRelation

        self._chunked: Optional[ChunkedRelation] = None
        if isinstance(relation, DynamicRelation):
            self._dynamic: Optional[DynamicRelation] = relation
            self._static: Optional[Relation] = None
        elif isinstance(relation, ChunkedRelation):
            self._dynamic = None
            self._static = None
            self._chunked = relation
        elif isinstance(relation, Relation):
            self._dynamic = None
            self._static = relation
        else:
            raise TypeError(
                f"AfdSession requires a Relation, ChunkedRelation or "
                f"DynamicRelation, got {type(relation).__name__}"
            )
        if chunk_size is not None and chunk_size < 1:
            raise ValueError(f"chunk_size must be >= 1, got {chunk_size}")
        if jobs < 0:
            raise ValueError(f"jobs must be >= 0, got {jobs}")
        if self._dynamic is not None and (chunk_size is not None or jobs != 1):
            raise ValueError(
                "chunk_size/jobs apply to static or chunked sessions; dynamic "
                "sessions scale through incremental trackers instead"
            )
        self._chunk_size = chunk_size
        self._jobs = jobs
        self.name = name if name is not None else relation.name
        self._backend = backend
        self._measures: Dict[str, AfdMeasure] = (
            dict(measures) if measures is not None else all_measures(**measure_options)
        )
        if measures is not None and measure_options:
            raise ValueError("pass either a measures mapping or measure options, not both")
        self._lock = threading.RLock()
        self._epoch = 0
        #: FD -> statistics, valid for the current epoch only.
        self._statistics: Dict[FunctionalDependency, FdStatistics] = {}
        #: FD -> incremental tracker (dynamic sessions; survives epochs).
        self._trackers: Dict[FunctionalDependency, object] = {}
        self._partition_cache = None
        #: ``dynamic.version`` the statistics cache was built against.
        self._cache_version = None if self._dynamic is None else self._dynamic.version
        self._last_discovery: Optional[DiscoveryResult] = None
        self._counters: Dict[str, int] = {
            "statistics_hits": 0,
            "statistics_misses": 0,
            "incremental_refreshes": 0,
            "partition_hits": 0,
            "partition_misses": 0,
            "scores": 0,
            "discoveries": 0,
            "deltas": 0,
        }

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def is_dynamic(self) -> bool:
        return self._dynamic is not None

    @property
    def is_chunked(self) -> bool:
        return self._chunked is not None

    @property
    def dynamic(self):
        """The underlying :class:`DynamicRelation`, or ``None``."""
        return self._dynamic

    @property
    def chunked(self):
        """The underlying :class:`ChunkedRelation`, or ``None``."""
        return self._chunked

    @property
    def relation(self) -> Relation:
        """The current relation (the live snapshot on dynamic sessions).

        Chunked sessions have no materialised row list by design; use
        :attr:`chunked` (or ``chunked.to_relation()`` on small data).
        """
        if self._dynamic is not None:
            return self._dynamic.snapshot()
        if self._chunked is not None:
            raise ValueError(
                "a chunked session never materialises its row list; use "
                ".chunked for the ChunkedRelation (or .chunked.to_relation() "
                "explicitly on data small enough to hold in memory)"
            )
        return self._static  # type: ignore[return-value]

    @property
    def attributes(self) -> Tuple[str, ...]:
        if self._dynamic is not None:
            return tuple(self._dynamic.attributes)
        if self._chunked is not None:
            return self._chunked.attributes
        return tuple(self._static.attributes)  # type: ignore[union-attr]

    @property
    def epoch(self) -> int:
        """Mutation epoch: 0 at creation, +1 per :meth:`apply_delta`."""
        return self._epoch

    @property
    def backend(self) -> Optional[str]:
        return self._backend

    @property
    def measure_names(self) -> List[str]:
        return list(self._measures)

    @property
    def num_rows(self) -> int:
        if self._dynamic is not None:
            return self._dynamic.num_rows
        if self._chunked is not None:
            return self._chunked.num_rows
        return self._static.num_rows  # type: ignore[union-attr]

    def tracked_fds(self) -> List[FunctionalDependency]:
        """FDs with a live incremental tracker (dynamic sessions)."""
        with self._lock:
            return list(self._trackers)

    def cache_info(self) -> Dict[str, int]:
        """Hit/miss counters plus current cache sizes, one flat mapping."""
        with self._lock:
            info = dict(self._counters)
            if self._partition_cache is not None:
                info["partition_hits"] += self._partition_cache.hits
                info["partition_misses"] += self._partition_cache.misses
            info["cached_statistics"] = len(self._statistics)
            info["cached_partitions"] = (
                0 if self._partition_cache is None else len(self._partition_cache)
            )
            info["trackers"] = len(self._trackers)
            info["epoch"] = self._epoch
            return info

    def describe(self) -> Dict[str, object]:
        """A JSON-ready summary of the session (the server's listing row)."""
        from repro.core.chunked import pool_info

        with self._lock:
            return {
                "name": self.name,
                "attributes": list(self.attributes),
                "num_rows": self.num_rows,
                "dynamic": self.is_dynamic,
                "chunked": self.is_chunked,
                # A ChunkedRelation's stored chunking wins (the driver
                # ignores the knob for it), so report what actually runs.
                "chunk_size": (
                    self._chunked.chunk_size
                    if self._chunked is not None
                    else self._chunk_size
                ),
                "jobs": self._jobs,
                "epoch": self._epoch,
                "backend": self._backend,
                "measures": list(self._measures),
                "cache": self.cache_info(),
                # Process-wide shared worker pool (jobs > 1 map-merge):
                # spawns should stay at 1 across a session's FDs.
                "pool": pool_info(),
            }

    # ------------------------------------------------------------------
    # Statistics cache
    # ------------------------------------------------------------------
    def seed_statistics(self, fd: FdLike, statistics: FdStatistics) -> None:
        """Pre-seed the statistics cache for ``fd`` at the current epoch.

        The caller asserts the statistics describe this session's current
        relation (a precomputed pass being reused across sessions).
        """
        with self._lock:
            self._statistics[fd_from_value(fd)] = statistics

    def _statistics_for(
        self, fd: FunctionalDependency, track: bool = True
    ) -> Tuple[FdStatistics, float, bool]:
        """``(statistics, seconds_spent, cache_hit)`` for one FD.

        On dynamic sessions the FD is (by default) enrolled with an
        incremental tracker, so later epochs refresh in O(Δ);
        ``track=False`` (the discovery path) avoids creating trackers
        for the full candidate grid — every tracker costs O(1) per
        subsequent mutation, so only explicitly scored FDs enrol.
        """
        if self._dynamic is not None and self._dynamic.version != self._cache_version:
            # The relation mutated outside apply_delta() (through the
            # exposed .dynamic handle): drop the per-FD statistics so a
            # stale entry can never answer for the new state.
            self._statistics.clear()
            self._cache_version = self._dynamic.version
        enrolled = False
        if self._dynamic is not None and track and fd not in self._trackers:
            # Enrolment happens even when the statistics are already
            # cached: score() promises that later deltas refresh in O(Δ).
            self._trackers[fd] = self._dynamic.track(fd)
            enrolled = True
        registry = get_registry()
        cached = self._statistics.get(fd)
        if cached is not None:
            # The `_counters` dict keys are the deprecated PR-5 aliases;
            # `session_statistics_total{relation,result}` is the
            # canonical surface (same numbers, one naming scheme).
            self._counters["statistics_hits"] += 1
            registry.inc("session_statistics_total", relation=self.name, result="hit")
            return cached, 0.0, True
        result_label = "miss"
        started = time.perf_counter()
        if self._dynamic is not None:
            tracker = self._trackers.get(fd)
            if tracker is not None:
                if enrolled:
                    self._counters["statistics_misses"] += 1
                else:
                    self._counters["incremental_refreshes"] += 1
                    result_label = "incremental"
                statistics = tracker.statistics()
            else:
                self._counters["statistics_misses"] += 1
                statistics = FdStatistics.compute(
                    self._dynamic.snapshot(), fd, backend=self._backend
                )
        else:
            self._counters["statistics_misses"] += 1
            statistics = self._compute_statistics(fd)
        seconds = time.perf_counter() - started
        registry.inc("session_statistics_total", relation=self.name, result=result_label)
        add_span("statistics", seconds, fd=str(fd), cache_hit=False)
        self._statistics[fd] = statistics
        return statistics, seconds, False

    def _compute_statistics(self, fd: FunctionalDependency) -> FdStatistics:
        """One fresh statistics pass on a static or chunked session.

        Chunked sessions always route through the map-merge driver;
        static sessions do when the knobs ask for it — or automatically
        above :data:`AUTO_CHUNK_THRESHOLD` rows.  Either way the result
        is ``==`` to the monolithic pass.
        """
        if self._chunked is not None:
            return FdStatistics.compute(
                self._chunked,
                fd,
                backend=self._backend,
                chunk_size=self._chunk_size,
                jobs=self._jobs,
            )
        chunk_size = self._chunk_size
        if chunk_size is None and self._jobs == 1:
            if self._static.num_rows <= AUTO_CHUNK_THRESHOLD:  # type: ignore[union-attr]
                return FdStatistics.compute(self._static, fd, backend=self._backend)
            chunk_size = AUTO_CHUNK_SIZE
        return FdStatistics.compute(
            self._static,
            fd,
            backend=self._backend,
            chunk_size=chunk_size,
            jobs=self._jobs,
        )

    def _select(self, names: Optional[Sequence[str]]) -> Dict[str, AfdMeasure]:
        if names is None:
            return self._measures
        unknown = [name for name in names if name not in self._measures]
        if unknown:
            raise KeyError(
                f"unknown measures {unknown}; known: {sorted(self._measures)}"
            )
        return {name: self._measures[name] for name in names}

    # ------------------------------------------------------------------
    # Scoring
    # ------------------------------------------------------------------
    def score(
        self, fd: FdLike, measures: Optional[Sequence[str]] = None
    ) -> ProfileResult:
        """Profile one FD: scores, per-measure runtimes, cache provenance.

        Bit-identical (``==``) to ``FdStatistics.compute`` followed by
        ``score_from_statistics`` with the same backend and measure
        parameters.
        """
        with self._lock:
            fd = fd_from_value(fd)
            chosen = self._select(measures)
            statistics, statistics_seconds, cache_hit = self._statistics_for(fd)
            scores: Dict[str, float] = {}
            runtimes: Dict[str, float] = {}
            for name, measure in chosen.items():
                started = time.perf_counter()
                scores[name] = measure.score_from_statistics(statistics)
                runtimes[name] = time.perf_counter() - started
            self._counters["scores"] += 1
            get_registry().inc("session_operations_total", relation=self.name, op="score")
            add_span("scoring", sum(runtimes.values()), fd=str(fd))
            exact = statistics.satisfied or statistics.is_empty
            return ProfileResult(
                relation=self.name,
                num_rows=self.num_rows,
                scored=ScoredFd(
                    lhs=tuple(fd.lhs), rhs=tuple(fd.rhs), scores=scores, exact=exact
                ),
                runtimes=runtimes,
                statistics_seconds=statistics_seconds,
                cache_hit=cache_hit,
                epoch=self._epoch,
            )

    def profile(self, request: Union[ProfileRequest, Mapping]) -> ProfileResult:
        """Serve a :class:`ProfileRequest` (or its ``to_dict`` form)."""
        if not isinstance(request, ProfileRequest):
            request = ProfileRequest.from_dict(request)
        return self.score(request.fd, measures=request.measures)

    def score_many(
        self, requests: Union[BatchScoreRequest, Sequence[Union[ProfileRequest, Mapping]]]
    ) -> BatchScoreResult:
        """Answer many scoring requests in one batched statistics pass.

        The whole batch runs under a single lock acquisition: the first
        probe of each FD pays (at most) one statistics pass, every later
        probe is a cache hit, and *identical* ``(fd, measures)`` probes —
        the common shape when concurrent clients hammer one hot FD — are
        scored once and fanned out.  ``results[i]`` is bit-identical
        (``==`` on every non-volatile field, exactly equal scores) to
        ``score(requests[i].fd, requests[i].measures)`` issued
        sequentially in batch order.
        """
        if isinstance(requests, BatchScoreRequest):
            items: Sequence[Union[ProfileRequest, Mapping]] = requests.requests
        else:
            items = requests
        parsed = [
            item
            if isinstance(item, ProfileRequest)
            else ProfileRequest.from_dict(item)
            for item in items
        ]
        if not parsed:
            raise ValueError("score_many() needs at least one request")
        with self._lock:
            started = time.perf_counter()
            results: List[Optional[ProfileResult]] = [None] * len(parsed)
            first_index: Dict[Tuple[FunctionalDependency, Optional[Tuple[str, ...]]], int] = {}
            for index, request in enumerate(parsed):
                key = (fd_from_value(request.fd), request.measures)
                seen = first_index.get(key)
                if seen is None:
                    first_index[key] = index
                    results[index] = self.score(request.fd, measures=request.measures)
                else:
                    # A duplicated probe: the sequential result would be
                    # byte-identical (same cached statistics, same
                    # measures), so reuse it instead of re-scoring.
                    results[index] = results[seen]
            return BatchScoreResult(
                relation=self.name,
                results=list(results),  # type: ignore[arg-type]
                distinct=len(first_index),
                seconds=time.perf_counter() - started,
                epoch=self._epoch,
            )

    # ------------------------------------------------------------------
    # Discovery
    # ------------------------------------------------------------------
    def _partitions(self):
        from repro.discovery.lattice import PartitionCache

        if self._partition_cache is None or self._partition_cache.relation is not self.relation:
            if self._partition_cache is not None:
                # Carry the retired cache's counters into the totals.
                self._counters["partition_hits"] += self._partition_cache.hits
                self._counters["partition_misses"] += self._partition_cache.misses
            self._partition_cache = PartitionCache(self.relation)
        return self._partition_cache

    def discover(
        self,
        threshold=0.9,
        max_lhs_size: int = 1,
        lhs_attributes: Optional[Sequence[str]] = None,
        rhs_attributes: Optional[Sequence[str]] = None,
        g3_bound: Optional[float] = None,
        minimal_cover: bool = False,
        measures: Optional[Sequence[str]] = None,
    ) -> DiscoveryResult:
        """Run discovery through the session's artifact caches.

        Bit-identical to :func:`repro.discovery.discover_afds` with the
        same arguments; partitions and statistics computed here stay in
        the session, so a follow-up :meth:`score` of any non-pruned
        candidate is a cache hit.

        Chunked sessions run the partition-free single-LHS screen
        (:func:`repro.discovery.chunked.chunked_discover`) — same scores
        and candidate order as the lattice at ``max_lhs_size=1``,
        computed from chunked statistics without materialising a row
        list; ``max_lhs_size > 1`` and ``g3_bound`` are rejected there.
        """
        from repro.discovery.cover import minimal_cover as reduce_cover
        from repro.discovery.lattice import lattice_discover

        if self._chunked is not None:
            return self._discover_chunked(
                threshold=threshold,
                max_lhs_size=max_lhs_size,
                lhs_attributes=lhs_attributes,
                rhs_attributes=rhs_attributes,
                g3_bound=g3_bound,
                minimal_cover=minimal_cover,
                measures=measures,
            )
        with self._lock:
            chosen = self._select(measures)

            def provider(relation: Relation, fd: FunctionalDependency):
                statistics, _, cache_hit = self._statistics_for(fd, track=False)
                return statistics, not cache_hit

            with span("discovery", relation=self.name, kind="lattice"):
                raw = lattice_discover(
                    self.relation,
                    measures=chosen,
                    threshold=threshold,
                    max_lhs_size=max_lhs_size,
                    lhs_attributes=lhs_attributes,
                    rhs_attributes=rhs_attributes,
                    g3_bound=g3_bound,
                    backend=self._backend,
                    partition_cache=self._partitions(),
                    statistics_provider=provider,
                )
            if minimal_cover:
                raw = reduce_cover(raw)
            self._counters["discoveries"] += 1
            get_registry().inc(
                "session_operations_total", relation=self.name, op="discover"
            )
            result = DiscoveryResult.from_discovery(raw, epoch=self._epoch)
            self._last_discovery = result
            return result

    def _discover_chunked(
        self,
        threshold,
        max_lhs_size: int,
        lhs_attributes: Optional[Sequence[str]],
        rhs_attributes: Optional[Sequence[str]],
        g3_bound: Optional[float],
        minimal_cover: bool,
        measures: Optional[Sequence[str]],
    ) -> DiscoveryResult:
        """Chunked-session discovery: the partition-free screen."""
        from repro.discovery.chunked import chunked_discover
        from repro.discovery.cover import minimal_cover as reduce_cover

        with self._lock:
            chosen = self._select(measures)

            def provider(source, fd: FunctionalDependency):
                statistics, _, cache_hit = self._statistics_for(fd, track=False)
                return statistics, not cache_hit

            with span("discovery", relation=self.name, kind="chunked"):
                raw = chunked_discover(
                    self._chunked,
                    measures=chosen,
                    threshold=threshold,
                    lhs_attributes=lhs_attributes,
                    rhs_attributes=rhs_attributes,
                    max_lhs_size=max_lhs_size,
                    g3_bound=g3_bound,
                    backend=self._backend,
                    statistics_provider=provider,
                )
            if minimal_cover:
                raw = reduce_cover(raw)
            self._counters["discoveries"] += 1
            get_registry().inc(
                "session_operations_total", relation=self.name, op="discover"
            )
            result = DiscoveryResult.from_discovery(raw, epoch=self._epoch)
            self._last_discovery = result
            return result

    def minimal_cover(
        self, result: Optional[DiscoveryResult] = None
    ) -> DiscoveryResult:
        """Minimal-cover reduction of ``result`` (default: last discovery)."""
        from repro.discovery.cover import minimal_cover as reduce_cover

        with self._lock:
            if result is None:
                result = self._last_discovery
            if result is None:
                raise ValueError(
                    "no discovery result to reduce; run discover() first or pass one"
                )
            reduced = DiscoveryResult.from_discovery(
                reduce_cover(result.to_discovery()), epoch=result.epoch
            )
            self._last_discovery = reduced
            return reduced

    # ------------------------------------------------------------------
    # Dynamic sessions
    # ------------------------------------------------------------------
    def _require_dynamic(self, operation: str):
        if self._dynamic is None:
            raise ValueError(
                f"{operation} requires a dynamic session; construct the "
                f"AfdSession from a DynamicRelation (e.g. "
                f"DynamicRelation.from_relation(relation))"
            )
        return self._dynamic

    def track(self, fd: FdLike):
        """Enrol ``fd`` with an incremental tracker (idempotent)."""
        dynamic = self._require_dynamic("track()")
        with self._lock:
            fd = fd_from_value(fd)
            tracker = self._trackers.get(fd)
            if tracker is None:
                tracker = dynamic.track(fd)
                self._trackers[fd] = tracker
            return tracker

    def untrack(self, fd: FdLike) -> None:
        """Stop maintaining ``fd`` incrementally (no-op if not tracked)."""
        dynamic = self._require_dynamic("untrack()")
        with self._lock:
            tracker = self._trackers.pop(fd_from_value(fd), None)
            if tracker is not None:
                dynamic.untrack(tracker)

    def restricted_rows(self, fd: FdLike) -> int:
        """Live rows that are non-NULL on every attribute of ``fd``."""
        with self._lock:
            statistics, _, _ = self._statistics_for(fd_from_value(fd))
            return statistics.num_rows

    def _score_tracked(
        self, fds: Iterable[FunctionalDependency], measures: Optional[Sequence[str]]
    ) -> Tuple[Dict[str, Dict[str, float]], Dict[str, int]]:
        chosen = self._select(measures)
        scores: Dict[str, Dict[str, float]] = {}
        restricted: Dict[str, int] = {}
        for fd in fds:
            statistics, _, _ = self._statistics_for(fd)
            scores[str(fd)] = {
                name: measure.score_from_statistics(statistics)
                for name, measure in chosen.items()
            }
            restricted[str(fd)] = statistics.num_rows
        return scores, restricted

    def apply_delta(
        self,
        inserts: Iterable[Sequence[object]] = (),
        deletes: Iterable[int] = (),
        measures: Optional[Sequence[str]] = None,
    ) -> StreamUpdate:
        """Apply one mutation batch and re-score every tracked FD.

        ``deletes`` are applied *before* ``inserts``: delete ids must name
        rows that were live before this call, and applying them first
        keeps that true even when the insert half triggers window
        evictions or a history compaction (which re-bases row ids — ids
        captured before the call could otherwise silently alias freshly
        re-based rows).

        Returns a :class:`StreamUpdate` carrying the new epoch, the live
        row count and the refreshed scores — each tracked FD's statistics
        are maintained in O(Δ) and re-assembled once, bit-identical to a
        from-scratch recompute on the new snapshot.
        """
        dynamic = self._require_dynamic("apply_delta()")
        with self._lock:
            started = time.perf_counter()
            inserts = list(inserts)
            deletes = list(deletes)
            if deletes:
                dynamic.delete(deletes)
            if inserts:
                dynamic.append(inserts)
            self._epoch += 1
            self._statistics.clear()
            self._counters["deltas"] += 1
            get_registry().inc("session_operations_total", relation=self.name, op="delta")
            scores, restricted = self._score_tracked(list(self._trackers), measures)
            return StreamUpdate(
                relation=self.name,
                epoch=self._epoch,
                live_rows=dynamic.num_rows,
                inserted=len(inserts),
                deleted=len(deletes),
                scores=scores,
                restricted_rows=restricted,
                seconds=time.perf_counter() - started,
            )

    def snapshot_scores(
        self,
        fds: Optional[Iterable[FdLike]] = None,
        measures: Optional[Sequence[str]] = None,
    ) -> StreamUpdate:
        """Score FDs on the current state without mutating anything.

        ``fds=None`` re-scores every tracked FD (dynamic sessions) or
        every FD with cached statistics (static sessions); on dynamic
        sessions explicitly named FDs are enrolled for tracking, so the
        next :meth:`apply_delta` refreshes them incrementally.
        """
        with self._lock:
            started = time.perf_counter()
            if fds is None:
                targets = list(self._trackers) if self._dynamic is not None else list(
                    self._statistics
                )
            else:
                targets = [fd_from_value(fd) for fd in fds]
            scores, restricted = self._score_tracked(targets, measures)
            return StreamUpdate(
                relation=self.name,
                epoch=self._epoch,
                live_rows=self.num_rows,
                scores=scores,
                restricted_rows=restricted,
                seconds=time.perf_counter() - started,
            )
