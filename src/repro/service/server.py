"""The AFD profiling service: versioned JSON-over-HTTP API, stdlib only.

``python -m repro.serve`` starts the selector-based
:class:`~repro.service.http.AsyncHttpServer` front end over the
operation executor of :mod:`repro.service.ops` — either **in-process**
(``--workers 0``, every session lives in the serving process) or
**sharded** (``--workers N``, every relation owned by exactly one
worker process of :mod:`repro.service.shard`, chosen by consistent
hashing, so statistics passes run outside the front end's GIL).

The wire API is versioned under ``/v1/``:

==========================================  ======  ====================
``/v1/healthz``                             GET     liveness + sessions
``/v1/relations``                           GET     per-session summary
``/v1/relations``                           POST    register a relation
``/v1/relations/<name>/score``              POST    profile FD(s); a
                                                    ``requests`` list
                                                    scores a batch
``/v1/relations/<name>/discover``           POST    lattice discovery
``/v1/relations/<name>/delta``              POST    apply a mutation
==========================================  ======  ====================

The PR-5 unversioned routes (``/healthz``, ``/relations``, ``/score``,
``/discover``, ``/stream/<name>/delta``) remain as deprecated aliases:
they serve identical payloads, carry a ``Deprecation: true`` header plus
a ``Link: <successor>; rel="successor-version"`` pointer, and log once
per route.  Failures use the envelope contract of
:mod:`repro.service.model`: ``{"error": {"code", "message", "detail"}}``
with the stable codes in ``ERROR_CODES``.
"""

from __future__ import annotations

import argparse
import json
import multiprocessing
import re
import signal
import sys
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro import __version__
from repro.obs.logging import RequestLogger
from repro.obs.metrics import (
    PROMETHEUS_CONTENT_TYPE,
    get_registry,
    merge_snapshots,
    render_prometheus,
)
from repro.obs.trace import Trace, span, use_trace
from repro.service.http import MAX_BODY_BYTES, AsyncHttpServer
from repro.service.model import ServiceError
from repro.service.ops import ServiceState, execute
from repro.service.shard import ShardDispatcher, ShardPool

__all__ = [
    "MAX_BODY_BYTES",
    "ROUTES",
    "ServiceApp",
    "ServiceState",
    "build_parser",
    "main",
    "make_server",
    "make_sharded_server",
]


# ----------------------------------------------------------------------
# Routing table
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Route:
    """One row of the routing table: ``method`` + ``pattern`` → ``op``.

    ``pattern`` uses ``{name}`` placeholders captured into the payload
    (the URL wins over any body field of the same meaning).  Deprecated
    rows alias a ``successor`` ``/v1`` route and answer with a
    ``Deprecation`` header.
    """

    method: str
    pattern: str
    op: str
    deprecated: bool = False
    successor: Optional[str] = None
    regex: "re.Pattern" = field(init=False, repr=False, compare=False)

    def __post_init__(self):
        escaped = re.escape(self.pattern).replace(r"\{name\}", r"(?P<name>[^/]+)")
        object.__setattr__(self, "regex", re.compile(f"^{escaped}$"))


#: The complete wire API.  Order matters only for documentation; every
#: pattern is anchored and unambiguous.
ROUTES: Tuple[Route, ...] = (
    Route("GET", "/v1/healthz", "healthz"),
    Route("GET", "/v1/metrics", "metrics"),
    Route("GET", "/v1/stats", "stats"),
    Route("GET", "/v1/relations", "relations"),
    Route("POST", "/v1/relations", "register"),
    Route("POST", "/v1/relations/{name}/score", "score"),
    Route("POST", "/v1/relations/{name}/discover", "discover"),
    Route("POST", "/v1/relations/{name}/delta", "delta"),
    # PR-5 unversioned aliases (deprecated; removal tracked in README).
    Route("GET", "/healthz", "healthz", deprecated=True, successor="/v1/healthz"),
    Route("GET", "/relations", "relations", deprecated=True, successor="/v1/relations"),
    Route("POST", "/relations", "register", deprecated=True, successor="/v1/relations"),
    Route(
        "POST", "/score", "score",
        deprecated=True, successor="/v1/relations/{name}/score",
    ),
    Route(
        "POST", "/discover", "discover",
        deprecated=True, successor="/v1/relations/{name}/discover",
    ),
    Route(
        "POST", "/stream/{name}/delta", "delta",
        deprecated=True, successor="/v1/relations/{name}/delta",
    ),
)


def match_route(method: str, path: str) -> Tuple[Route, Dict[str, str]]:
    """Resolve ``method path`` against :data:`ROUTES`.

    Raises :class:`ServiceError` ``unknown_route`` (404) for an unknown
    path and ``method_not_allowed`` (405, with the allowed verbs in the
    detail) for a known path addressed with the wrong verb.
    """
    allowed: List[str] = []
    for route in ROUTES:
        match = route.regex.match(path)
        if match is None:
            continue
        if route.method == method:
            return route, match.groupdict()
        allowed.append(route.method)
    if allowed:
        raise ServiceError(
            "method_not_allowed",
            f"{method} is not allowed on {path}",
            detail={"allowed": sorted(set(allowed))},
        )
    raise ServiceError("unknown_route", f"unknown route {method} {path}")


# ----------------------------------------------------------------------
# The application (handler for AsyncHttpServer)
# ----------------------------------------------------------------------
class ServiceApp:
    """Routes HTTP requests onto the executor or the shard dispatcher.

    Inline mode (``dispatcher is None``): every operation runs through
    :func:`repro.service.ops.execute` against ``state`` on the event
    loop.  Sharded mode: relation-scoped operations are submitted to the
    owning worker through the :class:`~repro.service.shard.ShardDispatcher`
    (the front door keeps only the relation → worker routing table and
    answers ``healthz`` itself).
    """

    def __init__(
        self,
        state: Optional[ServiceState] = None,
        dispatcher: Optional[ShardDispatcher] = None,
        quiet: bool = True,
        logger: Optional[RequestLogger] = None,
        healthz_timeout: float = 0.5,
        schedule: Optional[Callable[[float, Callable[[], None]], None]] = None,
    ):
        if (state is None) == (dispatcher is None):
            raise ValueError("pass exactly one of state= (inline) or dispatcher= (sharded)")
        self.state = state
        self.dispatcher = dispatcher
        self.quiet = quiet
        #: Structured request log (one JSON line per request); None = off.
        self.logger = logger
        #: Budget for the sharded-healthz worker ping before answering
        #: with ``responsive: false`` for the stragglers.
        self.healthz_timeout = healthz_timeout
        #: ``schedule(delay, callback)`` — the server's ``call_later``
        #: (wired by :func:`make_sharded_server`); None degrades the
        #: healthz ping deadline to best-effort (reply-driven only).
        self.schedule = schedule
        self._deprecation_logged: set = set()
        #: Sharded mode: relation name -> owning worker id (filled on
        #: successful registration; single-threaded on the event loop).
        self._routing: Dict[str, int] = {}
        self._started = time.time()

    # -- plumbing -------------------------------------------------------
    def _deprecation_headers(self, route: Route) -> List[Tuple[str, str]]:
        headers = [("Deprecation", "true")]
        if route.successor:
            headers.append(("Link", f'<{route.successor}>; rel="successor-version"'))
        get_registry().inc("deprecated_requests_total", route=route.pattern)
        if route.pattern not in self._deprecation_logged:
            self._deprecation_logged.add(route.pattern)
            # The warning belongs to the serving front end alone: a
            # ServiceApp embedded in a forked child (benchmark harness,
            # CLI subprocess) must not re-warn per process.
            if not self.quiet and multiprocessing.parent_process() is None:
                sys.stderr.write(
                    f"deprecated route {route.method} {route.pattern} used; "
                    f"migrate to {route.successor or '/v1'}\n"
                )
        return headers

    @staticmethod
    def _parse_body(method: str, body: Optional[bytes]) -> Dict[str, object]:
        if body is None or not body:
            if method == "POST":
                raise ServiceError(
                    "malformed_record",
                    "request body required (Content-Length missing or 0)",
                )
            return {}
        try:
            payload = json.loads(body)
        except json.JSONDecodeError as error:
            raise ServiceError(
                "malformed_record", f"request body is not valid JSON: {error}"
            ) from None
        if not isinstance(payload, dict):
            raise ServiceError("malformed_record", "request body must be a JSON object")
        return payload

    # -- the Handler ----------------------------------------------------
    def __call__(self, method: str, path: str, body: Optional[bytes], respond) -> None:
        # Every request gets a trace: a caller-supplied X-Trace-Id is
        # honoured (correlation across services), else a fresh id.
        request_headers = getattr(respond, "request_headers", None) or {}
        trace = Trace(str(request_headers.get("x-trace-id") or "") or None)
        start = time.perf_counter()
        # Metric label: the route *pattern*, never the raw path — raw
        # paths are unbounded label cardinality.
        route_label = ["unmatched"]

        def answer(status: int, out: object, headers: Tuple = ()) -> None:
            duration = time.perf_counter() - start
            registry = get_registry()
            registry.inc("requests_total", route=route_label[0], code=str(status))
            registry.observe("request_seconds", duration, route=route_label[0])
            respond(status, out, list(headers) + [("X-Trace-Id", trace.trace_id)])
            if self.logger is not None:
                self.logger.log(
                    {
                        "ts": round(time.time(), 6),
                        "trace_id": trace.trace_id,
                        "method": method,
                        "path": path,
                        "route": route_label[0],
                        "status": status,
                        "duration_ms": round(duration * 1000, 3),
                        "spans": trace.span_dicts(),
                    }
                )

        try:
            route, params = match_route(method, path)
            route_label[0] = route.pattern
            with use_trace(trace):
                with span("parse"):
                    payload = self._parse_body(method, body)
        except ServiceError as error:
            answer(error.status, error.envelope())
            return
        extra = self._deprecation_headers(route) if route.deprecated else []
        if "name" in params:
            # The URL names the relation authoritatively.
            payload["relation"] = params["name"]
        op = route.op
        if op == "score" and "requests" in payload:
            op = "score_batch"
        if op == "metrics":
            self._serve_metrics(answer, extra)
            return
        if op == "stats":
            self._serve_stats(answer, extra)
            return
        if self.dispatcher is None:
            with use_trace(trace):
                status, out = execute(self.state, op, payload)
            answer(status, out, extra)
        else:
            self._dispatch_sharded(op, payload, answer, extra, trace)

    # -- observability routes -------------------------------------------
    def _serve_metrics(self, answer, extra) -> None:
        """``GET /v1/metrics``: Prometheus text, fleet-aggregated."""
        prometheus = list(extra) + [("Content-Type", PROMETHEUS_CONTENT_TYPE)]
        if self.dispatcher is None:
            text = render_prometheus(get_registry().to_dict())
            answer(200, text.encode("utf-8"), prometheus)
            return
        self.dispatcher.refresh_gauges()

        def merge(replies):
            snapshots = [
                body
                for status, body in replies
                if status == 200 and isinstance(body, dict) and "metrics" in body
            ]
            return 200, merge_snapshots(get_registry().to_dict(), *snapshots)

        def on_merged(status: int, merged: object) -> None:
            if status != 200 or not isinstance(merged, dict):
                answer(status, merged, extra)
                return
            answer(200, render_prometheus(merged).encode("utf-8"), prometheus)

        self.dispatcher.submit_broadcast("metrics", {}, on_merged, merge)

    def _serve_stats(self, answer, extra) -> None:
        """``GET /v1/stats``: operational JSON (caches, pools, dispatcher)."""
        if self.dispatcher is None:
            status, out = execute(self.state, "stats", {})
            if status != 200:
                answer(status, out, extra)
                return
            answer(
                200,
                {"mode": "inline", "workers": [out], "frontend": get_registry().totals()},
                extra,
            )
            return

        def merge(replies):
            workers = [
                decoded if status == 200 else {"error": decoded}
                for status, decoded in replies
            ]
            return 200, {
                "mode": "sharded",
                "workers": workers,
                "dispatcher": self.dispatcher.stats(),
                "frontend": get_registry().totals(),
            }

        self.dispatcher.submit_broadcast(
            "stats", {}, lambda status, out: answer(status, out, extra), merge
        )

    # -- sharded dispatch ----------------------------------------------
    def _sharded_healthz(self, respond, extra) -> None:
        """Per-worker liveness detail: pid, pipe ping, owned relations.

        A dead worker *process* turns the status ``degraded``.  A live
        worker that misses the ping deadline (mid-statistics-pass on a
        big relation) stays ``responsive: false`` without degrading —
        busy is not dead.
        """
        pool = self.dispatcher.pool
        alive = pool.alive()
        pids = pool.pids()
        detail: List[Dict[str, object]] = [
            {
                "worker": worker_id,
                "pid": pids[worker_id],
                "alive": alive[worker_id],
                "responsive": False,
                "sessions": None,
                "relations": None,
            }
            for worker_id in range(pool.num_workers)
        ]
        done = [False]
        pending = [worker_id for worker_id in range(pool.num_workers) if alive[worker_id]]
        remaining = [len(pending)]

        def finish() -> None:
            if done[0]:
                return
            done[0] = True
            respond(
                200,
                {
                    "status": "ok" if all(alive) else "degraded",
                    "version": __version__,
                    "sessions": sorted(self._routing),
                    "uptime_seconds": time.time() - self._started,
                    "workers": pool.num_workers,
                    "worker_detail": detail,
                },
                extra,
            )

        def on_info(worker_id: int):
            def callback(status: int, out: object) -> None:
                if isinstance(out, (bytes, bytearray)):
                    out = json.loads(bytes(out))
                if status == 200 and isinstance(out, dict):
                    entry = detail[worker_id]
                    entry["responsive"] = True
                    entry["sessions"] = out.get("sessions")
                    entry["relations"] = out.get("relations")
                if done[0]:
                    return
                remaining[0] -= 1
                if remaining[0] == 0:
                    finish()

            return callback

        if not pending:
            finish()
            return
        for worker_id in pending:
            self.dispatcher.submit(worker_id, "worker_info", {}, on_info(worker_id))
        if self.schedule is not None:
            self.schedule(self.healthz_timeout, finish)

    def _dispatch_sharded(self, op, payload, respond, extra, trace=None) -> None:
        pool = self.dispatcher.pool

        def answer(status: int, out: object) -> None:
            respond(status, out, extra)

        if op == "healthz":
            self._sharded_healthz(respond, extra)
            return
        if op == "relations":
            def merge(replies):
                merged: List[Dict[str, object]] = []
                for status, decoded in replies:
                    if status != 200:
                        return status, decoded
                    merged.extend(decoded.get("relations", []))
                merged.sort(key=lambda entry: str(entry.get("name")))
                return 200, {"relations": merged}

            self.dispatcher.submit_broadcast(op, payload, answer, merge)
            return
        if op == "register":
            name = payload.get("name")
            if not isinstance(name, str) or not name:
                error = ServiceError("malformed_record", "relation name must be non-empty")
                respond(error.status, error.envelope(), extra)
                return
            worker_id = pool.owner(name)

            def on_registered(status: int, out: object) -> None:
                if status == 201:
                    self._routing[name] = worker_id
                respond(status, out, extra)

            self.dispatcher.submit(worker_id, op, payload, on_registered, trace=trace)
            return
        # Relation-scoped operations route by the front-door table so an
        # unknown name fails fast without a pipe round trip.
        name = payload.get("relation")
        if not isinstance(name, str) or not name:
            error = ServiceError(
                "malformed_record", "the request must name the target relation"
            )
            respond(error.status, error.envelope(), extra)
            return
        worker_id = self._routing.get(name)
        if worker_id is None:
            error = ServiceError(
                "unknown_relation",
                f"unknown relation {name!r}",
                detail={"relation": name, "registered": sorted(self._routing)},
            )
            respond(error.status, error.envelope(), extra)
            return
        self.dispatcher.submit(worker_id, op, payload, answer, trace=trace)


# ----------------------------------------------------------------------
# Server builders
# ----------------------------------------------------------------------
def make_server(
    host: str = "127.0.0.1",
    port: int = 0,
    state: Optional[ServiceState] = None,
    quiet: bool = True,
    logger: Optional[RequestLogger] = None,
) -> Tuple[AsyncHttpServer, ServiceState]:
    """Build a ready-to-serve in-process server + state pair.

    ``port=0`` binds an ephemeral port (read it back from
    ``server.server_address``) — the in-process testing and benchmarking
    entry point.  The ``(server, state)`` return contract is unchanged
    from the threaded PR-5 server.
    """
    state = state if state is not None else ServiceState()
    app = ServiceApp(state=state, quiet=quiet, logger=logger)
    server = AsyncHttpServer(host, port, handler=app, quiet=quiet)
    return server, state


def make_sharded_server(
    host: str = "127.0.0.1",
    port: int = 0,
    workers: int = 2,
    backend: Optional[str] = None,
    measure_options: Optional[Dict[str, object]] = None,
    quiet: bool = True,
    logger: Optional[RequestLogger] = None,
) -> Tuple[AsyncHttpServer, ShardPool]:
    """Build a sharded server: ``workers`` processes behind one front end.

    The pool forks **before** any serving thread starts (call this from
    the thread that will own the server, then hand ``serve_forever`` to
    a thread).  ``server_close()`` stops the pool.
    """
    pool = ShardPool(workers, backend=backend, measure_options=measure_options)
    server = AsyncHttpServer(host, port, quiet=quiet)
    dispatcher = ShardDispatcher(pool, server.add_reader)
    server.handler = ServiceApp(
        dispatcher=dispatcher, quiet=quiet, logger=logger, schedule=server.call_later
    )
    server.on_close.append(pool.stop)
    return server, pool


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.serve",
        description="Serve AFD profiling sessions over HTTP (JSON /v1 API).",
    )
    parser.add_argument("--host", default="127.0.0.1", help="bind address (default: 127.0.0.1)")
    parser.add_argument(
        "--port", type=int, default=8765, help="port (default: 8765; 0 = ephemeral)"
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=0,
        help=(
            "shard worker processes (default: 0 = in-process serving; "
            "N > 0 distributes relations over N session-owning processes)"
        ),
    )
    parser.add_argument(
        "--backend",
        choices=("auto", "python", "numpy"),
        default=None,
        help="statistics backend for every session (default: process default)",
    )
    parser.add_argument(
        "--expectation",
        choices=("exact", "monte-carlo"),
        default="monte-carlo",
        help="permutation-expectation strategy for RFI+/RFI'+ (default: monte-carlo)",
    )
    parser.add_argument(
        "--mc-samples",
        type=int,
        default=100,
        help="Monte-Carlo samples for the permutation expectation (default: 100)",
    )
    parser.add_argument(
        "--sfi-alpha", type=float, default=0.5, help="SFI smoothing parameter (default: 0.5)"
    )
    parser.add_argument(
        "--slow-ms",
        type=float,
        default=None,
        help=(
            "flag requests at or above this duration as slow in the JSON "
            "request log (and log only those, unless --verbose)"
        ),
    )
    parser.add_argument(
        "--verbose", action="store_true", help="log deprecations and server events"
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.workers < 0:
        print("--workers must be >= 0", file=sys.stderr)
        return 2
    measure_options = {
        "expectation": args.expectation,
        "mc_samples": args.mc_samples,
        "sfi_alpha": args.sfi_alpha,
    }
    # Request log policy: --verbose logs every request; --slow-ms alone
    # logs only the slow ones; neither = no request log.
    logger = None
    if args.verbose or args.slow_ms is not None:
        logger = RequestLogger(slow_ms=args.slow_ms, log_all=args.verbose)
    if args.workers > 0:
        server, _pool = make_sharded_server(
            args.host,
            args.port,
            workers=args.workers,
            backend=args.backend,
            measure_options=measure_options,
            quiet=not args.verbose,
            logger=logger,
        )
        mode = f"sharded across {args.workers} workers"
    else:
        state = ServiceState(backend=args.backend, measure_options=measure_options)
        server, _ = make_server(
            args.host, args.port, state=state, quiet=not args.verbose, logger=logger
        )
        mode = "in-process"
    host, port = server.server_address[:2]

    def _shutdown(signum, frame):  # pragma: no cover - signal path
        server.shutdown()

    signal.signal(signal.SIGINT, _shutdown)
    signal.signal(signal.SIGTERM, _shutdown)
    print(
        f"repro service listening on http://{host}:{port} ({mode})",
        file=sys.stderr,
        flush=True,
    )
    server.serve_forever()
    server.server_close()
    print("repro service shut down cleanly", file=sys.stderr)
    return 0


if __name__ == "__main__":  # pragma: no cover - module execution guard
    sys.exit(main())
