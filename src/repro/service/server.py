"""The concurrent AFD profiling server: JSON over HTTP, stdlib only.

``python -m repro.serve`` starts a :class:`ThreadingHTTPServer` exposing
the :class:`~repro.service.session.AfdSession` facade over named
relations.  Every worker thread serving a request goes through the
per-session lock, so concurrent reads share one session's cached
artifacts (columnar view, partitions, statistics) safely.

Endpoints (all payloads are the ``to_dict`` schemas of
:mod:`repro.service.model`):

===========================  ======  ==================================
``/healthz``                 GET     liveness + version + session names
``/relations``               GET     per-session summaries & cache info
``/relations``               POST    register a named relation
``/score``                   POST    profile one FD on a session
``/discover``                POST    lattice discovery on a session
``/stream/<name>/delta``     POST    apply a mutation batch
===========================  ======  ==================================

``POST /relations`` body::

    {"name": "orders", "attributes": ["zip", "city"],
     "rows": [["1000", "Brussels"], ...],
     "dynamic": true,          # optional: allow /stream/<name>/delta
     "window": 1000,           # optional: sliding window (implies dynamic)
     "replace": false}         # optional: overwrite an existing session

Errors are JSON ``{"error": ...}`` with 400 (malformed payload), 404
(unknown route/relation), 405 (wrong method) or 409 (name collision).
"""

from __future__ import annotations

import argparse
import json
import signal
import sys
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Dict, List, Optional, Tuple

from repro import __version__
from repro.relation.relation import Relation
from repro.service.model import ProfileRequest
from repro.service.session import AfdSession

#: Default request-body cap (16 MiB) — plenty for benchmark-scale
#: relation uploads, small enough to bound a hostile payload.
MAX_BODY_BYTES = 16 * 1024 * 1024


class _UnknownResource(Exception):
    """An addressed resource (relation name) does not exist: HTTP 404.

    Distinct from :class:`KeyError` so that payload-level lookup errors
    (e.g. an unknown measure name) keep their documented 400 mapping.
    """


class ServiceState:
    """The server's session registry (thread-safe)."""

    def __init__(
        self,
        backend: Optional[str] = None,
        measure_options: Optional[Dict[str, object]] = None,
    ):
        self._backend = backend
        self._measure_options = dict(measure_options or {})
        self._sessions: Dict[str, AfdSession] = {}
        self._lock = threading.Lock()
        self.started = time.time()

    def register_session(self, name: str, session: AfdSession, replace: bool = False) -> None:
        with self._lock:
            if name in self._sessions and not replace:
                raise FileExistsError(
                    f"relation {name!r} is already registered (pass 'replace': true)"
                )
            self._sessions[name] = session

    def register_relation(self, payload: Dict[str, object]) -> AfdSession:
        """Build and register a session from a ``POST /relations`` body."""
        for key in ("name", "attributes", "rows"):
            if key not in payload:
                raise ValueError(f"relation payload is missing {key!r}")
        name = str(payload["name"])
        if not name:
            raise ValueError("relation name must be non-empty")
        attributes = payload["attributes"]
        rows = [tuple(row) for row in payload["rows"]]  # type: ignore[union-attr]
        window = payload.get("window")
        dynamic = bool(payload.get("dynamic", False)) or window is not None
        if dynamic:
            from repro.stream.dynamic import DynamicRelation

            relation = DynamicRelation(
                attributes,  # type: ignore[arg-type]
                rows,
                name=name,
                window=None if window is None else int(window),  # type: ignore[arg-type]
            )
        else:
            relation = Relation(attributes, rows, name=name)  # type: ignore[arg-type]
        session = AfdSession(
            relation, backend=self._backend, name=name, **self._measure_options
        )
        self.register_session(name, session, replace=bool(payload.get("replace", False)))
        return session

    def session(self, name: str) -> AfdSession:
        with self._lock:
            session = self._sessions.get(name)
        if session is None:
            raise KeyError(f"unknown relation {name!r}; registered: {self.session_names()}")
        return session

    def session_names(self) -> List[str]:
        with self._lock:
            return sorted(self._sessions)

    def describe(self) -> List[Dict[str, object]]:
        with self._lock:
            sessions = list(self._sessions.values())
        return [session.describe() for session in sessions]


class ServiceHandler(BaseHTTPRequestHandler):
    """Routes HTTP requests onto the shared :class:`ServiceState`."""

    #: Injected by :func:`make_server`.
    state: ServiceState = None  # type: ignore[assignment]
    quiet = True
    protocol_version = "HTTP/1.1"

    # ------------------------------------------------------------------
    # Plumbing
    # ------------------------------------------------------------------
    def log_message(self, format: str, *args) -> None:  # noqa: A002 - stdlib name
        if not self.quiet:
            sys.stderr.write(
                f"{self.address_string()} - {format % args}\n"
            )

    def _send_json(self, status: int, payload: object) -> None:
        body = json.dumps(payload, sort_keys=True).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _error(self, status: int, message: str) -> None:
        self._send_json(status, {"error": message})

    def _read_body(self) -> Dict[str, object]:
        length = int(self.headers.get("Content-Length", 0))
        if length <= 0:
            raise ValueError("request body required (Content-Length missing or 0)")
        if length > MAX_BODY_BYTES:
            raise ValueError(f"request body exceeds {MAX_BODY_BYTES} bytes")
        raw = self.rfile.read(length)
        try:
            payload = json.loads(raw)
        except json.JSONDecodeError as error:
            raise ValueError(f"request body is not valid JSON: {error}") from error
        if not isinstance(payload, dict):
            raise ValueError("request body must be a JSON object")
        return payload

    def _resolve_session(self, name: object) -> AfdSession:
        if not isinstance(name, str) or not name:
            raise ValueError("payload must name the target 'relation'")
        try:
            return self.state.session(name)
        except KeyError as error:
            raise _UnknownResource(error.args[0]) from error

    def _session_from(self, payload: Dict[str, object]) -> AfdSession:
        return self._resolve_session(payload.get("relation"))

    # ------------------------------------------------------------------
    # Routes
    # ------------------------------------------------------------------
    def do_GET(self) -> None:  # noqa: N802 - stdlib casing
        if self.path == "/healthz":
            self._send_json(
                200,
                {
                    "status": "ok",
                    "version": __version__,
                    "sessions": self.state.session_names(),
                    "uptime_seconds": time.time() - self.state.started,
                },
            )
        elif self.path == "/relations":
            self._send_json(200, {"relations": self.state.describe()})
        else:
            self._error(404, f"unknown route GET {self.path}")

    def do_POST(self) -> None:  # noqa: N802 - stdlib casing
        try:
            payload = self._read_body()
            if self.path == "/relations":
                session = self.state.register_relation(payload)
                self._send_json(201, session.describe())
            elif self.path == "/score":
                session = self._session_from(payload)
                request = ProfileRequest.from_dict(
                    {"fd": payload.get("fd"), "measures": payload.get("measures")}
                )
                self._send_json(200, session.profile(request).to_dict())
            elif self.path == "/discover":
                session = self._session_from(payload)
                result = session.discover(
                    threshold=payload.get("threshold", 0.9),
                    max_lhs_size=int(payload.get("max_lhs_size", 1)),  # type: ignore[arg-type]
                    g3_bound=payload.get("g3_bound"),  # type: ignore[arg-type]
                    minimal_cover=bool(payload.get("minimal_cover", False)),
                    measures=payload.get("measures"),  # type: ignore[arg-type]
                )
                self._send_json(200, result.to_dict())
            elif self.path.startswith("/stream/") and self.path.endswith("/delta"):
                name = self.path[len("/stream/") : -len("/delta")]
                session = self._resolve_session(name)
                update = session.apply_delta(
                    inserts=[tuple(row) for row in payload.get("inserts", ())],  # type: ignore[union-attr]
                    deletes=[int(row_id) for row_id in payload.get("deletes", ())],  # type: ignore[union-attr]
                    measures=payload.get("measures"),  # type: ignore[arg-type]
                )
                self._send_json(200, update.to_dict())
            else:
                self._error(404, f"unknown route POST {self.path}")
        except FileExistsError as error:
            self._error(409, str(error))
        except _UnknownResource as error:
            self._error(404, str(error))
        except KeyError as error:
            # Payload-level lookup failures (unknown measure names, missing
            # keys) are the client's input, not a missing resource.
            self._error(400, error.args[0] if error.args else str(error))
        except (TypeError, ValueError) as error:
            self._error(400, str(error))

    def do_PUT(self) -> None:  # noqa: N802 - stdlib casing
        self._error(405, "only GET and POST are supported")

    do_DELETE = do_PUT


def make_server(
    host: str = "127.0.0.1",
    port: int = 0,
    state: Optional[ServiceState] = None,
    quiet: bool = True,
) -> Tuple[ThreadingHTTPServer, ServiceState]:
    """Build a ready-to-serve (but not yet serving) server + state pair.

    ``port=0`` binds an ephemeral port (read it back from
    ``server.server_address``) — the in-process testing and benchmarking
    entry point.
    """
    state = state if state is not None else ServiceState()
    handler = type(
        "BoundServiceHandler", (ServiceHandler,), {"state": state, "quiet": quiet}
    )
    server = ThreadingHTTPServer((host, port), handler)
    server.daemon_threads = True
    return server, state


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.serve",
        description="Serve AFD profiling sessions over HTTP (JSON API).",
    )
    parser.add_argument("--host", default="127.0.0.1", help="bind address (default: 127.0.0.1)")
    parser.add_argument(
        "--port", type=int, default=8765, help="port (default: 8765; 0 = ephemeral)"
    )
    parser.add_argument(
        "--backend",
        choices=("auto", "python", "numpy"),
        default=None,
        help="statistics backend for every session (default: process default)",
    )
    parser.add_argument(
        "--expectation",
        choices=("exact", "monte-carlo"),
        default="monte-carlo",
        help="permutation-expectation strategy for RFI+/RFI'+ (default: monte-carlo)",
    )
    parser.add_argument(
        "--mc-samples",
        type=int,
        default=100,
        help="Monte-Carlo samples for the permutation expectation (default: 100)",
    )
    parser.add_argument(
        "--sfi-alpha", type=float, default=0.5, help="SFI smoothing parameter (default: 0.5)"
    )
    parser.add_argument(
        "--verbose", action="store_true", help="log one line per handled request"
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    state = ServiceState(
        backend=args.backend,
        measure_options={
            "expectation": args.expectation,
            "mc_samples": args.mc_samples,
            "sfi_alpha": args.sfi_alpha,
        },
    )
    server, _ = make_server(args.host, args.port, state=state, quiet=not args.verbose)
    host, port = server.server_address[:2]

    def _shutdown(signum, frame):  # pragma: no cover - signal path
        # shutdown() blocks until serve_forever returns, so call it off
        # the main thread the signal interrupted.
        threading.Thread(target=server.shutdown, daemon=True).start()

    signal.signal(signal.SIGINT, _shutdown)
    signal.signal(signal.SIGTERM, _shutdown)
    print(f"repro service listening on http://{host}:{port}", file=sys.stderr, flush=True)
    server.serve_forever()
    server.server_close()
    print("repro service shut down cleanly", file=sys.stderr)
    return 0


if __name__ == "__main__":  # pragma: no cover - module execution guard
    sys.exit(main())
