"""The typed request/result object model of the service layer.

Every caller-facing surface of the library — the :class:`AfdSession`
facade, the HTTP server, the CLIs — exchanges the dataclasses defined
here instead of the ad-hoc tuples and dicts that previously grew one
per subsystem:

* :class:`ProfileRequest` — "score this FD with these measures";
* :class:`BatchScoreRequest` — many :class:`ProfileRequest`\\ s against
  one relation, answered by a single batched statistics pass;
* :class:`ScoredFd` — one FD with its per-measure scores (the unified
  replacement of ``repro.discovery.single.CandidateScore`` in outputs);
* :class:`ProfileResult` — the scores, per-measure runtimes and cache
  provenance of one profiled FD;
* :class:`BatchScoreResult` — the per-request results of one batch;
* :class:`DiscoveryResult` — the full scored candidate set of one
  discovery run plus its pruning counters and acceptance view;
* :class:`StreamUpdate` — the state of a dynamic session after a
  mutation batch (epoch, live rows, per-FD scores).

Each class has a stable ``to_dict()`` / ``from_dict()`` pair defining
its JSON schema (``schema`` stamps the version, ``kind`` the record
type), so HTTP payloads, CLI artifacts, persisted results and the
shard-worker pipe protocol all round-trip losslessly through ``json``.
``from_dict`` validates its input and raises :class:`ValueError` on
malformed payloads — the server's ``malformed_record`` path.

This module also defines the service's **error contract**
(:data:`ERROR_CODES`, :class:`ServiceError`): every failing endpoint
answers one JSON envelope ``{"error": {"code", "message", "detail"}}``
with a stable machine-readable code, never a bare string.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple, Union

from repro.relation.fd import FunctionalDependency

#: Version stamped into every ``to_dict()`` payload.  Bump on any
#: backwards-incompatible schema change.
SCHEMA_VERSION = 1


# ----------------------------------------------------------------------
# Error contract
# ----------------------------------------------------------------------
#: The stable machine-readable error codes of the ``/v1`` API, mapped to
#: their meaning.  Clients dispatch on ``error.code``; ``error.message``
#: is human-readable and may change wording between releases,
#: ``error.detail`` carries optional structured context.
ERROR_CODES: Dict[str, str] = {
    "unknown_route": "no route matches the request path",
    "method_not_allowed": "the route exists, but not for this HTTP method",
    "unknown_relation": "the addressed relation is not registered",
    "relation_exists": "a relation with this name is already registered",
    "malformed_record": "the request body failed schema validation",
    "unknown_measure": "a requested measure name is not registered",
    "not_dynamic": "a stream operation addressed a static session",
    "body_too_large": "the request body exceeds the configured size cap",
    "wrong_shard": "the request reached a worker that does not own the relation",
    "internal_error": "unexpected server-side failure",
}

#: Default HTTP status per error code.
ERROR_STATUS: Dict[str, int] = {
    "unknown_route": 404,
    "method_not_allowed": 405,
    "unknown_relation": 404,
    "relation_exists": 409,
    "malformed_record": 400,
    "unknown_measure": 400,
    "not_dynamic": 400,
    "body_too_large": 413,
    "wrong_shard": 421,
    "internal_error": 500,
}


class ServiceError(Exception):
    """A coded service failure, serialisable as the one error envelope.

    Every endpoint answers failures as ``{"error": {"code", "message",
    "detail"}}`` where ``code`` is drawn from :data:`ERROR_CODES`; the
    HTTP status follows :data:`ERROR_STATUS` unless overridden.
    """

    def __init__(
        self,
        code: str,
        message: str,
        detail: Optional[object] = None,
        status: Optional[int] = None,
    ):
        if code not in ERROR_CODES:
            raise ValueError(f"unknown error code {code!r}; known: {sorted(ERROR_CODES)}")
        super().__init__(message)
        self.code = code
        self.message = message
        self.detail = detail
        self.status = status if status is not None else ERROR_STATUS[code]

    def envelope(self) -> Dict[str, object]:
        """The JSON error body: ``{"error": {"code", "message", "detail"}}``."""
        return {
            "error": {"code": self.code, "message": self.message, "detail": self.detail}
        }

    @classmethod
    def from_envelope(
        cls, payload: Mapping, status: Optional[int] = None
    ) -> "ServiceError":
        """Rebuild the error from its envelope (the client/pipe side)."""
        error = payload.get("error") if isinstance(payload, Mapping) else None
        if not isinstance(error, Mapping) or "code" not in error:
            raise ValueError(f"not an error envelope: {payload!r}")
        code = error["code"] if error["code"] in ERROR_CODES else "internal_error"
        return cls(
            code,
            str(error.get("message", ERROR_CODES[code])),
            detail=error.get("detail"),
            status=status,
        )


#: Response fields that legitimately differ between two serving runs of
#: the same request sequence: wall-clock timings and cache provenance.
#: :func:`stable_view` strips exactly these, so "bit-identical serving"
#: can be asserted as equality of the stripped payloads.
VOLATILE_FIELDS = frozenset(
    {"runtimes", "statistics_seconds", "cache_hit", "seconds", "uptime_seconds", "cache"}
)


def stable_view(payload: object) -> object:
    """``payload`` with every volatile (timing/provenance) field removed.

    Recurses through nested mappings and sequences; use it to compare
    responses across serving configurations (serial vs sharded, batch vs
    sequential) where the *numbers* must be bit-identical but wall-clock
    fields cannot be.
    """
    if isinstance(payload, Mapping):
        return {
            key: stable_view(value)
            for key, value in payload.items()
            if key not in VOLATILE_FIELDS
        }
    if isinstance(payload, (list, tuple)):
        return [stable_view(item) for item in payload]
    return payload


def fd_to_dict(fd: FunctionalDependency) -> Dict[str, List[str]]:
    """The JSON form of an FD: ``{"lhs": [...], "rhs": [...]}``."""
    return {"lhs": list(fd.lhs), "rhs": list(fd.rhs)}


def fd_from_value(value: object) -> FunctionalDependency:
    """Parse an FD from its JSON form or from ``"A, B -> C"`` text."""
    if isinstance(value, FunctionalDependency):
        return value
    if isinstance(value, str):
        return FunctionalDependency.parse(value)
    if isinstance(value, Mapping):
        try:
            return FunctionalDependency(value["lhs"], value["rhs"])
        except KeyError as error:
            raise ValueError(
                f"FD payload must have 'lhs' and 'rhs' keys, got {sorted(value)}"
            ) from error
    raise ValueError(f"cannot parse a functional dependency from {value!r}")


def _require(payload: Mapping, keys: Sequence[str], kind: str) -> None:
    if not isinstance(payload, Mapping):
        raise ValueError(f"{kind} payload must be a mapping, got {type(payload).__name__}")
    missing = [key for key in keys if key not in payload]
    if missing:
        raise ValueError(f"{kind} payload is missing keys {missing}")


def _check_kind(payload: Mapping, kind: str) -> None:
    found = payload.get("kind", kind)
    if found != kind:
        raise ValueError(f"expected a {kind!r} payload, got kind {found!r}")


@dataclass(frozen=True)
class ProfileRequest:
    """One scoring request: an FD plus an optional measure subset.

    ``measures=None`` means "every measure the session holds" — the
    session, not the request, owns the measure parameterisation
    (expectation strategy, smoothing, backend), so requests stay small
    and cacheable.
    """

    fd: FunctionalDependency
    measures: Optional[Tuple[str, ...]] = None

    def to_dict(self) -> Dict[str, object]:
        return {
            "schema": SCHEMA_VERSION,
            "kind": "profile_request",
            "fd": fd_to_dict(self.fd),
            "measures": None if self.measures is None else list(self.measures),
        }

    @classmethod
    def from_dict(cls, payload: Mapping) -> "ProfileRequest":
        _require(payload, ("fd",), "ProfileRequest")
        _check_kind(payload, "profile_request")
        measures = payload.get("measures")
        if measures is not None and (
            isinstance(measures, str)
            or not all(isinstance(name, str) for name in measures)
        ):
            raise ValueError(f"'measures' must be a list of names, got {measures!r}")
        return cls(
            fd=fd_from_value(payload["fd"]),
            measures=None if measures is None else tuple(measures),
        )


@dataclass(frozen=True)
class ScoredFd:
    """One FD with its per-measure scores and exactness flag."""

    lhs: Tuple[str, ...]
    rhs: Tuple[str, ...]
    scores: Dict[str, float]
    exact: bool = False

    @property
    def fd(self) -> FunctionalDependency:
        return FunctionalDependency(self.lhs, self.rhs)

    @classmethod
    def from_candidate(cls, candidate) -> "ScoredFd":
        """Lift a :class:`repro.discovery.single.CandidateScore`."""
        return cls(
            lhs=tuple(candidate.fd.lhs),
            rhs=tuple(candidate.fd.rhs),
            scores=dict(candidate.scores),
            exact=candidate.exact,
        )

    def to_dict(self) -> Dict[str, object]:
        return {
            "schema": SCHEMA_VERSION,
            "kind": "scored_fd",
            "lhs": list(self.lhs),
            "rhs": list(self.rhs),
            "scores": dict(self.scores),
            "exact": self.exact,
        }

    @classmethod
    def from_dict(cls, payload: Mapping) -> "ScoredFd":
        _require(payload, ("lhs", "rhs", "scores"), "ScoredFd")
        _check_kind(payload, "scored_fd")
        return cls(
            lhs=tuple(payload["lhs"]),
            rhs=tuple(payload["rhs"]),
            scores={name: float(value) for name, value in payload["scores"].items()},
            exact=bool(payload.get("exact", False)),
        )


@dataclass
class ProfileResult:
    """The outcome of profiling one FD on a session.

    ``cache_hit`` records whether the sufficient statistics came out of
    the session cache (in which case ``statistics_seconds`` is 0.0);
    ``epoch`` is the session mutation epoch the scores are valid for
    (always 0 for static sessions).
    """

    relation: str
    num_rows: int
    scored: ScoredFd
    runtimes: Dict[str, float] = field(default_factory=dict)
    statistics_seconds: float = 0.0
    cache_hit: bool = False
    epoch: int = 0

    @property
    def fd(self) -> FunctionalDependency:
        return self.scored.fd

    @property
    def scores(self) -> Dict[str, float]:
        return self.scored.scores

    def to_dict(self) -> Dict[str, object]:
        return {
            "schema": SCHEMA_VERSION,
            "kind": "profile_result",
            "relation": self.relation,
            "num_rows": self.num_rows,
            "fd": {"lhs": list(self.scored.lhs), "rhs": list(self.scored.rhs)},
            "scores": dict(self.scored.scores),
            "exact": self.scored.exact,
            "runtimes": dict(self.runtimes),
            "statistics_seconds": self.statistics_seconds,
            "cache_hit": self.cache_hit,
            "epoch": self.epoch,
        }

    @classmethod
    def from_dict(cls, payload: Mapping) -> "ProfileResult":
        _require(payload, ("relation", "num_rows", "fd", "scores"), "ProfileResult")
        _check_kind(payload, "profile_result")
        fd = fd_from_value(payload["fd"])
        return cls(
            relation=str(payload["relation"]),
            num_rows=int(payload["num_rows"]),
            scored=ScoredFd(
                lhs=tuple(fd.lhs),
                rhs=tuple(fd.rhs),
                scores={name: float(v) for name, v in payload["scores"].items()},
                exact=bool(payload.get("exact", False)),
            ),
            runtimes={name: float(v) for name, v in payload.get("runtimes", {}).items()},
            statistics_seconds=float(payload.get("statistics_seconds", 0.0)),
            cache_hit=bool(payload.get("cache_hit", False)),
            epoch=int(payload.get("epoch", 0)),
        )


@dataclass(frozen=True)
class BatchScoreRequest:
    """Many scoring requests against one relation, answered in one pass.

    The batch is the unit of server-side coalescing: the owning shard
    acquires the session lock once, shares the statistics cache across
    all requests, and scores each *distinct* ``(fd, measures)`` probe
    exactly once — duplicated probes (the common case under concurrent
    clients) reuse the first result.  Results are bit-identical to
    issuing the requests sequentially.
    """

    requests: Tuple[ProfileRequest, ...]

    def __post_init__(self):
        if not self.requests:
            raise ValueError("a BatchScoreRequest needs at least one request")

    def __len__(self) -> int:
        return len(self.requests)

    def to_dict(self) -> Dict[str, object]:
        return {
            "schema": SCHEMA_VERSION,
            "kind": "batch_score_request",
            "requests": [request.to_dict() for request in self.requests],
        }

    @classmethod
    def from_dict(cls, payload: Mapping) -> "BatchScoreRequest":
        _require(payload, ("requests",), "BatchScoreRequest")
        _check_kind(payload, "batch_score_request")
        requests = payload["requests"]
        if isinstance(requests, (str, Mapping)) or not isinstance(requests, Sequence):
            raise ValueError(f"'requests' must be a list of requests, got {requests!r}")
        if not requests:
            raise ValueError("'requests' must be non-empty")
        return cls(
            requests=tuple(ProfileRequest.from_dict(item) for item in requests)
        )


@dataclass
class BatchScoreResult:
    """The per-request results of one batched scoring pass.

    ``results[i]`` answers ``requests[i]`` of the originating
    :class:`BatchScoreRequest` and is exactly the :class:`ProfileResult`
    a sequential ``score()`` of that request would have produced
    (volatile timing fields aside — see :func:`stable_view`).
    ``distinct`` counts the probes actually scored after in-batch
    deduplication; ``seconds`` is the wall-clock of the whole pass.
    """

    relation: str
    results: List[ProfileResult] = field(default_factory=list)
    distinct: int = 0
    seconds: float = 0.0
    epoch: int = 0

    def __len__(self) -> int:
        return len(self.results)

    def to_dict(self) -> Dict[str, object]:
        return {
            "schema": SCHEMA_VERSION,
            "kind": "batch_score_result",
            "relation": self.relation,
            "results": [result.to_dict() for result in self.results],
            "distinct": self.distinct,
            "seconds": self.seconds,
            "epoch": self.epoch,
        }

    @classmethod
    def from_dict(cls, payload: Mapping) -> "BatchScoreResult":
        _require(payload, ("relation", "results"), "BatchScoreResult")
        _check_kind(payload, "batch_score_result")
        return cls(
            relation=str(payload["relation"]),
            results=[ProfileResult.from_dict(item) for item in payload["results"]],
            distinct=int(payload.get("distinct", 0)),
            seconds=float(payload.get("seconds", 0.0)),
            epoch=int(payload.get("epoch", 0)),
        )


@dataclass
class DiscoveryResult:
    """All scored candidates of one discovery run, service-model form.

    The typed sibling of :class:`repro.discovery.single.DiscoveryResult`
    (which remains the engine-internal carrier): candidates are
    :class:`ScoredFd` objects, counters are one plain mapping, and the
    whole result round-trips through JSON.
    """

    relation: str
    measure_names: List[str]
    thresholds: Dict[str, float]
    candidates: List[ScoredFd] = field(default_factory=list)
    counters: Dict[str, int] = field(default_factory=dict)
    max_lhs_size: int = 1
    epoch: int = 0

    @classmethod
    def from_discovery(cls, result, epoch: int = 0) -> "DiscoveryResult":
        """Lift an engine result (:mod:`repro.discovery.single`)."""
        return cls(
            relation=result.relation_name,
            measure_names=list(result.measure_names),
            thresholds=dict(result.thresholds),
            candidates=[ScoredFd.from_candidate(c) for c in result.candidates],
            counters=result.counters(),
            max_lhs_size=result.max_lhs_size,
            epoch=epoch,
        )

    def to_discovery(self):
        """Lower back to the engine result model (for e.g. minimal cover)."""
        from repro.discovery.single import CandidateScore
        from repro.discovery.single import DiscoveryResult as EngineResult

        result = EngineResult(
            relation_name=self.relation,
            measure_names=list(self.measure_names),
            thresholds=dict(self.thresholds),
            candidates=[
                CandidateScore(fd=c.fd, scores=dict(c.scores), exact=c.exact)
                for c in self.candidates
            ],
            max_lhs_size=self.max_lhs_size,
        )
        for name in (
            "pruned_exact",
            "pruned_key",
            "pruned_bound",
            "statistics_computed",
            "dropped_non_minimal",
        ):
            setattr(result, name, int(self.counters.get(name, 0)))
        return result

    def accepted(self, measure: str) -> List[ScoredFd]:
        """Candidates meeting the measure's threshold, best score first."""
        threshold = self.thresholds[measure]
        hits = [c for c in self.candidates if c.scores[measure] >= threshold]
        return sorted(hits, key=lambda c: -c.scores[measure])

    def accepted_fds(self, measure: str) -> List[FunctionalDependency]:
        return [scored.fd for scored in self.accepted(measure)]

    def exact_fds(self) -> List[FunctionalDependency]:
        return [scored.fd for scored in self.candidates if scored.exact]

    def __len__(self) -> int:
        return len(self.candidates)

    def to_dict(self) -> Dict[str, object]:
        return {
            "schema": SCHEMA_VERSION,
            "kind": "discovery_result",
            "relation": self.relation,
            "measure_names": list(self.measure_names),
            "thresholds": dict(self.thresholds),
            "max_lhs_size": self.max_lhs_size,
            "counters": dict(self.counters),
            "epoch": self.epoch,
            "candidates": [
                {
                    "lhs": list(c.lhs),
                    "rhs": list(c.rhs),
                    "scores": dict(c.scores),
                    "exact": c.exact,
                }
                for c in self.candidates
            ],
        }

    @classmethod
    def from_dict(cls, payload: Mapping) -> "DiscoveryResult":
        _require(
            payload, ("relation", "measure_names", "thresholds", "candidates"), "DiscoveryResult"
        )
        _check_kind(payload, "discovery_result")
        return cls(
            relation=str(payload["relation"]),
            measure_names=list(payload["measure_names"]),
            thresholds={name: float(v) for name, v in payload["thresholds"].items()},
            candidates=[
                ScoredFd(
                    lhs=tuple(c["lhs"]),
                    rhs=tuple(c["rhs"]),
                    scores={name: float(v) for name, v in c["scores"].items()},
                    exact=bool(c.get("exact", False)),
                )
                for c in payload["candidates"]
            ],
            counters={name: int(v) for name, v in payload.get("counters", {}).items()},
            max_lhs_size=int(payload.get("max_lhs_size", 1)),
            epoch=int(payload.get("epoch", 0)),
        )


@dataclass
class StreamUpdate:
    """The state of a dynamic session after (or between) mutation batches.

    ``scores`` and ``restricted_rows`` are keyed by the FD's canonical
    text form (``"A, B -> C"``); ``inserted`` / ``deleted`` count the
    rows this update applied (both 0 for a pure re-scoring snapshot).
    """

    relation: str
    epoch: int
    live_rows: int
    inserted: int = 0
    deleted: int = 0
    scores: Dict[str, Dict[str, float]] = field(default_factory=dict)
    restricted_rows: Dict[str, int] = field(default_factory=dict)
    seconds: float = 0.0

    def to_dict(self) -> Dict[str, object]:
        return {
            "schema": SCHEMA_VERSION,
            "kind": "stream_update",
            "relation": self.relation,
            "epoch": self.epoch,
            "live_rows": self.live_rows,
            "inserted": self.inserted,
            "deleted": self.deleted,
            "scores": {fd: dict(scores) for fd, scores in self.scores.items()},
            "restricted_rows": dict(self.restricted_rows),
            "seconds": self.seconds,
        }

    @classmethod
    def from_dict(cls, payload: Mapping) -> "StreamUpdate":
        _require(payload, ("relation", "epoch", "live_rows"), "StreamUpdate")
        _check_kind(payload, "stream_update")
        return cls(
            relation=str(payload["relation"]),
            epoch=int(payload["epoch"]),
            live_rows=int(payload["live_rows"]),
            inserted=int(payload.get("inserted", 0)),
            deleted=int(payload.get("deleted", 0)),
            scores={
                fd: {name: float(v) for name, v in scores.items()}
                for fd, scores in payload.get("scores", {}).items()
            },
            restricted_rows={
                fd: int(v) for fd, v in payload.get("restricted_rows", {}).items()
            },
            seconds=float(payload.get("seconds", 0.0)),
        )


#: ``from_dict`` dispatch by the payload's ``kind`` field.
_KINDS = {
    "profile_request": ProfileRequest,
    "batch_score_request": BatchScoreRequest,
    "scored_fd": ScoredFd,
    "profile_result": ProfileResult,
    "batch_score_result": BatchScoreResult,
    "discovery_result": DiscoveryResult,
    "stream_update": StreamUpdate,
}

ServiceRecord = Union[
    ProfileRequest,
    BatchScoreRequest,
    ScoredFd,
    ProfileResult,
    BatchScoreResult,
    DiscoveryResult,
    StreamUpdate,
]


def record_from_dict(payload: Mapping) -> ServiceRecord:
    """Rebuild any service record from its ``to_dict()`` form."""
    if not isinstance(payload, Mapping) or "kind" not in payload:
        raise ValueError("service payload must be a mapping with a 'kind' field")
    kind = payload["kind"]
    cls = _KINDS.get(kind)
    if cls is None:
        raise ValueError(f"unknown service record kind {kind!r}; known: {sorted(_KINDS)}")
    return cls.from_dict(payload)
