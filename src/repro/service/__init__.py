"""``repro.service`` — the unified session API and profiling server.

One front door for every caller:

* :class:`AfdSession` — a facade owning one relation plus every
  expensive derived artifact (columnar encoding, partitions, sufficient
  statistics, incremental trackers), with ``score()`` / ``score_many()``
  / ``discover()`` / ``minimal_cover()`` / ``apply_delta()`` /
  ``snapshot_scores()`` methods that never recompute what the session
  already holds;
* the typed request/result model (:mod:`repro.service.model`) with
  stable ``to_dict()`` / ``from_dict()`` JSON schemas shared by the
  library API, the CLIs and the HTTP server, plus the
  :class:`ServiceError` envelope contract (``ERROR_CODES``) every
  server failure follows;
* the profiling server (:mod:`repro.service.server`,
  ``python -m repro.serve``): a versioned ``/v1`` JSON-over-HTTP API on
  a selector-based async front end, serving in-process
  (``--workers 0``) or sharded across session-owning worker processes
  (:mod:`repro.service.shard`, ``--workers N``).

Quickstart::

    from repro.service import AfdSession

    session = AfdSession(relation)
    print(session.score("zip -> city").scores)
    found = session.discover(threshold=0.9, max_lhs_size=2)
    print(session.score(found.accepted_fds("g3")[0]).cache_hit)  # True
"""

from repro.service.model import (
    ERROR_CODES,
    SCHEMA_VERSION,
    BatchScoreRequest,
    BatchScoreResult,
    DiscoveryResult,
    ProfileRequest,
    ProfileResult,
    ScoredFd,
    ServiceError,
    StreamUpdate,
    record_from_dict,
    stable_view,
)
from repro.service.session import AfdSession

__all__ = [
    "ERROR_CODES",
    "SCHEMA_VERSION",
    "AfdSession",
    "BatchScoreRequest",
    "BatchScoreResult",
    "DiscoveryResult",
    "ProfileRequest",
    "ProfileResult",
    "ScoredFd",
    "ServiceError",
    "StreamUpdate",
    "record_from_dict",
    "stable_view",
]
