"""``repro.service`` — the unified session API and profiling server.

One front door for every caller:

* :class:`AfdSession` — a facade owning one relation plus every
  expensive derived artifact (columnar encoding, partitions, sufficient
  statistics, incremental trackers), with ``score()`` / ``discover()`` /
  ``minimal_cover()`` / ``apply_delta()`` / ``snapshot_scores()``
  methods that never recompute what the session already holds;
* the typed request/result model (:mod:`repro.service.model`) with
  stable ``to_dict()`` / ``from_dict()`` JSON schemas shared by the
  library API, the CLIs and the HTTP server;
* the concurrent profiling server (:mod:`repro.service.server`,
  ``python -m repro.serve``): JSON over HTTP on a stdlib
  ``ThreadingHTTPServer`` with per-session locking.

Quickstart::

    from repro.service import AfdSession

    session = AfdSession(relation)
    print(session.score("zip -> city").scores)
    found = session.discover(threshold=0.9, max_lhs_size=2)
    print(session.score(found.accepted_fds("g3")[0]).cache_hit)  # True
"""

from repro.service.model import (
    SCHEMA_VERSION,
    DiscoveryResult,
    ProfileRequest,
    ProfileResult,
    ScoredFd,
    StreamUpdate,
    record_from_dict,
)
from repro.service.session import AfdSession

__all__ = [
    "SCHEMA_VERSION",
    "AfdSession",
    "DiscoveryResult",
    "ProfileRequest",
    "ProfileResult",
    "ScoredFd",
    "StreamUpdate",
    "record_from_dict",
]
