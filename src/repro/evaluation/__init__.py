"""The evaluation harness: PR-AUC, rank-at-max-recall, separation, runtimes.

Labels benchmark tables via :attr:`BenchmarkTable.positive`, scores every
registered measure over a benchmark (sharing one sufficient-statistics
computation per table across all measures), and aggregates the ranking
metrics the paper compares measures by (Section VI-B), with wall-clock
runtime statistics on the side (Table V).
"""

from repro.evaluation.harness import (
    EvaluationResult,
    evaluate_benchmark,
    evaluate_specs,
    iter_scores,
)
from repro.evaluation.metrics import (
    normalized_rank_at_max_recall,
    pr_auc,
    precision_recall_points,
    rank_at_max_recall,
    ranking_summary,
    runtime_stats,
    separation,
)
from repro.evaluation.scoring import MeasureConfig, TableScore

__all__ = [
    "EvaluationResult",
    "MeasureConfig",
    "TableScore",
    "evaluate_benchmark",
    "evaluate_specs",
    "iter_scores",
    "normalized_rank_at_max_recall",
    "pr_auc",
    "precision_recall_points",
    "rank_at_max_recall",
    "ranking_summary",
    "runtime_stats",
    "separation",
]
