"""Scoring one labelled table with every registered measure.

The central cost discipline of the harness (and of the paper's runtime
experiment, Table V): the sufficient statistics of a candidate FD are
computed *once* per ``(table, FD)`` and shared by all fourteen measures
via :meth:`AfdMeasure.score_from_statistics`; per-measure wall-clock
times therefore exclude the shared statistics pass, which is reported
separately.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional

from repro.core.base import AfdMeasure
from repro.core.registry import iter_measures
from repro.core.statistics import FdStatistics
from repro.relation.fd import FunctionalDependency
from repro.relation.relation import Relation


@dataclass(frozen=True)
class MeasureConfig:
    """Picklable recipe for building the measure set inside a worker.

    Measure instances are rebuilt from this config in every worker
    process, so the harness never ships live objects across the pool.
    ``backend`` selects the statistics backend used for the shared
    sufficient-statistics pass (``None`` = the process default; scores
    are bit-identical across backends, so the choice only affects
    runtime).
    """

    expectation: str = "exact"
    mc_samples: int = 200
    sfi_alpha: float = 0.5
    seed: Optional[int] = 0
    backend: Optional[str] = None

    def build(self) -> Dict[str, AfdMeasure]:
        return dict(
            iter_measures(
                expectation=self.expectation,
                mc_samples=self.mc_samples,
                sfi_alpha=self.sfi_alpha,
                seed=self.seed,
            )
        )


@dataclass
class TableScore:
    """All measure scores (and runtimes) of one labelled table."""

    table: str
    benchmark: str
    step: int
    index: int
    positive: bool
    parameter_value: float
    num_rows: int
    statistics_seconds: float
    scores: Dict[str, float] = field(default_factory=dict)
    runtimes: Dict[str, float] = field(default_factory=dict)

    @property
    def label(self) -> int:
        return 1 if self.positive else 0


def score_with_shared_statistics(
    relation: Relation,
    fd: FunctionalDependency,
    measures: Mapping[str, AfdMeasure],
    statistics: Optional[FdStatistics] = None,
    backend: Optional[str] = None,
) -> tuple:
    """``(scores, runtimes, statistics_seconds)`` for one candidate FD.

    .. deprecated::
        Thin shim over a one-shot :class:`repro.service.AfdSession`;
        prefer ``AfdSession(relation, measures=...).score(fd)``, which
        returns the same numbers as a typed
        :class:`~repro.service.model.ProfileResult` and keeps the
        statistics cached for follow-up calls.  Kept because the tuple
        signature is the established worker contract of the evaluation
        harness and the runtime benchmark.

    The statistics object (supplied, or computed by the session with the
    requested ``backend``) is shared across all measures; derived
    quantities cached on it by one measure are reused by the others, so
    e.g. RFI+ and RFI'+ pay for the permutation expectation only once.
    """
    from repro.service.session import AfdSession

    session = AfdSession(relation, measures=dict(measures), backend=backend)
    if statistics is not None:
        session.seed_statistics(fd, statistics)
    result = session.score(fd)
    return result.scores, result.runtimes, result.statistics_seconds
