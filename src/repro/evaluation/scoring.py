"""Scoring one labelled table with every registered measure.

The central cost discipline of the harness (and of the paper's runtime
experiment, Table V): the sufficient statistics of a candidate FD are
computed *once* per ``(table, FD)`` and shared by all fourteen measures
via :meth:`AfdMeasure.score_from_statistics`; per-measure wall-clock
times therefore exclude the shared statistics pass, which is reported
separately.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.core.base import AfdMeasure
from repro.core.registry import iter_measures


@dataclass(frozen=True)
class MeasureConfig:
    """Picklable recipe for building the measure set inside a worker.

    Measure instances are rebuilt from this config in every worker
    process, so the harness never ships live objects across the pool.
    ``backend`` selects the statistics backend used for the shared
    sufficient-statistics pass (``None`` = the process default; scores
    are bit-identical across backends, so the choice only affects
    runtime).  ``chunk_size``/``chunk_jobs`` route that pass through the
    chunked map-merge driver (``None``/1 = monolithic; also bit-identical
    — ``chunk_jobs`` is per-statistics-pass parallelism, distinct from
    the harness's per-table ``jobs``).
    """

    expectation: str = "exact"
    mc_samples: int = 200
    sfi_alpha: float = 0.5
    seed: Optional[int] = 0
    backend: Optional[str] = None
    chunk_size: Optional[int] = None
    chunk_jobs: int = 1

    def build(self) -> Dict[str, AfdMeasure]:
        return dict(
            iter_measures(
                expectation=self.expectation,
                mc_samples=self.mc_samples,
                sfi_alpha=self.sfi_alpha,
                seed=self.seed,
            )
        )


@dataclass
class TableScore:
    """All measure scores (and runtimes) of one labelled table."""

    table: str
    benchmark: str
    step: int
    index: int
    positive: bool
    parameter_value: float
    num_rows: int
    statistics_seconds: float
    scores: Dict[str, float] = field(default_factory=dict)
    runtimes: Dict[str, float] = field(default_factory=dict)

    @property
    def label(self) -> int:
        return 1 if self.positive else 0
