"""Parallel evaluation of a synthetic benchmark.

The runner shards :class:`TableSpec` descriptions — not materialised
relations — across a :class:`~concurrent.futures.ProcessPoolExecutor`:
each worker regenerates its table from the spec's own seed, computes the
shared :class:`FdStatistics` once, and scores every registered measure.
Because every spec is self-seeded, the results are bit-identical for any
worker count (``jobs=2`` reproduces ``jobs=1`` exactly), and the laptop
5x3 grid and the paper's 50x50 grid are the same code path.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field, replace
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.core import registry

from repro.evaluation.metrics import ranking_summary, runtime_stats
from repro.evaluation.scoring import MeasureConfig, TableScore
from repro.synthetic.benchmarks import SyntheticBenchmark, TableSpec
from repro.synthetic.generator import SYNTHETIC_FD


def _init_worker(extra_measures: Dict[str, Callable]) -> None:
    """Re-register extension measures inside a pool worker.

    Under the ``fork`` start method workers inherit the registry, but
    under ``spawn``/``forkserver`` they re-import it empty — without this
    initializer, measures added via :func:`repro.core.registry.register_measure`
    would silently vanish from parallel runs.  Factories must therefore be
    picklable (module-level callables) to participate in ``jobs > 1``.
    """
    for name, factory in extra_measures.items():
        registry.register_measure(name, factory, overwrite=True)


def _score_spec(task: Tuple[TableSpec, MeasureConfig]) -> TableScore:
    """Worker entry point: materialise one spec and score all measures.

    Routed through a one-shot :class:`~repro.service.AfdSession` — the
    same front door every other caller uses — so the statistics pass,
    per-measure runtimes and scores follow the service cost discipline
    (and stay bit-identical to the legacy direct-call path).
    """
    from repro.service.session import AfdSession

    spec, config = task
    table = spec.materialize()
    session = AfdSession(
        table.relation,
        measures=config.build(),
        backend=config.backend,
        chunk_size=config.chunk_size,
        jobs=config.chunk_jobs,
    )
    profile = session.score(SYNTHETIC_FD)
    return TableScore(
        table=spec.name,
        benchmark=spec.benchmark,
        step=spec.step,
        index=spec.index,
        positive=spec.positive,
        parameter_value=spec.parameter_value,
        num_rows=table.relation.num_rows,
        statistics_seconds=profile.statistics_seconds,
        scores=profile.scores,
        runtimes=profile.runtimes,
    )


@dataclass
class EvaluationResult:
    """Per-table scores of one benchmark plus the derived rank metrics."""

    benchmark: str
    parameter_name: str
    measure_names: List[str]
    rows: List[TableScore] = field(default_factory=list)

    # ------------------------------------------------------------------
    # Column access
    # ------------------------------------------------------------------
    def labels(self) -> List[int]:
        return [row.label for row in self.rows]

    def scores(self, measure: str) -> List[float]:
        return [row.scores[measure] for row in self.rows]

    def runtimes(self, measure: str) -> List[float]:
        return [row.runtimes[measure] for row in self.rows]

    def steps(self) -> List[int]:
        return sorted({row.step for row in self.rows})

    # ------------------------------------------------------------------
    # Derived metrics
    # ------------------------------------------------------------------
    def summary(self) -> Dict[str, Dict[str, float]]:
        """Per-measure PR-AUC, rank-at-max-recall, separation and runtimes.

        Metrics that a degenerate benchmark leaves undefined (no
        positives, or no negatives for the separation) are reported as
        ``float("nan")`` rather than raising.
        """
        labels = self.labels()
        result: Dict[str, Dict[str, float]] = {}
        for name in self.measure_names:
            entry: Dict[str, float] = ranking_summary(labels, self.scores(name))
            entry.update(runtime_stats(self.runtimes(name)))
            result[name] = entry
        return result

    def step_curves(self) -> Dict[str, List[Dict[str, float]]]:
        """Per-measure sensitivity curves: mean B+/B- score per step.

        These are the per-step aggregates behind the Section V figures —
        how a measure's score on planted-FD tables (and on independent
        tables) moves as the controlled parameter is swept.
        """
        curves: Dict[str, List[Dict[str, float]]] = {name: [] for name in self.measure_names}
        by_step: Dict[int, List[TableScore]] = {}
        for row in self.rows:
            by_step.setdefault(row.step, []).append(row)
        for step in sorted(by_step):
            rows = by_step[step]
            parameter_value = rows[0].parameter_value
            for name in self.measure_names:
                positive = [row.scores[name] for row in rows if row.positive]
                negative = [row.scores[name] for row in rows if not row.positive]
                curves[name].append(
                    {
                        "step": float(step),
                        "parameter_value": parameter_value,
                        "mean_positive_score": (
                            sum(positive) / len(positive) if positive else float("nan")
                        ),
                        "mean_negative_score": (
                            sum(negative) / len(negative) if negative else float("nan")
                        ),
                    }
                )
        return curves


def evaluate_specs(
    specs: Sequence[TableSpec],
    config: Optional[MeasureConfig] = None,
    jobs: int = 1,
    chunksize: Optional[int] = None,
    backend: Optional[str] = None,
) -> EvaluationResult:
    """Score every registered measure on every spec'd table.

    ``jobs > 1`` shards the specs across a process pool; output order and
    every floating-point score are independent of ``jobs`` — and of
    ``backend``, which selects the statistics engine (``"python"`` /
    ``"numpy"``) and overrides ``config.backend`` when given.
    """
    if not specs:
        raise ValueError("cannot evaluate an empty spec list")
    config = config if config is not None else MeasureConfig()
    if backend is not None:
        config = replace(config, backend=backend)
    tasks = [(spec, config) for spec in specs]
    if jobs <= 1:
        rows = [_score_spec(task) for task in tasks]
    else:
        if chunksize is None:
            chunksize = max(1, len(tasks) // (4 * jobs))
        extras = registry.extra_measure_factories()
        with ProcessPoolExecutor(
            max_workers=jobs, initializer=_init_worker, initargs=(extras,)
        ) as executor:
            rows = list(executor.map(_score_spec, tasks, chunksize=chunksize))
    measure_names = list(rows[0].scores)
    return EvaluationResult(
        benchmark=specs[0].benchmark,
        parameter_name=specs[0].parameter_name,
        measure_names=measure_names,
        rows=rows,
    )


def evaluate_benchmark(
    benchmark: SyntheticBenchmark,
    config: Optional[MeasureConfig] = None,
    jobs: int = 1,
    backend: Optional[str] = None,
) -> EvaluationResult:
    """Evaluate an already-materialised benchmark.

    Prefer :func:`evaluate_specs` for anything large: it ships lightweight
    specs to the workers instead of pickling whole relations.  This eager
    variant exists for benchmarks that were built by other means; it
    scores sequentially (``jobs`` is accepted for interface symmetry but
    relations are scored in-process).  ``backend`` overrides
    ``config.backend`` when given.
    """
    from repro.service.session import AfdSession

    del jobs  # materialised relations are scored in-process
    config = config if config is not None else MeasureConfig()
    if backend is not None:
        config = replace(config, backend=backend)
    measures = config.build()
    rows: List[TableScore] = []
    for position, table in enumerate(benchmark.tables):
        session = AfdSession(
            table.relation,
            measures=dict(measures),
            backend=config.backend,
            chunk_size=config.chunk_size,
            jobs=config.chunk_jobs,
        )
        result = session.score(benchmark.fd)
        rows.append(
            TableScore(
                table=table.relation.name or f"table-{position}",
                benchmark=benchmark.name,
                step=table.step,
                index=position,
                positive=table.positive,
                parameter_value=table.parameter_value,
                num_rows=table.relation.num_rows,
                statistics_seconds=result.statistics_seconds,
                scores=result.scores,
                runtimes=result.runtimes,
            )
        )
    return EvaluationResult(
        benchmark=benchmark.name,
        parameter_name=benchmark.parameter_name,
        measure_names=list(measures),
        rows=rows,
    )


def iter_scores(
    specs: Iterable[TableSpec], config: Optional[MeasureConfig] = None
) -> Iterable[TableScore]:
    """Stream scores table-by-table without holding the full result set."""
    config = config if config is not None else MeasureConfig()
    for spec in specs:
        yield _score_spec((spec, config))
