"""Ranking metrics for the comparative evaluation (Section VI-B).

The paper compares measures by how well their scores *rank* the true
approximate FDs above the non-FDs: the area under the precision–recall
curve (PR-AUC), the rank at which maximum recall is reached, and the
score separation between positives and negatives.  Everything here is
computed from plain Python lists — no scikit-learn dependency.

Tie handling: candidates with equal scores are processed as one block
(the curve only gains a point after a whole block), so the metrics are
invariant to the order in which tied candidates happen to be listed.
"""

from __future__ import annotations

import math
from itertools import groupby
from typing import List, Sequence, Tuple


def _ranked_blocks(
    labels: Sequence[int], scores: Sequence[float]
) -> List[Tuple[int, int]]:
    """``(positives, total)`` per block of tied scores, best score first."""
    if len(labels) != len(scores):
        raise ValueError(
            f"labels and scores must have the same length, got {len(labels)} vs {len(scores)}"
        )
    pairs = sorted(zip(scores, labels), key=lambda pair: -pair[0])
    blocks: List[Tuple[int, int]] = []
    for _score, group in groupby(pairs, key=lambda pair: pair[0]):
        members = list(group)
        blocks.append((sum(label for _s, label in members), len(members)))
    return blocks


def precision_recall_points(
    labels: Sequence[int], scores: Sequence[float]
) -> List[Tuple[float, float]]:
    """The ``(recall, precision)`` points of the ranking, anchored at recall 0.

    Points are emitted after every block of tied scores; the anchor at
    recall 0 repeats the first block's precision so the curve starts at
    the left edge (the usual convention for trapezoidal PR-AUC).
    """
    blocks = _ranked_blocks(labels, scores)
    total_positives = sum(positives for positives, _total in blocks)
    if total_positives == 0:
        raise ValueError("precision-recall is undefined without positive labels")
    points: List[Tuple[float, float]] = []
    true_positives = 0
    retrieved = 0
    for positives, total in blocks:
        true_positives += positives
        retrieved += total
        points.append((true_positives / total_positives, true_positives / retrieved))
    anchor = (0.0, points[0][1])
    return [anchor] + points


def pr_auc(labels: Sequence[int], scores: Sequence[float]) -> float:
    """Trapezoidal area under the precision–recall curve.

    A perfect ranking scores 1.0; a constant score (one tied block)
    degenerates to the positive prevalence.
    """
    points = precision_recall_points(labels, scores)
    area = 0.0
    for (recall_a, precision_a), (recall_b, precision_b) in zip(points, points[1:]):
        area += (recall_b - recall_a) * 0.5 * (precision_a + precision_b)
    return area


def rank_at_max_recall(labels: Sequence[int], scores: Sequence[float]) -> int:
    """Number of top-ranked candidates needed to retrieve every positive.

    Ties are counted pessimistically: every candidate scoring at least as
    high as the worst-scoring positive must be inspected.  A perfect
    measure achieves ``rank == number of positives``.
    """
    blocks = _ranked_blocks(labels, scores)
    total_positives = sum(positives for positives, _total in blocks)
    if total_positives == 0:
        raise ValueError("rank at max recall is undefined without positive labels")
    true_positives = 0
    retrieved = 0
    for positives, total in blocks:
        true_positives += positives
        retrieved += total
        if true_positives == total_positives:
            return retrieved
    raise AssertionError("unreachable: all positives retrieved after the final block")


def normalized_rank_at_max_recall(labels: Sequence[int], scores: Sequence[float]) -> float:
    """``rank_at_max_recall`` scaled to ``(0, 1]`` by the candidate count."""
    if not labels:
        raise ValueError("rank at max recall is undefined for an empty ranking")
    return rank_at_max_recall(labels, scores) / len(labels)


def separation(labels: Sequence[int], scores: Sequence[float]) -> float:
    """Worst positive score minus best negative score.

    Positive iff a single threshold separates the classes perfectly; the
    magnitude is the width of the usable threshold corridor.
    """
    positive_scores = [score for label, score in zip(labels, scores) if label]
    negative_scores = [score for label, score in zip(labels, scores) if not label]
    if not positive_scores or not negative_scores:
        raise ValueError("separation needs at least one positive and one negative")
    return min(positive_scores) - max(negative_scores)


def ranking_summary(labels: Sequence[int], scores: Sequence[float]) -> dict:
    """PR-AUC, rank-at-max-recall (raw + normalised) and separation, NaN-safe.

    Degenerate label sets leave some metrics undefined — a ranking
    without positives has no precision–recall curve, a single-class
    ranking no separation.  The undefined entries become ``float("nan")``
    instead of raising, so all-positive or all-negative benchmarks still
    summarise; the individual metric functions keep their strict
    ``ValueError`` contracts.
    """
    nan = float("nan")
    has_positive = any(labels)
    has_negative = any(not label for label in labels)
    if has_positive:
        entry = {
            "pr_auc": pr_auc(labels, scores),
            "rank_at_max_recall": float(rank_at_max_recall(labels, scores)),
            "normalized_rank_at_max_recall": normalized_rank_at_max_recall(labels, scores),
        }
    else:
        entry = {
            "pr_auc": nan,
            "rank_at_max_recall": nan,
            "normalized_rank_at_max_recall": nan,
        }
    entry["separation"] = (
        separation(labels, scores) if has_positive and has_negative else nan
    )
    return entry


def runtime_stats(durations: Sequence[float]) -> dict:
    """Mean / total / max wall-clock seconds of a measure over a benchmark."""
    if not durations:
        return {"total_seconds": 0.0, "mean_seconds": 0.0, "max_seconds": 0.0}
    total = math.fsum(durations)
    return {
        "total_seconds": total,
        "mean_seconds": total / len(durations),
        "max_seconds": max(durations),
    }
