"""Beta-distribution based value sampling.

The synthetic generation process of Section V-A draws attribute values
according to a Beta distribution ``B(α, β)`` on ``[0, 1]`` which is then
discretised onto the attribute's active domain.  The skewness of
``B(α, β)`` is

    skew(α, β) = 2 (β - α) sqrt(α + β + 1) / ((α + β + 2) sqrt(α β))

and the paper samples ``α ∈ (0, 1]``, ``β ∈ [1, 10]`` such that the
skewness is at most one — except for the SKEW benchmark, which sweeps the
skewness up to 10.
"""

from __future__ import annotations

import math
from typing import Tuple

import numpy as np


def beta_skewness(alpha: float, beta: float) -> float:
    """Skewness of the Beta(α, β) distribution."""
    if alpha <= 0 or beta <= 0:
        raise ValueError(f"Beta parameters must be positive, got alpha={alpha}, beta={beta}")
    return (
        2.0
        * (beta - alpha)
        * math.sqrt(alpha + beta + 1.0)
        / ((alpha + beta + 2.0) * math.sqrt(alpha * beta))
    )


def beta_parameters_for_skewness(
    target_skew: float, beta: float = 10.0, tolerance: float = 1e-6
) -> Tuple[float, float]:
    """Find ``(α, β)`` with the requested (non-negative) skewness.

    Keeps ``β`` fixed and bisects on ``α``: for fixed ``β``, the skewness is
    strictly decreasing in ``α`` and ranges from +∞ (``α -> 0``) down to a
    negative value at ``α = β``... so any ``target_skew >= 0`` is reachable.
    ``target_skew = 0`` returns the uniform distribution ``(1, 1)``.
    """
    if target_skew < 0:
        raise ValueError(f"target skewness must be non-negative, got {target_skew}")
    if target_skew == 0:
        return 1.0, 1.0
    low, high = 1e-9, beta
    # beta_skewness(high, beta) = 0 <= target, beta_skewness(low, beta) -> inf.
    for _ in range(200):
        mid = 0.5 * (low + high)
        skew = beta_skewness(mid, beta)
        if abs(skew - target_skew) <= tolerance:
            return mid, beta
        if skew > target_skew:
            low = mid
        else:
            high = mid
    return 0.5 * (low + high), beta


def sample_beta_parameters(
    rng: np.random.Generator, max_skew: float = 1.0
) -> Tuple[float, float]:
    """Sample ``α ∈ (0, 1]``, ``β ∈ [1, 10]`` with skewness at most ``max_skew``.

    Rejection sampling as in the paper's generation process.
    """
    for _ in range(10_000):
        alpha = float(rng.uniform(0.0, 1.0))
        if alpha <= 0.0:
            continue
        beta = float(rng.uniform(1.0, 10.0))
        if beta_skewness(alpha, beta) <= max_skew:
            return alpha, beta
    raise RuntimeError(
        f"could not sample Beta parameters with skewness <= {max_skew} "
        "after 10000 attempts"
    )


def sample_domain_values(
    rng: np.random.Generator,
    domain_size: int,
    count: int,
    alpha: float,
    beta: float,
) -> np.ndarray:
    """Draw ``count`` values from a domain of ``domain_size`` items via Beta(α, β).

    A draw ``u ~ B(α, β)`` is mapped to the domain index ``floor(u * domain_size)``
    (clipped to the last index), so small ``α`` / large ``β`` concentrate the
    mass near the first domain items, producing a right-skewed value
    distribution.
    """
    if domain_size <= 0:
        raise ValueError(f"domain_size must be positive, got {domain_size}")
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    draws = rng.beta(alpha, beta, size=count)
    indices = np.minimum((draws * domain_size).astype(int), domain_size - 1)
    return indices
