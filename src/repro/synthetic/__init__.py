"""Synthetic data generation for the sensitivity analysis (Section V).

Provides the Beta-distribution value sampler, the B+/B- relation
generation process, the controlled error channel, and builders for the
three synthetic benchmarks ERR, UNIQ and SKEW.
"""

from repro.synthetic.beta import (
    beta_parameters_for_skewness,
    beta_skewness,
    sample_beta_parameters,
    sample_domain_values,
)
from repro.synthetic.generator import (
    GenerationParameters,
    generate_negative_relation,
    generate_positive_relation,
    sample_parameters,
)
from repro.synthetic.benchmarks import (
    BENCHMARK_KINDS,
    BenchmarkTable,
    SyntheticBenchmark,
    TableSpec,
    benchmark_specs,
    build_benchmark_from_specs,
    build_err_benchmark,
    build_skew_benchmark,
    build_uniq_benchmark,
    iter_benchmark_tables,
)

__all__ = [
    "BENCHMARK_KINDS",
    "BenchmarkTable",
    "GenerationParameters",
    "SyntheticBenchmark",
    "TableSpec",
    "benchmark_specs",
    "build_benchmark_from_specs",
    "iter_benchmark_tables",
    "beta_parameters_for_skewness",
    "beta_skewness",
    "build_err_benchmark",
    "build_skew_benchmark",
    "build_uniq_benchmark",
    "generate_negative_relation",
    "generate_positive_relation",
    "sample_beta_parameters",
    "sample_domain_values",
    "sample_parameters",
]
