"""The three synthetic sensitivity benchmarks ERR, UNIQ and SKEW.

Each benchmark consists of B+ tables (generated with the planted FD
``X -> Y`` followed by the error channel) and B- tables (X and Y sampled
independently), organised in *steps*: per step one controlled parameter —
the error rate, the LHS-uniqueness, or the RHS-skew — is fixed while the
other generation parameters are drawn at random (Section V-A).

The paper uses 50 steps x 50 tables per subset; the builders accept both
values as parameters so laptop-scale runs can use smaller grids while the
full-paper configuration remains one call away.

Construction is split into two phases so that large benchmarks never have
to be fully materialised:

1. :func:`benchmark_specs` deterministically samples lightweight, picklable
   :class:`TableSpec` descriptions (generation parameters plus a per-table
   seed) from a single root generator;
2. :meth:`TableSpec.materialize` turns one spec into a concrete
   :class:`BenchmarkTable`, independently of every other spec.

Because each spec carries its own seed, materialisation order — and in
particular the number of worker processes sharding the specs — has no
effect on the generated relations.  :func:`iter_benchmark_tables` streams
tables one at a time; the classical ``build_*_benchmark`` functions remain
as eager wrappers.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable, Dict, Iterator, List, Optional, Sequence

import numpy as np

from repro.relation.fd import FunctionalDependency
from repro.relation.relation import Relation
from repro.synthetic.beta import beta_parameters_for_skewness
from repro.synthetic.generator import (
    SYNTHETIC_FD,
    GenerationParameters,
    generate_negative_relation,
    generate_positive_relation,
    sample_parameters,
)


@dataclass(frozen=True)
class BenchmarkTable:
    """One synthetic relation together with its generation metadata."""

    relation: Relation
    positive: bool
    step: int
    parameter_value: float
    parameters: GenerationParameters


@dataclass(frozen=True)
class TableSpec:
    """A lightweight, picklable description of one benchmark table.

    The spec fixes everything needed to regenerate the table — generation
    parameters and a dedicated seed — without holding any rows, so a
    50x50x2 benchmark is ~5000 small objects rather than ~25M tuples.
    Specs can be shipped to worker processes and materialised there.
    """

    benchmark: str
    parameter_name: str
    step: int
    index: int
    positive: bool
    parameter_value: float
    parameters: GenerationParameters
    seed: int

    @property
    def name(self) -> str:
        """The relation name the eager builders have always used."""
        sign = "+" if self.positive else "-"
        return f"{self.benchmark}{sign}[step={self.step},i={self.index}]"

    def materialize(self) -> BenchmarkTable:
        """Generate the concrete table (deterministic per spec)."""
        rng = np.random.default_rng(self.seed)
        if self.positive:
            relation = generate_positive_relation(self.parameters, rng, name=self.name)
        else:
            relation = generate_negative_relation(self.parameters, rng, name=self.name)
        return BenchmarkTable(
            relation, self.positive, self.step, self.parameter_value, self.parameters
        )


@dataclass
class SyntheticBenchmark:
    """A full synthetic benchmark (ERR, UNIQ or SKEW)."""

    name: str
    parameter_name: str
    fd: FunctionalDependency
    tables: List[BenchmarkTable]

    def positive_tables(self) -> List[BenchmarkTable]:
        return [table for table in self.tables if table.positive]

    def negative_tables(self) -> List[BenchmarkTable]:
        return [table for table in self.tables if not table.positive]

    def steps(self) -> List[int]:
        return sorted({table.step for table in self.tables})

    def parameter_values(self) -> Dict[int, float]:
        """Controlled parameter value per step."""
        return {table.step: table.parameter_value for table in self.tables}

    def tables_at_step(self, step: int, positive: Optional[bool] = None) -> List[BenchmarkTable]:
        return [
            table
            for table in self.tables
            if table.step == step and (positive is None or table.positive == positive)
        ]

    def __len__(self) -> int:
        return len(self.tables)


# ----------------------------------------------------------------------
# Benchmark kinds
# ----------------------------------------------------------------------
def _adjust_err(parameters: GenerationParameters, error_rate: float) -> GenerationParameters:
    return parameters.with_error_rate(error_rate)


def _adjust_uniq(parameters: GenerationParameters, uniqueness: float) -> GenerationParameters:
    domain_x = max(2, int(round(uniqueness * parameters.num_rows)))
    domain_y = min(parameters.domain_y_size, max(5, domain_x // 2))
    return replace(parameters, domain_x_size=domain_x, domain_y_size=max(domain_y, 2))


def _adjust_skew(parameters: GenerationParameters, skew: float) -> GenerationParameters:
    alpha_y, beta_y = beta_parameters_for_skewness(skew)
    return replace(parameters, alpha_y=alpha_y, beta_y=beta_y)


@dataclass(frozen=True)
class BenchmarkKind:
    """Static description of one benchmark family (sweep + adjustment)."""

    name: str
    parameter_name: str
    default_seed: int
    adjust: Callable[[GenerationParameters, float], GenerationParameters]
    values: Callable[[int, dict], Sequence[float]]


def _err_values(steps: int, options: dict) -> Sequence[float]:
    return np.linspace(0.0, options.get("max_error_rate", 0.10), steps)


def _uniq_values(steps: int, options: dict) -> Sequence[float]:
    return np.linspace(
        options.get("min_uniqueness", 0.2), options.get("max_uniqueness", 0.9), steps
    )


def _skew_values(steps: int, options: dict) -> Sequence[float]:
    return np.linspace(0.0, options.get("max_skew", 10.0), steps)


BENCHMARK_KINDS: Dict[str, BenchmarkKind] = {
    "err": BenchmarkKind("ERR", "error_rate", 0, _adjust_err, _err_values),
    "uniq": BenchmarkKind("UNIQ", "lhs_uniqueness", 1, _adjust_uniq, _uniq_values),
    "skew": BenchmarkKind("SKEW", "rhs_skew", 2, _adjust_skew, _skew_values),
}


def benchmark_kind(kind: str) -> BenchmarkKind:
    """Look up a benchmark family by its lower-case key (``err``/``uniq``/``skew``)."""
    key = kind.lower()
    if key not in BENCHMARK_KINDS:
        raise KeyError(
            f"unknown benchmark kind {kind!r}; known kinds: {sorted(BENCHMARK_KINDS)}"
        )
    return BENCHMARK_KINDS[key]


# ----------------------------------------------------------------------
# Spec construction
# ----------------------------------------------------------------------
def _build_specs(
    kind: BenchmarkKind,
    parameter_values: Sequence[float],
    tables_per_step: int,
    rng: np.random.Generator,
    min_rows: int,
    max_rows: int,
) -> List[TableSpec]:
    """Sample all table specs from one root generator (cheap: no rows yet)."""
    specs: List[TableSpec] = []
    for step, value in enumerate(parameter_values):
        for index in range(tables_per_step):
            for positive in (True, False):
                base = sample_parameters(rng, min_rows=min_rows, max_rows=max_rows)
                parameters = kind.adjust(base, float(value))
                seed = int(rng.integers(0, 2**63))
                specs.append(
                    TableSpec(
                        benchmark=kind.name,
                        parameter_name=kind.parameter_name,
                        step=step,
                        index=index,
                        positive=positive,
                        parameter_value=float(value),
                        parameters=parameters,
                        seed=seed,
                    )
                )
    return specs


def benchmark_specs(
    kind: str,
    steps: int = 50,
    tables_per_step: int = 50,
    seed: Optional[int] = None,
    min_rows: int = 100,
    max_rows: int = 10_000,
    **options,
) -> List[TableSpec]:
    """Deterministic table specs of the ``kind`` benchmark.

    ``seed`` defaults to the family's classical seed (0/1/2 for
    ERR/UNIQ/SKEW), so ``benchmark_specs("err")`` describes exactly the
    benchmark that :func:`build_err_benchmark` materialises.  ``options``
    forwards the family-specific sweep bounds (``max_error_rate``,
    ``min_uniqueness``/``max_uniqueness``, ``max_skew``).
    """
    family = benchmark_kind(kind)
    root_seed = family.default_seed if seed is None else seed
    rng = np.random.default_rng(root_seed)
    values = family.values(steps, options)
    return _build_specs(family, values, tables_per_step, rng, min_rows, max_rows)


def iter_benchmark_tables(specs: Sequence[TableSpec]) -> Iterator[BenchmarkTable]:
    """Stream tables one at a time; only one relation is alive per iteration."""
    for spec in specs:
        yield spec.materialize()


def build_benchmark_from_specs(specs: Sequence[TableSpec]) -> SyntheticBenchmark:
    """Eagerly materialise a benchmark from its specs."""
    if not specs:
        raise ValueError("cannot build a benchmark from an empty spec list")
    first = specs[0]
    tables = [spec.materialize() for spec in specs]
    return SyntheticBenchmark(first.benchmark, first.parameter_name, SYNTHETIC_FD, tables)


def _build_eager(
    kind: str,
    steps: int,
    tables_per_step: int,
    rng: Optional[np.random.Generator],
    min_rows: int,
    max_rows: int,
    **options,
) -> SyntheticBenchmark:
    family = benchmark_kind(kind)
    root = rng if rng is not None else np.random.default_rng(family.default_seed)
    values = family.values(steps, options)
    specs = _build_specs(family, values, tables_per_step, root, min_rows, max_rows)
    return build_benchmark_from_specs(specs)


def build_err_benchmark(
    steps: int = 50,
    tables_per_step: int = 50,
    rng: Optional[np.random.Generator] = None,
    min_rows: int = 100,
    max_rows: int = 10_000,
    max_error_rate: float = 0.10,
) -> SyntheticBenchmark:
    """The ERR benchmark: error rate swept from 0 to ``max_error_rate``."""
    return _build_eager(
        "err", steps, tables_per_step, rng, min_rows, max_rows, max_error_rate=max_error_rate
    )


def build_uniq_benchmark(
    steps: int = 50,
    tables_per_step: int = 50,
    rng: Optional[np.random.Generator] = None,
    min_rows: int = 100,
    max_rows: int = 10_000,
    min_uniqueness: float = 0.2,
    max_uniqueness: float = 0.9,
) -> SyntheticBenchmark:
    """The UNIQ benchmark: LHS-uniqueness (``|dom(X)| / |R|``) swept upward."""
    return _build_eager(
        "uniq",
        steps,
        tables_per_step,
        rng,
        min_rows,
        max_rows,
        min_uniqueness=min_uniqueness,
        max_uniqueness=max_uniqueness,
    )


def build_skew_benchmark(
    steps: int = 50,
    tables_per_step: int = 50,
    rng: Optional[np.random.Generator] = None,
    min_rows: int = 100,
    max_rows: int = 10_000,
    max_skew: float = 10.0,
) -> SyntheticBenchmark:
    """The SKEW benchmark: RHS-skew (skewness of the Y Beta distribution) swept up to 10."""
    return _build_eager(
        "skew", steps, tables_per_step, rng, min_rows, max_rows, max_skew=max_skew
    )
