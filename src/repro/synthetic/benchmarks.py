"""The three synthetic sensitivity benchmarks ERR, UNIQ and SKEW.

Each benchmark consists of B+ tables (generated with the planted FD
``X -> Y`` followed by the error channel) and B- tables (X and Y sampled
independently), organised in *steps*: per step one controlled parameter —
the error rate, the LHS-uniqueness, or the RHS-skew — is fixed while the
other generation parameters are drawn at random (Section V-A).

The paper uses 50 steps x 50 tables per subset; the builders accept both
values as parameters so laptop-scale runs can use smaller grids while the
full-paper configuration remains one call away.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from repro.relation.fd import FunctionalDependency
from repro.relation.relation import Relation
from repro.synthetic.beta import beta_parameters_for_skewness
from repro.synthetic.generator import (
    SYNTHETIC_FD,
    GenerationParameters,
    generate_negative_relation,
    generate_positive_relation,
    sample_parameters,
)


@dataclass(frozen=True)
class BenchmarkTable:
    """One synthetic relation together with its generation metadata."""

    relation: Relation
    positive: bool
    step: int
    parameter_value: float
    parameters: GenerationParameters


@dataclass
class SyntheticBenchmark:
    """A full synthetic benchmark (ERR, UNIQ or SKEW)."""

    name: str
    parameter_name: str
    fd: FunctionalDependency
    tables: List[BenchmarkTable]

    def positive_tables(self) -> List[BenchmarkTable]:
        return [table for table in self.tables if table.positive]

    def negative_tables(self) -> List[BenchmarkTable]:
        return [table for table in self.tables if not table.positive]

    def steps(self) -> List[int]:
        return sorted({table.step for table in self.tables})

    def parameter_values(self) -> Dict[int, float]:
        """Controlled parameter value per step."""
        return {table.step: table.parameter_value for table in self.tables}

    def tables_at_step(self, step: int, positive: Optional[bool] = None) -> List[BenchmarkTable]:
        return [
            table
            for table in self.tables
            if table.step == step and (positive is None or table.positive == positive)
        ]

    def __len__(self) -> int:
        return len(self.tables)


def _build_benchmark(
    name: str,
    parameter_name: str,
    parameter_values: Sequence[float],
    adjust: Callable[[GenerationParameters, float], GenerationParameters],
    tables_per_step: int,
    rng: np.random.Generator,
    min_rows: int,
    max_rows: int,
) -> SyntheticBenchmark:
    """Shared builder: per step, generate positive and negative tables."""
    tables: List[BenchmarkTable] = []
    for step, value in enumerate(parameter_values):
        for index in range(tables_per_step):
            base = sample_parameters(rng, min_rows=min_rows, max_rows=max_rows)
            parameters = adjust(base, value)
            positive = generate_positive_relation(
                parameters, rng, name=f"{name}+[step={step},i={index}]"
            )
            tables.append(BenchmarkTable(positive, True, step, value, parameters))
            base_negative = sample_parameters(rng, min_rows=min_rows, max_rows=max_rows)
            parameters_negative = adjust(base_negative, value)
            negative = generate_negative_relation(
                parameters_negative, rng, name=f"{name}-[step={step},i={index}]"
            )
            tables.append(BenchmarkTable(negative, False, step, value, parameters_negative))
    return SyntheticBenchmark(name, parameter_name, SYNTHETIC_FD, tables)


def build_err_benchmark(
    steps: int = 50,
    tables_per_step: int = 50,
    rng: Optional[np.random.Generator] = None,
    min_rows: int = 100,
    max_rows: int = 10_000,
    max_error_rate: float = 0.10,
) -> SyntheticBenchmark:
    """The ERR benchmark: error rate swept from 0 to ``max_error_rate``."""
    rng = rng if rng is not None else np.random.default_rng(0)
    values = list(np.linspace(0.0, max_error_rate, steps))

    def adjust(parameters: GenerationParameters, error_rate: float) -> GenerationParameters:
        return parameters.with_error_rate(error_rate)

    return _build_benchmark(
        "ERR", "error_rate", values, adjust, tables_per_step, rng, min_rows, max_rows
    )


def build_uniq_benchmark(
    steps: int = 50,
    tables_per_step: int = 50,
    rng: Optional[np.random.Generator] = None,
    min_rows: int = 100,
    max_rows: int = 10_000,
    min_uniqueness: float = 0.2,
    max_uniqueness: float = 0.9,
) -> SyntheticBenchmark:
    """The UNIQ benchmark: LHS-uniqueness (``|dom(X)| / |R|``) swept upward."""
    rng = rng if rng is not None else np.random.default_rng(1)
    values = list(np.linspace(min_uniqueness, max_uniqueness, steps))

    def adjust(parameters: GenerationParameters, uniqueness: float) -> GenerationParameters:
        domain_x = max(2, int(round(uniqueness * parameters.num_rows)))
        domain_y = min(parameters.domain_y_size, max(5, domain_x // 2))
        return replace(parameters, domain_x_size=domain_x, domain_y_size=max(domain_y, 2))

    return _build_benchmark(
        "UNIQ", "lhs_uniqueness", values, adjust, tables_per_step, rng, min_rows, max_rows
    )


def build_skew_benchmark(
    steps: int = 50,
    tables_per_step: int = 50,
    rng: Optional[np.random.Generator] = None,
    min_rows: int = 100,
    max_rows: int = 10_000,
    max_skew: float = 10.0,
) -> SyntheticBenchmark:
    """The SKEW benchmark: RHS-skew (skewness of the Y Beta distribution) swept up to 10."""
    rng = rng if rng is not None else np.random.default_rng(2)
    values = list(np.linspace(0.0, max_skew, steps))

    def adjust(parameters: GenerationParameters, skew: float) -> GenerationParameters:
        alpha_y, beta_y = beta_parameters_for_skewness(skew)
        return replace(parameters, alpha_y=alpha_y, beta_y=beta_y)

    return _build_benchmark(
        "SKEW", "rhs_skew", values, adjust, tables_per_step, rng, min_rows, max_rows
    )
