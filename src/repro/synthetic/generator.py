"""The B+/B- relation generation process of Section V-A.

Relations are generated over the two attributes ``X`` and ``Y``:

* **Negative relations (B-)** sample ``X`` and ``Y`` values independently at
  random (Beta-distributed over their active domains) — the FD ``X -> Y``
  is *not* part of the design schema.
* **Positive relations (B+)** first build a dictionary ``D: dom(X) -> dom(Y)``
  and populate the relation with tuples ``(x, D(x))``, so that ``X -> Y``
  holds by construction, and then pass the relation through a controlled
  error channel that rewrites ``⌊η |R|⌋`` Y-values by copying the Y-value
  of another tuple (keeping ``dom_R(Y)`` and the X-marginal unchanged).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from repro.relation.fd import FunctionalDependency
from repro.relation.relation import Relation
from repro.synthetic.beta import sample_beta_parameters, sample_domain_values

#: The FD all synthetic benchmarks are generated for.
SYNTHETIC_FD = FunctionalDependency("X", "Y")


@dataclass(frozen=True)
class GenerationParameters:
    """Parameters of the synthetic generation process (Section V-A)."""

    num_rows: int
    domain_x_size: int
    domain_y_size: int
    alpha_x: float
    beta_x: float
    alpha_y: float
    beta_y: float
    error_rate: float

    def __post_init__(self):
        if self.num_rows <= 0:
            raise ValueError(f"num_rows must be positive, got {self.num_rows}")
        if self.domain_x_size <= 0 or self.domain_y_size <= 0:
            raise ValueError("domain sizes must be positive")
        if not 0.0 <= self.error_rate <= 1.0:
            raise ValueError(f"error_rate must be in [0, 1], got {self.error_rate}")

    def with_error_rate(self, error_rate: float) -> "GenerationParameters":
        return replace(self, error_rate=error_rate)


def sample_parameters(
    rng: np.random.Generator,
    min_rows: int = 100,
    max_rows: int = 10_000,
    min_error_rate: float = 0.005,
    max_error_rate: float = 0.02,
    max_skew: float = 1.0,
) -> GenerationParameters:
    """Sample generation parameters uniformly from the paper's ranges.

    ``|R| ∈ [100, 10000]``, ``|dom(X)| ∈ [|R|/5, 3|R|/4]``,
    ``|dom(Y)| ∈ [5, |dom(X)|/2]``, ``η ∈ [0.5%, 2%]``; the Beta parameters
    are sampled with skewness at most ``max_skew``.
    The row range may be narrowed for laptop-scale experiment runs.
    """
    num_rows = int(rng.integers(min_rows, max_rows + 1))
    domain_x = int(rng.integers(max(2, num_rows // 5), max(3, (3 * num_rows) // 4 + 1)))
    domain_y_upper = max(6, domain_x // 2 + 1)
    domain_y = int(rng.integers(5, domain_y_upper))
    alpha_x, beta_x = sample_beta_parameters(rng, max_skew=max_skew)
    alpha_y, beta_y = sample_beta_parameters(rng, max_skew=max_skew)
    error_rate = float(rng.uniform(min_error_rate, max_error_rate))
    return GenerationParameters(
        num_rows=num_rows,
        domain_x_size=domain_x,
        domain_y_size=domain_y,
        alpha_x=alpha_x,
        beta_x=beta_x,
        alpha_y=alpha_y,
        beta_y=beta_y,
        error_rate=error_rate,
    )


def generate_negative_relation(
    parameters: GenerationParameters, rng: np.random.Generator, name: str = "synthetic-"
) -> Relation:
    """Generate a B- relation: X and Y sampled independently at random."""
    x_values = sample_domain_values(
        rng, parameters.domain_x_size, parameters.num_rows, parameters.alpha_x, parameters.beta_x
    )
    y_values = sample_domain_values(
        rng, parameters.domain_y_size, parameters.num_rows, parameters.alpha_y, parameters.beta_y
    )
    rows = [(int(x), int(y)) for x, y in zip(x_values, y_values)]
    return Relation(["X", "Y"], rows, name=name)


def generate_positive_relation(
    parameters: GenerationParameters, rng: np.random.Generator, name: str = "synthetic+"
) -> Relation:
    """Generate a B+ relation: planted FD ``X -> Y`` plus a controlled error channel."""
    dictionary = sample_domain_values(
        rng,
        parameters.domain_y_size,
        parameters.domain_x_size,
        parameters.alpha_y,
        parameters.beta_y,
    )
    x_values = sample_domain_values(
        rng, parameters.domain_x_size, parameters.num_rows, parameters.alpha_x, parameters.beta_x
    )
    y_values = dictionary[x_values]
    rows = [(int(x), int(y)) for x, y in zip(x_values, y_values)]
    clean = Relation(["X", "Y"], rows, name=name)
    return apply_copy_error_channel(clean, parameters.error_rate, rng)


def apply_copy_error_channel(
    relation: Relation,
    error_rate: float,
    rng: np.random.Generator,
    rhs_attribute: str = "Y",
) -> Relation:
    """The controlled error channel of Section V-A.

    Rewrites ``k = ⌊η |R|⌋`` Y-values: for each selected tuple ``w``, pick a
    random tuple ``w̃`` with a different Y-value and copy its Y-value into
    ``w``.  No new Y-values are introduced, ``dom_R(Y)`` stays stable and
    the X column is untouched (``p_{R'}(X) = p_R(X)``).
    """
    rows = relation.rows()
    num_rows = len(rows)
    errors = int(error_rate * num_rows)
    if errors == 0 or num_rows < 2:
        return relation.with_rows(rows)
    rhs_index = relation.attributes.index(rhs_attribute)
    distinct_rhs = {row[rhs_index] for row in rows}
    if len(distinct_rhs) < 2:
        # Every tuple has the same Y-value; no violation can be introduced.
        return relation.with_rows(rows)
    target_positions = rng.choice(num_rows, size=min(errors, num_rows), replace=False)
    for position in target_positions:
        current = rows[position][rhs_index]
        # Draw donor tuples until one with a different Y-value is found.
        for _ in range(10 * num_rows):
            donor = int(rng.integers(0, num_rows))
            donor_value = rows[donor][rhs_index]
            if donor_value != current:
                row = list(rows[position])
                row[rhs_index] = donor_value
                rows[position] = tuple(row)
                break
    return relation.with_rows(rows)
