"""repro — Measuring Approximate Functional Dependencies: a Comparative Study.

A complete reproduction library for the ICDE 2024 paper by Parciak et al.
It provides:

* a bag-based relation substrate (:mod:`repro.relation`);
* Shannon- and logical-entropy primitives (:mod:`repro.info`);
* all fourteen AFD measures in the paper's three classes (:mod:`repro.core`);
* the synthetic sensitivity benchmarks ERR / UNIQ / SKEW
  (:mod:`repro.synthetic`);
* error channels and the RWDe benchmark construction (:mod:`repro.errors`);
* synthetic stand-ins for the RWD real-world benchmark (:mod:`repro.rwd`);
* measure-based AFD discovery (:mod:`repro.discovery`);
* the evaluation harness: PR-AUC, rank-at-max-recall, separation, runtimes
  (:mod:`repro.evaluation`);
* one experiment driver per paper table and figure (:mod:`repro.experiments`).

Quickstart::

    from repro import FunctionalDependency, Relation, get_measure

    relation = Relation(["zip", "city"], [("1000", "Brussels"),
                                          ("1000", "Brussels"),
                                          ("1000", "Bruxelles"),
                                          ("3590", "Diepenbeek")])
    fd = FunctionalDependency("zip", "city")
    print(get_measure("mu_plus").score(relation, fd))
"""

from repro.core import (
    AfdMeasure,
    FdStatistics,
    MeasureClass,
    all_measures,
    default_measures,
    get_measure,
    measure_names,
    measures_by_class,
)
from repro.relation import FunctionalDependency, Relation, StrippedPartition

__version__ = "1.0.0"

__all__ = [
    "AfdMeasure",
    "FdStatistics",
    "FunctionalDependency",
    "MeasureClass",
    "Relation",
    "StrippedPartition",
    "all_measures",
    "default_measures",
    "get_measure",
    "measure_names",
    "measures_by_class",
    "__version__",
]
