"""repro — Measuring Approximate Functional Dependencies: a Comparative Study.

A complete reproduction library for the ICDE 2024 paper by Parciak et al.
It provides:

* a bag-based relation substrate (:mod:`repro.relation`);
* Shannon- and logical-entropy primitives (:mod:`repro.info`);
* all fourteen AFD measures in the paper's three classes (:mod:`repro.core`);
* the synthetic sensitivity benchmarks ERR / UNIQ / SKEW
  (:mod:`repro.synthetic`);
* error channels and the RWDe benchmark construction (:mod:`repro.errors`);
* synthetic stand-ins for the RWD real-world benchmark (:mod:`repro.rwd`);
* measure-based AFD discovery (:mod:`repro.discovery`);
* incremental AFD maintenance over changing relations (:mod:`repro.stream`);
* the unified session API and profiling server (:mod:`repro.service`,
  ``python -m repro.serve``);
* the evaluation harness: PR-AUC, rank-at-max-recall, separation, runtimes
  (:mod:`repro.evaluation`);
* one experiment driver per paper table and figure (:mod:`repro.experiments`).

Quickstart::

    from repro import FunctionalDependency, Relation, get_measure

    relation = Relation(["zip", "city"], [("1000", "Brussels"),
                                          ("1000", "Brussels"),
                                          ("1000", "Bruxelles"),
                                          ("3590", "Diepenbeek")])
    fd = FunctionalDependency("zip", "city")
    print(get_measure("mu_plus").score(relation, fd))
"""

import importlib

from repro.core import (
    AfdMeasure,
    FdStatistics,
    MeasureClass,
    all_measures,
    default_measures,
    get_measure,
    measure_names,
    measures_by_class,
)
from repro.relation import FunctionalDependency, Relation, StrippedPartition

__version__ = "1.2.0"

#: Subpackages (and their headline callables) exposed lazily: importing
#: ``repro`` stays cheap while ``repro.evaluation`` / ``repro.discovery``
#: / ``repro.experiments`` remain reachable as plain attributes.
_LAZY_SUBMODULES = (
    "discovery",
    "errors",
    "evaluation",
    "experiments",
    "rwd",
    "service",
    "stream",
    "synthetic",
)
_LAZY_ATTRIBUTES = {
    "brute_force_afds": "repro.discovery",
    "discover_afds": "repro.discovery",
    "lattice_discover": "repro.discovery",
    "minimal_cover": "repro.discovery",
    "evaluate_benchmark": "repro.evaluation",
    "evaluate_specs": "repro.evaluation",
    "benchmark_specs": "repro.synthetic",
    "DynamicRelation": "repro.stream",
    "IncrementalFdStatistics": "repro.stream",
    "IncrementalPartition": "repro.stream",
    "AfdSession": "repro.service",
    "ProfileRequest": "repro.service",
    "ProfileResult": "repro.service",
    "ScoredFd": "repro.service",
    "StreamUpdate": "repro.service",
}

__all__ = [
    "AfdMeasure",
    "AfdSession",
    "DynamicRelation",
    "FdStatistics",
    "FunctionalDependency",
    "IncrementalFdStatistics",
    "IncrementalPartition",
    "MeasureClass",
    "ProfileRequest",
    "ProfileResult",
    "Relation",
    "ScoredFd",
    "StreamUpdate",
    "StrippedPartition",
    "all_measures",
    "benchmark_specs",
    "brute_force_afds",
    "default_measures",
    "discover_afds",
    "lattice_discover",
    "minimal_cover",
    "evaluate_benchmark",
    "evaluate_specs",
    "get_measure",
    "measure_names",
    "measures_by_class",
    "__version__",
]


def __getattr__(name: str):
    if name in _LAZY_SUBMODULES:
        return importlib.import_module(f"repro.{name}")
    if name in _LAZY_ATTRIBUTES:
        module = importlib.import_module(_LAZY_ATTRIBUTES[name])
        return getattr(module, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


def __dir__():
    return sorted(set(globals()) | set(_LAZY_SUBMODULES) | set(_LAZY_ATTRIBUTES))
