"""LOGICAL-class measures: g1, g1', pdep, τ and μ+.

These measures are based on logical entropy: probabilities that randomly
drawn pairs of tuples agree or disagree on the FD's attributes
(Sections IV-B and IV-D of the paper).
"""

from __future__ import annotations

from repro.core.base import AfdMeasure, MeasureClass
from repro.core.expectations import expected_pdep
from repro.core.statistics import FdStatistics


class G1Measure(AfdMeasure):
    """g1: one minus the normalised number of violating pairs.

    ``g1(X -> Y, R) = 1 - |G1(X -> Y, R)| / |R|² = 1 - h_R(Y | X)``
    (Kivinen & Mannila; basis of FDX).  Without baselines.
    """

    name = "g1"
    description = "1 - (violating pairs) / |R|^2, i.e. 1 - logical conditional entropy"
    measure_class = MeasureClass.LOGICAL
    has_baselines = False

    def _score_violated(self, statistics: FdStatistics) -> float:
        n = statistics.num_rows
        return 1.0 - statistics.violating_pair_count() / (n * n)


class G1PrimeMeasure(AfdMeasure):
    """g1': g1 normalised by the maximum possible number of violating pairs.

    ``g1'(X -> Y, R) = 1 - |G1| / (|R|² - Σ_w R(w)²)`` (basis of PYRO).
    """

    name = "g1_prime"
    description = "g1 normalised by the maximal number of violating pairs (PYRO)"
    measure_class = MeasureClass.LOGICAL
    has_baselines = True

    def _score_violated(self, statistics: FdStatistics) -> float:
        n = statistics.num_rows
        denominator = n * n - statistics.sum_squared_tuple_counts()
        if denominator <= 0:
            # All tuples identical: no violating pair is possible, so the FD
            # is satisfied and the base class already returned 1.0.
            return 1.0
        return 1.0 - statistics.violating_pair_count() / denominator


class PdepMeasure(AfdMeasure):
    """Probabilistic dependency pdep (Piatetsky-Shapiro & Matheus).

    ``pdep(X -> Y, R) = Σ_x p(x) Σ_y p(y | x)² = 1 - E_x[h_R(Y | x)]`` —
    the probability that two random tuples agree on Y given they agree on
    X.  Without baselines (always >= pdep(Y) > 0).
    """

    name = "pdep"
    description = "probabilistic dependency: P(two tuples agree on Y | agree on X)"
    measure_class = MeasureClass.LOGICAL
    has_baselines = False

    def _score_violated(self, statistics: FdStatistics) -> float:
        return 1.0 - statistics.expected_group_logical_entropy()


class TauMeasure(AfdMeasure):
    """Goodman–Kruskal τ: pdep normalised by the self-dependency pdep(Y).

    ``τ(X -> Y, R) = (pdep(X -> Y) - pdep(Y)) / (1 - pdep(Y))`` — the
    relative increase in the probability of guessing Y correctly when X is
    known.
    """

    name = "tau"
    description = "Goodman-Kruskal tau: pdep normalised against pdep(Y)"
    measure_class = MeasureClass.LOGICAL
    has_baselines = True

    def _score_violated(self, statistics: FdStatistics) -> float:
        pdep_xy = 1.0 - statistics.expected_group_logical_entropy()
        pdep_y = statistics.sum_squared_y_probabilities()
        denominator = 1.0 - pdep_y
        if denominator <= 0.0:
            # |dom_R(Y)| = 1 means the FD is satisfied (handled by base class).
            return 1.0
        return (pdep_xy - pdep_y) / denominator


class MuPlusMeasure(AfdMeasure):
    """μ+: pdep normalised by its expectation under random permutations.

    ``μ = (pdep - E_R[pdep]) / (1 - E_R[pdep])``, clipped at zero.  This is
    the paper's recommended measure: insensitive to LHS-uniqueness and
    RHS-skew, and efficiently computable.
    """

    name = "mu_plus"
    description = "pdep normalised by its permutation-model expectation, clipped at 0"
    measure_class = MeasureClass.LOGICAL
    has_baselines = True

    def _score_violated(self, statistics: FdStatistics) -> float:
        pdep_xy = 1.0 - statistics.expected_group_logical_entropy()
        expectation = expected_pdep(statistics)
        denominator = 1.0 - expectation
        if denominator <= 0.0:
            # Lemma 1: E[pdep] = 1 implies R |= φ, handled by the base class.
            return 1.0
        mu = (pdep_xy - expectation) / denominator
        return max(mu, 0.0)
