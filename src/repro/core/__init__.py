"""AFD measures — the paper's primary contribution.

This subpackage implements all fourteen AFD measures surveyed in Section
IV of the paper, grouped into the three classes of Section IV-E:

* VIOLATION — ρ, g2, g3, g3'
* SHANNON   — gS1, FI, RFI+, RFI'+, SFIα
* LOGICAL   — g1, g1', pdep, τ, μ+

together with the shared sufficient statistics, the permutation-model
expectations used by RFI+/RFI'+/μ+, a measure registry and the Table III
property catalogue.
"""

from repro.core.base import AfdMeasure, MeasureClass
from repro.core.backends import (
    available_backends,
    get_default_backend,
    resolve_backend,
    set_default_backend,
)
from repro.core.chunked import compute_chunked
from repro.core.partial import PartialFdCounts
from repro.core.statistics import FdStatistics
from repro.core.violation import G2Measure, G3Measure, G3PrimeMeasure, RhoMeasure
from repro.core.logical import (
    G1Measure,
    G1PrimeMeasure,
    MuPlusMeasure,
    PdepMeasure,
    TauMeasure,
)
from repro.core.shannon import (
    FIMeasure,
    GS1Measure,
    RfiPlusMeasure,
    RfiPrimePlusMeasure,
    SfiMeasure,
)
from repro.core.registry import (
    all_measures,
    default_measures,
    get_measure,
    measure_names,
    measures_by_class,
)
from repro.core.properties import MeasureProperties, property_table

__all__ = [
    "AfdMeasure",
    "FdStatistics",
    "FIMeasure",
    "G1Measure",
    "G1PrimeMeasure",
    "G2Measure",
    "G3Measure",
    "G3PrimeMeasure",
    "GS1Measure",
    "MeasureClass",
    "MeasureProperties",
    "MuPlusMeasure",
    "PartialFdCounts",
    "PdepMeasure",
    "RfiPlusMeasure",
    "RfiPrimePlusMeasure",
    "RhoMeasure",
    "SfiMeasure",
    "TauMeasure",
    "all_measures",
    "available_backends",
    "compute_chunked",
    "default_measures",
    "get_default_backend",
    "get_measure",
    "measure_names",
    "measures_by_class",
    "property_table",
    "resolve_backend",
    "set_default_backend",
]
