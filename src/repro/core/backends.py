"""Pluggable statistics backends.

The sufficient-statistics pass (:meth:`FdStatistics.compute`) is the hot
loop of every experiment in the paper: the 50x50 sensitivity grids, the
RWDe sweep, lattice discovery and — most directly — the runtime
experiment of Table V all compute one :class:`FdStatistics` per candidate
FD.  This module makes that pass pluggable:

* :class:`PythonBackend` (``"python"``) — the portable reference path:
  row scans into ``Counter``s, no dependencies, always available.
* :class:`NumpyBackend` (``"numpy"``) — the vectorised path: NULL
  restriction, row packing and grouping are array operations over the
  relation's cached columnar view (:mod:`repro.relation.columnar`), and
  the integer statistics (squared tuple counts, violating pair/tuple
  counts, ``max_subrelation_size``) plus the ``Σ p²`` probability sums
  are derived vectorised and pre-seeded into the statistics cache.

**Bit-identity contract.**  Both backends produce *identical*
``FdStatistics`` — the same counts under the same keys in the same
``Counter`` insertion order (first occurrence in row order) — and every
floating-point derivation either runs in shared scalar code over that
shared order, or (for the vectorised ``Σ p²`` sums) reproduces the
scalar path exactly: elementwise IEEE division/multiplication followed
by a sequential ``cumsum`` reduction, which bit-matches the scalar
left-to-right accumulation.  Integer statistics are exact in both paths
(arbitrary-precision ``int`` vs ``int64``).  Consequently every measure
scores bit-identically on both backends — enforced by the parity
property tests in ``tests/test_backends.py``.  This is also why the
Shannon entropies and the permutation expectation remain shared scalar
code: ``np.log`` and ``math.log`` may differ in the last ulp, and those
reductions operate on the already-reduced distinct-count arrays
(O(distinct), not O(rows)), so vectorising them would trade the
bit-identity guarantee for a negligible win.

Backend selection (first match wins):

1. the explicit ``backend=`` argument of :meth:`FdStatistics.compute`;
2. the process-wide default set via :func:`set_default_backend`;
3. the ``REPRO_STATS_BACKEND`` environment variable;
4. ``"auto"``: ``numpy`` when importable, else ``python``.

Requesting ``numpy`` when numpy is absent falls back to ``python``
automatically — scores are identical either way, only slower.
"""

from __future__ import annotations

import os
from collections import Counter
from typing import Dict, List, Optional, Tuple

from repro.core.partial import ArrayFdCounts, PartialFdCounts
from repro.core.statistics import FdStatistics
from repro.relation.chunked import CodeChunk
from repro.relation.columnar import _PACK_LIMIT, _dense_first_occurrence
from repro.relation.fd import FunctionalDependency
from repro.relation.operations import joint_counts
from repro.relation.relation import Relation

try:  # pragma: no cover - exercised by the no-numpy CI job
    import numpy as np
except ImportError:  # pragma: no cover
    np = None  # type: ignore[assignment]

#: Environment variable overriding the default backend.
BACKEND_ENV_VAR = "REPRO_STATS_BACKEND"

_BACKEND_NAMES = ("python", "numpy")

#: Process-wide default set via :func:`set_default_backend` (None = unset).
_DEFAULT_BACKEND: Optional[str] = None


def _fd_covers_schema(attributes: Tuple[str, ...], fd: FunctionalDependency) -> bool:
    """True when the schema is exactly ``lhs + rhs`` in order.

    Then every full tuple is the concatenation of its x and y keys, the
    NULL restriction on ``X ∪ Y`` restricts on every attribute, and the
    first occurrence of a full tuple is the first occurrence of its
    ``(x, y)`` pair — so the full-tuple counts can be re-keyed from the
    joint counts instead of being counted separately, with identical
    counts in identical order.
    """
    return tuple(attributes) == fd.lhs + fd.rhs


class PythonBackend:
    """Counter-based reference backend (always available)."""

    name = "python"

    @staticmethod
    def available() -> bool:
        return True

    def compute(self, relation: Relation, fd: FunctionalDependency) -> FdStatistics:
        restricted = relation.drop_nulls(fd.attributes)
        return FdStatistics.from_joint_counts(
            fd,
            restricted.num_rows,
            joint_counts(restricted, fd.lhs, fd.rhs),
            restricted.frequencies(),
            relation_name=relation.name,
        )

    def compute_partial(self, chunk: CodeChunk, fd: FunctionalDependency) -> PartialFdCounts:
        """Code-keyed partial counts of one chunk (scalar scan).

        Counts are keyed by tuples of dictionary codes — ``(x_codes,
        y_codes)`` for the joint counts, the full code tuple for the
        full-tuple counts (NULL stays ``-1`` there; rows NULL on
        ``X ∪ Y`` are dropped entirely) — in first-occurrence order
        within the chunk, so chunk-ordered merging reproduces a
        monolithic scan's ``Counter`` order exactly.
        """
        lists = {a: chunk.column_list(a) for a in chunk.attributes}
        lhs_columns = [lists[a] for a in fd.lhs]
        rhs_columns = [lists[a] for a in fd.rhs]
        partial = PartialFdCounts.empty()
        xy_counts = partial.xy_counts
        full_counts = partial.full_tuple_counts
        kept = 0
        if _fd_covers_schema(chunk.attributes, fd):
            # The full tuple IS the (x, y) concatenation: count xy only
            # and re-key afterwards (same counts, same first-occurrence
            # order) — half the hot-loop dict work.
            for xy_key in zip(zip(*lhs_columns), zip(*rhs_columns)):
                if -1 in xy_key[0] or -1 in xy_key[1]:
                    continue
                kept += 1
                previous = xy_counts.get(xy_key)
                xy_counts[xy_key] = 1 if previous is None else previous + 1
            for (x_key, y_key), count in xy_counts.items():
                full_counts[x_key + y_key] = count
            partial.num_rows = kept
            return partial
        all_columns = [lists[a] for a in chunk.attributes]
        # One zip-of-zips scan: all three key tuples per row are built at
        # C level — this loop is the chunked path's entire per-row cost.
        for x_key, y_key, w_key in zip(
            zip(*lhs_columns), zip(*rhs_columns), zip(*all_columns)
        ):
            if -1 in x_key or -1 in y_key:
                continue
            kept += 1
            xy_key = (x_key, y_key)
            previous = xy_counts.get(xy_key)
            xy_counts[xy_key] = 1 if previous is None else previous + 1
            previous = full_counts.get(w_key)
            full_counts[w_key] = 1 if previous is None else previous + 1
        partial.num_rows = kept
        return partial


class NumpyBackend:
    """Vectorised backend over the relation's cached columnar view."""

    name = "numpy"

    @staticmethod
    def available() -> bool:
        return np is not None

    def compute(self, relation: Relation, fd: FunctionalDependency) -> FdStatistics:
        columnar = relation.columnar()
        if columnar is None:  # pragma: no cover - numpy vanished mid-process
            return PythonBackend().compute(relation, fd)
        rows = relation._rows
        lhs, rhs = fd.lhs, fd.rhs

        # NULL restriction as a boolean mask (None = nothing to drop).
        mask = columnar.non_null_mask(fd.attributes)
        row_indices = np.flatnonzero(mask) if mask is not None else None
        num_rows = int(row_indices.shape[0]) if row_indices is not None else relation.num_rows

        # Group-bys: X, Y, their pair, and the full tuple — all in
        # first-occurrence order over the restricted rows, mirroring the
        # Counter insertion order of the python backend.
        x_groups = columnar.grouped(lhs, mask)
        y_groups = columnar.grouped(rhs, mask)
        xy_groups = columnar.group_pair(x_groups, y_groups)
        w_groups = columnar.grouped(relation.attributes, mask)

        # Rebuild the value-tuple keys — O(1) Python work per *group*
        # (not per row) via each group's first-occurrence row.
        x_keys = _group_keys(columnar, rows, lhs, x_groups)
        y_keys = _group_keys(columnar, rows, rhs, y_groups)

        # Per-xy-group parent ids: index the dense X/Y codes at each xy
        # group's first selection-local position.
        xy_counts_array = xy_groups.counts
        x_of_xy = x_groups.codes[xy_groups.first_rows]
        y_of_xy = y_groups.codes[xy_groups.first_rows]

        xy_counter: Counter = Counter()
        for x_id, y_id, count in zip(
            x_of_xy.tolist(), y_of_xy.tolist(), xy_counts_array.tolist()
        ):
            xy_counter[(x_keys[x_id], y_keys[y_id])] = count

        full_counter: Counter = Counter()
        for row_index, count in zip(w_groups.first_rows.tolist(), w_groups.counts.tolist()):
            full_counter[rows[row_index]] = count

        statistics = FdStatistics.from_joint_counts(
            fd, num_rows, xy_counter, full_counter, relation_name=relation.name
        )
        _seed_vectorised_statistics(
            statistics,
            num_rows,
            x_counts=x_groups.counts,
            y_counts=y_groups.counts,
            xy_counts=xy_counts_array,
            x_of_xy=x_of_xy,
            w_counts=w_groups.counts,
        )
        return statistics

    def compute_partial(self, chunk: CodeChunk, fd: FunctionalDependency) -> PartialFdCounts:
        """Code-keyed partial counts of one chunk (vectorised group-bys).

        Same keys, counts and first-occurrence order as the python
        backend's ``compute_partial`` — the per-chunk analogue of the
        whole-relation bit-identity contract.  Packing radices are
        per-chunk (derived from each chunk's observed code maxima); that
        is safe because packing only groups rows *within* the chunk —
        the emitted keys are the original global code tuples.
        """
        if np is None:  # pragma: no cover - numpy vanished mid-process
            return PythonBackend().compute_partial(chunk, fd)
        partial = PartialFdCounts.empty()
        if chunk.num_rows == 0:
            return partial
        arrays = {a: np.asarray(chunk.column(a)) for a in chunk.attributes}

        mask = None
        for attribute in fd.attributes:
            column_mask = arrays[attribute] >= 0
            if not column_mask.all():
                mask = column_mask if mask is None else mask & column_mask
        if mask is not None:
            arrays = {a: codes[mask] for a, codes in arrays.items()}
        num_rows = int(arrays[fd.rhs[0]].shape[0])
        partial.num_rows = num_rows
        if num_rows == 0:
            return partial

        lhs_arrays = [arrays[a] for a in fd.lhs]
        rhs_arrays = [arrays[a] for a in fd.rhs]
        _, xy_group_counts, xy_firsts = _dense_first_occurrence(
            _pack_arrays(lhs_arrays + rhs_arrays)
        )
        lhs_keys = [codes[xy_firsts].tolist() for codes in lhs_arrays]
        rhs_keys = [codes[xy_firsts].tolist() for codes in rhs_arrays]
        xy_counts = partial.xy_counts
        for group, count in enumerate(xy_group_counts.tolist()):
            xy_counts[
                (
                    tuple(column[group] for column in lhs_keys),
                    tuple(column[group] for column in rhs_keys),
                )
            ] = count

        full_counts = partial.full_tuple_counts
        if _fd_covers_schema(chunk.attributes, fd):
            for (x_key, y_key), count in xy_counts.items():
                full_counts[x_key + y_key] = count
            return partial
        all_arrays = [arrays[a] for a in chunk.attributes]
        _, w_group_counts, w_firsts = _dense_first_occurrence(_pack_arrays(all_arrays))
        w_keys = [codes[w_firsts].tolist() for codes in all_arrays]
        for group, count in enumerate(w_group_counts.tolist()):
            full_counts[tuple(column[group] for column in w_keys)] = count
        return partial

    def compute_partial_array(
        self, chunk: CodeChunk, fd: FunctionalDependency, radices: Dict[str, int]
    ) -> ArrayFdCounts:
        """Array-keyed partial counts of one chunk — no Python tuples.

        ``radices`` is the *global* mixed-radix scheme of the whole
        relation (radix per attribute = decode-table cardinality + 1,
        codes shifted by +1 so ``-1``-NULL packs as 0), so the emitted
        packed keys mean the same code tuple in every chunk and unpack
        by ``divmod`` after the merge.  The key arrays are in
        first-occurrence-within-chunk order — decoding the merged
        arrays reproduces :meth:`compute_partial`'s ``Counter`` order
        exactly.  The caller guarantees the radix products fit the
        packing limit (see ``repro.core.chunked._array_pack_plan``).
        """
        num_rows, xy_raw, w_raw = self.pack_partial_keys(chunk, fd, radices)
        return ArrayFdCounts.from_raw_keys(num_rows, xy_raw, w_raw)

    def pack_partial_keys(
        self, chunk: CodeChunk, fd: FunctionalDependency, radices: Dict[str, int]
    ) -> Tuple[int, "np.ndarray", Optional["np.ndarray"]]:
        """NULL-restrict and pack one chunk to raw per-row key arrays.

        Returns ``(num_rows, xy_raw, w_raw)``: the chunk's restricted
        row count and one packed key per restricted row (row order) for
        the ``(X, Y)`` projection and the full tuple.  ``w_raw is None``
        when the FD covers the schema (the full tuple *is* the packed
        ``(x, y)``).  Packing is O(rows) with no grouping — the chunked
        driver concatenates raw keys across a band of chunks and pays
        :meth:`ArrayFdCounts.from_raw_keys`'s sort once per band.
        """
        if np is None:  # pragma: no cover - callers gate on numpy
            raise RuntimeError("pack_partial_keys requires numpy")
        covering = _fd_covers_schema(chunk.attributes, fd)
        empty = np.empty(0, dtype=np.int64)
        if chunk.num_rows == 0:
            return 0, empty, None if covering else empty
        arrays = {a: np.asarray(chunk.column(a)) for a in chunk.attributes}

        mask = None
        for attribute in fd.attributes:
            column_mask = arrays[attribute] >= 0
            if not column_mask.all():
                mask = column_mask if mask is None else mask & column_mask
        if mask is not None:
            arrays = {a: codes[mask] for a, codes in arrays.items()}
        num_rows = int(arrays[fd.rhs[0]].shape[0])
        if num_rows == 0:
            return 0, empty, None if covering else empty

        fd_attributes = fd.lhs + fd.rhs
        xy_raw = _pack_with_radices(
            [arrays[a] for a in fd_attributes], [radices[a] for a in fd_attributes]
        )
        if covering:
            return num_rows, xy_raw, None
        w_raw = _pack_with_radices(
            [arrays[a] for a in chunk.attributes],
            [radices[a] for a in chunk.attributes],
        )
        return num_rows, xy_raw, w_raw


def _pack_with_radices(
    arrays: List["np.ndarray"], radices: List[int]
) -> "np.ndarray":
    """Mixed-radix packing under a fixed global radix per position.

    Unlike :func:`_pack_arrays` (per-chunk observed radices, re-densify
    on overflow) the scheme here is cross-chunk stable and invertible:
    the caller has already proven ``prod(radices)`` fits the packing
    limit, and :func:`repro.core.partial.unpack_key_columns` recovers
    the original code arrays by ``divmod``.
    """
    accumulator = arrays[0].astype(np.int64) + 1
    for codes, radix in zip(arrays[1:], radices[1:]):
        accumulator = accumulator * radix + (codes.astype(np.int64) + 1)
    return accumulator


def _pack_arrays(arrays: List["np.ndarray"]) -> "np.ndarray":
    """Pairwise mixed-radix packing of raw code arrays (overflow-safe).

    The chunk-level analogue of :meth:`ColumnarRelation._pack`: radices
    come from each array's observed maximum (codes shifted by +1 so
    ``-1``-NULL packs as 0), re-densifying via ``np.unique`` whenever the
    accumulator would overflow the packing limit.
    """
    accumulator = arrays[0].astype(np.int64) + 1
    maximum = int(accumulator.max(initial=0))
    for codes in arrays[1:]:
        shifted = codes.astype(np.int64) + 1
        radix = int(shifted.max(initial=0)) + 1
        if maximum >= _PACK_LIMIT // radix:
            _, accumulator = np.unique(accumulator, return_inverse=True)
            maximum = int(accumulator.max(initial=0))
        accumulator = accumulator * radix + shifted
        maximum = maximum * radix + radix - 1
    return accumulator


def _group_keys(columnar, rows, attributes: Tuple[str, ...], groups) -> List[Tuple]:
    """Value tuples of each group, in dense group-id order."""
    if len(attributes) == 1:
        attribute_index = columnar.attributes.index(attributes[0])
        return [(rows[r][attribute_index],) for r in groups.first_rows.tolist()]
    indices = [columnar.attributes.index(attribute) for attribute in attributes]
    return [tuple(rows[r][i] for i in indices) for r in groups.first_rows.tolist()]


def _sequential_sum(values: "np.ndarray") -> float:
    """Left-to-right float sum, bit-matching a scalar accumulation loop.

    ``cumsum`` materialises every prefix sum and is therefore necessarily
    a sequential reduction — unlike ``np.sum``, whose pairwise reduction
    rounds differently from the scalar code it would stand in for.
    """
    if values.shape[0] == 0:
        return 0.0
    return float(np.cumsum(values)[-1])


def _seed_vectorised_statistics(
    statistics: FdStatistics,
    num_rows: int,
    x_counts: "np.ndarray",
    y_counts: "np.ndarray",
    xy_counts: "np.ndarray",
    x_of_xy: "np.ndarray",
    w_counts: "np.ndarray",
) -> None:
    """Eagerly derive the vectorisable statistics and seed the cache.

    Integer quantities are exact (``int64`` — overflow-safe for every
    relation below ~3e9 rows, far beyond the 2**53 float ceiling the
    cache used to impose); the ``Σ p²`` float sums reproduce the scalar
    path bit-for-bit (see the module docstring).
    """
    cache = statistics._cache
    w = w_counts.astype(np.int64)
    cache["sum_sq_w"] = int((w * w).sum())

    counts = xy_counts.astype(np.int64)
    num_x_groups = x_counts.shape[0]
    totals = np.zeros(num_x_groups, dtype=np.int64)
    np.add.at(totals, x_of_xy, counts)
    squares = np.zeros(num_x_groups, dtype=np.int64)
    np.add.at(squares, x_of_xy, counts * counts)
    distinct_y_per_x = np.bincount(x_of_xy, minlength=num_x_groups)
    maxima = np.zeros(num_x_groups, dtype=np.int64)
    np.maximum.at(maxima, x_of_xy, counts)

    cache["violating_pairs"] = int((totals * totals - squares).sum())
    cache["violating_tuples"] = int(totals[distinct_y_per_x > 1].sum())
    cache["max_subrelation"] = int(maxima.sum())

    if num_rows > 0:
        for key, array in (
            ("sum_sq_x", x_counts),
            ("sum_sq_y", y_counts),
            ("sum_sq_xy", counts),
        ):
            probabilities = array / num_rows
            cache[key] = _sequential_sum(probabilities * probabilities)


_BACKENDS = {
    "python": PythonBackend(),
    "numpy": NumpyBackend(),
}


def available_backends() -> Tuple[str, ...]:
    """Names of the backends usable in this process, ``python`` first."""
    return tuple(name for name in _BACKEND_NAMES if _BACKENDS[name].available())


def set_default_backend(name: Optional[str]) -> None:
    """Set the process-wide default backend (``None`` resets to auto).

    The default applies to every :meth:`FdStatistics.compute` call that
    does not pass an explicit ``backend=``; it takes precedence over the
    ``REPRO_STATS_BACKEND`` environment variable.
    """
    global _DEFAULT_BACKEND
    if name is not None:
        _validate_name(name)
    _DEFAULT_BACKEND = name


def get_default_backend() -> str:
    """The backend name :func:`resolve_backend` would pick with no argument."""
    return resolve_backend(None).name


def _validate_name(name: str) -> None:
    if name not in _BACKEND_NAMES and name != "auto":
        raise ValueError(
            f"unknown statistics backend {name!r}; "
            f"known backends: {list(_BACKEND_NAMES) + ['auto']}"
        )


def resolve_backend(name: Optional[str] = None):
    """Resolve a backend name (or ``None``/``"auto"``) to a backend object.

    Resolution order: explicit argument > :func:`set_default_backend` >
    ``REPRO_STATS_BACKEND`` > auto (numpy when available).  A resolved
    ``numpy`` request degrades to ``python`` when numpy is absent — the
    documented automatic fallback; scores are identical either way.
    """
    if name is None:
        name = _DEFAULT_BACKEND
    if name is None:
        name = os.environ.get(BACKEND_ENV_VAR) or "auto"
    _validate_name(name)
    if name == "auto":
        name = "numpy" if _BACKENDS["numpy"].available() else "python"
    backend = _BACKENDS[name]
    if not backend.available():
        return _BACKENDS["python"]
    return backend
