"""Laplace smoothing of contingency tables for smoothed FI (SFIα).

``SFI_α(X -> Y, R) = FI(X -> Y, π^(α)_{XY}(R))`` where the α-smoothed
projection adds ``α`` pseudo-counts to *every* combination of
``x ∈ dom_R(X)`` and ``y ∈ dom_R(Y)``, including combinations that never
occur in ``R`` (Section IV-C).  The smoothed table can therefore be much
larger than the original relation, which is the source of SFI's cost.
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.core.statistics import FdStatistics


def smoothed_joint_counts(
    statistics: FdStatistics, alpha: float
) -> Dict[Tuple, float]:
    """The α-smoothed joint ``(x, y)`` pseudo-counts of the FD's projection."""
    if alpha <= 0:
        raise ValueError(f"smoothing parameter alpha must be positive, got {alpha}")
    smoothed: Dict[Tuple, float] = {}
    for x in statistics.x_counts:
        for y in statistics.y_counts:
            smoothed[(x, y)] = statistics.xy_counts.get((x, y), 0) + alpha
    return smoothed


def smoothed_marginals(
    smoothed_joint: Dict[Tuple, float]
) -> Tuple[Dict[object, float], Dict[object, float]]:
    """Marginal pseudo-counts of a smoothed joint table (X then Y)."""
    x_counts: Dict[object, float] = {}
    y_counts: Dict[object, float] = {}
    for (x, y), count in smoothed_joint.items():
        x_counts[x] = x_counts.get(x, 0.0) + count
        y_counts[y] = y_counts.get(y, 0.0) + count
    return x_counts, y_counts
