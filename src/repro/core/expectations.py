"""Expected measure values under random (X; Y)-permutations.

Several measures correct for chance agreement by subtracting or
normalising with the expected value of a base quantity over all
*(X; Y)-permutations* of the relation (Definition 1 of the paper):
relations with identical marginals on ``X``, on ``Y`` and on the
remaining attributes.

* ``μ`` normalises ``pdep`` with ``E_R[pdep]`` which has the closed form
  of Theorem 1 (Piatetsky-Shapiro & Matheus).
* ``RFI`` and ``RFI'`` correct ``FI`` with ``E_R[FI] = E_R[I(X;Y)] / H(Y)``
  (``H(Y)`` is invariant under the permutations).  The expected mutual
  information under the fixed-marginals permutation model has an exact
  hypergeometric expression (Roulston 1999; the same formula underlies the
  adjusted-mutual-information literature and the algorithms of Mandros et
  al.); a seeded Monte-Carlo estimator is provided as a faster
  approximation for large inputs.
"""

from __future__ import annotations

import math
from typing import Mapping, Optional, Sequence

try:  # numpy is only needed by the Monte-Carlo estimator
    import numpy as np
except ImportError:  # pragma: no cover - exercised by the no-numpy CI job
    np = None  # type: ignore[assignment]

from repro.core.statistics import FdStatistics
from repro.info.shannon import DEFAULT_LOG_BASE, entropy_of_counts


# ----------------------------------------------------------------------
# Closed forms for pdep / tau (Theorem 1)
# ----------------------------------------------------------------------
def expected_pdep(statistics: FdStatistics) -> float:
    """``E_R[pdep(X -> Y, R)]`` via Theorem 1.

    ``E[pdep] = pdep(Y) + (K - 1)/(N - 1) * (1 - pdep(Y))`` with
    ``K = |dom_R(X)|`` and ``N = |R|``.  Requires ``N >= 2``.
    """
    n = statistics.num_rows
    k = statistics.distinct_x
    pdep_y = statistics.sum_squared_y_probabilities()
    if n <= 1:
        return 1.0
    return pdep_y + (k - 1) / (n - 1) * (1.0 - pdep_y)


def expected_tau(statistics: FdStatistics) -> float:
    """``E_R[τ(X -> Y, R)] = (|dom_R(X)| - 1) / (|R| - 1)`` (Theorem 1)."""
    n = statistics.num_rows
    k = statistics.distinct_x
    if n <= 1:
        return 1.0
    return (k - 1) / (n - 1)


# ----------------------------------------------------------------------
# Expected mutual information under the permutation model
# ----------------------------------------------------------------------
def expected_mutual_information_exact(
    x_counts: Sequence[int],
    y_counts: Sequence[int],
    base: float = DEFAULT_LOG_BASE,
) -> float:
    """Exact ``E[I(X; Y)]`` under random permutations with fixed marginals.

    For marginal counts ``a_i`` (of ``X``) and ``b_j`` (of ``Y``) summing to
    ``N``, the cell count ``n_ij`` follows a hypergeometric distribution and

        E[I] = Σ_i Σ_j Σ_{n_ij} (n_ij / N) log(N n_ij / (a_i b_j)) P(n_ij)

    with ``P(n_ij) = C(b_j, n_ij) C(N - b_j, a_i - n_ij) / C(N, a_i)``.

    This is the exact expectation used by reliable fraction of information;
    its cost is the reason RFI+/RFI'+ are slow (Table V of the paper).
    """
    a = [int(count) for count in x_counts if count > 0]
    b = [int(count) for count in y_counts if count > 0]
    n = sum(a)
    if n == 0 or n != sum(b):
        raise ValueError("x_counts and y_counts must be non-empty and sum to the same total")
    if n == 1:
        return 0.0
    log_base = math.log(base)
    log_factorial = [0.0] * (n + 1)
    for value in range(2, n + 1):
        log_factorial[value] = log_factorial[value - 1] + math.log(value)

    def log_choose(total: int, chosen: int) -> float:
        if chosen < 0 or chosen > total:
            return float("-inf")
        return log_factorial[total] - log_factorial[chosen] - log_factorial[total - chosen]

    expected = 0.0
    log_n = math.log(n)
    for a_i in a:
        log_denominator = log_choose(n, a_i)
        for b_j in b:
            start = max(0, a_i + b_j - n)
            end = min(a_i, b_j)
            for n_ij in range(max(start, 1), end + 1):
                log_probability = (
                    log_choose(b_j, n_ij) + log_choose(n - b_j, a_i - n_ij) - log_denominator
                )
                probability = math.exp(log_probability)
                if probability <= 0.0:
                    continue
                term = (n_ij / n) * (
                    (log_n + math.log(n_ij) - math.log(a_i) - math.log(b_j)) / log_base
                )
                expected += probability * term
    return max(expected, 0.0)


def expected_mutual_information_monte_carlo(
    x_counts: Sequence[int],
    y_counts: Sequence[int],
    samples: int = 200,
    rng: Optional[np.random.Generator] = None,
    base: float = DEFAULT_LOG_BASE,
) -> float:
    """Monte-Carlo estimate of ``E[I(X; Y)]`` under the permutation model.

    Materialises the two marginal columns and averages the mutual
    information of ``samples`` random pairings.  Deterministic for a given
    ``rng``.  The joint counting of each pairing is vectorised (one
    ``np.unique`` over packed codes per sample instead of a Python dict
    scan); both marginals are permutation-invariant, so their entropies
    are computed once.
    """
    if np is None:
        raise ImportError(
            "the monte-carlo permutation expectation requires numpy; "
            "use the exact expectation or install numpy"
        )
    if rng is None:
        rng = np.random.default_rng(0)
    x_column = np.repeat(np.arange(len(x_counts)), np.asarray(x_counts, dtype=int))
    y_column = np.repeat(np.arange(len(y_counts)), np.asarray(y_counts, dtype=int))
    if x_column.size != y_column.size:
        raise ValueError("x_counts and y_counts must sum to the same total")
    if x_column.size == 0:
        return 0.0
    num_rows = x_column.size
    radix = np.int64(len(y_counts))
    packed_x = x_column.astype(np.int64) * radix
    h_x = entropy_of_counts({i: c for i, c in enumerate(x_counts) if c > 0}, base=base)
    h_y = entropy_of_counts({i: c for i, c in enumerate(y_counts) if c > 0}, base=base)
    log_base = math.log(base)
    total = 0.0
    for _ in range(samples):
        permuted = rng.permutation(y_column)
        _, counts = np.unique(packed_x + permuted, return_counts=True)
        probabilities = counts / num_rows
        h_xy = float(-(probabilities * np.log(probabilities)).sum()) / log_base
        total += max(h_y - max(h_xy - h_x, 0.0), 0.0)
    return total / samples


def expected_fraction_of_information(
    statistics: FdStatistics,
    method: str = "exact",
    samples: int = 200,
    rng: Optional[np.random.Generator] = None,
    base: float = DEFAULT_LOG_BASE,
) -> float:
    """``E_R[FI(X -> Y, R)] = E_R[I(X;Y)] / H_R(Y)`` under permutations.

    ``H_R(Y)`` is invariant under (X; Y)-permutations, so the expectation
    only involves the mutual information.  ``method`` is ``"exact"`` or
    ``"monte-carlo"``.
    """
    h_y = statistics.shannon_entropy_y(base=base)
    if h_y <= 0.0:
        return 1.0
    x_counts = list(statistics.x_counts.values())
    y_counts = list(statistics.y_counts.values())
    if method == "exact":
        expected_mi = expected_mutual_information_exact(x_counts, y_counts, base=base)
    elif method == "monte-carlo":
        expected_mi = expected_mutual_information_monte_carlo(
            x_counts, y_counts, samples=samples, rng=rng, base=base
        )
    else:
        raise ValueError(f"unknown expectation method {method!r}; use 'exact' or 'monte-carlo'")
    return min(expected_mi / h_y, 1.0)


def expected_value_by_enumeration(
    joint_counts: Mapping, statistic, max_relation_size: int = 9
) -> float:
    """Brute-force expectation of ``statistic`` over all (X; Y)-permutations.

    Enumerates every distinct pairing of the materialised X and Y columns
    (all ``N!`` permutations of the Y column, deduplicated by multiset of
    pairs is *not* applied — each permutation is weighted equally, matching
    Definition 1).  Only feasible for tiny relations; used by the test
    suite to validate the closed-form and hypergeometric expectations.
    """
    import itertools

    x_column = []
    y_column = []
    for (x, y), count in joint_counts.items():
        x_column.extend([x] * count)
        y_column.extend([y] * count)
    n = len(x_column)
    if n > max_relation_size:
        raise ValueError(
            f"brute-force enumeration limited to relations of size <= {max_relation_size}"
        )
    total = 0.0
    count = 0
    for permutation in itertools.permutations(range(n)):
        joint: dict = {}
        for position, target in enumerate(permutation):
            key = (x_column[position], y_column[target])
            joint[key] = joint.get(key, 0) + 1
        total += statistic(joint)
        count += 1
    return total / count
