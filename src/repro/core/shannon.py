"""SHANNON-class measures: gS1, FI, RFI+, RFI'+ and SFIα.

These measures are based on Shannon entropy and mutual information
(Section IV-C of the paper).  RFI+ and the paper's new normalised variant
RFI'+ correct the fraction of information for its chance-level value
under random (X; Y)-permutations; the expectation can be computed exactly
(hypergeometric model) or estimated by Monte-Carlo sampling.
"""

from __future__ import annotations

from typing import Optional

from repro.core.base import AfdMeasure, MeasureClass
from repro.core.expectations import expected_fraction_of_information
from repro.core.smoothing import smoothed_joint_counts
from repro.core.statistics import FdStatistics

# The canonical entropy helpers live in :mod:`repro.info.shannon`; a
# parallel implementation used to be kept here.  Deprecated: import
# ``DEFAULT_LOG_BASE`` / ``entropy_of_counts`` / ``conditional_entropy``
# / ``mutual_information`` from ``repro.info.shannon`` directly — these
# re-exports remain only for backwards compatibility and will be removed.
from repro.info.shannon import (  # noqa: F401
    DEFAULT_LOG_BASE,
    conditional_entropy,
    entropy_of_counts,
    mutual_information,
)

try:  # numpy is only needed for the Monte-Carlo expectation's RNG
    import numpy as np
except ImportError:  # pragma: no cover - exercised by the no-numpy CI job
    np = None  # type: ignore[assignment]


class GS1Measure(AfdMeasure):
    """gS1: the Shannon counterpart of g1 (new measure introduced by the paper).

    ``gS1(X -> Y, R) = max(1 - H_R(Y | X), 0)``.  The conditional entropy is
    unbounded, hence the truncation at zero.  The logarithm base matters for
    this measure (it is not cancelled by a normalisation); base 2 is used by
    default.
    """

    name = "gS1"
    description = "max(1 - H(Y|X), 0): Shannon counterpart of g1"
    measure_class = MeasureClass.SHANNON
    has_baselines = True

    def __init__(self, base: float = DEFAULT_LOG_BASE):
        self.base = base

    def _score_violated(self, statistics: FdStatistics) -> float:
        return max(1.0 - statistics.shannon_conditional_entropy(base=self.base), 0.0)


class FIMeasure(AfdMeasure):
    """Fraction of information FI (Cavallo & Pittarelli; Giannella & Robertson).

    ``FI(X -> Y, R) = (H_R(Y) - H_R(Y | X)) / H_R(Y) = I_R(X; Y) / H_R(Y)``
    — the proportional reduction in uncertainty about Y achieved by
    knowing X.  Baselines are the relations where X and Y are independent.
    """

    name = "fi"
    description = "fraction of information I(X;Y) / H(Y)"
    measure_class = MeasureClass.SHANNON
    has_baselines = True

    def _score_violated(self, statistics: FdStatistics) -> float:
        h_y = statistics.shannon_entropy_y()
        if h_y <= 0.0:
            # |dom_R(Y)| = 1 implies the FD is satisfied (handled centrally).
            return 1.0
        return 1.0 - statistics.shannon_conditional_entropy() / h_y


class _PermutationCorrectedMeasure(AfdMeasure):
    """Shared machinery for RFI+ and RFI'+ (expectation strategy handling)."""

    measure_class = MeasureClass.SHANNON
    has_baselines = True
    efficiently_computable = False

    def __init__(
        self,
        expectation: str = "exact",
        samples: int = 200,
        seed: Optional[int] = 0,
    ):
        if expectation not in ("exact", "monte-carlo"):
            raise ValueError(
                f"expectation must be 'exact' or 'monte-carlo', got {expectation!r}"
            )
        self.expectation = expectation
        self.samples = samples
        self.seed = seed

    def _fi_and_expectation(self, statistics: FdStatistics) -> tuple:
        h_y = statistics.shannon_entropy_y()
        if h_y <= 0.0:
            return 1.0, 1.0
        fi = 1.0 - statistics.shannon_conditional_entropy() / h_y

        # The permutation expectation dominates the cost of RFI+/RFI'+ and
        # is identical for both (it only depends on the marginals and the
        # expectation configuration), so it is cached on the shared
        # statistics object.  The Monte-Carlo estimator reseeds per call,
        # which keeps the cached value deterministic.
        def compute() -> float:
            rng = None
            if self.expectation == "monte-carlo" and self.seed is not None:
                if np is None:
                    raise ImportError(
                        "the monte-carlo permutation expectation requires numpy; "
                        "use expectation='exact' or install numpy"
                    )
                rng = np.random.default_rng(self.seed)
            return expected_fraction_of_information(
                statistics, method=self.expectation, samples=self.samples, rng=rng
            )

        key = f"E_fi_{self.expectation}_{self.samples}_{self.seed}"
        return fi, statistics._cached(key, compute)


class RfiPlusMeasure(_PermutationCorrectedMeasure):
    """RFI+: reliable fraction of information, truncated at zero.

    ``RFI(X -> Y, R) = FI(X -> Y, R) - E_R[FI(X -> Y, R)]`` (Mandros et
    al.); the expectation is over random (X; Y)-permutations.  Negative
    values (weak evidence) are mapped to zero.
    """

    name = "rfi_plus"
    description = "FI minus its permutation-model expectation, clipped at 0"

    def _score_violated(self, statistics: FdStatistics) -> float:
        fi, expected_fi = self._fi_and_expectation(statistics)
        return max(fi - expected_fi, 0.0)


class RfiPrimePlusMeasure(_PermutationCorrectedMeasure):
    """RFI'+: the paper's new normalised variant of RFI.

    ``RFI'(X -> Y, R) = (FI - E_R[FI]) / (1 - E_R[FI])``, clipped at zero.
    The best-ranking measure on the paper's real-world benchmark, at the
    cost of the same heavy expectation computation as RFI+.
    """

    name = "rfi_prime_plus"
    description = "normalised reliable FI: (FI - E[FI]) / (1 - E[FI]), clipped at 0"

    def _score_violated(self, statistics: FdStatistics) -> float:
        fi, expected_fi = self._fi_and_expectation(statistics)
        denominator = 1.0 - expected_fi
        if denominator <= 0.0:
            return 1.0
        return max((fi - expected_fi) / denominator, 0.0)


class SfiMeasure(AfdMeasure):
    """SFIα: smoothed fraction of information (Pennerath et al.).

    ``SFI_α(X -> Y, R) = FI(X -> Y, π^(α)_{XY}(R))`` where the projection
    onto XY receives ``α`` pseudo-counts for every combination of active
    domain values.  The paper evaluates α ∈ {0.5, 1, 2} and reports α = 0.5
    as the consistently best setting.
    """

    name = "sfi"
    description = "fraction of information on the Laplace-smoothed XY projection"
    measure_class = MeasureClass.SHANNON
    has_baselines = True
    efficiently_computable = False

    def __init__(self, alpha: float = 0.5):
        if alpha <= 0:
            raise ValueError(f"alpha must be positive, got {alpha}")
        self.alpha = alpha
        self.name = f"sfi_{alpha:g}" if alpha != 0.5 else "sfi"

    def _score_violated(self, statistics: FdStatistics) -> float:
        smoothed = smoothed_joint_counts(statistics, self.alpha)
        y_counts: dict = {}
        x_counts: dict = {}
        for (x, y), count in smoothed.items():
            x_counts[x] = x_counts.get(x, 0.0) + count
            y_counts[y] = y_counts.get(y, 0.0) + count
        h_y = entropy_of_counts(y_counts)
        if h_y <= 0.0:
            return 1.0
        h_xy = entropy_of_counts(smoothed)
        h_x = entropy_of_counts(x_counts)
        h_y_given_x = max(h_xy - h_x, 0.0)
        return 1.0 - h_y_given_x / h_y
