"""Base interface for AFD measures.

An AFD measure maps pairs ``(φ, R)`` of an FD and a relation to a value in
``[0, 1]``; higher values indicate fewer violations and ``f(φ, R) = 1``
whenever ``R |= φ`` (Section IV, "Conventions").  The satisfied case and
the empty-relation case are handled centrally here, so each concrete
measure only implements the violated case, where the paper guarantees
``|dom_R(X)| != |R|``, ``|dom_R(Y)| > 1`` and therefore strictly positive
entropies ``H_R(Y)`` and ``h_R(Y)``.
"""

from __future__ import annotations

import abc
import enum
from typing import Optional

from repro.core.statistics import FdStatistics
from repro.relation.fd import FunctionalDependency
from repro.relation.relation import Relation


class MeasureClass(enum.Enum):
    """The three measure classes of Section IV-E."""

    VIOLATION = "violation"
    SHANNON = "shannon"
    LOGICAL = "logical"

    def __str__(self) -> str:
        return self.value


def clamp_unit_interval(value: float) -> float:
    """Clamp a score to ``[0, 1]``, guarding against floating-point drift."""
    if value < 0.0:
        return 0.0
    if value > 1.0:
        return 1.0
    return value


class AfdMeasure(abc.ABC):
    """Abstract base class of every AFD measure.

    Subclasses define :attr:`name`, :attr:`measure_class`,
    :attr:`has_baselines` and implement :meth:`_score_violated`.
    """

    #: Short identifier used in reports (matches the paper's notation).
    name: str = ""
    #: Human-readable description used in documentation output.
    description: str = ""
    #: Measure class (VIOLATION / SHANNON / LOGICAL).
    measure_class: MeasureClass
    #: Whether the measure has baselines (relations scoring exactly 0).
    has_baselines: bool = True
    #: Whether the measure is efficiently computable (Table III).
    efficiently_computable: bool = True

    def score(
        self,
        relation: Relation,
        fd: FunctionalDependency,
        statistics: Optional[FdStatistics] = None,
    ) -> float:
        """Score ``fd`` on ``relation``; always in ``[0, 1]``.

        ``statistics`` may be supplied to share the sufficient statistics
        across measures scoring the same candidate.
        """
        if statistics is None:
            statistics = FdStatistics.compute(relation, fd)
        return self.score_from_statistics(statistics)

    def score_from_statistics(self, statistics: FdStatistics) -> float:
        """Score directly from precomputed sufficient statistics."""
        if statistics.is_empty or statistics.satisfied:
            return 1.0
        return clamp_unit_interval(self._score_violated(statistics))

    @abc.abstractmethod
    def _score_violated(self, statistics: FdStatistics) -> float:
        """Score for the violated case (``R`` non-empty and ``R ̸|= φ``)."""

    # ------------------------------------------------------------------
    # Presentation helpers
    # ------------------------------------------------------------------
    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"<{type(self).__name__} {self.name!r} ({self.measure_class})>"

    def __str__(self) -> str:
        return self.name
