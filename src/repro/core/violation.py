"""VIOLATION-class measures: ρ, g2, g3 and g3'.

These measures quantify (a normalised count of) explicit violations of
the FD: pairs of tuples or tuples that would have to be removed for the
FD to hold (Section IV-A and IV-B of the paper).
"""

from __future__ import annotations

from repro.core.base import AfdMeasure, MeasureClass
from repro.core.statistics import FdStatistics


class RhoMeasure(AfdMeasure):
    """Co-occurrence ratio ρ (Ilyas et al., CORDS).

    ``ρ(X -> Y, R) = |dom_R(X)| / |dom_R(XY)|`` — a set-based measure that
    ignores multiplicities.  Without baselines.
    """

    name = "rho"
    description = "co-occurrence ratio |dom(X)| / |dom(XY)| (CORDS soft FDs)"
    measure_class = MeasureClass.VIOLATION
    has_baselines = False

    def _score_violated(self, statistics: FdStatistics) -> float:
        return statistics.distinct_x / statistics.distinct_xy


class G2Measure(AfdMeasure):
    """g2: probability that a random tuple does not participate in a violating pair.

    ``g2(X -> Y, R) = 1 - Σ_{w ∈ G2(X -> Y, R)} p_R(w)`` (Kivinen & Mannila).
    """

    name = "g2"
    description = "fraction of tuples not participating in any violating pair"
    measure_class = MeasureClass.VIOLATION
    has_baselines = True

    def _score_violated(self, statistics: FdStatistics) -> float:
        return 1.0 - statistics.violating_tuple_count() / statistics.num_rows


class G3Measure(AfdMeasure):
    """g3: relative size of the largest subrelation satisfying the FD.

    ``g3(X -> Y, R) = max_{R' ⊆ R, R' |= φ} |R'| / |R|`` — equivalently one
    minus the minimum fraction of tuples to delete.  Without baselines
    (bounded below by ``|dom_R(X)| / |R| > 0``).  Used by TANE and many
    other discovery algorithms.
    """

    name = "g3"
    description = "relative size of the largest satisfying subrelation (TANE)"
    measure_class = MeasureClass.VIOLATION
    has_baselines = False

    def _score_violated(self, statistics: FdStatistics) -> float:
        return statistics.max_subrelation_size() / statistics.num_rows


class G3PrimeMeasure(AfdMeasure):
    """g3': the normalised variant of g3 (Giannella & Robertson).

    ``g3'(X -> Y, R) = (max |R'| - |dom_R(X)|) / (|R| - |dom_R(X)|)`` — has
    baselines; the paper's best-ranking VIOLATION measure.
    """

    name = "g3_prime"
    description = "normalised g3 relative to its lower bound |dom(X)|/|R|"
    measure_class = MeasureClass.VIOLATION
    has_baselines = True

    def _score_violated(self, statistics: FdStatistics) -> float:
        numerator = statistics.max_subrelation_size() - statistics.distinct_x
        denominator = statistics.num_rows - statistics.distinct_x
        if denominator <= 0:
            # |dom_R(X)| = |R| would mean X is a key and the FD is satisfied,
            # which the base class already handles; guard for safety.
            return 1.0
        return numerator / denominator
