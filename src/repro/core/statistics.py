"""Shared sufficient statistics for AFD measures.

Every measure in the paper is a function of the group structure that an
FD ``X -> Y`` induces on a relation ``R``: the multiplicities of distinct
``x`` values, distinct ``y`` values, distinct ``(x, y)`` pairs, and (for
the normalised g1 variant) of full tuples ``w``.  :class:`FdStatistics`
computes this once so that scoring all measures on the same candidate FD
shares the work, which is also how the runtime experiment (Table V of the
paper) is structured.

*How* the count structures are computed is delegated to a pluggable
backend (:mod:`repro.core.backends`): the portable ``python`` backend
scans rows into ``Counter``s, the ``numpy`` backend group-bys
dictionary-encoded code arrays (:mod:`repro.relation.columnar`).  Both
produce bit-identical statistics — including ``Counter`` insertion order,
on which the floating-point summation order (and hence bit-identical
scores) depends.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple, Union

from repro.relation.fd import FunctionalDependency
from repro.relation.relation import Relation


@dataclass
class FdStatistics:
    """Sufficient statistics of a candidate FD ``X -> Y`` on a relation.

    All counts are computed on the subrelation of tuples that are non-NULL
    on every attribute of ``X ∪ Y`` (the paper's NULL convention,
    Section VI-A).

    Derived quantities are cached in ``_cache``; integer quantities are
    cached as Python ``int`` (never round-tripped through ``float``, so
    counts above 2**53 keep exact precision), probabilities and entropies
    as ``float``.  Backends may pre-seed the cache with eagerly computed
    values as long as they are bit-identical to what the lazy paths below
    would produce.
    """

    fd: FunctionalDependency
    num_rows: int
    x_counts: Counter
    y_counts: Counter
    xy_counts: Counter
    groups: Dict[Tuple, Counter]
    full_tuple_counts: Counter
    relation_name: str = ""
    # Excluded from __eq__: which lazy derivations happen to have been
    # materialised (or pre-seeded by a backend) is not part of a
    # statistics object's identity — the bit-identity contract already
    # guarantees seeded values equal what the lazy paths produce.
    _cache: Dict[str, Union[int, float]] = field(
        default_factory=dict, repr=False, compare=False
    )

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def compute(
        cls,
        relation: Relation,
        fd: FunctionalDependency,
        backend: Optional[str] = None,
        chunk_size: Optional[int] = None,
        jobs: int = 1,
    ) -> "FdStatistics":
        """Compute statistics of ``fd`` on ``relation`` (NULLs dropped).

        ``backend`` selects the computation engine: ``"python"``,
        ``"numpy"`` or ``"auto"``/``None`` (the process default — see
        :func:`repro.core.backends.set_default_backend` and the
        ``REPRO_STATS_BACKEND`` environment variable).  Scores derived
        from the result are bit-identical across backends.

        ``chunk_size`` (or ``jobs > 1``) routes through the chunked
        map-merge driver (:func:`repro.core.chunked.compute_chunked`):
        per-chunk partial counts over slices of the code arrays, merged
        in chunk order — bit-identical (``==``) to the monolithic scan,
        and the only path accepting a
        :class:`~repro.relation.chunked.ChunkedRelation`.
        """
        from repro.core.backends import resolve_backend

        if chunk_size is not None or jobs != 1 or not isinstance(relation, Relation):
            from repro.core.chunked import compute_chunked

            return compute_chunked(
                relation, fd, chunk_size=chunk_size, jobs=jobs, backend=backend
            )
        return resolve_backend(backend).compute(relation, fd)

    @classmethod
    def from_joint_counts(
        cls,
        fd: FunctionalDependency,
        num_rows: int,
        xy_counts: Counter,
        full_tuple_counts: Counter,
        relation_name: str = "",
    ) -> "FdStatistics":
        """Assemble statistics from joint ``(x, y)`` and full-tuple counts.

        The marginals and the per-``x`` group structure are derived here,
        in one pass over ``xy_counts`` in its insertion order — both
        backends funnel through this constructor, which pins down the
        ``Counter`` insertion orders (and therefore every downstream
        floating-point summation order) once, for all backends.
        """
        x_counts: Counter = Counter()
        y_counts: Counter = Counter()
        groups: Dict[Tuple, Counter] = {}
        # Hot loop (every backend and every incremental refresh runs it):
        # plain dict probes instead of ``Counter.__missing__`` dispatch,
        # and no throwaway ``Counter()`` per already-seen group.  Keys of
        # ``xy_counts`` are distinct, so each ``(x, y)`` lands in its
        # group exactly once.
        for (x, y), count in xy_counts.items():
            previous = x_counts.get(x)
            x_counts[x] = count if previous is None else previous + count
            previous = y_counts.get(y)
            y_counts[y] = count if previous is None else previous + count
            group = groups.get(x)
            if group is None:
                group = groups[x] = Counter()
            group[y] = count
        return cls(
            fd=fd,
            num_rows=num_rows,
            x_counts=x_counts,
            y_counts=y_counts,
            xy_counts=xy_counts,
            groups=groups,
            full_tuple_counts=full_tuple_counts,
            relation_name=relation_name,
        )

    # ------------------------------------------------------------------
    # Structural facts
    # ------------------------------------------------------------------
    @property
    def is_empty(self) -> bool:
        return self.num_rows == 0

    @property
    def satisfied(self) -> bool:
        """True when the (NULL-restricted) relation satisfies the FD."""
        return all(len(y_counter) <= 1 for y_counter in self.groups.values())

    @property
    def distinct_x(self) -> int:
        """``|dom_R(X)|``."""
        return len(self.x_counts)

    @property
    def distinct_y(self) -> int:
        """``|dom_R(Y)|``."""
        return len(self.y_counts)

    @property
    def distinct_xy(self) -> int:
        """``|dom_R(XY)|``."""
        return len(self.xy_counts)

    @property
    def lhs_uniqueness(self) -> float:
        """``|dom_R(X)| / |R|`` — the LHS-uniqueness statistic of Section V."""
        if self.num_rows == 0:
            return 0.0
        return self.distinct_x / self.num_rows

    # ------------------------------------------------------------------
    # Probability building blocks (cached)
    # ------------------------------------------------------------------
    def _cached(self, key: str, compute):
        value = self._cache.get(key)
        if value is None:
            value = compute()
            self._cache[key] = value
        return value

    def sum_squared_x_probabilities(self) -> float:
        """``Σ_x p(x)²`` (equals ``1 - h_R(X)``)."""
        return self._cached("sum_sq_x", lambda: _sum_squared_probabilities(self.x_counts, self.num_rows))

    def sum_squared_y_probabilities(self) -> float:
        """``Σ_y p(y)²`` (equals ``pdep(Y, R) = 1 - h_R(Y)``)."""
        return self._cached("sum_sq_y", lambda: _sum_squared_probabilities(self.y_counts, self.num_rows))

    def sum_squared_xy_probabilities(self) -> float:
        """``Σ_{x,y} p(xy)²``."""
        return self._cached("sum_sq_xy", lambda: _sum_squared_probabilities(self.xy_counts, self.num_rows))

    def sum_squared_tuple_counts(self) -> int:
        """``Σ_w R(w)²`` over full tuples ``w`` of the restricted relation."""
        return self._cached(
            "sum_sq_w",
            lambda: sum(count * count for count in self.full_tuple_counts.values()),
        )

    def violating_pair_count(self) -> int:
        """``|G1(X -> Y, R)|``: ordered pairs equal on X but different on Y."""

        def compute() -> int:
            result = 0
            for y_counter in self.groups.values():
                total = 0
                sum_of_squares = 0
                for count in y_counter.values():
                    total += count
                    sum_of_squares += count * count
                result += total * total - sum_of_squares
            return result

        return self._cached("violating_pairs", compute)

    def violating_tuple_count(self) -> int:
        """``Σ_{w ∈ G2} R(w)``: tuples participating in at least one violating pair."""
        return self._cached(
            "violating_tuples",
            lambda: sum(
                sum(y_counter.values())
                for y_counter in self.groups.values()
                if len(y_counter) > 1
            ),
        )

    def max_subrelation_size(self) -> int:
        """Size of the largest subrelation satisfying the FD (numerator of g3)."""
        return self._cached(
            "max_subrelation",
            lambda: sum(max(y_counter.values()) for y_counter in self.groups.values()),
        )

    # ------------------------------------------------------------------
    # Entropies (cached; Shannon entropies use the provided base)
    # ------------------------------------------------------------------
    def shannon_entropy_y(self, base: float = 2.0) -> float:
        from repro.info.shannon import entropy_of_counts

        return self._cached(f"H_y_{base}", lambda: entropy_of_counts(self.y_counts, base=base))

    def shannon_entropy_x(self, base: float = 2.0) -> float:
        from repro.info.shannon import entropy_of_counts

        return self._cached(f"H_x_{base}", lambda: entropy_of_counts(self.x_counts, base=base))

    def shannon_conditional_entropy(self, base: float = 2.0) -> float:
        """``H_R(Y | X)``."""
        from repro.info.shannon import conditional_entropy

        return self._cached(
            f"H_y_given_x_{base}", lambda: conditional_entropy(self.xy_counts, base=base)
        )

    def mutual_information(self, base: float = 2.0) -> float:
        """``I_R(X; Y) = H_R(Y) - H_R(Y | X)``."""
        from repro.info.shannon import mutual_information

        return self._cached(f"I_xy_{base}", lambda: mutual_information(self.xy_counts, base=base))

    def logical_entropy_y(self) -> float:
        """``h_R(Y) = 1 - Σ_y p(y)²``."""
        return 1.0 - self.sum_squared_y_probabilities()

    def logical_conditional_entropy(self) -> float:
        """``h_R(Y | X) = Σ_x p(x)² - Σ_{xy} p(xy)²``."""
        return max(
            self.sum_squared_x_probabilities() - self.sum_squared_xy_probabilities(), 0.0
        )

    def expected_group_logical_entropy(self) -> float:
        """``E_x[h_R(Y | x)]`` — the quantity underlying pdep."""

        def compute() -> float:
            result = 0.0
            for y_counter in self.groups.values():
                group_total = sum(y_counter.values())
                p_x = group_total / self.num_rows
                sum_of_squares = 0.0
                for count in y_counter.values():
                    p = count / group_total
                    sum_of_squares += p * p
                result += p_x * (1.0 - sum_of_squares)
            return result

        return self._cached("E_h_y_given_x", compute)


def _sum_squared_probabilities(counts: Counter, num_rows: int) -> float:
    """Sequential ``Σ (count / num_rows)²`` over the counter's insertion order.

    The explicit ``p * p`` (rather than ``p ** 2``) and the sequential
    accumulation are part of the backend bit-identity contract: the numpy
    backend reproduces exactly this — elementwise division and
    multiplication followed by a sequential (``cumsum``) reduction over
    the same order.
    """
    result = 0.0
    for count in counts.values():
        p = count / num_rows
        result += p * p
    return result
