"""Shared sufficient statistics for AFD measures.

Every measure in the paper is a function of the group structure that an
FD ``X -> Y`` induces on a relation ``R``: the multiplicities of distinct
``x`` values, distinct ``y`` values, distinct ``(x, y)`` pairs, and (for
the normalised g1 variant) of full tuples ``w``.  :class:`FdStatistics`
computes this once so that scoring all measures on the same candidate FD
shares the work, which is also how the runtime experiment (Table V of the
paper) is structured.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, Tuple

from repro.relation.fd import FunctionalDependency
from repro.relation.operations import group_counts, joint_counts
from repro.relation.relation import Relation


@dataclass
class FdStatistics:
    """Sufficient statistics of a candidate FD ``X -> Y`` on a relation.

    All counts are computed on the subrelation of tuples that are non-NULL
    on every attribute of ``X ∪ Y`` (the paper's NULL convention,
    Section VI-A).
    """

    fd: FunctionalDependency
    num_rows: int
    x_counts: Counter
    y_counts: Counter
    xy_counts: Counter
    groups: Dict[Tuple, Counter]
    full_tuple_counts: Counter
    relation_name: str = ""
    _cache: Dict[str, float] = field(default_factory=dict, repr=False)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def compute(cls, relation: Relation, fd: FunctionalDependency) -> "FdStatistics":
        """Compute statistics of ``fd`` on ``relation`` (NULLs dropped)."""
        restricted = relation.drop_nulls(fd.attributes)
        xy = joint_counts(restricted, fd.lhs, fd.rhs)
        x_counts: Counter = Counter()
        y_counts: Counter = Counter()
        for (x, y), count in xy.items():
            x_counts[x] += count
            y_counts[y] += count
        return cls(
            fd=fd,
            num_rows=restricted.num_rows,
            x_counts=x_counts,
            y_counts=y_counts,
            xy_counts=xy,
            groups=group_counts(restricted, fd.lhs, fd.rhs),
            full_tuple_counts=restricted.frequencies(),
            relation_name=relation.name,
        )

    # ------------------------------------------------------------------
    # Structural facts
    # ------------------------------------------------------------------
    @property
    def is_empty(self) -> bool:
        return self.num_rows == 0

    @property
    def satisfied(self) -> bool:
        """True when the (NULL-restricted) relation satisfies the FD."""
        return all(len(y_counter) <= 1 for y_counter in self.groups.values())

    @property
    def distinct_x(self) -> int:
        """``|dom_R(X)|``."""
        return len(self.x_counts)

    @property
    def distinct_y(self) -> int:
        """``|dom_R(Y)|``."""
        return len(self.y_counts)

    @property
    def distinct_xy(self) -> int:
        """``|dom_R(XY)|``."""
        return len(self.xy_counts)

    @property
    def lhs_uniqueness(self) -> float:
        """``|dom_R(X)| / |R|`` — the LHS-uniqueness statistic of Section V."""
        if self.num_rows == 0:
            return 0.0
        return self.distinct_x / self.num_rows

    # ------------------------------------------------------------------
    # Probability building blocks (cached)
    # ------------------------------------------------------------------
    def _cached(self, key: str, compute) -> float:
        value = self._cache.get(key)
        if value is None:
            value = compute()
            self._cache[key] = value
        return value

    def sum_squared_x_probabilities(self) -> float:
        """``Σ_x p(x)²`` (equals ``1 - h_R(X)``)."""
        return self._cached(
            "sum_sq_x",
            lambda: sum((count / self.num_rows) ** 2 for count in self.x_counts.values()),
        )

    def sum_squared_y_probabilities(self) -> float:
        """``Σ_y p(y)²`` (equals ``pdep(Y, R) = 1 - h_R(Y)``)."""
        return self._cached(
            "sum_sq_y",
            lambda: sum((count / self.num_rows) ** 2 for count in self.y_counts.values()),
        )

    def sum_squared_xy_probabilities(self) -> float:
        """``Σ_{x,y} p(xy)²``."""
        return self._cached(
            "sum_sq_xy",
            lambda: sum((count / self.num_rows) ** 2 for count in self.xy_counts.values()),
        )

    def sum_squared_tuple_counts(self) -> int:
        """``Σ_w R(w)²`` over full tuples ``w`` of the restricted relation."""
        return int(
            self._cached(
                "sum_sq_w",
                lambda: float(sum(count**2 for count in self.full_tuple_counts.values())),
            )
        )

    def violating_pair_count(self) -> int:
        """``|G1(X -> Y, R)|``: ordered pairs equal on X but different on Y."""
        return int(
            self._cached(
                "violating_pairs",
                lambda: float(
                    sum(
                        sum(y_counter.values()) ** 2
                        - sum(count**2 for count in y_counter.values())
                        for y_counter in self.groups.values()
                    )
                ),
            )
        )

    def violating_tuple_count(self) -> int:
        """``Σ_{w ∈ G2} R(w)``: tuples participating in at least one violating pair."""
        return int(
            self._cached(
                "violating_tuples",
                lambda: float(
                    sum(
                        sum(y_counter.values())
                        for y_counter in self.groups.values()
                        if len(y_counter) > 1
                    )
                ),
            )
        )

    def max_subrelation_size(self) -> int:
        """Size of the largest subrelation satisfying the FD (numerator of g3)."""
        return int(
            self._cached(
                "max_subrelation",
                lambda: float(
                    sum(max(y_counter.values()) for y_counter in self.groups.values())
                ),
            )
        )

    # ------------------------------------------------------------------
    # Entropies (cached; Shannon entropies use the provided base)
    # ------------------------------------------------------------------
    def shannon_entropy_y(self, base: float = 2.0) -> float:
        from repro.info.shannon import entropy_of_counts

        return self._cached(f"H_y_{base}", lambda: entropy_of_counts(self.y_counts, base=base))

    def shannon_entropy_x(self, base: float = 2.0) -> float:
        from repro.info.shannon import entropy_of_counts

        return self._cached(f"H_x_{base}", lambda: entropy_of_counts(self.x_counts, base=base))

    def shannon_conditional_entropy(self, base: float = 2.0) -> float:
        """``H_R(Y | X)``."""
        from repro.info.shannon import conditional_entropy

        return self._cached(
            f"H_y_given_x_{base}", lambda: conditional_entropy(self.xy_counts, base=base)
        )

    def mutual_information(self, base: float = 2.0) -> float:
        """``I_R(X; Y) = H_R(Y) - H_R(Y | X)``."""
        from repro.info.shannon import mutual_information

        return self._cached(f"I_xy_{base}", lambda: mutual_information(self.xy_counts, base=base))

    def logical_entropy_y(self) -> float:
        """``h_R(Y) = 1 - Σ_y p(y)²``."""
        return 1.0 - self.sum_squared_y_probabilities()

    def logical_conditional_entropy(self) -> float:
        """``h_R(Y | X) = Σ_x p(x)² - Σ_{xy} p(xy)²``."""
        return max(
            self.sum_squared_x_probabilities() - self.sum_squared_xy_probabilities(), 0.0
        )

    def expected_group_logical_entropy(self) -> float:
        """``E_x[h_R(Y | x)]`` — the quantity underlying pdep."""

        def compute() -> float:
            result = 0.0
            for y_counter in self.groups.values():
                group_total = sum(y_counter.values())
                p_x = group_total / self.num_rows
                within = 1.0 - sum((count / group_total) ** 2 for count in y_counter.values())
                result += p_x * within
            return result

        return self._cached("E_h_y_given_x", compute)
