"""Chunked map-merge statistics: per-chunk partial counts, merged in order.

The driver behind ``FdStatistics.compute(..., chunk_size=, jobs=)``:
split the relation into row chunks of dictionary codes, have the active
backend compute one code-keyed :class:`~repro.core.partial.PartialFdCounts`
per chunk (``compute_partial``), merge the partials **in chunk order**
(which reproduces the global first-occurrence ``Counter`` order of a
monolithic scan, see :mod:`repro.core.partial`), decode the merged
code-tuple keys to value tuples once, and funnel through
``FdStatistics.from_joint_counts`` — the same constructor the monolithic
backends use, so the resulting statistics and every measure scored from
them are bit-identical (``==``) to ``compute`` without chunking.

Chunk sources, in preference order:

* a :class:`~repro.relation.chunked.ChunkedRelation` — its stored chunks
  and decode tables are used directly (its own ``chunk_size`` wins);
* a :class:`~repro.relation.relation.Relation` with numpy available —
  zero-copy slices of the cached columnar ``int32`` code arrays;
* a plain :class:`Relation` without numpy — re-encoded through the
  streaming ingest (``array.array`` codes), the pure-python compat path.

``jobs > 1`` distributes chunks over a ``ProcessPoolExecutor`` with the
repo's established discipline: picklable work units (compact code
buffers, not row tuples), a module-level worker, bounded in-flight
submissions, and a strictly chunk-ordered merge of results regardless of
completion order — so parallel results are bit-identical to serial.
"""

from __future__ import annotations

import multiprocessing
import os
from collections import Counter
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from typing import Dict, Iterable, Iterator, List, Optional, Tuple

from repro.core.partial import PartialFdCounts
from repro.core.statistics import FdStatistics
from repro.relation.chunked import ChunkedRelation, CodeChunk
from repro.relation.fd import FunctionalDependency
from repro.relation.relation import Relation

#: Default rows per map-merge work unit when ``chunk_size`` is not given.
DEFAULT_CHUNK_SIZE = 65_536

#: Extra tasks kept in flight beyond the worker count (bounds the
#: number of pickled chunks alive at once without starving the pool).
_INFLIGHT_SLACK = 2

#: Consecutive chunks pre-merged inside one worker task.  Within a band
#: the keys of neighbouring chunks largely overlap, so shipping one
#: band-merged partial back costs a fraction of shipping each chunk's
#: counters individually; bands are contiguous and merged in band order,
#: so the final key order is untouched.
_BAND_CHUNKS = 4


def _resolve_jobs(jobs: Optional[int]) -> int:
    if jobs is None or jobs == 0:
        jobs = os.cpu_count() or 1
    if jobs < 0:
        raise ValueError(f"jobs must be None or >= 0, got {jobs}")
    if jobs > 1 and multiprocessing.current_process().daemon:
        # Daemonic processes (the service's forked shard workers being
        # the in-repo case) may not have children; the serial map-merge
        # is bit-identical, so degrade instead of crashing the request.
        return 1
    return jobs


def _chunk_stream(
    source, chunk_size: int
) -> Tuple[Tuple[str, ...], Dict[str, List[object]], Iterable[CodeChunk]]:
    """Resolve ``(attributes, decode tables, chunk iterator)`` for a source."""
    if isinstance(source, ChunkedRelation):
        return source.attributes, source.decode_tables(), source.iter_chunks()
    if not isinstance(source, Relation):
        raise TypeError(
            f"chunked compute needs a Relation or ChunkedRelation, "
            f"got {type(source).__name__}"
        )
    columnar = source.columnar()
    if columnar is None:
        # No numpy: re-encode through the streaming ingest (array.array
        # codes).  Compat path — correct everywhere `python` backend is.
        encoded = ChunkedRelation.from_relation(source, chunk_size=chunk_size)
        return encoded.attributes, encoded.decode_tables(), encoded.iter_chunks()

    attributes = source.attributes
    tables = {a: columnar.decode_table(a) for a in attributes}

    def chunks() -> Iterator[CodeChunk]:
        codes = {a: columnar.codes(a) for a in attributes}
        total = source.num_rows
        for start in range(0, total, chunk_size):
            stop = min(start + chunk_size, total)
            yield CodeChunk(
                attributes,
                {a: column[start:stop] for a, column in codes.items()},
                stop - start,
            )

    return attributes, tables, chunks()


def _partial_task(
    task: Tuple[int, str, FunctionalDependency, List[CodeChunk]],
) -> Tuple[int, PartialFdCounts]:
    """Worker: partial counts of one band of consecutive chunks.

    Module-level (picklable under every start method); the band is
    merged in chunk order inside the worker, so the parent only has to
    fold whole bands in band order.
    """
    from repro.core.backends import resolve_backend

    index, backend_name, fd, chunks = task
    backend = resolve_backend(backend_name)
    merged = PartialFdCounts.empty()
    for chunk in chunks:
        merged.merge(backend.compute_partial(chunk, fd))
    return index, merged


def _bands(chunks: Iterable[CodeChunk], band_size: int) -> Iterator[List[CodeChunk]]:
    band: List[CodeChunk] = []
    for chunk in chunks:
        band.append(chunk)
        if len(band) == band_size:
            yield band
            band = []
    if band:
        yield band


def _merge_serial(chunks, fd, backend) -> PartialFdCounts:
    merged = PartialFdCounts.empty()
    for chunk in chunks:
        merged.merge(backend.compute_partial(chunk, fd))
    return merged


def _merge_parallel(chunks, fd, backend, jobs: int) -> PartialFdCounts:
    """Map chunks over a process pool, merge results in chunk order.

    Submission is bounded (``jobs + slack`` chunks in flight) so a long
    chunk stream never pickles itself into memory all at once; completed
    partials are buffered by index and folded in strictly ascending
    chunk order, preserving the serial merge's key order bit-for-bit.
    """
    merged = PartialFdCounts.empty()
    pending_results: Dict[int, PartialFdCounts] = {}
    next_to_merge = 0

    def drain() -> None:
        nonlocal next_to_merge
        while next_to_merge in pending_results:
            merged.merge(pending_results.pop(next_to_merge))
            next_to_merge += 1

    iterator = enumerate(_bands(chunks, _BAND_CHUNKS))
    limit = jobs + _INFLIGHT_SLACK
    with ProcessPoolExecutor(max_workers=jobs) as pool:
        in_flight = set()
        exhausted = False
        while not exhausted or in_flight:
            while not exhausted and len(in_flight) < limit:
                try:
                    index, band = next(iterator)
                except StopIteration:
                    exhausted = True
                    break
                in_flight.add(pool.submit(_partial_task, (index, backend.name, fd, band)))
            if not in_flight:
                break
            done, in_flight = wait(in_flight, return_when=FIRST_COMPLETED)
            for future in done:
                index, partial = future.result()
                pending_results[index] = partial
            drain()
    drain()
    return merged


def _decode_counts(
    merged: PartialFdCounts,
    fd: FunctionalDependency,
    attributes: Tuple[str, ...],
    tables: Dict[str, List[object]],
) -> Tuple[Counter, Counter]:
    """Translate code-tuple keys to value-tuple keys, preserving order.

    Decoding is order-preserving and injective (the dictionary encoding
    dedupes ``==``-equal values, so distinct codes mean distinct
    values), hence the decoded counters carry exactly the keys — in
    exactly the order — a monolithic value-keyed scan produces.
    """
    lhs_tables = [tables[a] for a in fd.lhs]
    rhs_tables = [tables[a] for a in fd.rhs]
    xy_counts: Counter = Counter()
    for (x_codes, y_codes), count in merged.xy_counts.items():
        xy_counts[
            (
                tuple(table[code] for table, code in zip(lhs_tables, x_codes)),
                tuple(table[code] for table, code in zip(rhs_tables, y_codes)),
            )
        ] = count
    all_tables = [tables[a] for a in attributes]
    full_counts: Counter = Counter()
    for codes, count in merged.full_tuple_counts.items():
        full_counts[
            tuple(
                table[code] if code >= 0 else None
                for table, code in zip(all_tables, codes)
            )
        ] = count
    return xy_counts, full_counts


def compute_chunked(
    source,
    fd: FunctionalDependency,
    chunk_size: Optional[int] = None,
    jobs: int = 1,
    backend: Optional[str] = None,
) -> FdStatistics:
    """Compute ``FdStatistics`` by chunked map-merge.

    Parameters
    ----------
    source:
        A :class:`Relation` or :class:`ChunkedRelation`.
    fd:
        The candidate FD.
    chunk_size:
        Rows per work unit (default :data:`DEFAULT_CHUNK_SIZE`); ignored
        for a :class:`ChunkedRelation`, whose stored chunking is used.
    jobs:
        1 = serial in-process map-merge; N > 1 = a process pool of N
        workers; ``None``/0 = one worker per CPU.
    backend:
        Statistics backend name (resolved like
        :meth:`FdStatistics.compute`).

    Returns statistics ``==`` to a monolithic ``compute`` on the same
    rows, for every measure, on both backends.
    """
    from repro.core.backends import resolve_backend

    if chunk_size is None:
        chunk_size = DEFAULT_CHUNK_SIZE
    if chunk_size < 1:
        raise ValueError(f"chunk_size must be >= 1, got {chunk_size}")
    jobs = _resolve_jobs(jobs)
    backend_object = resolve_backend(backend)
    for attribute in fd.attributes:
        if attribute not in source.attributes:
            raise KeyError(
                f"FD attribute {attribute!r} not in relation schema "
                f"{list(source.attributes)}"
            )

    attributes, tables, chunks = _chunk_stream(source, chunk_size)
    if jobs > 1:
        merged = _merge_parallel(chunks, fd, backend_object, jobs)
    else:
        merged = _merge_serial(chunks, fd, backend_object)

    xy_counts, full_counts = _decode_counts(merged, fd, attributes, tables)
    return FdStatistics.from_joint_counts(
        fd,
        merged.num_rows,
        xy_counts,
        full_counts,
        relation_name=getattr(source, "name", ""),
    )
