"""Chunked map-merge statistics: per-chunk partial counts, merged in order.

The driver behind ``FdStatistics.compute(..., chunk_size=, jobs=)``:
split the relation into row chunks of dictionary codes, have the active
backend compute one partial per chunk, merge the partials **in chunk
order** (which reproduces the global first-occurrence ``Counter`` order
of a monolithic scan, see :mod:`repro.core.partial`), decode the merged
keys to value tuples once, and funnel through
``FdStatistics.from_joint_counts`` — the same constructor the monolithic
backends use, so the resulting statistics and every measure scored from
them are bit-identical (``==``) to ``compute`` without chunking.

Two partial representations share that contract:

* **array partials** (numpy backend) — each chunk yields an
  :class:`~repro.core.partial.ArrayFdCounts` of globally packed
  ``int64`` key arrays (:meth:`compute_partial_array`); the merge is
  ``np.concatenate`` + one stable first-seen ``np.unique`` pass and the
  only Python-tuple work left is the single O(distinct) decode after
  the final merge.  Selected automatically whenever the numpy backend
  runs and the global radix products fit the packing limit;
* **tuple partials** (python backend, and the fallback when packing
  would overflow) — code-tuple-keyed ``Counter`` partials merged by
  dict probes (:meth:`compute_partial`).

Chunk sources, in preference order:

* a :class:`~repro.relation.chunked.ChunkedRelation` — its stored chunks
  and decode tables are used directly (its own ``chunk_size`` wins);
* a :class:`~repro.relation.relation.Relation` with numpy available —
  zero-copy slices of the cached columnar ``int32`` code arrays;
* a plain :class:`Relation` without numpy — re-encoded through the
  streaming ingest (``array.array`` codes), the pure-python compat path.

``jobs > 1`` distributes chunks over a **shared, module-level**
``ProcessPoolExecutor`` (spawned once, reused across FDs and sessions —
:func:`pool_info` exposes the spawn/reuse counters) with the repo's
established discipline: picklable work units (compact code buffers or
packed key arrays, not row tuples), module-level workers, bounded
in-flight submissions, and a strictly chunk-ordered merge of results
regardless of completion order — so parallel results are bit-identical
to serial.
"""

from __future__ import annotations

import multiprocessing
import os
import threading
from collections import Counter
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from typing import Callable, Dict, Iterable, Iterator, List, Optional, Tuple

from repro.core.partial import ArrayFdCounts, PartialFdCounts, unpack_key_columns
from repro.core.statistics import FdStatistics
from repro.relation.chunked import ChunkedRelation, CodeChunk
from repro.relation.fd import FunctionalDependency
from repro.relation.relation import Relation

try:  # pragma: no cover - exercised by the no-numpy CI job
    import numpy as np
except ImportError:  # pragma: no cover
    np = None  # type: ignore[assignment]

#: Default rows per map-merge work unit when ``chunk_size`` is not given.
DEFAULT_CHUNK_SIZE = 65_536

#: Extra tasks kept in flight beyond the worker count (bounds the
#: number of pickled chunks alive at once without starving the pool).
_INFLIGHT_SLACK = 2

#: Consecutive chunks pre-merged inside one worker task.  Within a band
#: the keys of neighbouring chunks largely overlap, so shipping one
#: band-merged partial back costs a fraction of shipping each chunk's
#: counts individually; bands are contiguous and merged in band order,
#: so the final key order is untouched.
_BAND_CHUNKS = 4

#: Buffered distinct keys that trigger an intermediate collapse of the
#: pending array partials: bounds merge memory on very long chunk
#: streams (10M+ rows) without changing the final first-occurrence
#: order (collapsing a prefix then merging the rest is associative).
_COLLAPSE_KEYS = 4_000_000


def _resolve_jobs(jobs: Optional[int]) -> int:
    if jobs is None or jobs == 0:
        jobs = os.cpu_count() or 1
    if jobs < 0:
        raise ValueError(f"jobs must be None or >= 0, got {jobs}")
    if jobs > 1 and multiprocessing.current_process().daemon:
        # Daemonic processes (the service's forked shard workers being
        # the in-repo case) may not have children; the serial map-merge
        # is bit-identical, so degrade instead of crashing the request.
        return 1
    return jobs


# ----------------------------------------------------------------------
# Shared worker pool
# ----------------------------------------------------------------------
_POOL_LOCK = threading.Lock()
_POOL: Optional[ProcessPoolExecutor] = None
_POOL_WORKERS = 0
_POOL_SPAWNS = 0
_POOL_REUSES = 0


def _shared_pool(jobs: int) -> ProcessPoolExecutor:
    """The module-level worker pool, (re)spawned only when it must grow.

    Every ``compute(..., jobs=N)`` call used to pay a full pool spawn;
    sharing one executor across FDs and sessions amortises worker
    start-up to once per process (the in-flight limit, not the pool
    width, bounds a call's effective parallelism).  Correctness is
    unaffected: tasks are pure functions of their payload and results
    merge in chunk order regardless of which worker answered.
    """
    global _POOL, _POOL_WORKERS, _POOL_SPAWNS, _POOL_REUSES
    from repro.obs.metrics import get_registry

    with _POOL_LOCK:
        if _POOL is None or _POOL_WORKERS < jobs:
            if _POOL is not None:
                _POOL.shutdown(wait=True)
            _POOL = ProcessPoolExecutor(max_workers=jobs)
            _POOL_WORKERS = jobs
            _POOL_SPAWNS += 1
            get_registry().inc("pool_spawns_total")
        else:
            _POOL_REUSES += 1
            get_registry().inc("pool_reuses_total")
        return _POOL


def shutdown_pool() -> None:
    """Shut down the shared worker pool (tests, explicit teardown)."""
    global _POOL, _POOL_WORKERS
    with _POOL_LOCK:
        if _POOL is not None:
            _POOL.shutdown(wait=True)
            _POOL = None
            _POOL_WORKERS = 0


def pool_info() -> Dict[str, object]:
    """Spawn/reuse counters of the shared pool (``AfdSession.describe``)."""
    with _POOL_LOCK:
        return {
            "active": _POOL is not None,
            "workers": _POOL_WORKERS,
            "spawns": _POOL_SPAWNS,
            "reuses": _POOL_REUSES,
        }


# ----------------------------------------------------------------------
# Chunk sources
# ----------------------------------------------------------------------
def _chunk_stream(
    source, chunk_size: int
) -> Tuple[Tuple[str, ...], Dict[str, List[object]], Iterable[CodeChunk]]:
    """Resolve ``(attributes, decode tables, chunk iterator)`` for a source."""
    if isinstance(source, ChunkedRelation):
        return source.attributes, source.decode_tables(), source.iter_chunks()
    if not isinstance(source, Relation):
        raise TypeError(
            f"chunked compute needs a Relation or ChunkedRelation, "
            f"got {type(source).__name__}"
        )
    columnar = source.columnar()
    if columnar is None:
        # No numpy: re-encode through the streaming ingest (array.array
        # codes).  Compat path — correct everywhere `python` backend is.
        encoded = ChunkedRelation.from_relation(source, chunk_size=chunk_size)
        return encoded.attributes, encoded.decode_tables(), encoded.iter_chunks()

    attributes = source.attributes
    tables = {a: columnar.decode_table(a) for a in attributes}

    def chunks() -> Iterator[CodeChunk]:
        codes = {a: columnar.codes(a) for a in attributes}
        total = source.num_rows
        for start in range(0, total, chunk_size):
            stop = min(start + chunk_size, total)
            yield CodeChunk(
                attributes,
                {a: column[start:stop] for a, column in codes.items()},
                stop - start,
            )

    return attributes, tables, chunks()


# ----------------------------------------------------------------------
# Array-partial planning
# ----------------------------------------------------------------------
def _array_pack_plan(
    attributes: Tuple[str, ...],
    fd: FunctionalDependency,
    tables: Dict[str, List[object]],
) -> Optional[Dict[str, int]]:
    """Global radices for the array-partial pack, or ``None`` if unsafe.

    Radix per attribute = decode-table cardinality + 1 (the +1 shift
    reserves 0 for NULL).  ``None`` — meaning: fall back to tuple
    partials — when numpy is absent or a needed radix product would
    exceed the ``int64`` packing limit (the full-tuple product is only
    needed when the FD does not cover the schema).
    """
    from repro.core.backends import _fd_covers_schema
    from repro.relation.columnar import _PACK_LIMIT

    if np is None:
        return None
    radices = {a: len(tables[a]) + 1 for a in attributes}
    product = 1
    for attribute in fd.lhs + fd.rhs:
        product *= radices[attribute]
        if product > _PACK_LIMIT:
            return None
    if not _fd_covers_schema(attributes, fd):
        product = 1
        for attribute in attributes:
            product *= radices[attribute]
            if product > _PACK_LIMIT:
                return None
    return radices


def uses_array_partials(source, fd: FunctionalDependency, backend: Optional[str] = None) -> bool:
    """True when :func:`compute_chunked` would take the array-merge path.

    False — the tuple-partial path, bit-identical but slower — when the
    resolved backend is not numpy (including the automatic no-numpy
    degrade) or the relation's cardinalities would overflow the pack.
    """
    from repro.core.backends import resolve_backend

    if np is None or resolve_backend(backend).name != "numpy":
        return False
    attributes, tables, _ = _chunk_stream(source, DEFAULT_CHUNK_SIZE)
    return _array_pack_plan(attributes, fd, tables) is not None


# ----------------------------------------------------------------------
# Workers
# ----------------------------------------------------------------------
def _partial_task(
    task: Tuple[int, List[CodeChunk], str, FunctionalDependency],
) -> Tuple[int, PartialFdCounts]:
    """Worker: tuple-keyed partial counts of one band of chunks.

    Module-level (picklable under every start method); the band is
    merged in chunk order inside the worker, so the parent only has to
    fold whole bands in band order.
    """
    from repro.core.backends import resolve_backend

    index, chunks, backend_name, fd = task
    backend = resolve_backend(backend_name)
    merged = PartialFdCounts.empty()
    for chunk in chunks:
        merged.merge(backend.compute_partial(chunk, fd))
    return index, merged


def _band_array_partial(
    band: List[CodeChunk], fd, backend, radices: Dict[str, int]
) -> ArrayFdCounts:
    """One compressed array partial for a whole band of chunks.

    Each chunk is packed to raw per-row keys (O(rows), no grouping);
    the band's raw arrays concatenate in chunk order — which is row
    order — and compress with a single first-occurrence grouping.
    Identical to merging per-chunk partials in chunk order, but the
    sort is paid once per band instead of once per chunk, which is what
    keeps the serial array path within ~10% of the monolithic scan.
    """
    num_rows = 0
    xy_parts: List["np.ndarray"] = []
    w_parts: List["np.ndarray"] = []
    covering = True
    for chunk in band:
        chunk_rows, xy_raw, w_raw = backend.pack_partial_keys(chunk, fd, radices)
        if chunk_rows == 0:
            continue
        num_rows += chunk_rows
        xy_parts.append(xy_raw)
        if w_raw is not None:
            covering = False
            w_parts.append(w_raw)
    if num_rows == 0:
        return ArrayFdCounts.empty()
    xy_all = xy_parts[0] if len(xy_parts) == 1 else np.concatenate(xy_parts)
    if covering:
        return ArrayFdCounts.from_raw_keys(num_rows, xy_all, None)
    w_all = w_parts[0] if len(w_parts) == 1 else np.concatenate(w_parts)
    return ArrayFdCounts.from_raw_keys(num_rows, xy_all, w_all)


def _array_partial_task(
    task: Tuple[int, List[CodeChunk], str, FunctionalDependency, Dict[str, int]],
) -> Tuple[int, ArrayFdCounts]:
    """Worker: array-keyed partial counts of one band of chunks.

    The band compresses vectorised in-worker (one grouping over its raw
    packed keys); the returned partial pickles as compact ``int64``
    buffers (keys + counts), a fraction of the tuple-counter pickle for
    the same chunks.
    """
    from repro.core.backends import resolve_backend

    index, chunks, backend_name, fd, radices = task
    backend = resolve_backend(backend_name)
    return index, _band_array_partial(chunks, fd, backend, radices)


def _bands(chunks: Iterable[CodeChunk], band_size: int) -> Iterator[List[CodeChunk]]:
    band: List[CodeChunk] = []
    for chunk in chunks:
        band.append(chunk)
        if len(band) == band_size:
            yield band
            band = []
    if band:
        yield band


# ----------------------------------------------------------------------
# Merge drivers
# ----------------------------------------------------------------------
class _ArrayMergeAccumulator:
    """Ordered array-partial buffer with bounded-memory collapses.

    Partials are appended in chunk order and merged in one vectorised
    pass at the end; when the buffered distinct-key total crosses
    :data:`_COLLAPSE_KEYS` the pending list is collapsed early — the
    collapsed prefix keeps its position, so the final order (and hence
    the decoded ``Counter`` order) is unchanged.
    """

    def __init__(self):
        self._pending: List[ArrayFdCounts] = []
        self._buffered = 0

    @staticmethod
    def _keys(partial: ArrayFdCounts) -> int:
        keys = int(partial.xy_keys.shape[0])
        if not partial.covering:
            keys += int(partial.w_keys.shape[0])
        return keys

    def add(self, partial: ArrayFdCounts) -> None:
        self._pending.append(partial)
        self._buffered += self._keys(partial)
        if self._buffered > _COLLAPSE_KEYS and len(self._pending) > 1:
            collapsed = ArrayFdCounts.merge_all(self._pending)
            self._pending = [collapsed]
            self._buffered = self._keys(collapsed)

    def result(self) -> ArrayFdCounts:
        return ArrayFdCounts.merge_all(self._pending)


def _map_parallel(
    chunks: Iterable[CodeChunk],
    jobs: int,
    task_function: Callable,
    task_args: Tuple,
    fold: Callable,
) -> None:
    """Map bands over the shared pool, fold results in band order.

    Submission is bounded (``jobs + slack`` bands in flight) so a long
    chunk stream never pickles itself into memory all at once; completed
    partials are buffered by index and folded in strictly ascending
    band order, preserving the serial merge's key order bit-for-bit.
    """
    pending_results: Dict[int, object] = {}
    next_to_fold = 0

    def drain() -> None:
        nonlocal next_to_fold
        while next_to_fold in pending_results:
            fold(pending_results.pop(next_to_fold))
            next_to_fold += 1

    iterator = enumerate(_bands(chunks, _BAND_CHUNKS))
    limit = jobs + _INFLIGHT_SLACK
    pool = _shared_pool(jobs)
    in_flight = set()
    exhausted = False
    try:
        while not exhausted or in_flight:
            while not exhausted and len(in_flight) < limit:
                try:
                    index, band = next(iterator)
                except StopIteration:
                    exhausted = True
                    break
                in_flight.add(pool.submit(task_function, (index, band) + task_args))
            if not in_flight:
                break
            done, in_flight = wait(in_flight, return_when=FIRST_COMPLETED)
            for future in done:
                index, partial = future.result()
                pending_results[index] = partial
            drain()
    except BrokenProcessPool:
        # A dead worker poisons the executor; drop it so the next call
        # spawns a fresh one instead of failing forever.
        shutdown_pool()
        raise
    drain()


def _merge_serial(chunks, fd, backend) -> PartialFdCounts:
    merged = PartialFdCounts.empty()
    for chunk in chunks:
        merged.merge(backend.compute_partial(chunk, fd))
    return merged


def _merge_parallel(chunks, fd, backend, jobs: int) -> PartialFdCounts:
    merged = PartialFdCounts.empty()
    _map_parallel(chunks, jobs, _partial_task, (backend.name, fd), merged.merge)
    return merged


def _merge_serial_array(chunks, fd, backend, radices: Dict[str, int]) -> ArrayFdCounts:
    accumulator = _ArrayMergeAccumulator()
    for band in _bands(chunks, _BAND_CHUNKS):
        accumulator.add(_band_array_partial(band, fd, backend, radices))
    return accumulator.result()


def _merge_parallel_array(
    chunks, fd, backend, jobs: int, radices: Dict[str, int]
) -> ArrayFdCounts:
    accumulator = _ArrayMergeAccumulator()
    _map_parallel(
        chunks, jobs, _array_partial_task, (backend.name, fd, radices), accumulator.add
    )
    return accumulator.result()


# ----------------------------------------------------------------------
# Decoding
# ----------------------------------------------------------------------
def _decode_counts(
    merged: PartialFdCounts,
    fd: FunctionalDependency,
    attributes: Tuple[str, ...],
    tables: Dict[str, List[object]],
) -> Tuple[Counter, Counter]:
    """Translate code-tuple keys to value-tuple keys, preserving order.

    Decoding is order-preserving and injective (the dictionary encoding
    dedupes ``==``-equal values, so distinct codes mean distinct
    values), hence the decoded counters carry exactly the keys — in
    exactly the order — a monolithic value-keyed scan produces.
    """
    lhs_tables = [tables[a] for a in fd.lhs]
    rhs_tables = [tables[a] for a in fd.rhs]
    xy_counts: Counter = Counter()
    for (x_codes, y_codes), count in merged.xy_counts.items():
        xy_counts[
            (
                tuple(table[code] for table, code in zip(lhs_tables, x_codes)),
                tuple(table[code] for table, code in zip(rhs_tables, y_codes)),
            )
        ] = count
    all_tables = [tables[a] for a in attributes]
    full_counts: Counter = Counter()
    for codes, count in merged.full_tuple_counts.items():
        full_counts[
            tuple(
                table[code] if code >= 0 else None
                for table, code in zip(all_tables, codes)
            )
        ] = count
    return xy_counts, full_counts


def _decode_array_counts(
    merged: ArrayFdCounts,
    fd: FunctionalDependency,
    attributes: Tuple[str, ...],
    tables: Dict[str, List[object]],
    radices: Dict[str, int],
) -> Tuple[Counter, Counter]:
    """Unpack and decode the merged key arrays, preserving order.

    The single place the array path touches Python tuples: one divmod
    unpack plus one O(distinct) loop per counter — the same order-
    preserving, injective decode as :func:`_decode_counts`.
    """
    fd_attributes = fd.lhs + fd.rhs
    columns = unpack_key_columns(
        merged.xy_keys, [radices[a] for a in fd_attributes]
    )
    lhs_tables = [tables[a] for a in fd.lhs]
    rhs_tables = [tables[a] for a in fd.rhs]
    split = len(fd.lhs)
    counts = merged.xy_counts.tolist()
    xy_counts: Counter = Counter()
    if split == 1 and len(fd.rhs) == 1:
        x_table, y_table = lhs_tables[0], rhs_tables[0]
        for x_code, y_code, count in zip(columns[0].tolist(), columns[1].tolist(), counts):
            xy_counts[((x_table[x_code],), (y_table[y_code],))] = count
    else:
        lhs_codes = [column.tolist() for column in columns[:split]]
        rhs_codes = [column.tolist() for column in columns[split:]]
        for group, count in enumerate(counts):
            xy_counts[
                (
                    tuple(table[codes[group]] for table, codes in zip(lhs_tables, lhs_codes)),
                    tuple(table[codes[group]] for table, codes in zip(rhs_tables, rhs_codes)),
                )
            ] = count

    full_counts: Counter = Counter()
    if merged.covering:
        # Same re-key as the per-chunk covering fast path: identical
        # counts in identical first-occurrence order.
        for (x_key, y_key), count in xy_counts.items():
            full_counts[x_key + y_key] = count
        return xy_counts, full_counts
    all_tables = [tables[a] for a in attributes]
    w_columns = [
        column.tolist()
        for column in unpack_key_columns(merged.w_keys, [radices[a] for a in attributes])
    ]
    for row in zip(*w_columns, merged.w_counts.tolist()):
        full_counts[
            tuple(
                table[code] if code >= 0 else None
                for table, code in zip(all_tables, row)
            )
        ] = row[-1]
    return xy_counts, full_counts


def _seed_from_array_merge(
    statistics: FdStatistics,
    merged: ArrayFdCounts,
    fd: FunctionalDependency,
    radices: Dict[str, int],
) -> None:
    """Pre-seed the vectorisable statistics from the merged arrays.

    The chunked analogue of the monolithic numpy backend's cache
    seeding: the parent X/Y group counts fall out of the packed keys by
    divmod (first-occurrence order is preserved — an X value's first
    ``(X, Y)`` group is its first restricted row), so the seeded values
    are bit-identical to the monolithic pass's.
    """
    from repro.core.backends import _seed_vectorised_statistics
    from repro.relation.columnar import _dense_first_occurrence

    if merged.xy_keys.shape[0] == 0:
        return
    rhs_product = 1
    for attribute in fd.rhs:
        rhs_product *= radices[attribute]
    xy_counts = merged.xy_counts
    x_of_xy, _, _ = _dense_first_occurrence(merged.xy_keys // rhs_product)
    y_of_xy, _, _ = _dense_first_occurrence(merged.xy_keys % rhs_product)
    x_counts = np.zeros(int(x_of_xy.max()) + 1, dtype=np.int64)
    np.add.at(x_counts, x_of_xy, xy_counts)
    y_counts = np.zeros(int(y_of_xy.max()) + 1, dtype=np.int64)
    np.add.at(y_counts, y_of_xy, xy_counts)
    _seed_vectorised_statistics(
        statistics,
        merged.num_rows,
        x_counts=x_counts,
        y_counts=y_counts,
        xy_counts=xy_counts,
        x_of_xy=x_of_xy,
        w_counts=merged.w_counts,
    )


# ----------------------------------------------------------------------
# Entry point
# ----------------------------------------------------------------------
def compute_chunked(
    source,
    fd: FunctionalDependency,
    chunk_size: Optional[int] = None,
    jobs: int = 1,
    backend: Optional[str] = None,
    array_partials: Optional[bool] = None,
) -> FdStatistics:
    """Compute ``FdStatistics`` by chunked map-merge.

    Parameters
    ----------
    source:
        A :class:`Relation` or :class:`ChunkedRelation`.
    fd:
        The candidate FD.
    chunk_size:
        Rows per work unit (default :data:`DEFAULT_CHUNK_SIZE`); ignored
        for a :class:`ChunkedRelation`, whose stored chunking is used.
    jobs:
        1 = serial in-process map-merge; N > 1 = N workers of the shared
        process pool; ``None``/0 = one worker per CPU.
    backend:
        Statistics backend name (resolved like
        :meth:`FdStatistics.compute`).
    array_partials:
        ``None`` (default) auto-selects the vectorised array-partial
        merge whenever the numpy backend runs and the relation's
        cardinalities fit the packing limit; ``False`` forces the
        tuple-partial path (results are ``==`` either way); ``True``
        asserts the array path is available and raises when it is not.

    Returns statistics ``==`` to a monolithic ``compute`` on the same
    rows, for every measure, on both backends and both partial
    representations.
    """
    from repro.core.backends import resolve_backend

    if chunk_size is None:
        chunk_size = DEFAULT_CHUNK_SIZE
    if chunk_size < 1:
        raise ValueError(f"chunk_size must be >= 1, got {chunk_size}")
    jobs = _resolve_jobs(jobs)
    backend_object = resolve_backend(backend)
    for attribute in fd.attributes:
        if attribute not in source.attributes:
            raise KeyError(
                f"FD attribute {attribute!r} not in relation schema "
                f"{list(source.attributes)}"
            )

    from repro.obs.metrics import get_registry

    attributes, tables, chunks = _chunk_stream(source, chunk_size)

    def counted(stream):
        registry = get_registry()
        for chunk in stream:
            registry.inc("chunked_chunks_total")
            yield chunk

    chunks = counted(chunks)
    plan = None
    if array_partials is not False and backend_object.name == "numpy":
        plan = _array_pack_plan(attributes, fd, tables)
    if array_partials is True and plan is None:
        raise ValueError(
            "array partials need the numpy backend and pack-safe radix "
            f"products; unavailable for backend {backend_object.name!r} "
            f"on {getattr(source, 'name', '') or 'this relation'}"
        )
    relation_name = getattr(source, "name", "")
    get_registry().inc(
        "chunked_passes_total", path="array" if plan is not None else "tuple"
    )
    if plan is not None:
        if jobs > 1:
            merged_arrays = _merge_parallel_array(chunks, fd, backend_object, jobs, plan)
        else:
            merged_arrays = _merge_serial_array(chunks, fd, backend_object, plan)
        xy_counts, full_counts = _decode_array_counts(
            merged_arrays, fd, attributes, tables, plan
        )
        statistics = FdStatistics.from_joint_counts(
            fd,
            merged_arrays.num_rows,
            xy_counts,
            full_counts,
            relation_name=relation_name,
        )
        _seed_from_array_merge(statistics, merged_arrays, fd, plan)
        return statistics

    if jobs > 1:
        merged = _merge_parallel(chunks, fd, backend_object, jobs)
    else:
        merged = _merge_serial(chunks, fd, backend_object)

    xy_counts, full_counts = _decode_counts(merged, fd, attributes, tables)
    return FdStatistics.from_joint_counts(
        fd,
        merged.num_rows,
        xy_counts,
        full_counts,
        relation_name=relation_name,
    )
