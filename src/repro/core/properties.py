"""Qualitative property catalogue of the measures (Table III of the paper).

Each measure is annotated with the properties the paper derives from its
formal analysis (Section IV) and the sensitivity analysis (Section V):
measure class, having baselines, efficient computability, inverse
proportionality to the error level, and insensitivity to LHS-uniqueness
and RHS-skew.  Properties marked "not applicable" in the paper (for
measures with no distinguishing power on a benchmark) are encoded as
``None``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.core.base import MeasureClass
from repro.core.registry import MEASURE_ORDER, paper_label


@dataclass(frozen=True)
class MeasureProperties:
    """Qualitative properties of one measure as reported in Table III."""

    name: str
    measure_class: MeasureClass
    considered_in: str
    has_baselines: bool
    efficiently_computable: bool
    inversely_proportional_to_error: Optional[bool]
    insensitive_to_lhs_uniqueness: Optional[bool]
    insensitive_to_rhs_skew: Optional[bool]
    auc_on_rwd_paper: float

    @property
    def label(self) -> str:
        return paper_label(self.name)


#: Table III of the paper, transcribed.  ``None`` encodes the paper's
#: "not applicable" symbol (the measure has no distinguishing power on the
#: corresponding synthetic benchmark, so sensitivity is meaningless).
PAPER_PROPERTIES: Dict[str, MeasureProperties] = {
    "rho": MeasureProperties(
        "rho", MeasureClass.VIOLATION, "Ilyas et al. [17]", False, True, True, False, False, 0.417
    ),
    "g2": MeasureProperties(
        "g2", MeasureClass.VIOLATION, "Kivinen & Mannila [11], UNI-DETECT [31]",
        True, True, True, False, False, 0.504,
    ),
    "g3": MeasureProperties(
        "g3", MeasureClass.VIOLATION, "TANE [32], Berti-Equille et al. [9], Berzal et al. [18]",
        False, True, True, False, False, 0.674,
    ),
    "g3_prime": MeasureProperties(
        "g3_prime", MeasureClass.VIOLATION, "Giannella & Robertson [12]",
        True, True, True, True, False, 0.901,
    ),
    "gS1": MeasureProperties(
        "gS1", MeasureClass.SHANNON, "new (this paper)", True, True, True, False, False, 0.109
    ),
    "fi": MeasureProperties(
        "fi", MeasureClass.SHANNON, "Cavallo & Pittarelli [39], Giannella & Robertson [12]",
        True, True, True, False, True, 0.415,
    ),
    "rfi_plus": MeasureProperties(
        "rfi_plus", MeasureClass.SHANNON, "Mandros et al. [13, 14]",
        True, False, True, False, True, 0.494,
    ),
    "rfi_prime_plus": MeasureProperties(
        "rfi_prime_plus", MeasureClass.SHANNON, "new (this paper)",
        True, False, True, True, True, 0.971,
    ),
    "sfi": MeasureProperties(
        "sfi", MeasureClass.SHANNON, "Pennerath et al. [15]", True, False, None, None, None, 0.320
    ),
    "g1": MeasureProperties(
        "g1", MeasureClass.LOGICAL, "Kivinen & Mannila [11], FDX [23]",
        False, True, None, None, None, 0.425,
    ),
    "g1_prime": MeasureProperties(
        "g1_prime", MeasureClass.LOGICAL, "PYRO [22]", True, True, None, None, None, 0.425
    ),
    "pdep": MeasureProperties(
        "pdep", MeasureClass.LOGICAL, "Piatetsky-Shapiro & Matheus [16]",
        False, True, True, False, False, 0.647,
    ),
    "tau": MeasureProperties(
        "tau", MeasureClass.LOGICAL, "Goodman & Kruskal [41], [16]",
        True, True, True, False, True, 0.630,
    ),
    "mu_plus": MeasureProperties(
        "mu_plus", MeasureClass.LOGICAL, "Piatetsky-Shapiro & Matheus [16]",
        True, True, True, True, True, 0.946,
    ),
}


def property_table() -> List[MeasureProperties]:
    """All measure properties in the paper's canonical order."""
    return [PAPER_PROPERTIES[name] for name in MEASURE_ORDER]


def properties_for(name: str) -> MeasureProperties:
    """Properties of one measure by name."""
    if name not in PAPER_PROPERTIES:
        raise KeyError(f"no recorded properties for measure {name!r}")
    return PAPER_PROPERTIES[name]


def recommended_measures() -> List[str]:
    """Measures the paper recommends for practical AFD discovery.

    μ+ is the headline recommendation (efficient and well-ranking); RFI'+
    ranks best but is slow; g3' is the best VIOLATION-class measure.
    """
    return ["mu_plus", "rfi_prime_plus", "g3_prime"]
