"""Mergeable partial sufficient statistics.

:class:`~repro.core.statistics.FdStatistics` funnels every backend
through ``from_joint_counts``, which makes the joint ``(x, y)`` counts —
together with the restricted row count and the full-tuple counts — a
*mergeable* intermediate: the counts of a relation are the key-wise sums
of the counts of any row-partition of it.  :class:`PartialFdCounts` is
that intermediate made explicit, so the statistics pass can be computed
chunk-by-chunk (one chunk per slice of the dictionary-encoded code
arrays, see :meth:`compute_partial` on the backends) and merged — in
chunk order — into exactly the counts a monolithic scan produces.

**Order contract.**  ``Counter`` insertion order is part of the repo's
bit-identity discipline (it pins every downstream floating-point
summation order).  :meth:`merge` therefore preserves *first-occurrence*
order: keys already present keep their position, new keys are appended
in the other partial's order.  Merging per-chunk partials in chunk order
— each chunk's keys in first-occurrence-within-chunk order — yields the
global first-occurrence order of a single scan, which is why chunked
map-merge statistics are ``==`` to monolithic ``compute`` on both
backends.

Keys are *domain-agnostic*: the chunked driver keys partials by tuples
of dictionary codes (cheap to hash, stable across chunks because the
encoding is global) and decodes to value tuples once, after the final
merge; a caller may equally merge value-keyed partials.  Either way the
keys of one merge must come from one consistent domain.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Iterable


def merge_counts(target: Counter, other: Counter) -> None:
    """Key-wise add ``other`` into ``target``, first-occurrence ordered.

    Existing keys keep their insertion position; unseen keys are appended
    in ``other``'s iteration order.  (Plain dict probes instead of
    ``Counter.__missing__`` — this runs once per distinct key per chunk.)
    """
    for key, count in other.items():
        previous = target.get(key)
        target[key] = count if previous is None else previous + count


@dataclass
class PartialFdCounts:
    """Partial counts of one row-chunk, mergeable across chunks.

    ``num_rows`` counts the chunk's rows surviving the NULL restriction
    on ``X ∪ Y``; ``xy_counts`` maps ``(x_key, y_key)`` to multiplicity;
    ``full_tuple_counts`` maps the full-tuple key of each restricted row
    to its multiplicity.  All three add key-wise under :meth:`merge`.
    """

    num_rows: int = 0
    xy_counts: Counter = field(default_factory=Counter)
    full_tuple_counts: Counter = field(default_factory=Counter)

    @classmethod
    def empty(cls) -> "PartialFdCounts":
        return cls()

    def merge(self, other: "PartialFdCounts") -> "PartialFdCounts":
        """Fold ``other`` into this partial (in place); returns ``self``.

        Not commutative at the bit level: ``a.merge(b)`` orders keys by
        first occurrence in ``a`` then ``b`` — merge chunks in chunk
        order to reproduce a monolithic scan exactly.
        """
        self.num_rows += other.num_rows
        merge_counts(self.xy_counts, other.xy_counts)
        merge_counts(self.full_tuple_counts, other.full_tuple_counts)
        return self

    @classmethod
    def merge_all(cls, partials: Iterable["PartialFdCounts"]) -> "PartialFdCounts":
        """Merge an iterable of partials (in iteration order)."""
        merged = cls.empty()
        for partial in partials:
            merged.merge(partial)
        return merged
