"""Mergeable partial sufficient statistics.

:class:`~repro.core.statistics.FdStatistics` funnels every backend
through ``from_joint_counts``, which makes the joint ``(x, y)`` counts —
together with the restricted row count and the full-tuple counts — a
*mergeable* intermediate: the counts of a relation are the key-wise sums
of the counts of any row-partition of it.  :class:`PartialFdCounts` is
that intermediate made explicit, so the statistics pass can be computed
chunk-by-chunk (one chunk per slice of the dictionary-encoded code
arrays, see :meth:`compute_partial` on the backends) and merged — in
chunk order — into exactly the counts a monolithic scan produces.

**Order contract.**  ``Counter`` insertion order is part of the repo's
bit-identity discipline (it pins every downstream floating-point
summation order).  :meth:`merge` therefore preserves *first-occurrence*
order: keys already present keep their position, new keys are appended
in the other partial's order.  Merging per-chunk partials in chunk order
— each chunk's keys in first-occurrence-within-chunk order — yields the
global first-occurrence order of a single scan, which is why chunked
map-merge statistics are ``==`` to monolithic ``compute`` on both
backends.

Keys are *domain-agnostic*: the chunked driver keys partials by tuples
of dictionary codes (cheap to hash, stable across chunks because the
encoding is global) and decodes to value tuples once, after the final
merge; a caller may equally merge value-keyed partials.  Either way the
keys of one merge must come from one consistent domain.

:class:`ArrayFdCounts` is the vectorised sibling: the same mergeable
counts, but keyed by *packed* ``int64`` scalars held in numpy arrays
instead of Python tuples held in ``Counter``\\ s.  Packing uses one
global mixed-radix scheme (radix per attribute = cardinality + 1, codes
shifted by +1 so ``-1``-NULL packs as 0), so a packed key means the same
code tuple in every chunk and is invertible by ``divmod`` — the whole
merge is ``np.concatenate`` + one stable first-seen ``np.unique`` pass,
no per-group Python work until the single post-merge decode.  The order
contract carries over verbatim: each partial's key array is in
first-occurrence-within-chunk order, and :meth:`ArrayFdCounts.merge_all`
keeps the first occurrence across the concatenation, so the decoded
``Counter`` order equals the tuple path's (and hence the monolithic
scan's) exactly.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Iterable, List, Sequence, Tuple

try:  # pragma: no cover - exercised by the no-numpy CI job
    import numpy as np
except ImportError:  # pragma: no cover
    np = None  # type: ignore[assignment]


def merge_counts(target: Counter, other: Counter) -> None:
    """Key-wise add ``other`` into ``target``, first-occurrence ordered.

    Existing keys keep their insertion position; unseen keys are appended
    in ``other``'s iteration order.  (Plain dict probes instead of
    ``Counter.__missing__`` — this runs once per distinct key per chunk.)
    """
    for key, count in other.items():
        previous = target.get(key)
        target[key] = count if previous is None else previous + count


@dataclass
class PartialFdCounts:
    """Partial counts of one row-chunk, mergeable across chunks.

    ``num_rows`` counts the chunk's rows surviving the NULL restriction
    on ``X ∪ Y``; ``xy_counts`` maps ``(x_key, y_key)`` to multiplicity;
    ``full_tuple_counts`` maps the full-tuple key of each restricted row
    to its multiplicity.  All three add key-wise under :meth:`merge`.
    """

    num_rows: int = 0
    xy_counts: Counter = field(default_factory=Counter)
    full_tuple_counts: Counter = field(default_factory=Counter)

    @classmethod
    def empty(cls) -> "PartialFdCounts":
        return cls()

    def merge(self, other: "PartialFdCounts") -> "PartialFdCounts":
        """Fold ``other`` into this partial (in place); returns ``self``.

        Not commutative at the bit level: ``a.merge(b)`` orders keys by
        first occurrence in ``a`` then ``b`` — merge chunks in chunk
        order to reproduce a monolithic scan exactly.
        """
        self.num_rows += other.num_rows
        merge_counts(self.xy_counts, other.xy_counts)
        merge_counts(self.full_tuple_counts, other.full_tuple_counts)
        return self

    @classmethod
    def merge_all(cls, partials: Iterable["PartialFdCounts"]) -> "PartialFdCounts":
        """Merge an iterable of partials (in iteration order)."""
        merged = cls.empty()
        for partial in partials:
            merged.merge(partial)
        return merged


def _group_first_occurrence(
    raw: "np.ndarray",
) -> Tuple["np.ndarray", "np.ndarray"]:
    """Group one-per-row packed keys, first-occurrence ordered.

    Cheaper than :func:`~repro.relation.columnar._dense_first_occurrence`
    for compression: no inverse array is materialised, the second sort
    runs over distinct keys only.
    """
    unique, first, counts = np.unique(raw, return_index=True, return_counts=True)
    order = np.argsort(first, kind="stable")
    return unique[order], counts[order].astype(np.int64, copy=False)


def _merge_keyed_arrays(
    keyed: Sequence[Tuple["np.ndarray", "np.ndarray"]],
) -> Tuple["np.ndarray", "np.ndarray"]:
    """Merge ``(keys, counts)`` array pairs, first-occurrence ordered.

    Concatenates in sequence order and groups with a stable first-seen
    index, so a key's merged position is its position in the first pair
    that contains it — the array analogue of :func:`merge_counts`.
    Counts stay exact ``int64`` (``np.add.at``, not float bincount
    weights).
    """
    from repro.relation.columnar import _dense_first_occurrence

    if len(keyed) == 1:
        return keyed[0]
    all_keys = np.concatenate([keys for keys, _ in keyed])
    all_counts = np.concatenate([counts for _, counts in keyed])
    dense, _, firsts = _dense_first_occurrence(all_keys)
    merged_counts = np.zeros(firsts.shape[0], dtype=np.int64)
    np.add.at(merged_counts, dense, all_counts)
    return all_keys[firsts], merged_counts


@dataclass
class ArrayFdCounts:
    """Partial counts keyed by globally packed ``int64`` scalars.

    The array analogue of :class:`PartialFdCounts`: ``xy_keys`` /
    ``xy_counts`` hold one chunk's distinct packed ``(X, Y)`` keys (in
    first-occurrence order) with their multiplicities, ``w_keys`` /
    ``w_counts`` the packed full-tuple keys.  When the FD covers the
    schema the producer aliases ``w_keys is xy_keys`` (the full tuple
    *is* the ``(x, y)`` concatenation under one shared pack), and
    :meth:`merge_all` preserves the aliasing so the covering fast path
    survives the merge.  Partials pickle as compact array buffers —
    what travels over the process-pool pipes in the parallel driver.
    """

    num_rows: int
    xy_keys: "np.ndarray"
    xy_counts: "np.ndarray"
    w_keys: "np.ndarray"
    w_counts: "np.ndarray"

    @classmethod
    def empty(cls) -> "ArrayFdCounts":
        if np is None:  # pragma: no cover - array partials need numpy
            raise RuntimeError("ArrayFdCounts requires numpy")
        keys = np.empty(0, dtype=np.int64)
        counts = np.empty(0, dtype=np.int64)
        return cls(0, keys, counts, keys, counts)

    @classmethod
    def from_raw_keys(
        cls,
        num_rows: int,
        xy_raw: "np.ndarray",
        w_raw: "np.ndarray" = None,
    ) -> "ArrayFdCounts":
        """Compress raw one-key-per-row arrays into a partial.

        ``xy_raw`` (and ``w_raw``) carry one packed key per restricted
        row, in row order; grouping keeps first-occurrence order, so the
        result equals merging the rows' singleton partials in row order.
        ``w_raw=None`` declares the FD schema-covering (the full-tuple
        counts alias the joint counts).  Packing a chunk to raw keys is
        O(rows); deferring the grouping to one call per *band* of chunks
        is what keeps the serial chunked pass within sight of the
        monolithic scan.
        """
        if np is None:  # pragma: no cover - array partials need numpy
            raise RuntimeError("ArrayFdCounts requires numpy")
        if num_rows == 0:
            return cls.empty()
        xy_keys, xy_counts = _group_first_occurrence(xy_raw)
        if w_raw is None:
            return cls(num_rows, xy_keys, xy_counts, xy_keys, xy_counts)
        w_keys, w_counts = _group_first_occurrence(w_raw)
        return cls(num_rows, xy_keys, xy_counts, w_keys, w_counts)

    @property
    def covering(self) -> bool:
        """True when the full-tuple counts alias the joint counts."""
        return self.w_keys is self.xy_keys

    def merge(self, other: "ArrayFdCounts") -> "ArrayFdCounts":
        """Pairwise merge (prefer :meth:`merge_all` over chains of these)."""
        return ArrayFdCounts.merge_all([self, other])

    @classmethod
    def merge_all(cls, partials: Sequence["ArrayFdCounts"]) -> "ArrayFdCounts":
        """One vectorised merge of many partials, in sequence order.

        Equivalent — same keys, same counts, same first-occurrence order
        after decoding — to :meth:`PartialFdCounts.merge_all` over the
        tuple-keyed forms of the same chunks.
        """
        partials = list(partials)
        if not partials:
            return cls.empty()
        if len(partials) == 1:
            return partials[0]
        num_rows = sum(partial.num_rows for partial in partials)
        xy_keys, xy_counts = _merge_keyed_arrays(
            [(partial.xy_keys, partial.xy_counts) for partial in partials]
        )
        if all(partial.covering for partial in partials):
            return cls(num_rows, xy_keys, xy_counts, xy_keys, xy_counts)
        w_keys, w_counts = _merge_keyed_arrays(
            [(partial.w_keys, partial.w_counts) for partial in partials]
        )
        return cls(num_rows, xy_keys, xy_counts, w_keys, w_counts)


def unpack_key_columns(keys: "np.ndarray", radices: List[int]) -> List["np.ndarray"]:
    """Invert the global mixed-radix pack into per-attribute code arrays.

    ``radices`` must be the radices the keys were packed with, in pack
    (attribute) order; the returned arrays carry the original dictionary
    codes (``-1`` for NULL, the +1 shift undone), one per attribute.
    """
    columns: List["np.ndarray"] = []
    remaining = keys
    for radix in reversed(radices):
        remaining, shifted = np.divmod(remaining, radix)
        columns.append(shifted - 1)
    columns.reverse()
    return columns
