"""Registry of all AFD measures.

Provides canonical instances of every measure studied by the paper, keyed
by name, so that the evaluation harness, experiments and examples can
iterate over "all measures" consistently.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, Iterator, List, Optional, Tuple

from repro.core.base import AfdMeasure, MeasureClass
from repro.core.logical import (
    G1Measure,
    G1PrimeMeasure,
    MuPlusMeasure,
    PdepMeasure,
    TauMeasure,
)
from repro.core.shannon import (
    FIMeasure,
    GS1Measure,
    RfiPlusMeasure,
    RfiPrimePlusMeasure,
    SfiMeasure,
)
from repro.core.violation import G2Measure, G3Measure, G3PrimeMeasure, RhoMeasure

#: Canonical measure order used in the paper's tables and figures.
MEASURE_ORDER = (
    "rho",
    "g2",
    "g3",
    "g3_prime",
    "gS1",
    "fi",
    "rfi_plus",
    "rfi_prime_plus",
    "sfi",
    "g1",
    "g1_prime",
    "pdep",
    "tau",
    "mu_plus",
)

#: Pretty labels matching the paper's notation.
PAPER_LABELS = {
    "rho": "ρ",
    "g2": "g2",
    "g3": "g3",
    "g3_prime": "g3'",
    "gS1": "gS1",
    "fi": "FI",
    "rfi_plus": "RFI+",
    "rfi_prime_plus": "RFI'+",
    "sfi": "SFI",
    "g1": "g1",
    "g1_prime": "g1'",
    "pdep": "pdep",
    "tau": "τ",
    "mu_plus": "μ+",
}


#: Zero-argument factories of measures registered beyond the paper's
#: fourteen (extension hook used by the evaluation harness).
_EXTRA_MEASURES: Dict[str, Callable[[], AfdMeasure]] = {}


def register_measure(
    name: str, factory: Callable[[], AfdMeasure], overwrite: bool = False
) -> None:
    """Register an additional measure under ``name``.

    ``factory`` is a zero-argument callable returning a fresh
    :class:`AfdMeasure`.  Registered measures are appended (in registration
    order) to everything that iterates over "all measures":
    :func:`all_measures`, :func:`iter_measures` and therefore the
    evaluation harness and the experiment drivers.  The fourteen canonical
    names cannot be overridden.
    """
    if name in MEASURE_ORDER:
        raise ValueError(f"cannot override the canonical measure {name!r}")
    if name in _EXTRA_MEASURES and not overwrite:
        raise ValueError(f"measure {name!r} is already registered (use overwrite=True)")
    _EXTRA_MEASURES[name] = factory


def unregister_measure(name: str) -> None:
    """Remove a previously registered extra measure (no-op if absent)."""
    _EXTRA_MEASURES.pop(name, None)


def extra_measure_factories() -> Dict[str, Callable[[], AfdMeasure]]:
    """Snapshot of the registered extra-measure factories, by name.

    This is the worker-initializer contract of the evaluation harness: a
    process pool ships this mapping to every worker, which re-registers
    each factory so that ``spawn``/``forkserver`` workers see the same
    measure set as the parent.  The returned dict is a copy — mutating it
    does not affect the registry.
    """
    return dict(_EXTRA_MEASURES)


def iter_measures(**kwargs) -> Iterator[Tuple[str, AfdMeasure]]:
    """Iterate over ``(name, measure)`` pairs in canonical order, extras last.

    This is the iteration hook the evaluation harness drives (via
    ``MeasureConfig.build``): scoring code never hard-codes the measure
    list, so measures added with :func:`register_measure` are evaluated
    alongside the paper's fourteen.
    """
    yield from all_measures(**kwargs).items()


def all_measures(
    expectation: str = "exact",
    mc_samples: int = 200,
    sfi_alpha: float = 0.5,
    seed: Optional[int] = 0,
) -> Dict[str, AfdMeasure]:
    """Fresh instances of all fourteen measures, keyed by name.

    ``expectation`` selects the permutation-expectation strategy used by
    RFI+ and RFI'+ (``"exact"`` or ``"monte-carlo"``).  Measures added via
    :func:`register_measure` are appended after the canonical fourteen.
    """
    measures: List[AfdMeasure] = [
        RhoMeasure(),
        G2Measure(),
        G3Measure(),
        G3PrimeMeasure(),
        GS1Measure(),
        FIMeasure(),
        RfiPlusMeasure(expectation=expectation, samples=mc_samples, seed=seed),
        RfiPrimePlusMeasure(expectation=expectation, samples=mc_samples, seed=seed),
        SfiMeasure(alpha=sfi_alpha),
        G1Measure(),
        G1PrimeMeasure(),
        PdepMeasure(),
        TauMeasure(),
        MuPlusMeasure(),
    ]
    by_name = {measure.name: measure for measure in measures}
    sfi = next(measure for measure in measures if isinstance(measure, SfiMeasure))
    result: Dict[str, AfdMeasure] = {}
    for name in MEASURE_ORDER:
        if name in by_name:
            result[name] = by_name[name]
        elif name == "sfi":
            # SFI renames itself when a non-default alpha is requested
            # (e.g. "sfi_1"); keep the customised name as the key.
            result[sfi.name] = sfi
    for name, factory in _EXTRA_MEASURES.items():
        result[name] = factory()
    return result


def default_measures(**kwargs) -> Dict[str, AfdMeasure]:
    """Alias of :func:`all_measures` with default parameters."""
    return all_measures(**kwargs)


def fast_measures() -> Dict[str, AfdMeasure]:
    """Only the efficiently computable measures (Table III, 'Efficiently computable')."""
    return {
        name: measure
        for name, measure in all_measures().items()
        if measure.efficiently_computable
    }


def get_measure(name: str, **kwargs) -> AfdMeasure:
    """A single measure instance by name (raises ``KeyError`` if unknown)."""
    measures = all_measures(**kwargs)
    if name not in measures:
        raise KeyError(f"unknown measure {name!r}; known measures: {sorted(measures)}")
    return measures[name]


def select_measures(
    measures: Dict[str, AfdMeasure], spec: Optional[str]
) -> Dict[str, AfdMeasure]:
    """Subset a measure mapping by a comma-separated name list.

    The shared ``--measures`` parser of the CLIs: ``spec=None`` keeps the
    full mapping, otherwise the named measures are returned in the
    requested order; unknown names raise :class:`KeyError` with a
    message naming them and the known set.
    """
    if spec is None:
        return measures
    wanted = [name.strip() for name in spec.split(",") if name.strip()]
    unknown = [name for name in wanted if name not in measures]
    if unknown:
        raise KeyError(f"unknown measures {unknown}; known: {sorted(measures)}")
    return {name: measures[name] for name in wanted}


def measure_names() -> List[str]:
    """Canonical measure names in paper order."""
    return list(MEASURE_ORDER)


def measures_by_class(
    measure_class: MeasureClass, measures: Optional[Dict[str, AfdMeasure]] = None
) -> Dict[str, AfdMeasure]:
    """Subset of measures belonging to a given class."""
    measures = measures if measures is not None else all_measures()
    return {
        name: measure
        for name, measure in measures.items()
        if measure.measure_class == measure_class
    }


def paper_label(name: str) -> str:
    """The paper's symbol for a measure name (falls back to the name itself)."""
    return PAPER_LABELS.get(name, name)


def subset(names: Iterable[str], **kwargs) -> Dict[str, AfdMeasure]:
    """A selection of measures by name, preserving the paper order."""
    wanted = set(names)
    return {
        name: measure for name, measure in all_measures(**kwargs).items() if name in wanted
    }
