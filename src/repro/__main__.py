"""``python -m repro`` — one dispatcher for every command-line tool.

Routes to the subsystem CLIs so nobody has to memorise module paths::

    python -m repro discovery data.csv --max-lhs-size 2
    python -m repro experiments --benchmark err --steps 5
    python -m repro stream data.csv --fd "A -> B"
    python -m repro serve --port 8765
    python -m repro analysis --select RPR103
    python -m repro --version

Each subcommand forwards its remaining arguments verbatim to the
corresponding ``python -m repro.<name>`` entry point (which remains
directly runnable).
"""

from __future__ import annotations

import importlib
import sys
from typing import List, Optional

#: Subcommand -> module whose ``main(argv)`` serves it.
COMMANDS = {
    "discovery": ("repro.discovery.__main__", "measure-based AFD discovery"),
    "experiments": ("repro.experiments.__main__", "the paper's experiment drivers"),
    "stream": ("repro.stream.__main__", "incremental monitoring of streamed relations"),
    "serve": ("repro.service.server", "the concurrent AFD profiling server"),
    "analysis": ("repro.analysis.__main__", "static invariant checks (RPR1xx)"),
}


def _usage() -> str:
    lines = [
        "usage: python -m repro [--version] <command> [options]",
        "",
        "commands:",
    ]
    for name, (_, description) in COMMANDS.items():
        lines.append(f"  {name:<12} {description}")
    lines.append("")
    lines.append("run 'python -m repro <command> --help' for command options")
    return "\n".join(lines)


def main(argv: Optional[List[str]] = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if argv and argv[0] in ("--version", "-V"):
        from repro import __version__

        print(f"repro {__version__}")
        return 0
    if not argv or argv[0] in ("-h", "--help"):
        print(_usage())
        return 0 if argv else 2
    command = argv[0]
    entry = COMMANDS.get(command)
    if entry is None:
        print(f"unknown command {command!r}\n\n{_usage()}", file=sys.stderr)
        return 2
    module = importlib.import_module(entry[0])
    return module.main(argv[1:])


if __name__ == "__main__":
    sys.exit(main())
