"""Incremental stripped-partition maintenance.

:class:`~repro.relation.partition.StrippedPartition` is position-based:
its clusters hold snapshot positions and its probe table maps position ->
cluster id, neither of which survives a deletion (every later position
shifts).  :class:`IncrementalPartition` therefore maintains the
partition's *generator* instead — a value-keyed probe table
``value tuple -> {row id, ...}`` over the stable row ids of a
:class:`~repro.stream.dynamic.DynamicRelation` — and materialises a
position-based :class:`StrippedPartition` on demand.

Cost model:

* **Inserts** are applied eagerly: one probe of the value-keyed table
  per row, O(1) — the dynamic analogue of probing a cached probe table,
  except new values can open new clusters (a position-keyed table could
  not admit them).
* **Deletes** are buffered.  Replaying the buffer costs one O(1) probe
  per entry, a full rebuild costs one pass over the live rows; the
  buffer is replayed while it is small and the partition is rebuilt from
  scratch once ``|pending| >= max(rebuild_min, rebuild_fraction * live)``
  — delete-heavy churn (window turnover, bulk expiry) then pays one
  O(live) pass instead of per-row bookkeeping, and the rebuild also
  sheds whatever id-set fragmentation the churn accumulated.  The
  ``rebuilds`` / ``applied_deletes`` / ``applied_inserts`` counters
  expose which path ran.

Partitions treat NULL as an ordinary value, exactly like
:meth:`StrippedPartition.from_relation` — no NULL fall-through here.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Tuple, Union

from repro.relation.attribute import canonical_attributes, validate_attributes
from repro.relation.partition import StrippedPartition
from repro.relation.relation import Row

#: Replay-vs-rebuild switch: rebuild when the pending-delete buffer
#: reaches this fraction of the live row count ...
_REBUILD_FRACTION = 0.5
#: ... but never for buffers smaller than this (replay is always cheap there).
_REBUILD_MIN = 1024


class IncrementalPartition:
    """The stripped partition of one attribute set, maintained under mutations.

    Create via :meth:`DynamicRelation.track_partition` (or directly —
    the constructor self-registers for mutation deltas).  Clusters are
    value-keyed id sets; :meth:`as_stripped` materialises the classical
    position-based partition of the current snapshot, identical
    (clusters, error, probe semantics) to
    ``StrippedPartition.from_relation(dynamic.snapshot(), attributes)``.
    """

    def __init__(
        self,
        dynamic,
        attributes: Union[Iterable[str], str],
        rebuild_fraction: float = _REBUILD_FRACTION,
        rebuild_min: int = _REBUILD_MIN,
    ):
        self.attributes = validate_attributes(
            canonical_attributes(attributes), dynamic.attributes, "tracked partition"
        )
        if not 0.0 < rebuild_fraction <= 1.0:
            raise ValueError(f"rebuild_fraction must be in (0, 1], got {rebuild_fraction}")
        self._dynamic = dynamic
        attribute_positions = {a: i for i, a in enumerate(dynamic.attributes)}
        self._indices: Tuple[int, ...] = tuple(
            attribute_positions[a] for a in self.attributes
        )
        self._rebuild_fraction = rebuild_fraction
        self._rebuild_min = rebuild_min
        # Value-keyed probe table: value tuple -> ordered id set.  Inner
        # dicts give O(1) insert *and* delete while preserving insertion
        # (= ascending id) order.
        self._groups: Dict[Tuple, Dict[int, None]] = {}
        self._pending: List[Tuple[int, Tuple]] = []
        self.rebuilds = 0
        self.applied_inserts = 0
        self.applied_deletes = 0
        self._rebuild()
        dynamic._register(self)

    def _value(self, row: Row) -> Tuple:
        return tuple(row[i] for i in self._indices)

    # ------------------------------------------------------------------
    # Delta application (called by DynamicRelation)
    # ------------------------------------------------------------------
    def _on_insert(self, row_id: int, row: Row) -> None:
        self._groups.setdefault(self._value(row), {})[row_id] = None
        self.applied_inserts += 1

    def _on_delete(self, row_id: int, row: Row) -> None:
        self._pending.append((row_id, self._value(row)))

    def _on_compact(self, mapping) -> None:
        """Rebuild from the compacted store (old row ids are void).

        Compaction is itself O(live), so one O(live) rebuild here keeps
        the cost model honest; the pending-delete buffer only holds dead
        rows, which the rebuild discards wholesale.
        """
        self._pending.clear()
        self._rebuild()
        self.rebuilds += 1

    # ------------------------------------------------------------------
    # Lazy delete replay / rebuild
    # ------------------------------------------------------------------
    def flush(self) -> None:
        """Apply buffered deletes (replay) or rebuild, per the cost model."""
        if not self._pending:
            return
        threshold = max(
            self._rebuild_min, int(self._rebuild_fraction * self._dynamic.num_rows)
        )
        if len(self._pending) >= threshold:
            self._rebuild()
            self.rebuilds += 1
        else:
            groups = self._groups
            for row_id, value in self._pending:
                bucket = groups[value]
                del bucket[row_id]
                if not bucket:
                    del groups[value]
                self.applied_deletes += 1
        self._pending.clear()

    def _rebuild(self) -> None:
        groups: Dict[Tuple, Dict[int, None]] = {}
        for row_id, row in self._dynamic.live_items():
            groups.setdefault(self._value(row), {})[row_id] = None
        self._groups = groups

    # ------------------------------------------------------------------
    # Views
    # ------------------------------------------------------------------
    @property
    def num_groups(self) -> int:
        """Equivalence classes (including singletons) of the live rows."""
        self.flush()
        return len(self._groups)

    def cluster_ids(self) -> List[Tuple[int, ...]]:
        """Non-singleton clusters as tuples of *row ids* (ascending)."""
        self.flush()
        return [
            tuple(bucket) for bucket in self._groups.values() if len(bucket) >= 2
        ]

    def as_stripped(self) -> StrippedPartition:
        """The classical position-based stripped partition of the snapshot.

        Translation from stable row ids to snapshot positions is one
        O(live) mapping (cached on the dynamic relation per mutation
        epoch); the grouping work itself was already paid incrementally.
        """
        self.flush()
        positions = self._dynamic.live_positions()
        clusters = [
            [positions[row_id] for row_id in bucket]
            for bucket in self._groups.values()
            if len(bucket) >= 2
        ]
        return StrippedPartition(
            self._dynamic.num_rows, clusters, attributes=self.attributes
        )

    def error(self) -> float:
        """The TANE error of the current live rows (no materialisation)."""
        self.flush()
        covered = 0
        stripped = 0
        for bucket in self._groups.values():
            size = len(bucket)
            if size >= 2:
                covered += size
                stripped += 1
        live = self._dynamic.num_rows
        if live == 0:
            return 0.0
        return (covered - stripped) / live

    def is_key(self) -> bool:
        self.flush()
        return all(len(bucket) < 2 for bucket in self._groups.values())

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        label = ",".join(self.attributes) or "?"
        return (
            f"<IncrementalPartition over {label}: {len(self._groups)} groups, "
            f"{len(self._pending)} pending deletes>"
        )
