"""``repro.stream`` — incremental AFD maintenance over changing relations.

The static pipeline pays one O(rows) sufficient-statistics pass per
candidate FD; this subsystem serves relations that *change* — appends,
deletes, sliding windows — without re-paying that pass per batch:

* :class:`DynamicRelation` — the mutable row store: stable row ids,
  tombstone deletes, optional sliding window, an extendable dictionary
  encoding (grown in place, re-densified into the snapshot's columnar
  view), and delta notification to trackers;
* :class:`IncrementalFdStatistics` — O(Δ)-maintained joint counts that
  re-assemble into an :class:`~repro.core.statistics.FdStatistics`
  bit-identical to a from-scratch ``compute()`` on either backend;
* :class:`IncrementalPartition` — value-keyed stripped-partition
  maintenance with buffered deletes and a replay-vs-rebuild cost model.

``python -m repro.stream`` is the monitoring front end: it replays a CSV
file or a named RWD dataset as a stream and emits per-batch measure
scores as JSON lines.  ``python -m repro.experiments --benchmark
streaming`` benchmarks incremental re-scoring against full recompute.
"""

from repro.stream.dynamic import DynamicRelation
from repro.stream.partition import IncrementalPartition
from repro.stream.statistics import IncrementalFdStatistics

__all__ = [
    "DynamicRelation",
    "IncrementalFdStatistics",
    "IncrementalPartition",
]
