"""Relations that change: the mutable row store behind ``repro.stream``.

:class:`DynamicRelation` is the subsystem's source of truth for a
relation under **inserts and deletes**.  Every row ever appended gets a
monotonically increasing *row id*; deletion tombstones the id instead of
shifting positions, so the derived structures (incremental statistics,
incremental partitions) can refer to rows stably across mutations.  The
live rows, in ascending id order, define the *current* relation — the
one a from-scratch :meth:`FdStatistics.compute` would see.

Three design points carry the subsystem:

* **Delta notification.**  Trackers created via :meth:`track` (one
  :class:`~repro.stream.statistics.IncrementalFdStatistics` per FD) and
  :meth:`track_partition` (one
  :class:`~repro.stream.partition.IncrementalPartition` per attribute
  set) receive every ``(row_id, row)`` insert/delete exactly once, in
  mutation order, so their caches stay in lockstep with the store in
  O(Δ) per batch.
* **Extendable dictionary encoding.**  When numpy is available the
  store keeps one growing ``int32`` code array per attribute (amortised
  doubling) plus the value -> code table of
  :mod:`repro.relation.columnar`, extended in place as new values
  arrive; NULL keeps the reserved code ``-1`` (the columnar null-mask
  convention).  :meth:`snapshot` re-densifies the live slice of those
  arrays into a first-occurrence-ordered
  :class:`~repro.relation.columnar.ColumnarRelation` and pre-seeds the
  snapshot's columnar cache — bit-identical to a fresh
  :meth:`ColumnarRelation.encode`, but without re-paying the Python
  per-row encoding pass.
* **Cache ownership.**  A :class:`DynamicRelation` never shares mutable
  state with the :class:`Relation` it was built from
  (:meth:`from_relation` copies the row list), and every mutation
  invalidates the cached snapshot, so stale reads through previously
  returned snapshots are impossible: old snapshots keep their own
  immutable rows and caches, new snapshots are rebuilt on demand.

Sliding-window semantics: with ``window=n`` every append beyond ``n``
live rows evicts the oldest live row through the regular delete path
(trackers observe the eviction as an ordinary delete).

**Memory model and compaction.**  Stable ids are bought with
tombstoning: evicted and deleted rows keep their slot in the row list
and their codes in the dynamic arrays, so without intervention a
long-running windowed stream holds O(total rows ever appended) state
even though only ``window`` rows are live.  *History compaction* caps
that: once the tombstone fraction exceeds ``compact_threshold``
(default 0.5; ``None`` disables) and at least ``compact_min`` rows have
been appended, the store re-bases the live rows to ids ``0 .. n-1``,
drops all dead history, and hands every tracker the old-id -> new-id
mapping through its ``_on_compact`` hook — order-preserving, so every
derived ``Counter`` insertion order (and with it score bit-identity) is
untouched.  Compaction only ever runs at the *end* of an
:meth:`append` / :meth:`delete` call, never mid-batch.  The one
caller-visible effect: row ids obtained before a compaction no longer
name the same rows afterwards, so callers that hold ids across batches
on a compacting store should re-derive them (the trackers do this
automatically; :attr:`compactions` counts the rebases).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.relation.chunked import assign_code
from repro.relation.relation import Relation, Row

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.stream.partition import IncrementalPartition
    from repro.stream.statistics import IncrementalFdStatistics

try:  # pragma: no cover - exercised by the no-numpy CI job
    import numpy as np
except ImportError:  # pragma: no cover
    np = None  # type: ignore[assignment]

#: Initial capacity of a dynamic code array (doubled on overflow).
_INITIAL_CAPACITY = 16


class _DynamicColumn:
    """One growing dictionary-encoded column of the dynamic store.

    ``codes[:length]`` holds the historical code of every appended row
    (``-1`` for NULL); ``values`` is the code -> value table in
    historical first-occurrence order.  Codes are never rewritten:
    deletions leave them in place (the live-row selection happens at
    snapshot time), and the code table only grows.
    """

    __slots__ = ("codes", "length", "mapping", "values")

    def __init__(self):
        self.codes = np.empty(_INITIAL_CAPACITY, dtype=np.int32)
        self.length = 0
        self.mapping: Dict[object, int] = {}
        self.values: List[object] = []

    def append(self, value: object) -> None:
        if self.length == self.codes.shape[0]:
            grown = np.empty(max(self.codes.shape[0] * 2, _INITIAL_CAPACITY), dtype=np.int32)
            grown[: self.length] = self.codes[: self.length]
            self.codes = grown
        self.codes[self.length] = assign_code(self.mapping, self.values, value)
        self.length += 1

    @property
    def cardinality(self) -> int:
        """Distinct non-NULL values ever appended (live or not)."""
        return len(self.values)

    def compact(self, live: "np.ndarray") -> None:
        """Keep only the codes of ``live`` (ascending historical ids).

        The value -> code table is retained as-is: codes stay valid, and
        the table is bounded by the distinct values of the data rather
        than by its row count.
        """
        self.codes = self.codes[: self.length][live].copy()
        self.length = int(self.codes.shape[0])


class DynamicRelation:
    """A bag relation supporting ``append`` / ``delete`` / sliding windows.

    Parameters
    ----------
    attributes:
        Ordered attribute names (validated exactly like :class:`Relation`).
    rows:
        Initial rows (appended with ids ``0 .. len(rows) - 1``).
    name:
        Name stamped on every snapshot (and therefore on every
        ``FdStatistics.relation_name`` derived from one).
    window:
        Optional sliding-window size: appends beyond ``window`` live rows
        evict the oldest live row through the delete path.
    compact_threshold:
        Tombstone fraction (dead / total appended) beyond which dead
        history is compacted away at the end of a mutation call
        (default 0.5; ``None`` disables auto-compaction).
    compact_min:
        Minimum total appended rows before auto-compaction is considered
        (default 256), so small relations keep fully stable ids.
    """

    def __init__(
        self,
        attributes: Sequence[str],
        rows: Iterable[Sequence[object]] = (),
        name: str = "",
        window: Optional[int] = None,
        compact_threshold: Optional[float] = 0.5,
        compact_min: int = 256,
    ):
        self._attributes: Tuple[str, ...] = tuple(attributes)
        if len(set(self._attributes)) != len(self._attributes):
            raise ValueError(f"duplicate attribute names in schema {self._attributes}")
        if window is not None and window < 1:
            raise ValueError(f"window must be >= 1, got {window}")
        if compact_threshold is not None and not 0.0 < compact_threshold <= 1.0:
            raise ValueError(
                f"compact_threshold must be in (0, 1] or None, got {compact_threshold}"
            )
        self.name = name
        self.window = window
        self.compact_threshold = compact_threshold
        self.compact_min = compact_min
        #: Number of history compactions performed so far.
        self.compactions = 0
        self._all_rows: List[Row] = []
        # Liveness is membership in this ordered id set; deleted rows keep
        # their slot in _all_rows (tombstoning by omission).
        self._live: Dict[int, None] = {}
        self._columns: Optional[List[_DynamicColumn]] = (
            [_DynamicColumn() for _ in self._attributes] if np is not None else None
        )
        self._trackers: List[object] = []
        self._snapshot_cache: Optional[Relation] = None
        self._positions_cache: Optional[Dict[int, int]] = None
        #: Monotone mutation counter: bumped on every append/delete/compact,
        #: so derived caches (e.g. an ``AfdSession``'s statistics cache)
        #: can cheaply detect *any* mutation, including out-of-band ones.
        self.version = 0
        self.append(rows)

    @classmethod
    def from_relation(
        cls, relation: Relation, window: Optional[int] = None, **options
    ) -> "DynamicRelation":
        """A dynamic view over a copy of ``relation``'s rows.

        The dynamic relation *owns* its store: it copies the row list and
        builds its own encoding, so mutations never reach the source
        relation or its cached columnar view / frequency caches.
        ``options`` (``compact_threshold`` / ``compact_min``) are
        forwarded to the constructor.
        """
        return cls(
            relation.attributes, relation.rows(), name=relation.name, window=window, **options
        )

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------
    @property
    def attributes(self) -> Tuple[str, ...]:
        return self._attributes

    @property
    def num_rows(self) -> int:
        """Number of *live* rows."""
        return len(self._live)

    def __len__(self) -> int:
        return len(self._live)

    def is_live(self, row_id: int) -> bool:
        return row_id in self._live

    def row(self, row_id: int) -> Row:
        """The value tuple of a row id (live or tombstoned)."""
        return self._all_rows[row_id]

    def live_ids(self) -> List[int]:
        """Live row ids in ascending (append) order."""
        return list(self._live)

    def live_items(self) -> Iterator[Tuple[int, Row]]:
        """``(row_id, row)`` pairs of the live rows, in ascending id order."""
        for row_id in self._live:
            yield row_id, self._all_rows[row_id]

    def live_positions(self) -> Dict[int, int]:
        """Row id -> snapshot position of every live row (cached per epoch)."""
        if self._positions_cache is None:
            self._positions_cache = {
                row_id: position for position, row_id in enumerate(self._live)
            }
        return self._positions_cache

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        label = self.name or "DynamicRelation"
        return (
            f"<{label}: {self.num_rows} live rows "
            f"({len(self._all_rows)} appended) x {len(self._attributes)} attributes>"
        )

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def append(self, rows: Iterable[Sequence[object]]) -> List[int]:
        """Append rows, returning their assigned ids (window may evict)."""
        arity = len(self._attributes)
        assigned: List[int] = []
        for row in rows:
            value_tuple = tuple(row)
            if len(value_tuple) != arity:
                raise ValueError(
                    f"row {value_tuple!r} has arity {len(value_tuple)}, "
                    f"expected {arity} for schema {self._attributes}"
                )
            row_id = len(self._all_rows)
            self._all_rows.append(value_tuple)
            self._live[row_id] = None
            if self._columns is not None:
                for column, value in zip(self._columns, value_tuple):
                    column.append(value)
            self._invalidate()
            for tracker in self._trackers:
                tracker._on_insert(row_id, value_tuple)
            assigned.append(row_id)
            if self.window is not None and len(self._live) > self.window:
                self._delete_one(next(iter(self._live)))
        # Compacting mid-loop would invalidate the ids already assigned
        # (and, in delete(), the ids the caller is still passing), so
        # auto-compaction only ever runs once the whole batch is applied;
        # the returned ids are re-based through the compaction mapping
        # (evicted rows keep their now-dead old id).
        mapping = self._maybe_compact()
        if mapping is not None:
            assigned = [mapping.get(row_id, row_id) for row_id in assigned]
        return assigned

    def delete(self, row_ids: Iterable[int]) -> None:
        """Tombstone live rows by id (raises on unknown or already-dead ids)."""
        for row_id in row_ids:
            self._delete_one(row_id)
        self._maybe_compact()

    def _delete_one(self, row_id: int) -> None:
        if row_id not in self._live:
            raise KeyError(f"row id {row_id} is not live (deleted, evicted, or never assigned)")
        del self._live[row_id]
        self._invalidate()
        row = self._all_rows[row_id]
        for tracker in self._trackers:
            tracker._on_delete(row_id, row)

    def _invalidate(self) -> None:
        self._snapshot_cache = None
        self._positions_cache = None
        self.version += 1

    # ------------------------------------------------------------------
    # History compaction
    # ------------------------------------------------------------------
    @property
    def tombstone_fraction(self) -> float:
        """Dead rows as a fraction of all rows ever appended."""
        total = len(self._all_rows)
        if total == 0:
            return 0.0
        return (total - len(self._live)) / total

    def _maybe_compact(self) -> Optional[Dict[int, int]]:
        if self.compact_threshold is None:
            return None
        total = len(self._all_rows)
        if total < self.compact_min:
            return None
        if (total - len(self._live)) / total <= self.compact_threshold:
            return None
        return self.compact()

    def compact(self) -> Dict[int, int]:
        """Drop dead history, re-basing live rows to ids ``0 .. n-1``.

        Returns the old-id -> new-id mapping of the surviving rows (also
        delivered to every tracker through its ``_on_compact`` hook).
        The re-basing preserves live order, so snapshots, partitions and
        every derived ``Counter`` insertion order are bit-identical
        before and after; only the id labels change.
        """
        mapping = {old: new for new, old in enumerate(self._live)}
        if self._columns is not None:
            live = np.fromiter(mapping, dtype=np.int64, count=len(mapping))
            for column in self._columns:
                column.compact(live)
        self._all_rows = [self._all_rows[old] for old in mapping]
        self._live = {new: None for new in range(len(mapping))}
        self._invalidate()
        for tracker in self._trackers:
            tracker._on_compact(mapping)
        self.compactions += 1
        return mapping

    # ------------------------------------------------------------------
    # Trackers
    # ------------------------------------------------------------------
    def track(self, fd) -> "IncrementalFdStatistics":
        """Maintain the sufficient statistics of ``fd`` under mutations.

        Tracker constructors self-register (direct construction works
        too); this method is the discoverable front door.
        """
        from repro.stream.statistics import IncrementalFdStatistics

        return IncrementalFdStatistics(self, fd)

    def track_partition(self, attributes, **options) -> "IncrementalPartition":
        """Maintain the stripped partition of ``attributes`` under mutations.

        ``options`` are forwarded to :class:`IncrementalPartition`
        (``rebuild_fraction`` / ``rebuild_min`` tune the cost model).
        """
        from repro.stream.partition import IncrementalPartition

        return IncrementalPartition(self, attributes, **options)

    def _register(self, tracker: object) -> None:
        """Subscribe a tracker to mutation deltas (called by constructors)."""
        self._trackers.append(tracker)

    def untrack(self, tracker: object) -> None:
        """Stop delivering deltas to a tracker."""
        self._trackers.remove(tracker)

    # ------------------------------------------------------------------
    # Snapshot
    # ------------------------------------------------------------------
    def snapshot(self) -> Relation:
        """The current live rows as an immutable :class:`Relation`.

        Cached until the next mutation.  When the dynamic encoding
        exists, the snapshot's columnar cache is pre-seeded from the
        live slice of the dynamic code arrays (see
        :func:`_redensify_column`), so ``snapshot().columnar()`` costs a
        few vectorised passes instead of the O(rows x attributes)
        Python encoding loop.
        """
        if self._snapshot_cache is None:
            relation = Relation(
                self._attributes,
                (self._all_rows[row_id] for row_id in self._live),
                name=self.name,
            )
            if self._columns is not None:
                relation._columnar_cache = self._columnar_view(relation)
            self._snapshot_cache = relation
        return self._snapshot_cache

    def _columnar_view(self, relation: Relation):
        """Re-densified columnar view of the live rows (numpy only)."""
        from repro.relation.columnar import ColumnarRelation

        live = np.fromiter(self._live, dtype=np.int64, count=len(self._live))
        columns = {
            attribute: _redensify_column(column, live)
            for attribute, column in zip(self._attributes, self._columns)
        }
        return ColumnarRelation(self._attributes, relation._rows, columns)


def _redensify_column(column: _DynamicColumn, live: "np.ndarray"):
    """First-occurrence re-densification of a dynamic column's live slice.

    Historical codes are first-occurrence-ordered over *all* appended
    rows; after deletions the live slice may skip codes entirely or
    first-encounter them in a different order.  This maps the live slice
    to exactly what :meth:`ColumnarRelation.encode` would assign on the
    snapshot: dense ``int32`` codes in live-first-occurrence order, NULL
    staying ``-1``, plus the matching decode table, first-occurrence
    positions and null count.
    """
    from repro.relation.columnar import NULL_CODE, _EncodedColumn

    historical = column.codes[: column.length][live]
    non_null = historical >= 0
    null_count = int(historical.shape[0] - np.count_nonzero(non_null))
    selected = historical if null_count == 0 else historical[non_null]
    unique, first, inverse = np.unique(selected, return_index=True, return_inverse=True)
    order = np.argsort(first, kind="stable")
    rank = np.empty(order.shape[0], dtype=np.int64)
    rank[order] = np.arange(order.shape[0], dtype=np.int64)
    dense = rank[inverse].astype(np.int32)
    if null_count == 0:
        codes = dense
        first_positions = first[order]
    else:
        codes = np.full(historical.shape[0], NULL_CODE, dtype=np.int32)
        codes[non_null] = dense
        first_positions = np.flatnonzero(non_null)[first[order]]
    values = [column.values[code] for code in unique[order].tolist()]
    return _EncodedColumn(codes, values, first_positions.tolist(), null_count)
