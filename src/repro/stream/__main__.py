"""Command-line entry point: ``python -m repro.stream``.

Replays a relation — a CSV file or a named RWD stand-in dataset — as a
stream and monitors the AFD scores of one FD over it: an initial prefix
seeds a :class:`DynamicRelation`, the remaining rows arrive in batches,
and after every batch the incrementally maintained statistics are
re-scored by the selected measures.  One JSON line per batch goes to
stdout (machine-readable monitoring feed); a human summary goes to
stderr.

Examples::

    # monitor zip -> city over your CSV, 100-row batches
    python -m repro.stream data.csv --fd "zip -> city" --batch-size 100

    # sliding 1000-row window over a named dataset, two measures
    python -m repro.stream --dataset R1 --rows 5000 --fd "icd_code -> icd_block" \\
        --window 1000 --measures g3,mu_plus

    # cross-check every batch against a full recompute (both backends agree)
    python -m repro.stream data.csv --fd "A -> B" --verify --backend numpy
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from typing import Dict, Iterator, List, Optional

from repro.core.registry import all_measures, select_measures
from repro.core.statistics import FdStatistics
from repro.relation.fd import FunctionalDependency
from repro.relation.io import read_csv
from repro.service.session import AfdSession
from repro.stream.dynamic import DynamicRelation
from repro.stream.statistics import assert_scores_identical

try:  # The named RWD datasets need numpy; CSV monitoring does not.
    from repro.rwd.datasets import build_dataset, dataset_keys
except ImportError:  # pragma: no cover - exercised by the no-numpy CI job
    build_dataset = None  # type: ignore[assignment]

    def dataset_keys():
        return ()


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.stream",
        description="Monitor AFD measure scores over a streamed relation.",
    )
    source = parser.add_mutually_exclusive_group(required=True)
    source.add_argument(
        "csv",
        nargs="?",
        default=None,
        help="relation CSV file (header row; empty/NULL/NA cells become NULL)",
    )
    source.add_argument(
        "--dataset",
        choices=dataset_keys(),
        help="named RWD stand-in dataset instead of a CSV file",
    )
    parser.add_argument(
        "--rows", type=int, default=2000, help="rows for --dataset relations (default: 2000)"
    )
    parser.add_argument(
        "--seed", type=int, default=0, help="seed for --dataset relations (default: 0)"
    )
    parser.add_argument(
        "--fd",
        required=True,
        help="the monitored FD, e.g. 'A,B -> C' (LHS/RHS must exist in the relation)",
    )
    parser.add_argument(
        "--initial",
        type=int,
        default=None,
        help="rows seeding the stream before the first batch "
        "(default: one batch worth)",
    )
    parser.add_argument(
        "--batch-size",
        type=int,
        default=100,
        help="rows appended per monitoring batch (default: 100)",
    )
    parser.add_argument(
        "--window",
        type=int,
        default=None,
        help="sliding-window size: older rows are evicted once the live "
        "relation exceeds this many rows (default: unbounded)",
    )
    parser.add_argument(
        "--measures",
        default=None,
        help="comma-separated measure names (default: all fourteen)",
    )
    parser.add_argument(
        "--expectation",
        choices=("exact", "monte-carlo"),
        default="monte-carlo",
        help="permutation-expectation strategy for RFI+/RFI'+ (default: monte-carlo)",
    )
    parser.add_argument(
        "--mc-samples",
        type=int,
        default=100,
        help="Monte-Carlo samples for the permutation expectation (default: 100)",
    )
    parser.add_argument(
        "--sfi-alpha", type=float, default=0.5, help="SFI smoothing parameter (default: 0.5)"
    )
    parser.add_argument(
        "--verify",
        action="store_true",
        help="cross-check every batch against a full recompute on the snapshot "
        "(exits non-zero on any divergence)",
    )
    parser.add_argument(
        "--backend",
        choices=("auto", "python", "numpy"),
        default=None,
        help="statistics backend used by --verify recomputes "
        "(default: process default)",
    )
    return parser


def monitor(
    relation,
    fd: FunctionalDependency,
    measures,
    batch_size: int,
    initial: Optional[int] = None,
    window: Optional[int] = None,
    verify: bool = False,
    backend: Optional[str] = None,
) -> Iterator[Dict[str, object]]:
    """Replay ``relation`` as a stream, scoring ``fd`` after every batch.

    A generator yielding one record per batch *as it is scored*, so the
    CLI's JSON-line feed is live rather than buffered until the end of
    the replay.  The replay is served by an
    :class:`~repro.service.AfdSession` over a
    :class:`DynamicRelation` — batch 0 snapshots the seeded prefix, each
    later batch is one :meth:`~repro.service.AfdSession.apply_delta` —
    and each yielded record is the flattened
    :class:`~repro.service.model.StreamUpdate` of that batch (the same
    JSON schema as before the service refactor).  Raises
    :class:`RuntimeError` when ``verify`` is set and any incremental
    score diverges from the from-scratch recompute.
    """
    rows = relation.rows()
    seed_count = min(batch_size if initial is None else initial, len(rows))
    dynamic = DynamicRelation(
        relation.attributes, rows[:seed_count], name=relation.name, window=window
    )
    session = AfdSession(dynamic, measures=dict(measures), backend=backend)
    fd_key = str(fd)
    # Batch 0 scores the seeded prefix; each later batch appends one chunk.
    batches: List[List] = [[]] + [
        rows[offset : offset + batch_size]
        for offset in range(seed_count, len(rows), batch_size)
    ]
    streamed = seed_count
    for batch_index, batch in enumerate(batches):
        if batch:
            update = session.apply_delta(inserts=batch)
            streamed += len(batch)
        else:
            update = session.snapshot_scores(fds=[fd])
        scores = update.scores[fd_key]
        record: Dict[str, object] = {
            "batch": batch_index,
            "streamed_rows": streamed,
            "live_rows": update.live_rows,
            "restricted_rows": update.restricted_rows[fd_key],
            "scores": scores,
            "incremental_seconds": update.seconds,
        }
        if verify:
            started = time.perf_counter()
            recomputed = FdStatistics.compute(dynamic.snapshot(), fd, backend=backend)
            reference = {
                name: measure.score_from_statistics(recomputed)
                for name, measure in measures.items()
            }
            record["recompute_seconds"] = time.perf_counter() - started
            assert_scores_identical(scores, reference, f"batch {batch_index}")
            record["verified"] = True
        yield record


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.batch_size < 1:
        print(f"--batch-size must be >= 1, got {args.batch_size}", file=sys.stderr)
        return 2
    if args.initial is not None and args.initial < 0:
        print(f"--initial must be >= 0, got {args.initial}", file=sys.stderr)
        return 2
    if args.dataset is not None:
        relation = build_dataset(args.dataset, num_rows=args.rows, seed=args.seed).relation
    else:
        relation = read_csv(args.csv)
    try:
        fd = FunctionalDependency.parse(args.fd)
    except ValueError as error:
        print(error, file=sys.stderr)
        return 2
    missing = [a for a in fd.attributes if a not in relation.attributes]
    if missing:
        print(
            f"FD refers to unknown attribute(s) {missing}; "
            f"available: {list(relation.attributes)}",
            file=sys.stderr,
        )
        return 2
    try:
        measures = select_measures(
            all_measures(
                expectation=args.expectation,
                mc_samples=args.mc_samples,
                sfi_alpha=args.sfi_alpha,
            ),
            args.measures,
        )
    except KeyError as error:
        print(error.args[0], file=sys.stderr)
        return 2
    started = time.perf_counter()
    batches = 0
    try:
        for record in monitor(
            relation,
            fd,
            measures,
            batch_size=args.batch_size,
            initial=args.initial,
            window=args.window,
            verify=args.verify,
            backend=args.backend,
        ):
            # Live feed: one JSON line per batch, flushed as it is scored.
            print(json.dumps(record, sort_keys=True), flush=True)
            batches += 1
    except RuntimeError as error:
        print(error, file=sys.stderr)
        return 1
    elapsed = time.perf_counter() - started
    verified = " (verified against recompute)" if args.verify else ""
    print(
        f"{relation.name or 'relation'}: monitored {fd} over {batches} batches "
        f"of {args.batch_size} rows"
        + (f", window {args.window}" if args.window else "")
        + f" in {elapsed:.2f}s{verified}",
        file=sys.stderr,
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
