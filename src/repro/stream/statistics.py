"""Delta-maintained sufficient statistics for one tracked FD.

A from-scratch :meth:`FdStatistics.compute` pays O(rows) per candidate:
NULL restriction, the joint ``(x, y)`` scan and the full-tuple scan all
walk the relation.  :class:`IncrementalFdStatistics` maintains exactly
the inputs of :meth:`FdStatistics.from_joint_counts` — the restricted
row count, the joint ``(x, y)`` multiplicities and the full-tuple
multiplicities — under inserts and deletes, so refreshing the statistics
after a batch of Δ mutations costs O(Δ) maintenance plus O(distinct)
re-assembly instead of O(rows).  All fourteen measures then score the
refreshed statistics exactly as they would a computed one.

**Bit-identity.**  Both statistics backends funnel through
``from_joint_counts``, whose ``Counter`` insertion orders pin down every
downstream floating-point summation order; matching them is therefore
sufficient for bit-identical (``==``) scores.  A from-scratch pass
inserts each key at its *first occurrence in live row order*, and
deletions can disturb that order in two ways the counts alone cannot
see: a key whose last copy dies must vanish, and a key whose **first**
live occurrence dies keeps its count but moves to a later row —
potentially behind keys it used to precede.  :class:`_OrderedCounts`
tracks, per key, the ascending list of its row ids with a lazily
advancing head pointer (amortised O(1) per deletion): appends of novel
keys keep the order sorted by construction (fresh ids exceed all live
ids), and only first-occurrence deletions mark the order dirty, paying
one O(k log k) re-sort at the next refresh.  NULL fall-through matches
the paper's semantics (Section VI-A): rows with a NULL on any FD
attribute never enter the counts at all.
"""

from __future__ import annotations

from collections import Counter
from typing import Callable, Dict, List, Mapping, Tuple

from repro.core.statistics import FdStatistics
from repro.relation.attribute import validate_attributes
from repro.relation.fd import FunctionalDependency
from repro.relation.relation import Row

#: Compact a key's id list once the dead prefix dominates it.
_COMPACT_MIN = 32


def assert_scores_identical(
    incremental: Mapping[str, float],
    recomputed: Mapping[str, float],
    context: str,
) -> None:
    """Raise :class:`RuntimeError` unless the score maps are ``==``-identical.

    The bit-identity cross-check shared by the streaming benchmark and
    the ``--verify`` mode of the monitoring CLI; the error names every
    diverging measure with both values.
    """
    if incremental == recomputed:
        return
    diverged = {
        name: (incremental[name], recomputed[name])
        for name in incremental
        if incremental[name] != recomputed[name]
    }
    raise RuntimeError(
        f"incremental scores diverged from recompute ({context}): {diverged}"
    )


class _OrderedCounts:
    """Multiplicities of a key family, recoverable in live-first-occurrence order.

    ``_counts`` doubles as the order book: its dict insertion order is
    the live-first-occurrence order whenever ``_dirty`` is false.
    ``_ids[key]`` is the ascending list of (not yet compacted) row ids
    carrying the key and ``_starts[key]`` indexes its first *live* id —
    the key's current first occurrence.
    """

    __slots__ = ("_counts", "_ids", "_starts", "_dirty")

    def __init__(self):
        self._counts: Dict[object, int] = {}
        self._ids: Dict[object, List[int]] = {}
        self._starts: Dict[object, int] = {}
        self._dirty = False

    def __len__(self) -> int:
        return len(self._counts)

    def add(self, key: object, row_id: int) -> None:
        count = self._counts.get(key)
        if count is None:
            # A novel key's first id exceeds every live id, so appending
            # it at the end of the dict keeps the order invariant.
            self._counts[key] = 1
            self._ids[key] = [row_id]
            self._starts[key] = 0
        else:
            self._counts[key] = count + 1
            self._ids[key].append(row_id)

    def remove(self, key: object, row_id: int, is_live: Callable[[int], bool]) -> None:
        count = self._counts[key] - 1
        if count == 0:
            # Dropping a whole key preserves the relative order of the rest.
            del self._counts[key]
            del self._ids[key]
            del self._starts[key]
            return
        self._counts[key] = count
        ids = self._ids[key]
        start = self._starts[key]
        if ids[start] != row_id:
            return  # not the first occurrence: order untouched
        start += 1
        while not is_live(ids[start]):
            start += 1
        if start >= _COMPACT_MIN and start * 2 > len(ids):
            del ids[:start]
            start = 0
        self._starts[key] = start
        self._dirty = True

    def remap(self, mapping: Mapping[int, int]) -> None:
        """Rewrite row ids after a history compaction.

        ``mapping`` (old id -> new id) is order-preserving and covers
        exactly the live rows, so each key's surviving ids stay
        ascending and its first live id keeps its relative rank — the
        ``ordered_counter`` output is bit-identical across the remap.
        Dead ids (absent from the mapping) are dropped, which also
        resets the lazily advanced head pointers.
        """
        for key, ids in self._ids.items():
            start = self._starts[key]
            self._ids[key] = [mapping[i] for i in ids[start:] if i in mapping]
            self._starts[key] = 0

    def ordered_counter(self) -> Counter:
        """The counts as a ``Counter`` in live-first-occurrence insertion order."""
        if self._dirty:
            order = sorted(self._counts, key=lambda key: self._ids[key][self._starts[key]])
            self._counts = {key: self._counts[key] for key in order}
            self._dirty = False
        # C-level dict copy; a fresh Counter's update() takes the fast
        # mapping path and preserves the source insertion order.
        return Counter(self._counts)


class IncrementalFdStatistics:
    """Sufficient statistics of one FD, maintained under inserts/deletes.

    Create via :meth:`DynamicRelation.track` (or directly — the
    constructor self-registers for mutation deltas).
    :meth:`statistics` assembles a fresh
    :class:`FdStatistics` bit-identical to
    ``FdStatistics.compute(dynamic.snapshot(), fd)`` on either backend.
    """

    def __init__(self, dynamic, fd: FunctionalDependency):
        validate_attributes(fd.attributes, dynamic.attributes, "tracked FD")
        self.fd = fd
        self._dynamic = dynamic
        attribute_positions = {a: i for i, a in enumerate(dynamic.attributes)}
        self._lhs_indices: Tuple[int, ...] = tuple(attribute_positions[a] for a in fd.lhs)
        self._rhs_indices: Tuple[int, ...] = tuple(attribute_positions[a] for a in fd.rhs)
        self._fd_indices: Tuple[int, ...] = tuple(
            attribute_positions[a] for a in fd.attributes
        )
        self._num_rows = 0
        self._xy = _OrderedCounts()
        self._full = _OrderedCounts()
        for row_id, row in dynamic.live_items():
            self._on_insert(row_id, row)
        dynamic._register(self)

    @property
    def num_rows(self) -> int:
        """Live rows that are non-NULL on every FD attribute."""
        return self._num_rows

    # ------------------------------------------------------------------
    # Delta application (called by DynamicRelation)
    # ------------------------------------------------------------------
    def _on_insert(self, row_id: int, row: Row) -> None:
        for index in self._fd_indices:
            if row[index] is None:
                return  # NULL fall-through: the restricted relation never sees it
        self._num_rows += 1
        x = tuple(row[i] for i in self._lhs_indices)
        y = tuple(row[i] for i in self._rhs_indices)
        self._xy.add((x, y), row_id)
        self._full.add(row, row_id)

    def _on_delete(self, row_id: int, row: Row) -> None:
        for index in self._fd_indices:
            if row[index] is None:
                return
        self._num_rows -= 1
        is_live = self._dynamic.is_live
        x = tuple(row[i] for i in self._lhs_indices)
        y = tuple(row[i] for i in self._rhs_indices)
        self._xy.remove((x, y), row_id, is_live)
        self._full.remove(row, row_id, is_live)

    def _on_compact(self, mapping: Mapping[int, int]) -> None:
        """Rewrite id-keyed state after a history compaction (O(live))."""
        self._xy.remap(mapping)
        self._full.remap(mapping)

    # ------------------------------------------------------------------
    # Assembly
    # ------------------------------------------------------------------
    def statistics(self) -> FdStatistics:
        """A fresh :class:`FdStatistics` over the current live rows.

        O(distinct) assembly through the same
        :meth:`FdStatistics.from_joint_counts` constructor both backends
        use, with the same ``Counter`` contents in the same insertion
        order — every measure therefore scores the result bit-identically
        (``==``) to a from-scratch ``compute()`` on the snapshot.
        """
        return FdStatistics.from_joint_counts(
            self.fd,
            self._num_rows,
            self._xy.ordered_counter(),
            self._full.ordered_counter(),
            relation_name=self._dynamic.name,
        )
