"""``python -m repro.serve`` — start the concurrent AFD profiling server.

A thin executable alias of :mod:`repro.service.server`; see that module
for the endpoint table and payload schemas.

Example::

    python -m repro.serve --port 8765 --backend numpy
"""

from repro.service.server import build_parser, main  # noqa: F401 - re-export

if __name__ == "__main__":
    import sys

    sys.exit(main())
