"""Repository-root pytest bootstrap.

Makes ``python -m pytest`` work from a bare checkout without installing
the package or exporting ``PYTHONPATH``: the src-layout package directory
is put on ``sys.path`` before test collection.  (``pyproject.toml`` sets
``tool.pytest.ini_options.pythonpath`` for pytest >= 7; this file covers
older pytest and direct ``python -m pytest`` invocations uniformly.)
"""

import os
import sys

_SRC = os.path.join(os.path.dirname(os.path.abspath(__file__)), "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)
