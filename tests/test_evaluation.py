"""Tests of the ranking metrics and the parallel evaluation harness."""

import math

import pytest

from repro.core import registry
from repro.evaluation import (
    MeasureConfig,
    TableScore,
    evaluate_benchmark,
    evaluate_specs,
    normalized_rank_at_max_recall,
    pr_auc,
    precision_recall_points,
    rank_at_max_recall,
    ranking_summary,
    separation,
)
from repro.evaluation.harness import EvaluationResult
from repro.synthetic import benchmark_specs, build_err_benchmark

FAST_CONFIG = MeasureConfig(expectation="monte-carlo", mc_samples=20)


# ----------------------------------------------------------------------
# PR-AUC on known rankings
# ----------------------------------------------------------------------
def test_pr_auc_perfect_ranking_is_one():
    assert pr_auc([1, 1, 0, 0], [0.9, 0.8, 0.7, 0.6]) == pytest.approx(1.0)


def test_pr_auc_inverted_ranking_known_value():
    # Positives ranked last: points (0, 0), (0, 0), (0.5, 1/3), (1.0, 0.5),
    # anchored at (0, 0): area = 0.5 * (0 + 1/3)/2 + 0.5 * (1/3 + 1/2)/2 = 7/24.
    assert pr_auc([0, 0, 1, 1], [0.9, 0.8, 0.7, 0.6]) == pytest.approx(7 / 24)


def test_pr_auc_interleaved_ranking_known_value():
    # Hand-computed trapezoid: anchor (0,1), (0.5,1), (0.5,0.5), (1,2/3), (1,0.5).
    assert pr_auc([1, 0, 1, 0], [0.9, 0.8, 0.7, 0.6]) == pytest.approx(
        0.5 * 1.0 + 0.5 * (0.5 + 2 / 3) / 2
    )


def test_pr_auc_all_tied_degenerates_to_prevalence():
    assert pr_auc([1, 0, 1, 0], [0.5, 0.5, 0.5, 0.5]) == pytest.approx(0.5)
    assert pr_auc([1, 0, 0, 0], [0.5, 0.5, 0.5, 0.5]) == pytest.approx(0.25)


def test_pr_auc_is_tie_order_invariant():
    labels = [1, 0, 1, 0, 1]
    scores = [0.9, 0.9, 0.9, 0.2, 0.1]
    shuffled_labels = [0, 1, 1, 0, 1]  # same multiset within the tied block
    assert pr_auc(labels, scores) == pytest.approx(pr_auc(shuffled_labels, scores))


def test_pr_curve_points_start_at_recall_zero():
    points = precision_recall_points([1, 0], [0.9, 0.1])
    assert points == [(0.0, 1.0), (1.0, 1.0), (1.0, 0.5)]


def test_pr_auc_requires_positives():
    with pytest.raises(ValueError):
        pr_auc([0, 0], [0.5, 0.4])


# ----------------------------------------------------------------------
# Rank at max recall and separation
# ----------------------------------------------------------------------
def test_rank_at_max_recall_known_values():
    assert rank_at_max_recall([1, 1, 0, 0], [0.9, 0.8, 0.7, 0.6]) == 2
    assert rank_at_max_recall([1, 0, 1, 0], [0.9, 0.8, 0.7, 0.6]) == 3
    assert rank_at_max_recall([0, 0, 1, 1], [0.9, 0.8, 0.7, 0.6]) == 4


def test_rank_at_max_recall_counts_ties_pessimistically():
    assert rank_at_max_recall([1, 0, 0, 0], [0.5, 0.5, 0.5, 0.5]) == 4


def test_normalized_rank_at_max_recall():
    assert normalized_rank_at_max_recall([1, 0, 1, 0], [0.9, 0.8, 0.7, 0.6]) == 0.75


def test_separation_sign_reflects_separability():
    assert separation([1, 1, 0, 0], [0.9, 0.8, 0.7, 0.6]) == pytest.approx(0.1)
    assert separation([1, 0, 1, 0], [0.9, 0.8, 0.7, 0.6]) == pytest.approx(-0.1)


# ----------------------------------------------------------------------
# NaN-safe ranking summaries on degenerate label sets
# ----------------------------------------------------------------------
def test_ranking_summary_on_mixed_labels_matches_strict_metrics():
    labels, scores = [1, 0, 1, 0], [0.9, 0.8, 0.7, 0.6]
    summary = ranking_summary(labels, scores)
    assert summary["pr_auc"] == pytest.approx(pr_auc(labels, scores))
    assert summary["rank_at_max_recall"] == rank_at_max_recall(labels, scores)
    assert summary["separation"] == pytest.approx(separation(labels, scores))


def test_ranking_summary_all_negative_is_nan_not_a_crash():
    summary = ranking_summary([0, 0, 0], [0.9, 0.5, 0.1])
    for metric in (
        "pr_auc",
        "rank_at_max_recall",
        "normalized_rank_at_max_recall",
        "separation",
    ):
        assert math.isnan(summary[metric]), metric


def test_ranking_summary_all_positive_keeps_defined_metrics():
    summary = ranking_summary([1, 1, 1], [0.9, 0.5, 0.1])
    assert summary["pr_auc"] == pytest.approx(1.0)
    assert summary["rank_at_max_recall"] == 3.0
    assert math.isnan(summary["separation"])  # no negative to separate from


def _degenerate_result(positive):
    rows = [
        TableScore(
            table=f"t{index}",
            benchmark="DEGEN",
            step=0,
            index=index,
            positive=positive,
            parameter_value=0.0,
            num_rows=10,
            statistics_seconds=0.0,
            scores={"g3": 0.5 + 0.1 * index},
            runtimes={"g3": 0.001},
        )
        for index in range(3)
    ]
    return EvaluationResult(
        benchmark="DEGEN", parameter_name="none", measure_names=["g3"], rows=rows
    )


@pytest.mark.parametrize("positive", [True, False])
def test_summary_of_degenerate_benchmark_does_not_raise(positive):
    summary = _degenerate_result(positive).summary()
    entry = summary["g3"]
    assert math.isnan(entry["separation"])
    if positive:
        assert entry["pr_auc"] == pytest.approx(1.0)
    else:
        assert math.isnan(entry["pr_auc"])
    assert entry["total_seconds"] == pytest.approx(0.003)


# ----------------------------------------------------------------------
# Extra-measure registry accessor (worker-initializer contract)
# ----------------------------------------------------------------------
def test_extra_measure_factories_returns_a_snapshot():
    def factory():  # pragma: no cover - never built
        raise AssertionError

    registry.register_measure("extra_test_measure", factory)
    try:
        snapshot = registry.extra_measure_factories()
        assert snapshot["extra_test_measure"] is factory
        snapshot.pop("extra_test_measure")  # mutating the copy...
        assert "extra_test_measure" in registry.extra_measure_factories()  # ...is isolated
    finally:
        registry.unregister_measure("extra_test_measure")
    assert "extra_test_measure" not in registry.extra_measure_factories()


# ----------------------------------------------------------------------
# Harness end to end
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def tiny_specs():
    return benchmark_specs("err", steps=2, tables_per_step=2, max_rows=300)


def test_evaluate_specs_scores_all_fourteen_measures(tiny_specs):
    result = evaluate_specs(tiny_specs, FAST_CONFIG, jobs=1)
    assert len(result.measure_names) == 14
    assert len(result.rows) == len(tiny_specs)
    assert sum(result.labels()) == len(tiny_specs) // 2
    summary = result.summary()
    for metrics in summary.values():
        assert 0.0 <= metrics["pr_auc"] <= 1.0
        assert metrics["rank_at_max_recall"] >= len(tiny_specs) // 2


def test_parallel_scores_identical_to_sequential(tiny_specs):
    sequential = evaluate_specs(tiny_specs, FAST_CONFIG, jobs=1)
    parallel = evaluate_specs(tiny_specs, FAST_CONFIG, jobs=2)
    for row_a, row_b in zip(sequential.rows, parallel.rows):
        assert row_a.table == row_b.table
        assert row_a.scores == row_b.scores  # bit-identical floats


def test_step_curves_cover_all_steps(tiny_specs):
    result = evaluate_specs(tiny_specs, FAST_CONFIG, jobs=1)
    curves = result.step_curves()
    assert set(curves) == set(result.measure_names)
    for points in curves.values():
        assert [point["step"] for point in points] == [0.0, 1.0]
        for point in points:
            assert 0.0 <= point["mean_positive_score"] <= 1.0


def test_evaluate_benchmark_matches_evaluate_specs(tiny_specs):
    benchmark = build_err_benchmark(steps=2, tables_per_step=2, max_rows=300)
    eager = evaluate_benchmark(benchmark, FAST_CONFIG)
    from_specs = evaluate_specs(tiny_specs, FAST_CONFIG, jobs=1)
    for row_a, row_b in zip(eager.rows, from_specs.rows):
        assert row_a.scores == row_b.scores


def test_zero_error_positives_score_one_on_exactness_measures(tiny_specs):
    result = evaluate_specs(tiny_specs, FAST_CONFIG, jobs=1)
    for row in result.rows:
        if row.positive and row.parameter_value == 0.0:
            assert row.scores["g3"] == 1.0
            assert row.scores["mu_plus"] == 1.0
