"""Tests for ``repro.analysis`` — the static invariant checkers.

Fixture-based positive/negative snippets per checker (bad code must
produce exactly the expected finding code at the expected line, clean
code must stay silent), suppression-comment and allowlist round trips,
the wire-schema freeze regression (any unversioned field/route edit
trips RPR104), CLI exit-code behaviour, and the acceptance property:
the repo itself analyses clean.
"""

import json
import shutil
import textwrap
from pathlib import Path

import pytest

from repro.analysis import (
    CHECKERS,
    AnalysisConfigError,
    AnalysisRun,
    extract_wire_schema,
    load_allowlist,
    suppressed_codes,
    update_lock,
)
from repro.analysis.__main__ import main as analysis_main
from repro.analysis.schema_lock import SchemaExtractionError

REPO_ROOT = Path(__file__).resolve().parents[1]


# ----------------------------------------------------------------------
# Helpers
# ----------------------------------------------------------------------
def make_repo(tmp_path, files):
    """A throwaway repo root with the given ``rel -> source`` files."""
    root = tmp_path / "repo"
    (root / "src" / "repro").mkdir(parents=True)
    (root / "pyproject.toml").write_text("[project]\nname='x'\n")
    for rel, content in files.items():
        path = root / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(content))
    return root


def findings_for(root, **kwargs):
    return AnalysisRun(root, **kwargs).run()


def codes_and_lines(report):
    return [(f.code, f.path, f.line) for f in report.findings]


def finding_codes(report):
    return [f.code for f in report.findings]


# ----------------------------------------------------------------------
# Framework: suppressions, allowlist, registry
# ----------------------------------------------------------------------
def test_registry_ships_five_checkers():
    assert len(CHECKERS) >= 5
    assert set(CHECKERS) >= {"RPR101", "RPR102", "RPR103", "RPR104", "RPR105"}
    for code, checker in CHECKERS.items():
        assert checker.code == code
        assert checker.name and checker.description


def test_suppression_comment_parsing():
    assert suppressed_codes("x = 1  # repro: allow[RPR101]") == {"RPR101"}
    assert suppressed_codes("x = 1  # repro: allow[RPR101, RPR102]") == {
        "RPR101",
        "RPR102",
    }
    assert suppressed_codes("x = 1  # just a comment") == frozenset()
    assert suppressed_codes("") == frozenset()


def test_inline_suppression_moves_finding_out_of_report(tmp_path):
    root = make_repo(
        tmp_path,
        {"src/repro/util.py": "import numpy as np  # repro: allow[RPR101]\n"},
    )
    report = findings_for(root)
    assert report.clean
    assert [f.code for f in report.suppressed] == ["RPR101"]


def test_suppression_of_wrong_code_does_not_apply(tmp_path):
    root = make_repo(
        tmp_path,
        {"src/repro/util.py": "import numpy as np  # repro: allow[RPR102]\n"},
    )
    report = findings_for(root)
    assert finding_codes(report) == ["RPR101"]


def test_allowlist_entry_explains_finding(tmp_path):
    root = make_repo(tmp_path, {"src/repro/util.py": "import numpy as np\n"})
    (root / "analysis-allowlist.json").write_text(
        json.dumps(
            {
                "entries": [
                    {
                        "code": "RPR101",
                        "path": "src/repro/util.py",
                        "justification": "fixture module is numpy-only by design",
                    }
                ]
            }
        )
    )
    report = findings_for(root)
    assert report.clean
    assert [f.code for f in report.allowlisted] == ["RPR101"]


def test_allowlist_without_justification_is_config_error(tmp_path):
    root = make_repo(tmp_path, {"src/repro/util.py": "import numpy as np\n"})
    (root / "analysis-allowlist.json").write_text(
        json.dumps(
            {"entries": [{"code": "RPR101", "path": "src/repro/util.py", "justification": "  "}]}
        )
    )
    with pytest.raises(AnalysisConfigError, match="justification"):
        findings_for(root)


def test_malformed_allowlist_is_config_error(tmp_path):
    root = make_repo(tmp_path, {"src/repro/util.py": "x = 1\n"})
    (root / "analysis-allowlist.json").write_text("{not json")
    with pytest.raises(AnalysisConfigError):
        findings_for(root)
    (root / "analysis-allowlist.json").write_text(json.dumps({"entries": [{"code": "RPR101"}]}))
    with pytest.raises(AnalysisConfigError, match="missing"):
        findings_for(root)


def test_stale_allowlist_entry_is_a_finding(tmp_path):
    root = make_repo(tmp_path, {"src/repro/util.py": "x = 1\n"})
    (root / "analysis-allowlist.json").write_text(
        json.dumps(
            {
                "entries": [
                    {
                        "code": "RPR101",
                        "path": "src/repro/gone.py",
                        "justification": "this module was deleted",
                    }
                ]
            }
        )
    )
    report = findings_for(root)
    assert finding_codes(report) == ["RPR100"]
    assert "stale allowlist entry" in report.findings[0].message


def test_missing_allowlist_means_no_entries(tmp_path):
    assert load_allowlist(tmp_path / "nope.json") == []


def test_unparsable_file_is_rpr100(tmp_path):
    root = make_repo(tmp_path, {"src/repro/broken.py": "def f(:\n"})
    report = findings_for(root)
    assert finding_codes(report) == ["RPR100"]


def test_unknown_checker_selection_is_config_error(tmp_path):
    root = make_repo(tmp_path, {"src/repro/util.py": "x = 1\n"})
    with pytest.raises(AnalysisConfigError, match="RPR999"):
        AnalysisRun(root, checkers=["RPR999"])


# ----------------------------------------------------------------------
# RPR101 — unguarded numpy
# ----------------------------------------------------------------------
def test_rpr101_bare_module_import_flagged(tmp_path):
    root = make_repo(tmp_path, {"src/repro/util.py": "import numpy as np\n"})
    assert codes_and_lines(findings_for(root, checkers=["RPR101"])) == [
        ("RPR101", "src/repro/util.py", 1)
    ]


def test_rpr101_from_import_flagged(tmp_path):
    root = make_repo(tmp_path, {"src/repro/util.py": "from numpy import float64\n"})
    assert finding_codes(findings_for(root, checkers=["RPR101"])) == ["RPR101"]


def test_rpr101_guarded_import_clean(tmp_path):
    root = make_repo(
        tmp_path,
        {
            "src/repro/util.py": """\
            try:
                import numpy as np
            except ImportError:
                np = None
            """
        },
    )
    assert findings_for(root, checkers=["RPR101"]).clean


def test_rpr101_lazy_function_import_clean(tmp_path):
    root = make_repo(
        tmp_path,
        {
            "src/repro/util.py": """\
            def build():
                import numpy as np
                return np.zeros(3)
            """
        },
    )
    assert findings_for(root, checkers=["RPR101"]).clean


def test_rpr101_import_in_except_handler_is_not_guarded(tmp_path):
    root = make_repo(
        tmp_path,
        {
            "src/repro/util.py": """\
            try:
                x = 1
            except ValueError:
                import numpy as np
            """
        },
    )
    assert finding_codes(findings_for(root, checkers=["RPR101"])) == ["RPR101"]


# ----------------------------------------------------------------------
# RPR102 — nondeterminism in bit-identity modules
# ----------------------------------------------------------------------
def test_rpr102_random_import_in_core_flagged(tmp_path):
    root = make_repo(tmp_path, {"src/repro/core/x.py": "import random\n"})
    assert finding_codes(findings_for(root, checkers=["RPR102"])) == ["RPR102"]


def test_rpr102_same_code_outside_contract_packages_clean(tmp_path):
    root = make_repo(tmp_path, {"src/repro/experiments/x.py": "import random\n"})
    assert findings_for(root, checkers=["RPR102"]).clean


def test_rpr102_set_iteration_flagged_sorted_clean(tmp_path):
    root = make_repo(
        tmp_path,
        {
            "src/repro/relation/x.py": """\
            def f(values):
                for v in set(values):
                    yield v

            def g(values):
                return sorted(set(values))

            def h(values, probe):
                return probe in set(values)
            """
        },
    )
    assert codes_and_lines(findings_for(root, checkers=["RPR102"])) == [
        ("RPR102", "src/repro/relation/x.py", 2)
    ]


def test_rpr102_list_of_set_and_comprehension_flagged(tmp_path):
    root = make_repo(
        tmp_path,
        {
            "src/repro/stream/x.py": """\
            def f(values):
                return list(set(values))

            def g(values):
                return [v for v in {1, 2, 3}]
            """
        },
    )
    report = findings_for(root, checkers=["RPR102"])
    assert finding_codes(report) == ["RPR102", "RPR102"]


def test_rpr102_wall_clock_flagged_monotonic_clean(tmp_path):
    root = make_repo(
        tmp_path,
        {
            "src/repro/discovery/x.py": """\
            import time

            def f():
                return time.time()

            def g():
                return time.perf_counter()
            """
        },
    )
    assert codes_and_lines(findings_for(root, checkers=["RPR102"])) == [
        ("RPR102", "src/repro/discovery/x.py", 4)
    ]


def test_rpr102_os_listdir_flagged(tmp_path):
    root = make_repo(
        tmp_path,
        {"src/repro/core/x.py": "import os\n\ndef f(p):\n    return os.listdir(p)\n"},
    )
    assert finding_codes(findings_for(root, checkers=["RPR102"])) == ["RPR102"]


def test_rpr102_unseeded_rng_flagged_seeded_clean(tmp_path):
    root = make_repo(
        tmp_path,
        {
            "src/repro/core/x.py": """\
            def f(np, seed):
                good = np.random.default_rng(seed)
                bad = np.random.default_rng()
                return good, bad
            """
        },
    )
    assert codes_and_lines(findings_for(root, checkers=["RPR102"])) == [
        ("RPR102", "src/repro/core/x.py", 3)
    ]


def test_rpr102_global_state_rng_flagged(tmp_path):
    root = make_repo(
        tmp_path,
        {"src/repro/core/x.py": "def f(np):\n    return np.random.shuffle([1])\n"},
    )
    assert finding_codes(findings_for(root, checkers=["RPR102"])) == ["RPR102"]


# ----------------------------------------------------------------------
# RPR103 — lock discipline
# ----------------------------------------------------------------------
_LOCKED_CLASS = """\
import threading


class Box:
    def __init__(self):
        self._lock = threading.Lock()
        self._value = 0
        self._items = {}

    def locked_mutation(self):
        with self._lock:
            self._value += 1
            self._helper()

    def _helper(self):
        self._items["k"] = self._value
"""


def test_rpr103_mutation_under_lock_and_lock_held_helper_clean(tmp_path):
    root = make_repo(tmp_path, {"src/repro/service/x.py": _LOCKED_CLASS})
    assert findings_for(root, checkers=["RPR103"]).clean


def test_rpr103_unlocked_mutation_flagged(tmp_path):
    root = make_repo(
        tmp_path,
        {"src/repro/service/x.py": _LOCKED_CLASS + "\n    def bad(self):\n        self._value = 5\n"},
    )
    report = findings_for(root, checkers=["RPR103"])
    assert len(report.findings) == 1
    assert "Box.bad" in report.findings[0].message


def test_rpr103_helper_called_from_unlocked_context_flagged(tmp_path):
    root = make_repo(
        tmp_path,
        {
            "src/repro/service/x.py": _LOCKED_CLASS
            + "\n    def sneaky(self):\n        self._helper()\n"
        },
    )
    report = findings_for(root, checkers=["RPR103"])
    # _helper now has an unprotected call site, so its mutation is flagged.
    assert len(report.findings) == 1
    assert "Box._helper" in report.findings[0].message


def test_rpr103_subscript_and_delete_mutations_covered(tmp_path):
    root = make_repo(
        tmp_path,
        {
            "src/repro/service/x.py": """\
            import threading


            class Box:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._items = {}

                def bad_subscript(self):
                    self._items["k"] = 1

                def bad_delete(self):
                    del self._items
            """
        },
    )
    report = findings_for(root, checkers=["RPR103"])
    assert finding_codes(report) == ["RPR103", "RPR103"]


def test_rpr103_lockless_class_not_checked(tmp_path):
    root = make_repo(
        tmp_path,
        {
            "src/repro/service/x.py": """\
            class Plain:
                def __init__(self):
                    self._value = 0

                def bump(self):
                    self._value += 1
            """
        },
    )
    assert findings_for(root, checkers=["RPR103"]).clean


def test_rpr103_loop_confined_class_must_stay_threading_free(tmp_path):
    root = make_repo(
        tmp_path,
        {
            "src/repro/service/x.py": """\
            import threading


            class ShardDispatcher:
                def __init__(self):
                    self.guard = threading.Lock()
            """
        },
    )
    report = findings_for(root, checkers=["RPR103"])
    assert finding_codes(report) == ["RPR103"]
    assert "loop-confined" in report.findings[0].message


def test_rpr103_nested_closure_inside_lock_is_protected(tmp_path):
    root = make_repo(
        tmp_path,
        {
            "src/repro/service/x.py": """\
            import threading


            class Box:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._cache = {}

                def run(self, engine):
                    with self._lock:
                        def provider(key):
                            self._cache[key] = True
                            return self._cache[key]
                        return engine(provider)
            """
        },
    )
    assert findings_for(root, checkers=["RPR103"]).clean


# ----------------------------------------------------------------------
# RPR104 — wire-schema freeze
# ----------------------------------------------------------------------
def make_service_repo(tmp_path):
    """A fixture root carrying verbatim copies of the real service files."""
    root = make_repo(tmp_path, {})
    for rel in ("src/repro/service/model.py", "src/repro/service/server.py"):
        target = root / rel
        target.parent.mkdir(parents=True, exist_ok=True)
        shutil.copyfile(REPO_ROOT / rel, target)
    return root


def rpr104_findings(root):
    report = AnalysisRun(root, checkers=["RPR104"]).run()
    return report.findings


def test_rpr104_missing_lock_is_a_finding(tmp_path):
    root = make_service_repo(tmp_path)
    findings = rpr104_findings(root)
    assert [f.code for f in findings] == ["RPR104"]
    assert "no schemas.lock.json" in findings[0].message


def test_rpr104_update_lock_round_trip_is_clean(tmp_path):
    root = make_service_repo(tmp_path)
    message = update_lock(root, root / "schemas.lock.json")
    assert "froze wire schema version" in message
    assert rpr104_findings(root) == []
    # Idempotent: a second run reports the match, changes nothing.
    assert "already matches" in update_lock(root, root / "schemas.lock.json")


def _edit(root, rel, old, new, count=1):
    path = root / rel
    text = path.read_text()
    assert text.count(old) >= count, f"fixture drift: {old!r} not in {rel}"
    path.write_text(text.replace(old, new, count))


@pytest.mark.parametrize(
    "old, new, expect",
    [
        # Adding a field to a record without a bump.
        ("    epoch: int = 0\n\n    @property\n    def fd(self)",
         "    epoch: int = 0\n    shard: int = 0\n\n    @property\n    def fd(self)",
         "was added"),
        # Removing a field.
        ("    cache_hit: bool = False\n", "", "was removed"),
        # Retyping a field.
        ("    num_rows: int\n", "    num_rows: float\n", "retyped"),
    ],
)
def test_rpr104_unversioned_model_drift_trips(tmp_path, old, new, expect):
    root = make_service_repo(tmp_path)
    update_lock(root, root / "schemas.lock.json")
    _edit(root, "src/repro/service/model.py", old, new)
    findings = rpr104_findings(root)
    assert findings, "drift went undetected"
    assert all(f.code == "RPR104" for f in findings)
    assert any(expect in f.message for f in findings)
    assert all("SCHEMA_VERSION bump" in f.message for f in findings)


def test_rpr104_route_edit_trips(tmp_path):
    root = make_service_repo(tmp_path)
    update_lock(root, root / "schemas.lock.json")
    _edit(
        root,
        "src/repro/service/server.py",
        'Route("GET", "/v1/healthz", "healthz"),',
        'Route("GET", "/v1/healthz", "healthz"),\n    Route("GET", "/v1/ping", "healthz"),',
    )
    findings = rpr104_findings(root)
    assert [f.code for f in findings] == ["RPR104"]
    assert "GET /v1/ping" in findings[0].message
    assert findings[0].path == "src/repro/service/server.py"


def test_rpr104_error_code_edit_trips(tmp_path):
    root = make_service_repo(tmp_path)
    update_lock(root, root / "schemas.lock.json")
    _edit(
        root,
        "src/repro/service/model.py",
        '"internal_error": "unexpected server-side failure",',
        '"internal_error": "unexpected server-side failure",\n    "teapot": "short and stout",',
    )
    findings = rpr104_findings(root)
    assert [f.code for f in findings] == ["RPR104"]
    assert "ERROR_CODES" in findings[0].message


def test_rpr104_version_bump_asks_for_refreeze_then_clean(tmp_path):
    root = make_service_repo(tmp_path)
    lock = root / "schemas.lock.json"
    update_lock(root, lock)
    _edit(root, "src/repro/service/model.py", "SCHEMA_VERSION = 1", "SCHEMA_VERSION = 2")
    _edit(root, "src/repro/service/model.py", "    cache_hit: bool = False\n", "")
    findings = rpr104_findings(root)
    assert [f.code for f in findings] == ["RPR104"]
    assert "refresh it" in findings[0].message
    # The bump authorises the re-freeze; afterwards the tree is clean.
    update_lock(root, lock)
    assert rpr104_findings(root) == []


def test_rpr104_update_lock_refuses_unversioned_drift(tmp_path):
    root = make_service_repo(tmp_path)
    lock = root / "schemas.lock.json"
    update_lock(root, lock)
    _edit(root, "src/repro/service/model.py", "    cache_hit: bool = False\n", "")
    with pytest.raises(SchemaExtractionError, match="bump"):
        update_lock(root, lock)
    # --force overrides (documented escape hatch for pre-freeze drift).
    update_lock(root, lock, force=True)
    assert rpr104_findings(root) == []


def test_extract_wire_schema_matches_runtime_model():
    """The AST extraction agrees with the importable truth."""
    from dataclasses import fields

    from repro.service import model as model_module
    from repro.service.server import ROUTES

    schema, _ = extract_wire_schema(REPO_ROOT)
    assert schema["schema_version"] == model_module.SCHEMA_VERSION
    assert schema["error_codes"] == sorted(model_module.ERROR_CODES)
    for name, extracted in schema["records"].items():
        runtime = {f.name for f in fields(getattr(model_module, name))}
        assert set(extracted) == runtime, name
    assert len(schema["routes"]) == len(ROUTES)
    for row, route in zip(schema["routes"], ROUTES):
        assert row["method"] == route.method
        assert row["pattern"] == route.pattern
        assert row["op"] == route.op
        assert row["deprecated"] == route.deprecated
        assert row["successor"] == route.successor


# ----------------------------------------------------------------------
# RPR105 — obs conventions
# ----------------------------------------------------------------------
def test_rpr105_naming_regime(tmp_path):
    root = make_repo(
        tmp_path,
        {
            "src/repro/service/x.py": """\
            def f(registry):
                registry.inc("requests")
                registry.observe("latency", 0.2)
                registry.set_gauge("depth_total", 3)
                registry.inc("requests_total")
                registry.observe("request_seconds", 0.2)
                registry.observe("payload_bytes", 512)
                registry.set_gauge("queue_depth", 3)
            """
        },
    )
    report = findings_for(root, checkers=["RPR105"])
    assert finding_codes(report) == ["RPR105", "RPR105", "RPR105"]
    assert [f.line for f in report.findings] == [2, 3, 4]


def test_rpr105_label_sets_fixed_across_files(tmp_path):
    root = make_repo(
        tmp_path,
        {
            "src/repro/a.py": 'def f(r):\n    r.inc("hits_total", route="x")\n',
            "src/repro/b.py": 'def g(r):\n    r.inc("hits_total", code="y")\n',
        },
    )
    report = findings_for(root, checkers=["RPR105"])
    assert len(report.findings) == 1
    assert report.findings[0].path == "src/repro/b.py"
    assert "label set" in report.findings[0].message


def test_rpr105_consistent_labels_clean(tmp_path):
    root = make_repo(
        tmp_path,
        {
            "src/repro/a.py": 'def f(r):\n    r.inc("hits_total", route="x")\n',
            "src/repro/b.py": 'def g(r):\n    r.inc("hits_total", route="y")\n',
        },
    )
    assert findings_for(root, checkers=["RPR105"]).clean


def test_rpr105_obs_must_be_stdlib_only(tmp_path):
    root = make_repo(
        tmp_path,
        {
            "src/repro/obs/extra.py": """\
            import json
            import numpy as np
            from repro.obs.metrics import get_registry
            from . import logging
            """
        },
    )
    report = findings_for(root, checkers=["RPR105"])
    assert codes_and_lines(report) == [("RPR105", "src/repro/obs/extra.py", 2)]


def test_rpr105_non_obs_modules_may_import_anything(tmp_path):
    root = make_repo(
        tmp_path,
        {
            "src/repro/relation/x.py": """\
            try:
                import numpy as np
            except ImportError:
                np = None
            """
        },
    )
    assert findings_for(root, checkers=["RPR105"]).clean


# ----------------------------------------------------------------------
# CLI behaviour
# ----------------------------------------------------------------------
def test_cli_exit_zero_on_clean_tree(tmp_path, capsys):
    root = make_repo(tmp_path, {"src/repro/util.py": "x = 1\n"})
    assert analysis_main(["--root", str(root)]) == 0
    out = capsys.readouterr().out
    assert "0 finding(s)" in out


def test_cli_exit_one_on_findings_and_reports_them(tmp_path, capsys):
    root = make_repo(tmp_path, {"src/repro/util.py": "import numpy as np\n"})
    assert analysis_main(["--root", str(root)]) == 1
    out = capsys.readouterr().out
    assert "src/repro/util.py:1:0: RPR101" in out


def test_cli_exit_two_on_config_error(tmp_path, capsys):
    root = make_repo(tmp_path, {"src/repro/util.py": "x = 1\n"})
    (root / "analysis-allowlist.json").write_text("{broken")
    assert analysis_main(["--root", str(root)]) == 2
    assert "error:" in capsys.readouterr().err


def test_cli_select_restricts_checkers(tmp_path, capsys):
    root = make_repo(tmp_path, {"src/repro/util.py": "import numpy as np\n"})
    assert analysis_main(["--root", str(root), "--select", "RPR102"]) == 0
    assert "1 checker(s)" in capsys.readouterr().out


def test_cli_json_format(tmp_path, capsys):
    root = make_repo(tmp_path, {"src/repro/util.py": "import numpy as np\n"})
    assert analysis_main(["--root", str(root), "--format", "json"]) == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["clean"] is False
    assert payload["findings"][0]["code"] == "RPR101"


def test_cli_list_checkers(capsys):
    assert analysis_main(["--list-checkers"]) == 0
    out = capsys.readouterr().out
    for code in ("RPR101", "RPR102", "RPR103", "RPR104", "RPR105"):
        assert code in out


def test_cli_update_lock_and_refusal(tmp_path, capsys):
    root = make_service_repo(tmp_path)
    assert analysis_main(["--root", str(root), "--update-lock"]) == 0
    assert "froze wire schema" in capsys.readouterr().out
    _edit(root, "src/repro/service/model.py", "    cache_hit: bool = False\n", "")
    assert analysis_main(["--root", str(root), "--update-lock"]) == 2
    assert "bump" in capsys.readouterr().err
    assert analysis_main(["--root", str(root), "--update-lock", "--force"]) == 0


def test_cli_explicit_paths(tmp_path):
    root = make_repo(
        tmp_path,
        {
            "src/repro/good.py": "x = 1\n",
            "src/repro/bad.py": "import numpy as np\n",
        },
    )
    assert (
        analysis_main(
            ["--root", str(root), "--select", "RPR101", "src/repro/good.py"]
        )
        == 0
    )
    assert (
        analysis_main(["--root", str(root), "--select", "RPR101", "src/repro/bad.py"])
        == 1
    )


def test_cli_bad_path_is_config_error(tmp_path):
    root = make_repo(tmp_path, {"src/repro/util.py": "x = 1\n"})
    assert analysis_main(["--root", str(root), "no/such/file.py"]) == 2


def test_dispatcher_lists_analysis(capsys):
    from repro.__main__ import COMMANDS, main as repro_main

    assert "analysis" in COMMANDS
    assert repro_main(["--help"]) == 0
    assert "analysis" in capsys.readouterr().out


# ----------------------------------------------------------------------
# Acceptance: the repo itself analyses clean
# ----------------------------------------------------------------------
def test_repository_is_clean():
    report = AnalysisRun(REPO_ROOT).run()
    assert report.checkers >= 5
    assert report.files > 50
    rendered = "\n".join(f.render() for f in report.findings)
    assert report.clean, f"the repo must analyse clean:\n{rendered}"


def test_repository_allowlist_entries_all_used_and_justified():
    entries = load_allowlist(REPO_ROOT / "analysis-allowlist.json")
    assert entries, "the committed allowlist should carry the known exceptions"
    for entry in entries:
        assert len(entry.justification) > 20, entry
    # No stale entries: test_repository_is_clean would have flagged RPR100.


def test_committed_lock_matches_sources():
    from repro.analysis import load_lock

    schema, _ = extract_wire_schema(REPO_ROOT)
    assert load_lock(REPO_ROOT / "schemas.lock.json") == schema
