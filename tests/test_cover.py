"""Minimal-cover reduction of discovered AFD sets."""

from repro.discovery import discover_afds, minimal_cover
from repro.discovery.cover import is_implied, minimal_exact_lhs_sets
from repro.discovery.single import CandidateScore, DiscoveryResult
from repro.relation import FunctionalDependency, Relation


def make_result(candidates):
    names = ["g3"]
    return DiscoveryResult(
        relation_name="t",
        measure_names=names,
        thresholds={"g3": 0.5},
        candidates=candidates,
        max_lhs_size=2,
    )


def candidate(lhs, rhs, score=1.0, exact=False):
    return CandidateScore(FunctionalDependency(lhs, rhs), {"g3": score}, exact=exact)


def test_minimal_cover_drops_superset_of_exact_lhs():
    exact = candidate(["A"], "C", exact=True)
    implied = candidate(["A", "B"], "C", exact=True)
    other = candidate(["B"], "C", score=0.7, exact=False)
    reduced = minimal_cover(make_result([exact, implied, other]))
    assert [c.fd for c in reduced.candidates] == [exact.fd, other.fd]
    assert reduced.dropped_non_minimal == 1
    assert reduced.counters()["dropped_non_minimal"] == 1


def test_minimal_cover_keeps_unrelated_rhs():
    exact = candidate(["A"], "C", exact=True)
    different_rhs = candidate(["A", "B"], "D", exact=True)
    reduced = minimal_cover(make_result([exact, different_rhs]))
    assert len(reduced.candidates) == 2
    assert reduced.dropped_non_minimal == 0


def test_minimal_cover_never_drops_approximate_candidates():
    approx = candidate(["A", "B"], "C", score=0.8, exact=False)
    reduced = minimal_cover(make_result([candidate(["D"], "C", exact=True), approx]))
    assert approx in reduced.candidates


def test_minimal_cover_is_idempotent():
    result = make_result(
        [
            candidate(["A"], "C", exact=True),
            candidate(["A", "B"], "C", exact=True),
            candidate(["B", "D"], "C", exact=True),
        ]
    )
    once = minimal_cover(result)
    twice = minimal_cover(once)
    assert [c.fd for c in once.candidates] == [c.fd for c in twice.candidates]
    assert twice.dropped_non_minimal == once.dropped_non_minimal


def test_minimal_exact_lhs_sets_keeps_only_inclusion_minimal():
    sets = minimal_exact_lhs_sets(
        [
            candidate(["A", "B"], "C", exact=True),
            candidate(["A"], "C", exact=True),  # subsumes {A, B}
            candidate(["D"], "C", exact=True),
        ]
    )
    assert sets[("C",)] == [frozenset({"A"}), frozenset({"D"})]
    assert not is_implied(candidate(["A"], "C", exact=True), sets)
    assert is_implied(candidate(["A", "E"], "C"), sets)


def test_minimal_cover_on_real_lattice_result():
    """End to end: B -> C holds exactly with a non-key B, so every
    B-superset LHS for RHS C is generated, marked exact, and implied."""
    rows = [(i % 6, i % 4, (i % 4) % 2, i % 3) for i in range(12)]
    relation = Relation(["A", "B", "C", "D"], rows)
    result = discover_afds(relation, threshold=0.0, max_lhs_size=2, backend="python")
    reduced = minimal_cover(result)
    assert reduced.dropped_non_minimal > 0
    implied_fd = FunctionalDependency(["A", "B"], "C")
    assert implied_fd in {c.fd for c in result.candidates}
    assert implied_fd not in {c.fd for c in reduced.candidates}
    # Survivors are pairwise minimal: no exact survivor implies another.
    exact_by_rhs = {}
    for c in reduced.candidates:
        if c.exact:
            exact_by_rhs.setdefault(c.fd.rhs, []).append(frozenset(c.fd.lhs))
    for c in reduced.candidates:
        lhs = frozenset(c.fd.lhs)
        for exact in exact_by_rhs.get(c.fd.rhs, []):
            assert not exact < lhs, c.fd
    # Reduction preserves scores of the survivors verbatim.
    original = {c.fd: c.scores for c in result.candidates}
    for c in reduced.candidates:
        assert c.scores == original[c.fd]


def test_discovery_cli_minimal_cover_flag(tmp_path, capsys):
    from repro.discovery.__main__ import main

    csv_path = tmp_path / "data.csv"
    lines = ["A,B,C,D"] + [f"{i % 6},{i % 4},{(i % 4) % 2},{i % 3}" for i in range(12)]
    csv_path.write_text("\n".join(lines) + "\n")
    base = [str(csv_path), "--max-lhs-size", "2", "--measures", "g3", "--threshold", "0.0"]

    import json

    assert main(base + ["--output", str(tmp_path / "full.json")]) == 0
    assert main(base + ["--minimal-cover", "--output", str(tmp_path / "reduced.json")]) == 0
    full = json.loads((tmp_path / "full.json").read_text())
    reduced = json.loads((tmp_path / "reduced.json").read_text())
    assert reduced["counters"]["dropped_non_minimal"] > 0
    assert (
        len(reduced["accepted"]["g3"])
        == len(full["accepted"]["g3"]) - reduced["counters"]["dropped_non_minimal"]
    )
    assert "minimal cover dropped" in capsys.readouterr().err
