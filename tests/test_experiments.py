"""End-to-end tests of the experiment drivers and the CLI."""

import csv
import json

import pytest

from repro.core.registry import MEASURE_ORDER
from repro.experiments import (
    DiscoveryConfig,
    PropertiesConfig,
    RwdeConfig,
    SensitivityConfig,
    run_discovery,
    run_properties,
    run_rwde,
    run_sensitivity,
)
from repro.experiments.__main__ import main

TINY = dict(steps=2, tables_per_step=1, max_rows=300, expectation="monte-carlo", mc_samples=20)


def test_run_sensitivity_writes_all_artifacts(tmp_path):
    payload = run_sensitivity(SensitivityConfig(benchmark="err", **TINY), output_dir=str(tmp_path))
    assert payload["benchmark"] == "ERR"
    assert set(payload["summary"]) == set(MEASURE_ORDER)

    directory = tmp_path / "err"
    summary = json.loads((directory / "summary.json").read_text())
    assert summary["summary"].keys() == payload["summary"].keys()
    for metrics in summary["summary"].values():
        assert set(metrics) >= {"pr_auc", "rank_at_max_recall", "separation", "total_seconds"}

    with (directory / "summary.csv").open() as handle:
        rows = list(csv.DictReader(handle))
    assert {row["measure"] for row in rows} == set(MEASURE_ORDER)
    for row in rows:
        assert 0.0 <= float(row["pr_auc"]) <= 1.0

    with (directory / "scores.csv").open() as handle:
        score_rows = list(csv.DictReader(handle))
    assert len(score_rows) == 2 * 1 * 2
    assert set(MEASURE_ORDER) <= set(score_rows[0])

    with (directory / "curves.csv").open() as handle:
        curve_rows = list(csv.DictReader(handle))
    assert len(curve_rows) == 14 * 2  # measures x steps


def test_run_sensitivity_without_output_dir_writes_nothing(tmp_path):
    payload = run_sensitivity(SensitivityConfig(benchmark="skew", **TINY), output_dir=None)
    assert payload["parameter_name"] == "rhs_skew"
    assert list(tmp_path.iterdir()) == []


def test_run_rwde_grid(tmp_path):
    config = RwdeConfig(
        error_types=("copy",),
        error_levels=(0.02,),
        num_rows=200,
        mc_samples=20,
    )
    payload = run_rwde(config, output_dir=str(tmp_path))
    assert len(payload["cells"]) == 1
    cell = payload["cells"][0]
    assert cell["positives"] > 0
    assert set(cell["measures"]) == set(MEASURE_ORDER)
    summary = json.loads((tmp_path / "rwde" / "summary.json").read_text())
    assert summary["cells"][0]["candidates"] == cell["candidates"]
    with (tmp_path / "rwde" / "summary.csv").open() as handle:
        rows = list(csv.DictReader(handle))
    assert len(rows) == 14


def test_run_discovery_lattice_mode(tmp_path):
    config = DiscoveryConfig(
        datasets=("R1",), num_rows=150, max_lhs_size=2, mc_samples=20
    )
    payload = run_discovery(config, output_dir=str(tmp_path))
    assert len(payload["relations"]) == 1
    entry = payload["relations"][0]
    assert entry["key"] == "R1"
    assert entry["statistics_computed"] < entry["brute_force_statistics"]
    assert entry["pruned_exact"] + entry["pruned_key"] > 0
    assert set(entry["measures"]) == set(MEASURE_ORDER)
    summary = json.loads((tmp_path / "discovery" / "summary.json").read_text())
    assert summary["config"]["max_lhs_size"] == 2
    with (tmp_path / "discovery" / "summary.csv").open() as handle:
        rows = list(csv.DictReader(handle))
    assert len(rows) == 14
    assert {row["measure"] for row in rows} == set(MEASURE_ORDER)


def test_cli_discovery_benchmark(tmp_path):
    exit_code = main(
        [
            "--benchmark",
            "discovery",
            "--discovery-num-rows",
            "150",
            "--max-lhs-size",
            "2",
            "--mc-samples",
            "20",
            "--output-dir",
            str(tmp_path),
        ]
    )
    assert exit_code == 0
    summary = json.loads((tmp_path / "discovery" / "summary.json").read_text())
    assert len(summary["relations"]) == 5


def test_run_properties_static_consistency(tmp_path):
    payload = run_properties(
        PropertiesConfig(steps=2, tables_per_step=1, max_rows=300, mc_samples=20),
        output_dir=str(tmp_path),
    )
    assert payload["static_catalogue_consistent"] is True
    assert {row["measure"] for row in payload["rows"]} == set(MEASURE_ORDER)
    for row in payload["rows"]:
        assert row["static_class_ok"] and row["static_baselines_ok"]
        # Laptop grids are noisy, but inverse error proportionality is the
        # paper's most robust claim: correlations must at least be negative.
        assert row["observed_error_correlation"] < 0.0
    table = json.loads((tmp_path / "properties" / "table3.json").read_text())
    assert len(table["rows"]) == 14


@pytest.mark.parametrize("jobs", [1, 2])
def test_cli_acceptance_configuration(tmp_path, jobs):
    exit_code = main(
        [
            "--benchmark",
            "err",
            "--steps",
            "2",
            "--tables-per-step",
            "1",
            "--jobs",
            str(jobs),
            "--max-rows",
            "300",
            "--mc-samples",
            "20",
            "--output-dir",
            str(tmp_path / f"jobs{jobs}"),
        ]
    )
    assert exit_code == 0
    summary = json.loads((tmp_path / f"jobs{jobs}" / "err" / "summary.json").read_text())
    assert set(summary["summary"]) == set(MEASURE_ORDER)


def test_cli_jobs_do_not_change_scores(tmp_path):
    for jobs in (1, 2):
        main(
            [
                "--benchmark",
                "uniq",
                "--steps",
                "2",
                "--tables-per-step",
                "1",
                "--jobs",
                str(jobs),
                "--max-rows",
                "300",
                "--mc-samples",
                "20",
                "--output-dir",
                str(tmp_path / f"jobs{jobs}"),
            ]
        )
    read = lambda jobs: json.loads(  # noqa: E731
        (tmp_path / f"jobs{jobs}" / "uniq" / "summary.json").read_text()
    )
    a, b = read(1), read(2)
    assert a["curves"] == b["curves"]
    assert {m: v["pr_auc"] for m, v in a["summary"].items()} == {
        m: v["pr_auc"] for m, v in b["summary"].items()
    }


def test_cli_dash_output_dir_skips_artifacts(tmp_path, monkeypatch):
    monkeypatch.chdir(tmp_path)
    exit_code = main(
        [
            "--benchmark",
            "err",
            "--steps",
            "2",
            "--tables-per-step",
            "1",
            "--max-rows",
            "300",
            "--mc-samples",
            "20",
            "--output-dir",
            "-",
        ]
    )
    assert exit_code == 0
    assert not (tmp_path / "results").exists()
