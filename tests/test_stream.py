"""The ``repro.stream`` subsystem: incremental maintenance parity.

The contract under test is the streaming analogue of the backend
bit-identity contract: after *any* interleaving of appends and deletes,

* :meth:`IncrementalFdStatistics.statistics` is ``==``-identical — same
  counts, same ``Counter`` insertion order, same scores under all
  fourteen measures — to a from-scratch ``FdStatistics.compute`` on the
  snapshot, on both backends;
* :meth:`IncrementalPartition.as_stripped` equals
  ``StrippedPartition.from_relation`` on the snapshot;
* the snapshot's pre-seeded columnar view is indistinguishable from a
  fresh ``ColumnarRelation.encode``.

Random workloads include NULLs (the Section VI-A fall-through), novel
values that grow the dynamic code tables past the initial dictionary,
deletions of first occurrences (the order-disturbing case), and window
evictions.  Tests that need numpy are marked; the remainder also run in
the no-numpy CI job.
"""

import json
import random

import pytest

from repro.core import all_measures
from repro.core.statistics import FdStatistics
from repro.relation import FunctionalDependency, Relation
from repro.relation.partition import StrippedPartition
from repro.stream import DynamicRelation, IncrementalPartition

try:
    import numpy  # noqa: F401

    HAVE_NUMPY = True
except ImportError:  # pragma: no cover - exercised by the no-numpy CI job
    HAVE_NUMPY = False

requires_numpy = pytest.mark.skipif(not HAVE_NUMPY, reason="numpy not installed")

MEASURES = all_measures(expectation="exact")


# ----------------------------------------------------------------------
# Random workload generation (pure ``random``: runs without numpy)
# ----------------------------------------------------------------------
def random_workload(seed: int, steps: int = 25):
    """A dynamic relation plus a deterministic mutation script.

    Yields the dynamic relation after each mutation step.  Appended rows
    mix NULLs, skewed small domains, and *novel* values never seen at
    construction time (forcing the dynamic dictionary to grow).
    """
    rng = random.Random(seed)
    attributes = ["A", "B", "C"][: rng.randint(2, 3)]
    novel = [0]

    def random_row():
        values = []
        for _ in attributes:
            roll = rng.random()
            if roll < 0.15:
                values.append(None)
            elif roll < 0.25:
                novel[0] += 1
                values.append(f"novel-{novel[0]}")
            else:
                values.append(rng.randint(0, 5))
        return tuple(values)

    initial = [random_row() for _ in range(rng.randint(0, 25))]
    window = rng.choice([None, None, rng.randint(5, 40)])
    dynamic = DynamicRelation(attributes, initial, name=f"stream-{seed}", window=window)

    def script():
        for _ in range(steps):
            if rng.random() < 0.6 or not dynamic.num_rows:
                dynamic.append([random_row() for _ in range(rng.randint(1, 5))])
            else:
                live = dynamic.live_ids()
                dynamic.delete(rng.sample(live, rng.randint(1, min(4, len(live)))))
            yield dynamic

    return dynamic, script()


def assert_statistics_identical(left: FdStatistics, right: FdStatistics) -> None:
    """Full structural equality, including Counter insertion order."""
    assert left.num_rows == right.num_rows
    assert list(left.xy_counts.items()) == list(right.xy_counts.items())
    assert list(left.x_counts.items()) == list(right.x_counts.items())
    assert list(left.y_counts.items()) == list(right.y_counts.items())
    assert list(left.full_tuple_counts.items()) == list(right.full_tuple_counts.items())
    assert list(left.groups) == list(right.groups)
    for key in left.groups:
        assert list(left.groups[key].items()) == list(right.groups[key].items())


def reference_backends():
    return ("python", "numpy") if HAVE_NUMPY else ("python",)


# ----------------------------------------------------------------------
# Incremental statistics parity
# ----------------------------------------------------------------------
@pytest.mark.parametrize("seed", range(25))
def test_incremental_statistics_parity_under_interleavings(seed):
    dynamic, script = random_workload(seed)
    fd = FunctionalDependency(dynamic.attributes[:1], dynamic.attributes[-1])
    tracker = dynamic.track(fd)
    for step, _ in enumerate(script):
        incremental = tracker.statistics()
        snapshot = dynamic.snapshot()
        for backend in reference_backends():
            # A pristine relation (no pre-seeded columnar cache) keeps the
            # reference computation fully independent of the stream path.
            pristine = Relation(snapshot.attributes, snapshot.rows(), name=dynamic.name)
            reference = FdStatistics.compute(pristine, fd, backend=backend)
            assert_statistics_identical(incremental, reference)
            for name, measure in MEASURES.items():
                assert measure.score_from_statistics(
                    incremental
                ) == measure.score_from_statistics(reference), (seed, step, backend, name)


@pytest.mark.parametrize("seed", [3, 11])
def test_incremental_statistics_parity_multi_attribute_lhs(seed):
    dynamic, script = random_workload(seed)
    if len(dynamic.attributes) < 3:
        pytest.skip("workload drew a 2-attribute schema")
    fd = FunctionalDependency(dynamic.attributes[:2], dynamic.attributes[-1])
    tracker = dynamic.track(fd)
    for _ in script:
        pass
    reference = FdStatistics.compute(dynamic.snapshot(), fd, backend="python")
    assert_statistics_identical(tracker.statistics(), reference)


def test_null_fall_through_matches_restricted_compute():
    dynamic = DynamicRelation(["X", "Y"], [(None, 1), ("a", None), ("a", 1), ("a", 2)])
    tracker = dynamic.track(FunctionalDependency("X", "Y"))
    assert tracker.num_rows == 2  # NULL rows never enter the restricted counts
    dynamic.delete([0])  # deleting a NULL row must not touch the counts
    assert tracker.num_rows == 2
    reference = FdStatistics.compute(dynamic.snapshot(), FunctionalDependency("X", "Y"))
    assert_statistics_identical(tracker.statistics(), reference)


def test_first_occurrence_deletion_reorders_like_recompute():
    """Deleting a key's first occurrence must reorder the counters.

    Rows: a, b, a — Counter order [a, b].  Deleting the first row makes
    the live order b, a; a from-scratch pass inserts b first, and so
    must the incremental counter.
    """
    dynamic = DynamicRelation(["X", "Y"], [("a", 1), ("b", 1), ("a", 1)])
    tracker = dynamic.track(FunctionalDependency("X", "Y"))
    assert [x for (x, _y) in tracker.statistics().xy_counts] == [("a",), ("b",)]
    dynamic.delete([0])
    assert [x for (x, _y) in tracker.statistics().xy_counts] == [("b",), ("a",)]
    reference = FdStatistics.compute(dynamic.snapshot(), FunctionalDependency("X", "Y"))
    assert_statistics_identical(tracker.statistics(), reference)


def test_vanished_key_reappears_at_the_end():
    dynamic = DynamicRelation(["X", "Y"], [("a", 1), ("b", 1)])
    tracker = dynamic.track(FunctionalDependency("X", "Y"))
    dynamic.delete([0])  # key a vanishes entirely
    dynamic.append([("a", 1)])  # and reappears after b
    assert [x for (x, _y) in tracker.statistics().xy_counts] == [("b",), ("a",)]
    reference = FdStatistics.compute(dynamic.snapshot(), FunctionalDependency("X", "Y"))
    assert_statistics_identical(tracker.statistics(), reference)


def test_code_table_growth_past_initial_dictionary():
    """Values never seen at construction must encode and score correctly."""
    dynamic = DynamicRelation(["X", "Y"], [(i % 4, i % 2) for i in range(20)])
    tracker = dynamic.track(FunctionalDependency("X", "Y"))
    dynamic.append([(f"fresh-{i}", i) for i in range(30)])  # all novel, both sides
    snapshot = dynamic.snapshot()
    reference = FdStatistics.compute(snapshot, FunctionalDependency("X", "Y"))
    assert_statistics_identical(tracker.statistics(), reference)
    assert snapshot.distinct_count("X") == 4 + 30
    if HAVE_NUMPY:
        assert snapshot.columnar().cardinality("X") == 4 + 30


# ----------------------------------------------------------------------
# Dynamic relation semantics
# ----------------------------------------------------------------------
def test_append_returns_ids_and_validates_arity():
    dynamic = DynamicRelation(["A", "B"])
    assert dynamic.append([(1, 2), (3, 4)]) == [0, 1]
    assert dynamic.append([(5, 6)]) == [2]
    with pytest.raises(ValueError, match="arity"):
        dynamic.append([(1, 2, 3)])


def test_delete_rejects_dead_or_unknown_ids():
    dynamic = DynamicRelation(["A"], [(1,), (2,)])
    dynamic.delete([0])
    with pytest.raises(KeyError):
        dynamic.delete([0])  # already dead
    with pytest.raises(KeyError):
        dynamic.delete([99])  # never assigned


def test_sliding_window_evicts_oldest_live_rows():
    dynamic = DynamicRelation(["A"], [(i,) for i in range(5)], window=3)
    assert dynamic.snapshot().rows() == [(2,), (3,), (4,)]
    dynamic.append([(9,)])
    assert dynamic.snapshot().rows() == [(3,), (4,), (9,)]
    # Eviction goes through the delete path, so trackers observe it.
    partition = dynamic.track_partition(["A"])
    dynamic.append([(3,), (3,)])
    assert dynamic.snapshot().rows() == [(9,), (3,), (3,)]
    reference = StrippedPartition.from_relation(dynamic.snapshot(), ["A"])
    assert partition.as_stripped().clusters == reference.clusters


def test_window_rejects_nonpositive_sizes():
    with pytest.raises(ValueError, match="window"):
        DynamicRelation(["A"], window=0)


def test_snapshot_is_cached_until_mutation():
    dynamic = DynamicRelation(["A"], [(1,)])
    first = dynamic.snapshot()
    assert dynamic.snapshot() is first
    dynamic.append([(2,)])
    second = dynamic.snapshot()
    assert second is not first
    # The old snapshot is immutable history, not a stale view.
    assert first.rows() == [(1,)]
    assert second.rows() == [(1,), (2,)]


# ----------------------------------------------------------------------
# Stale-cache guard
# ----------------------------------------------------------------------
def test_relation_invalidate_caches_prevents_stale_reads():
    relation = Relation(["A", "B"], [("x", 1), ("y", 2)])
    assert relation.frequencies("A")[("x",)] == 1
    if HAVE_NUMPY:
        assert relation.columnar().num_rows == 2
    # In-place mutation of the row store (the documented hazard): the
    # cached frequencies and columnar view now answer for the old rows.
    relation._rows.append(("x", 3))
    assert relation.frequencies("A")[("x",)] == 1  # stale read!
    relation.invalidate_caches()
    assert relation.frequencies("A")[("x",)] == 2
    assert relation.distinct_count("B") == 3
    if HAVE_NUMPY:
        assert relation.columnar().num_rows == 3


def test_dynamic_relation_owns_its_store():
    """Mutating the dynamic view must never reach the source relation."""
    source = Relation(["A", "B"], [("x", 1), ("y", 2)], name="src")
    source.frequencies("A")
    if HAVE_NUMPY:
        source.columnar()
    dynamic = DynamicRelation.from_relation(source)
    dynamic.append([("z", 3)])
    dynamic.delete([0])
    assert source.rows() == [("x", 1), ("y", 2)]
    assert source.frequencies("A")[("x",)] == 1  # source caches still valid
    if HAVE_NUMPY:
        assert source.columnar().num_rows == 2
    assert dynamic.snapshot().rows() == [("y", 2), ("z", 3)]


# ----------------------------------------------------------------------
# Pre-seeded columnar view (numpy)
# ----------------------------------------------------------------------
@requires_numpy
@pytest.mark.parametrize("seed", range(10))
def test_preseeded_columnar_matches_fresh_encode(seed):
    from repro.relation.columnar import ColumnarRelation

    dynamic, script = random_workload(seed)
    for _ in script:
        pass
    snapshot = dynamic.snapshot()
    preseeded = snapshot._columnar_cache
    assert preseeded is not None and snapshot.columnar() is preseeded
    fresh = ColumnarRelation.encode(Relation(snapshot.attributes, snapshot.rows()))
    for attribute in snapshot.attributes:
        assert preseeded.codes(attribute).tolist() == fresh.codes(attribute).tolist()
        assert preseeded.decode_table(attribute) == fresh.decode_table(attribute)
        assert preseeded.null_count(attribute) == fresh.null_count(attribute)
        assert list(preseeded._column(attribute).first_rows) == list(
            fresh._column(attribute).first_rows
        )


def test_snapshot_without_numpy_has_no_columnar_cache(monkeypatch):
    import repro.stream.dynamic as dynamic_module

    monkeypatch.setattr(dynamic_module, "np", None)
    dynamic = DynamicRelation(["A"], [(1,), (1,)])
    assert dynamic._columns is None
    assert dynamic.snapshot()._columnar_cache is None
    partition = dynamic.track_partition(["A"])
    dynamic.append([(2,)])
    reference = StrippedPartition.from_relation(dynamic.snapshot(), ["A"])
    assert partition.as_stripped().clusters == reference.clusters


# ----------------------------------------------------------------------
# Incremental partitions
# ----------------------------------------------------------------------
@pytest.mark.parametrize("seed", range(15))
def test_incremental_partition_parity_under_interleavings(seed):
    dynamic, script = random_workload(seed)
    attributes = list(dynamic.attributes[:2])
    partition = dynamic.track_partition(attributes)
    for step, _ in enumerate(script):
        reference = StrippedPartition.from_relation(dynamic.snapshot(), attributes)
        materialised = partition.as_stripped()
        assert materialised.clusters == reference.clusters, (seed, step)
        assert materialised.error() == reference.error()
        assert partition.error() == reference.error()
        assert partition.is_key() == reference.is_key()


def test_incremental_partition_cost_model_rebuilds_on_heavy_churn():
    dynamic = DynamicRelation(["A"], [(i % 5,) for i in range(100)])
    # Direct construction self-registers, exactly like track_partition().
    partition = IncrementalPartition(dynamic, ["A"], rebuild_fraction=0.5, rebuild_min=4)
    # Small batch: replayed incrementally.
    dynamic.delete([0, 1])
    partition.flush()
    assert partition.rebuilds == 0 and partition.applied_deletes == 2
    # Delete-heavy churn (more than half the live rows): full rebuild.
    dynamic.delete(dynamic.live_ids()[:60])
    partition.flush()
    assert partition.rebuilds == 1 and partition.applied_deletes == 2
    reference = StrippedPartition.from_relation(dynamic.snapshot(), ["A"])
    assert partition.as_stripped().clusters == reference.clusters
    # track_partition forwards the cost-model options.
    tuned = dynamic.track_partition(["A"], rebuild_fraction=0.25, rebuild_min=2)
    dynamic.delete(dynamic.live_ids()[:20])
    tuned.flush()
    assert tuned.rebuilds == 1


def test_incremental_partition_validates_inputs():
    dynamic = DynamicRelation(["A", "B"], [(1, 2)])
    with pytest.raises(KeyError):
        dynamic.track_partition(["missing"])
    with pytest.raises(ValueError, match="rebuild_fraction"):
        IncrementalPartition(dynamic, ["A"], rebuild_fraction=0.0)


def test_tracked_fd_validates_attributes():
    dynamic = DynamicRelation(["A", "B"], [(1, 2)])
    with pytest.raises(KeyError):
        dynamic.track(FunctionalDependency("A", "missing"))


def test_untrack_stops_delta_delivery():
    dynamic = DynamicRelation(["A", "B"], [(1, 2)])
    tracker = dynamic.track(FunctionalDependency("A", "B"))
    dynamic.untrack(tracker)
    dynamic.append([(3, 4)])
    assert tracker.num_rows == 1  # frozen at untrack time


# ----------------------------------------------------------------------
# Streaming benchmark driver
# ----------------------------------------------------------------------
@requires_numpy
def test_streaming_driver_smoke(tmp_path):
    from repro.experiments.streaming import StreamingConfig, run_streaming

    bench_path = tmp_path / "BENCH_streaming.json"
    payload = run_streaming(
        StreamingConfig(sizes=(150, 400), batches=3, batch_size=8, mc_samples=5),
        output_dir=str(tmp_path / "results"),
        bench_path=str(bench_path),
    )
    assert payload["experiment"] == "streaming"
    assert payload["scores_verified"] is True
    assert [entry["num_rows"] for entry in payload["relations"]] == [150, 400]
    for entry in payload["relations"]:
        assert set(entry["backends"]) == set(payload["backends"])
        for cell in entry["backends"].values():
            assert cell["incremental_seconds_median"] >= 0.0
            assert cell["statistics_speedup"] is None or cell["statistics_speedup"] > 0.0
            assert len(cell["incremental_measure_seconds_median"]) == 14
            assert len(cell["recompute_measure_seconds_median"]) == 14
    assert payload["largest"]["num_rows"] == 400
    assert payload["headline_backend"] in payload["backends"]
    assert payload["speedup"] is not None and payload["speedup"] > 0.0
    assert (tmp_path / "results" / "streaming" / "summary.json").exists()
    assert (tmp_path / "results" / "streaming" / "summary.csv").exists()
    record = json.loads(bench_path.read_text())
    assert record["relations"][0]["name"] == "runtime[150]"


@requires_numpy
def test_streaming_driver_single_backend(tmp_path):
    from repro.experiments.streaming import StreamingConfig, run_streaming

    payload = run_streaming(
        StreamingConfig(sizes=(120,), backends=("python",), batches=2, mc_samples=5),
        output_dir=None,
        bench_path=None,
    )
    assert list(payload["relations"][0]["backends"]) == ["python"]
    assert payload["headline_backend"] == "python"


@requires_numpy
def test_streaming_driver_rejects_unavailable_backend():
    from repro.experiments.streaming import StreamingConfig

    with pytest.raises(ValueError, match="not available"):
        StreamingConfig(backends=("polars",)).resolved_backends()


# ----------------------------------------------------------------------
# Monitoring CLI
# ----------------------------------------------------------------------
def test_stream_cli_monitors_csv(tmp_path, capsys):
    from repro.stream.__main__ import main

    csv_path = tmp_path / "stream.csv"
    rows = ["A,B"] + [f"{i % 3},{i % 2}" for i in range(40)]
    csv_path.write_text("\n".join(rows) + "\n")
    exit_code = main(
        [
            str(csv_path),
            "--fd",
            "A -> B",
            "--batch-size",
            "10",
            "--window",
            "25",
            "--measures",
            "g3,mu_plus",
            "--verify",
        ]
    )
    assert exit_code == 0
    out_lines = [
        line for line in capsys.readouterr().out.splitlines() if line.startswith("{")
    ]
    assert len(out_lines) == 4  # seed batch + 3 streamed batches
    for line in out_lines:
        record = json.loads(line)
        assert record["verified"] is True
        assert set(record["scores"]) == {"g3", "mu_plus"}
        assert record["live_rows"] <= 25


def test_stream_cli_rejects_unknown_fd_attribute(tmp_path, capsys):
    from repro.stream.__main__ import main

    csv_path = tmp_path / "stream.csv"
    csv_path.write_text("A,B\n1,2\n")
    assert main([str(csv_path), "--fd", "A -> missing"]) == 2
    assert "unknown attribute" in capsys.readouterr().err


def test_stream_cli_validates_batch_size_and_measures(tmp_path, capsys):
    from repro.stream.__main__ import main

    csv_path = tmp_path / "stream.csv"
    csv_path.write_text("A,B\n1,2\n")
    assert main([str(csv_path), "--fd", "A -> B", "--batch-size", "0"]) == 2
    assert "--batch-size" in capsys.readouterr().err
    assert main([str(csv_path), "--fd", "A -> B", "--measures", "nope"]) == 2
    assert "unknown measures" in capsys.readouterr().err


# ----------------------------------------------------------------------
# History compaction
# ----------------------------------------------------------------------
def mirrored_mutation_script(seed, compacting, plain, steps=30):
    """Apply an identical mutation script to both stores, yielding per step.

    Deletions are drawn by *position* in the live order (ids diverge once
    the compacting store rebases), so both stores always see the same
    logical mutations.
    """
    rng = random.Random(seed)

    def random_row(attributes):
        return tuple(
            None if rng.random() < 0.15 else rng.choice(["x", "y", "z", "w"])
            for _ in attributes
        )

    for _ in range(steps):
        if rng.random() < 0.7 or not plain.num_rows:
            rows = [random_row(plain.attributes) for _ in range(rng.randint(1, 15))]
            compacting.append(rows)
            plain.append(rows)
        else:
            count = rng.randint(1, min(4, plain.num_rows))
            positions = rng.sample(range(plain.num_rows), count)
            compacting_ids, plain_ids = compacting.live_ids(), plain.live_ids()
            compacting.delete([compacting_ids[p] for p in positions])
            plain.delete([plain_ids[p] for p in positions])
        yield


@pytest.mark.parametrize("seed", range(8))
def test_compaction_parity_with_uncompacted_store(seed):
    attributes = ["A", "B"]
    fd = FunctionalDependency("A", "B")
    compacting = DynamicRelation(
        attributes, window=40, compact_threshold=0.5, compact_min=48
    )
    plain = DynamicRelation(attributes, window=40, compact_threshold=None)
    tracker_c, tracker_p = compacting.track(fd), plain.track(fd)
    partition_c = compacting.track_partition(["A"])
    partition_p = plain.track_partition(["A"])
    for _ in mirrored_mutation_script(seed, compacting, plain):
        assert_statistics_identical(tracker_c.statistics(), tracker_p.statistics())
        assert partition_c.as_stripped().clusters == partition_p.as_stripped().clusters
        assert compacting.snapshot() == plain.snapshot()
        reference = FdStatistics.compute(
            Relation(attributes, compacting.snapshot().rows()), fd
        )
        for name, measure in MEASURES.items():
            assert measure.score_from_statistics(
                tracker_c.statistics()
            ) == measure.score_from_statistics(reference), (seed, name)
    assert compacting.compactions > 0, "workload never triggered a compaction"
    assert plain.compactions == 0
    assert len(compacting._all_rows) < len(plain._all_rows)


def test_windowed_stream_memory_stays_bounded():
    dynamic = DynamicRelation(
        ["A"], window=20, compact_threshold=0.5, compact_min=32
    )
    high_water = 0
    for index in range(500):
        dynamic.append([(index % 7,)])
        high_water = max(high_water, len(dynamic._all_rows))
    # Without compaction the store would hold all 500 appended rows; with
    # threshold 0.5 it can never exceed ~2x the live window (+ batch).
    assert dynamic.num_rows == 20
    assert high_water <= 64
    assert dynamic.compactions > 0
    assert dynamic.tombstone_fraction <= 0.5 + 1e-9


def test_explicit_compact_rebases_ids_and_keeps_trackers_correct():
    fd = FunctionalDependency("A", "B")
    dynamic = DynamicRelation(["A", "B"], [(i, i % 3) for i in range(10)],
                              compact_threshold=None)
    tracker = dynamic.track(fd)
    partition = dynamic.track_partition(["A"])
    dynamic.delete([0, 2, 4, 6])
    surviving_rows = [dynamic.row(row_id) for row_id in dynamic.live_ids()]
    mapping = dynamic.compact()
    assert dynamic.compactions == 1
    assert dynamic.live_ids() == list(range(6))
    assert [dynamic.row(row_id) for row_id in dynamic.live_ids()] == surviving_rows
    assert sorted(mapping.values()) == list(range(6))
    assert_statistics_identical(
        tracker.statistics(),
        FdStatistics.compute(Relation(["A", "B"], dynamic.snapshot().rows()), fd),
    )
    reference = StrippedPartition.from_relation(dynamic.snapshot(), ["A"])
    assert partition.as_stripped().clusters == reference.clusters
    # New appends continue with fresh ids above the compacted range.
    (new_id,) = dynamic.append([(99, 99)])
    assert new_id == 6
    assert tracker.statistics().num_rows == 7


def test_compact_of_emptied_store_then_append():
    dynamic = DynamicRelation(["A"], [(1,), (2,)], compact_threshold=None)
    dynamic.delete(dynamic.live_ids())
    assert dynamic.compact() == {}
    assert dynamic.num_rows == 0
    assigned = dynamic.append([(7,), (8,)])
    assert assigned == [0, 1]
    assert dynamic.snapshot().rows() == [(7,), (8,)]


def test_append_remaps_returned_ids_across_compaction():
    dynamic = DynamicRelation(
        ["A"], window=4, compact_threshold=0.5, compact_min=8
    )
    assigned = dynamic.append([(value,) for value in range(12)])
    # The last `window` appended rows survive; their returned ids were
    # re-based through the compaction mapping and still name those rows.
    surviving = assigned[-4:]
    assert surviving == dynamic.live_ids()
    assert [dynamic.row(row_id) for row_id in surviving] == [(8,), (9,), (10,), (11,)]
    assert dynamic.compactions > 0


def test_compaction_configuration_validation():
    with pytest.raises(ValueError):
        DynamicRelation(["A"], compact_threshold=0.0)
    with pytest.raises(ValueError):
        DynamicRelation(["A"], compact_threshold=1.5)
    disabled = DynamicRelation(["A"], [(1,)] * 10, window=2, compact_threshold=None,
                               compact_min=4)
    assert disabled.compactions == 0
    assert disabled.tombstone_fraction == 0.8


@requires_numpy
def test_compacted_snapshot_columnar_matches_fresh_encode():
    from repro.relation.columnar import ColumnarRelation

    rng = random.Random(13)
    dynamic = DynamicRelation(
        ["A", "B"], window=25, compact_threshold=0.5, compact_min=32
    )
    for _ in range(40):
        dynamic.append(
            [
                (rng.choice(["x", "y", None]), rng.randint(0, 9))
                for _ in range(rng.randint(1, 6))
            ]
        )
    assert dynamic.compactions > 0
    snapshot = dynamic.snapshot()
    preseeded = snapshot._columnar_cache
    assert preseeded is not None
    fresh = ColumnarRelation.encode(Relation(snapshot.attributes, snapshot.rows()))
    for attribute in snapshot.attributes:
        assert preseeded.codes(attribute).tolist() == fresh.codes(attribute).tolist()
        assert preseeded.decode_table(attribute) == fresh.decode_table(attribute)
        assert preseeded.null_count(attribute) == fresh.null_count(attribute)
