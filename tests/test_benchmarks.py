"""Tests of the spec-based synthetic benchmark construction and repro.rwd."""

import pytest

from repro.errors import ErrorType, build_rwde_benchmark
from repro.rwd import build_rwd_benchmark, enumerate_inspection_candidates, overview_table
from repro.synthetic import (
    BENCHMARK_KINDS,
    SyntheticBenchmark,
    benchmark_specs,
    build_benchmark_from_specs,
    build_err_benchmark,
    iter_benchmark_tables,
)
from repro.synthetic.generator import SYNTHETIC_FD


# ----------------------------------------------------------------------
# Spec-based construction
# ----------------------------------------------------------------------
def test_specs_are_deterministic_per_seed():
    first = benchmark_specs("err", steps=3, tables_per_step=2, max_rows=300)
    second = benchmark_specs("err", steps=3, tables_per_step=2, max_rows=300)
    assert first == second
    different = benchmark_specs("err", steps=3, tables_per_step=2, seed=99, max_rows=300)
    assert first != different


def test_spec_grid_shape_and_labels():
    specs = benchmark_specs("err", steps=3, tables_per_step=2, max_rows=300)
    assert len(specs) == 3 * 2 * 2  # steps x tables x {B+, B-}
    assert sum(spec.positive for spec in specs) == 6
    assert {spec.step for spec in specs} == {0, 1, 2}
    assert specs[0].name == "ERR+[step=0,i=0]"


def test_materialization_is_independent_of_order():
    specs = benchmark_specs("uniq", steps=2, tables_per_step=1, max_rows=300)
    forward = [spec.materialize().relation for spec in specs]
    backward = [spec.materialize().relation for spec in reversed(specs)]
    for relation_a, relation_b in zip(forward, reversed(backward)):
        assert relation_a == relation_b


def test_eager_builder_matches_spec_materialization():
    specs = benchmark_specs("err", steps=2, tables_per_step=2, max_rows=300)
    eager = build_err_benchmark(steps=2, tables_per_step=2, max_rows=300)
    assert isinstance(eager, SyntheticBenchmark)
    for spec, table in zip(specs, eager.tables):
        assert spec.materialize().relation == table.relation


def test_iter_benchmark_tables_streams_lazily():
    specs = benchmark_specs("err", steps=50, tables_per_step=50)  # paper-sized grid
    stream = iter_benchmark_tables(specs)
    first = next(stream)  # materialises exactly one table; must be instant
    assert first.positive and first.step == 0


def test_zero_error_positive_tables_satisfy_the_planted_fd():
    specs = benchmark_specs("err", steps=2, tables_per_step=2, max_rows=300)
    for spec in specs:
        if spec.positive and spec.parameter_value == 0.0:
            assert spec.materialize().relation.satisfies(SYNTHETIC_FD)


def test_uniq_benchmark_controls_lhs_uniqueness():
    # The sweep controls the configured |dom(X)| / |R| ratio; the realised
    # distinct count is smaller (Beta-skewed sampling leaves domain values
    # unused) but must grow monotonically with the swept parameter.
    specs = benchmark_specs("uniq", steps=2, tables_per_step=1, min_rows=500, max_rows=1000)
    for spec in specs:
        assert spec.parameters.domain_x_size == max(
            2, round(spec.parameter_value * spec.parameters.num_rows)
        )
    low, high = (s for s in specs if s.positive)
    assert low.parameter_value < high.parameter_value
    uniqueness = [
        s.materialize().relation.distinct_count("X") / s.parameters.num_rows
        for s in (low, high)
    ]
    assert uniqueness[0] < uniqueness[1]


def test_unknown_kind_raises():
    with pytest.raises(KeyError):
        benchmark_specs("nope")
    assert set(BENCHMARK_KINDS) == {"err", "uniq", "skew"}


def test_build_from_specs_round_trip():
    specs = benchmark_specs("skew", steps=2, tables_per_step=1, max_rows=300)
    benchmark = build_benchmark_from_specs(specs)
    assert benchmark.name == "SKEW"
    assert len(benchmark) == len(specs)
    assert benchmark.steps() == [0, 1]


# ----------------------------------------------------------------------
# RWD stand-ins and RWDe corruption
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def rwd():
    return build_rwd_benchmark(num_rows=300, seed=0)


def test_rwd_benchmark_shape(rwd):
    assert len(rwd) == 5
    rows = overview_table(rwd)
    assert [row["key"] for row in rows] == ["R1", "R2", "R3", "R4", "R5"]
    for row in rows:
        assert row["perfect_fds"] + row["approximate_fds"] == row["design_fds"]
    # Every relation contributes ground truth for discovery.
    assert rwd.total_approximate_fds() >= 5


def test_rwd_build_is_deterministic(rwd):
    again = build_rwd_benchmark(num_rows=300, seed=0)
    for relation_a, relation_b in zip(rwd, again):
        assert relation_a.relation == relation_b.relation
        assert relation_a.design_schema.fds == relation_b.design_schema.fds


def test_rwde_corruption_grows_the_ground_truth(rwd):
    rwde = build_rwde_benchmark(list(rwd), ErrorType.COPY, 0.02, seed=0)
    assert len(rwde) >= 3
    for corrupted in rwde:
        assert corrupted.corrupted_fds  # something was corrupted
        base_afds = set(corrupted.base.approximate_fds)
        for fd in corrupted.corrupted_fds:
            assert fd not in base_afds  # only perfect FDs are corrupted
            assert fd in corrupted.ground_truth  # and they join the ground truth
        assert not corrupted.corrupted.relation.satisfies(corrupted.corrupted_fds[0])


def test_inspection_candidates_rank_design_fds_high(rwd):
    relation = rwd["R1"]
    candidates = enumerate_inspection_candidates(relation)
    assert len(candidates) == relation.num_attributes * (relation.num_attributes - 1)
    by_fd = {str(candidate.fd): candidate for candidate in candidates}
    for fd in relation.design_schema:
        candidate = by_fd[str(fd)]
        assert candidate.in_design_schema
        assert candidate.g3_score > 0.95  # design FDs are (near-)satisfied
    unsatisfied = [c for c in candidates if not c.satisfied]
    assert enumerate_inspection_candidates(relation, include_satisfied=False) == unsatisfied
