"""Tests of single-LHS measure-based AFD discovery."""

import pytest

from repro.core import FdStatistics, all_measures
from repro.discovery import discover_afds
from repro.relation import FunctionalDependency, Relation

RELATION = Relation(
    ["zip", "city", "country"],
    [
        ("1000", "Brussels", "BE"),
        ("1000", "Brussels", "BE"),
        ("1000", "Bruxelles", "BE"),
        ("3590", "Diepenbeek", "BE"),
        ("75001", "Paris", "FR"),
    ],
    name="demo",
)


def test_candidate_grid_is_exhaustive():
    result = discover_afds(RELATION, threshold=0.0)
    assert len(result) == 6  # 3 attributes -> 3 * 2 ordered pairs
    fds = {str(candidate.fd) for candidate in result.candidates}
    assert "zip -> city" in fds and "city -> zip" in fds


def test_exact_fds_are_pruned_and_score_one():
    result = discover_afds(RELATION, threshold=0.0)
    exact = {str(fd) for fd in result.exact_fds()}
    assert exact == {"zip -> country", "city -> zip", "city -> country"}
    assert result.pruned_exact == 3
    for candidate in result.candidates:
        if candidate.exact:
            assert all(score == 1.0 for score in candidate.scores.values())


def test_pruned_scores_match_direct_scoring():
    """The partition shortcut must agree with the full statistics path."""
    measures = all_measures()
    result = discover_afds(RELATION, measures=measures, threshold=0.0)
    for candidate in result.candidates:
        statistics = FdStatistics.compute(RELATION, candidate.fd)
        for name, measure in measures.items():
            assert candidate.scores[name] == measure.score_from_statistics(statistics), (
                str(candidate.fd),
                name,
            )


def test_threshold_filters_and_orders_candidates():
    result = discover_afds(RELATION, threshold=0.9)
    accepted = result.accepted("mu_plus")
    assert [str(candidate.fd) for candidate in accepted] == [
        "zip -> country",
        "city -> zip",
        "city -> country",
    ]
    scores = [candidate.scores["mu_plus"] for candidate in accepted]
    assert scores == sorted(scores, reverse=True)


def test_per_measure_thresholds():
    thresholds = {name: 1.1 for name in all_measures()}
    thresholds["g3"] = 0.7
    result = discover_afds(RELATION, threshold=thresholds)
    assert result.accepted_fds("mu_plus") == []  # nothing reaches 1.1
    assert FunctionalDependency("zip", "city") in result.accepted_fds("g3")


def test_missing_threshold_for_a_measure_raises():
    with pytest.raises(KeyError):
        discover_afds(RELATION, threshold={"g3": 0.5})


def test_lhs_rhs_restriction():
    result = discover_afds(RELATION, threshold=0.0, lhs_attributes=["zip"], rhs_attributes=["city"])
    assert [str(candidate.fd) for candidate in result.candidates] == ["zip -> city"]


def test_nulls_fall_back_to_paper_semantics():
    """With NULLs the partition shortcut is unsound and must not be used."""
    relation = Relation(
        ["a", "b"],
        [("1", "x"), ("1", "x"), ("2", None), ("2", None)],
        name="nulls",
    )
    result = discover_afds(relation, threshold=0.0)
    candidate = next(c for c in result.candidates if str(c.fd) == "a -> b")
    # Under Section VI-A semantics the NULL tuples are dropped, so a -> b
    # is satisfied on the remaining rows and every measure scores 1.
    assert candidate.exact
    assert all(score == 1.0 for score in candidate.scores.values())
    assert result.pruned_exact == 0  # the shortcut was bypassed


def test_key_lhs_is_always_exact():
    relation = Relation(
        ["id", "payload"],
        [("1", "a"), ("2", "b"), ("3", "a")],
    )
    result = discover_afds(relation, threshold=0.5)
    candidate = next(c for c in result.candidates if str(c.fd) == "id -> payload")
    assert candidate.exact and candidate.scores["g3"] == 1.0


# ----------------------------------------------------------------------
# Chunked discovery (partition-free single-LHS screen)
# ----------------------------------------------------------------------
def _chunked_backends():
    try:
        import numpy  # noqa: F401
    except ImportError:
        return ["python"]
    return ["python", "numpy"]


def _discovery_fingerprint(result):
    return [
        (
            str(c.fd),
            {m: round(s, 12) for m, s in c.scores.items()},
            c.exact,
        )
        for c in result.candidates
    ]


@pytest.mark.parametrize("backend", _chunked_backends())
def test_chunked_discovery_matches_materialised(backend):
    from repro.discovery import brute_force_afds, chunked_discover
    from repro.relation.chunked import ChunkedRelation

    relation = RELATION
    chunked = ChunkedRelation.from_relation(relation, chunk_size=2)
    streamed = chunked_discover(
        chunked, threshold=0.0, chunk_size=2, backend=backend
    )
    materialised = brute_force_afds(
        relation, threshold=0.0, max_lhs_size=1, backend=backend
    )
    assert _discovery_fingerprint(streamed) == _discovery_fingerprint(materialised)
    assert streamed.counters()["candidates"] == materialised.counters()["candidates"]


@pytest.mark.parametrize("backend", _chunked_backends())
def test_chunked_discovery_matches_lattice_with_nulls(backend):
    from repro.discovery import chunked_discover
    from repro.relation.chunked import ChunkedRelation

    rows = [
        ("a", 1, None),
        ("a", 1, "x"),
        ("b", None, "y"),
        ("b", 2, "y"),
        (None, 2, "y"),
        ("c", 3, None),
    ]
    relation = Relation(("P", "Q", "R"), rows, name="nullish")
    chunked = ChunkedRelation.from_relation(relation, chunk_size=2)
    streamed = chunked_discover(chunked, threshold=0.0, backend=backend)
    materialised = discover_afds(
        relation, threshold=0.0, max_lhs_size=1, backend=backend
    )
    assert _discovery_fingerprint(streamed) == _discovery_fingerprint(materialised)


def test_discover_afds_routes_chunked_relations():
    from repro.relation.chunked import ChunkedRelation

    relation = RELATION
    chunked = ChunkedRelation.from_relation(relation, chunk_size=2)
    via_facade = discover_afds(chunked, threshold=0.0)
    direct = discover_afds(relation, threshold=0.0, max_lhs_size=1)
    assert _discovery_fingerprint(via_facade) == _discovery_fingerprint(direct)


def test_chunked_discovery_rejects_partition_features():
    from repro.discovery import chunked_discover
    from repro.relation.chunked import ChunkedRelation

    chunked = ChunkedRelation.from_relation(
        RELATION, chunk_size=2
    )
    with pytest.raises(ValueError, match="single-LHS"):
        chunked_discover(chunked, max_lhs_size=2)
    with pytest.raises(ValueError, match="g3_bound"):
        chunked_discover(chunked, g3_bound=0.1)
