"""The ``repro.service`` front door: model, session, server, dispatcher.

Contracts under test:

* the typed result model round-trips losslessly through its JSON
  schemas and rejects malformed payloads;
* ``AfdSession.score`` / ``discover`` / ``apply_delta`` are
  ``==``-identical to the legacy direct-call paths
  (``FdStatistics.compute`` + ``score_from_statistics``,
  ``discover_afds``, from-scratch recompute on the snapshot) on every
  available backend;
* the session's artifact caches are shared — across calls, across
  discovery-then-score, and across concurrent threads, with hit/miss
  counters proving it;
* the HTTP server serves the same numbers over ``urllib`` on the
  versioned ``/v1`` routes (and their deprecated unversioned aliases)
  and fails with the ``{"error": {"code", "message", "detail"}}``
  envelope (400/404/405/409/413) on bad input;
* ``python -m repro`` dispatches to the subsystem CLIs.

Sharded serving (``--workers N``) is covered in ``test_shard.py``.

Tests that need numpy are marked; the remainder also run in the
no-numpy CI job.
"""

import json
import random
import threading
import urllib.error
import urllib.request

import pytest

from repro.core import all_measures
from repro.core.statistics import FdStatistics
from repro.discovery import discover_afds, minimal_cover
from repro.relation import FunctionalDependency, Relation
from repro.service import (
    ERROR_CODES,
    AfdSession,
    BatchScoreRequest,
    BatchScoreResult,
    DiscoveryResult,
    ProfileRequest,
    ProfileResult,
    ScoredFd,
    ServiceError,
    StreamUpdate,
    record_from_dict,
    stable_view,
)
from repro.service.server import ROUTES, ServiceState, make_server, match_route
from repro.stream import DynamicRelation

try:
    import numpy  # noqa: F401

    HAVE_NUMPY = True
except ImportError:  # pragma: no cover - exercised by the no-numpy CI job
    HAVE_NUMPY = False

requires_numpy = pytest.mark.skipif(not HAVE_NUMPY, reason="numpy not installed")

BACKENDS = ("python", "numpy") if HAVE_NUMPY else ("python",)

MEASURES = all_measures(expectation="exact")


def small_relation(name="demo"):
    return Relation(
        ["zip", "city", "street"],
        [
            ("1000", "Brussels", "a"),
            ("1000", "Brussels", "b"),
            ("1000", "Bruxelles", "a"),
            ("3590", "Diepenbeek", "c"),
            ("3590", "Diepenbeek", "c"),
            (None, "X", "d"),
        ],
        name=name,
    )


def random_relation(seed, rows=60):
    rng = random.Random(seed)
    data = [
        (
            rng.choice(["x", "y", "z", None]),
            rng.choice(["p", "q", "r"]),
            rng.randrange(6),
        )
        for _ in range(rows)
    ]
    return Relation(["A", "B", "C"], data, name=f"rand{seed}")


# ----------------------------------------------------------------------
# Result model: JSON round-trips and validation
# ----------------------------------------------------------------------
def test_profile_request_round_trip():
    request = ProfileRequest(FunctionalDependency(("a", "b"), "c"), measures=("g3",))
    rebuilt = ProfileRequest.from_dict(json.loads(json.dumps(request.to_dict())))
    assert rebuilt == request
    assert record_from_dict(request.to_dict()) == request


def test_profile_request_accepts_text_fd():
    request = ProfileRequest.from_dict({"fd": "a, b -> c"})
    assert request.fd == FunctionalDependency(("a", "b"), "c")
    assert request.measures is None


def test_profile_request_rejects_bad_payloads():
    with pytest.raises(ValueError):
        ProfileRequest.from_dict({})
    with pytest.raises(ValueError):
        ProfileRequest.from_dict({"fd": {"lhs": ["a"]}})
    with pytest.raises(ValueError):
        ProfileRequest.from_dict({"fd": "a -> b", "measures": "g3"})
    with pytest.raises(ValueError):
        ProfileRequest.from_dict({"fd": "a -> b", "kind": "stream_update"})


def test_scored_fd_round_trip():
    scored = ScoredFd(lhs=("a",), rhs=("b",), scores={"g3": 0.5}, exact=False)
    assert ScoredFd.from_dict(json.loads(json.dumps(scored.to_dict()))) == scored
    assert scored.fd == FunctionalDependency("a", "b")


def test_profile_result_round_trip():
    result = ProfileResult(
        relation="t",
        num_rows=10,
        scored=ScoredFd(lhs=("a",), rhs=("b",), scores={"g3": 1.0}, exact=True),
        runtimes={"g3": 0.001},
        statistics_seconds=0.01,
        cache_hit=True,
        epoch=3,
    )
    rebuilt = ProfileResult.from_dict(json.loads(json.dumps(result.to_dict())))
    assert rebuilt == result


def test_stream_update_round_trip():
    update = StreamUpdate(
        relation="t",
        epoch=2,
        live_rows=5,
        inserted=3,
        deleted=1,
        scores={"a -> b": {"g3": 0.5}},
        restricted_rows={"a -> b": 4},
        seconds=0.001,
    )
    assert StreamUpdate.from_dict(json.loads(json.dumps(update.to_dict()))) == update


def test_record_from_dict_rejects_unknown_kind():
    with pytest.raises(ValueError):
        record_from_dict({"kind": "mystery"})
    with pytest.raises(ValueError):
        record_from_dict(["not", "a", "mapping"])


def test_batch_score_records_round_trip():
    batch = BatchScoreRequest(
        requests=(
            ProfileRequest(FunctionalDependency("a", "b")),
            ProfileRequest(FunctionalDependency("b", "c"), measures=("g3",)),
        )
    )
    rebuilt = BatchScoreRequest.from_dict(json.loads(json.dumps(batch.to_dict())))
    assert rebuilt == batch and len(rebuilt) == 2
    assert record_from_dict(batch.to_dict()) == batch
    with pytest.raises(ValueError):
        BatchScoreRequest(requests=())
    with pytest.raises(ValueError):
        BatchScoreRequest.from_dict({"kind": "batch_score_request", "requests": "nope"})

    result = BatchScoreResult(
        relation="t",
        results=[
            ProfileResult(
                relation="t",
                num_rows=3,
                scored=ScoredFd(lhs=("a",), rhs=("b",), scores={"g3": 1.0}, exact=True),
            )
        ],
        distinct=1,
        epoch=2,
    )
    rebuilt_result = BatchScoreResult.from_dict(json.loads(json.dumps(result.to_dict())))
    assert rebuilt_result == result and len(rebuilt_result) == 1
    assert record_from_dict(result.to_dict()) == result


def test_service_error_envelope_contract():
    error = ServiceError("unknown_relation", "no such thing", detail={"relation": "x"})
    assert error.status == 404
    envelope = error.envelope()
    assert envelope == {
        "error": {
            "code": "unknown_relation",
            "message": "no such thing",
            "detail": {"relation": "x"},
        }
    }
    rebuilt = ServiceError.from_envelope(json.loads(json.dumps(envelope)))
    assert (rebuilt.code, rebuilt.message, rebuilt.detail) == (
        error.code, error.message, error.detail,
    )
    with pytest.raises(ValueError):
        ServiceError("no_such_code", "boom")
    # Every documented code maps to a concrete HTTP status.
    assert all(isinstance(ServiceError(code, "x").status, int) for code in ERROR_CODES)


def test_stable_view_strips_volatile_fields():
    payload = {
        "scores": {"g3": 0.5},
        "runtimes": {"g3": 0.001},
        "statistics_seconds": 0.2,
        "cache_hit": True,
        "nested": [{"seconds": 1.0, "epoch": 3}],
    }
    assert stable_view(payload) == {"scores": {"g3": 0.5}, "nested": [{"epoch": 3}]}


def test_discovery_result_round_trip_and_views():
    session = AfdSession(small_relation(), measures=MEASURES)
    result = session.discover(threshold=0.5, max_lhs_size=2)
    rebuilt = DiscoveryResult.from_dict(json.loads(json.dumps(result.to_dict())))
    assert rebuilt.candidates == result.candidates
    assert rebuilt.counters == result.counters
    for measure in ("g3", "mu_plus"):
        assert [s.fd for s in rebuilt.accepted(measure)] == [
            s.fd for s in result.accepted(measure)
        ]
    assert rebuilt.exact_fds() == result.exact_fds()
    assert len(rebuilt) == len(result)


# ----------------------------------------------------------------------
# AfdSession: bit-identity with the direct call paths
# ----------------------------------------------------------------------
@pytest.mark.parametrize("backend", BACKENDS)
def test_score_matches_direct_path(backend):
    relation = random_relation(1)
    fd = FunctionalDependency("A", "B")
    session = AfdSession(relation, measures=MEASURES, backend=backend)
    result = session.score(fd)
    statistics = FdStatistics.compute(random_relation(1), fd, backend=backend)
    direct = {
        name: measure.score_from_statistics(statistics)
        for name, measure in MEASURES.items()
    }
    assert result.scores == direct
    assert result.relation == relation.name
    assert result.num_rows == relation.num_rows
    assert not result.cache_hit
    assert set(result.runtimes) == set(MEASURES)


@pytest.mark.parametrize("backend", BACKENDS)
def test_discover_matches_discover_afds(backend):
    relation = random_relation(2)
    session = AfdSession(relation, measures=MEASURES, backend=backend)
    result = session.discover(threshold=0.7, max_lhs_size=2)
    reference = discover_afds(
        random_relation(2), measures=MEASURES, threshold=0.7, max_lhs_size=2,
        backend=backend,
    )
    assert [(c.fd, c.scores, c.exact) for c in result.candidates] == [
        (c.fd, c.scores, c.exact) for c in reference.candidates
    ]
    assert result.counters == reference.counters()


def test_minimal_cover_matches_cover_reduction():
    relation = small_relation()
    session = AfdSession(relation, measures=MEASURES)
    session.discover(threshold=0.9, max_lhs_size=2)
    reduced = session.minimal_cover()
    reference = minimal_cover(
        discover_afds(small_relation(), measures=MEASURES, threshold=0.9, max_lhs_size=2)
    )
    assert [(c.fd, c.exact) for c in reduced.candidates] == [
        (c.fd, c.exact) for c in reference.candidates
    ]
    assert reduced.counters["dropped_non_minimal"] == reference.dropped_non_minimal


def test_minimal_cover_without_discovery_raises():
    session = AfdSession(small_relation(), measures=MEASURES)
    with pytest.raises(ValueError):
        session.minimal_cover()


def test_score_accepts_text_and_request_forms():
    session = AfdSession(small_relation(), measures=MEASURES)
    by_text = session.score("zip -> city")
    by_fd = session.score(FunctionalDependency("zip", "city"))
    by_request = session.profile(ProfileRequest(FunctionalDependency("zip", "city")))
    assert by_text.scores == by_fd.scores == by_request.scores


def test_score_measure_subset_and_unknown_measure():
    session = AfdSession(small_relation(), measures=MEASURES)
    result = session.score("zip -> city", measures=["g3", "mu_plus"])
    assert list(result.scores) == ["g3", "mu_plus"]
    with pytest.raises(KeyError):
        session.score("zip -> city", measures=["nope"])


def test_session_rejects_non_relations():
    with pytest.raises(TypeError):
        AfdSession([("a", "b")])


# ----------------------------------------------------------------------
# AfdSession: artifact caching
# ----------------------------------------------------------------------
def test_repeat_score_hits_cache():
    session = AfdSession(small_relation(), measures=MEASURES)
    first = session.score("zip -> city")
    second = session.score("zip -> city")
    assert second.scores == first.scores
    assert second.cache_hit and second.statistics_seconds == 0.0
    info = session.cache_info()
    assert info["statistics_misses"] == 1
    assert info["statistics_hits"] == 1
    assert info["cached_statistics"] == 1


def test_score_after_discovery_hits_cache():
    session = AfdSession(random_relation(3), measures=MEASURES)
    result = session.discover(threshold=0.5, max_lhs_size=2)
    computed = result.counters["statistics_computed"]
    assert session.cache_info()["statistics_misses"] == computed
    # Any non-pruned candidate was already computed inside discover().
    non_exact = next(c for c in result.candidates if not c.exact)
    profile = session.score(non_exact.fd)
    assert profile.cache_hit
    assert profile.scores == non_exact.scores


def test_repeat_discovery_reuses_partitions():
    session = AfdSession(random_relation(4), measures=MEASURES)
    session.discover(threshold=0.5, max_lhs_size=2)
    first = session.cache_info()
    session.discover(threshold=0.5, max_lhs_size=2)
    second = session.cache_info()
    # Second traversal probes the same lattice nodes: all hits, no new misses.
    assert second["partition_misses"] == first["partition_misses"]
    assert second["partition_hits"] > first["partition_hits"]
    assert second["statistics_misses"] == first["statistics_misses"]


def test_seed_statistics_short_circuits_compute():
    relation = small_relation()
    fd = FunctionalDependency("zip", "city")
    statistics = FdStatistics.compute(relation, fd)
    session = AfdSession(relation, measures=MEASURES)
    session.seed_statistics(fd, statistics)
    result = session.score(fd)
    assert result.cache_hit and result.statistics_seconds == 0.0


def test_score_many_matches_sequential_scores():
    session = AfdSession(small_relation(), measures=MEASURES)
    requests = [
        ProfileRequest(FunctionalDependency("zip", "city")),
        ProfileRequest(FunctionalDependency("city", "zip"), measures=("g3",)),
        ProfileRequest(FunctionalDependency("zip", "city")),  # duplicate probe
    ]
    batch = session.score_many(BatchScoreRequest(requests=tuple(requests)))
    assert len(batch) == 3 and batch.relation == session.name
    # One statistics pass per *distinct* probe; duplicates share it.
    assert batch.distinct == 2
    sequential = AfdSession(small_relation(), measures=MEASURES)
    for request, result in zip(requests, batch.results):
        reference = sequential.score(request.fd, measures=request.measures)
        assert result.scores == reference.scores
        assert result.fd == reference.fd
    with pytest.raises(ValueError):
        session.score_many([])


# ----------------------------------------------------------------------
# AfdSession: dynamic sessions
# ----------------------------------------------------------------------
@pytest.mark.parametrize("backend", BACKENDS)
def test_apply_delta_matches_recompute(backend):
    rng = random.Random(5)
    relation = random_relation(5, rows=40)
    dynamic = DynamicRelation.from_relation(relation)
    session = AfdSession(dynamic, measures=MEASURES, backend=backend)
    fd = FunctionalDependency("A", "B")
    session.score(fd)
    assert session.tracked_fds() == [fd]
    for step in range(8):
        inserts = [
            (rng.choice(["x", "new", None]), rng.choice(["p", "q"]), rng.randrange(9))
            for _ in range(rng.randrange(0, 5))
        ]
        live = dynamic.live_ids()
        deletes = rng.sample(live, k=min(2, len(live))) if step % 2 else []
        update = session.apply_delta(inserts=inserts, deletes=deletes)
        assert update.epoch == step + 1 == session.epoch
        assert update.live_rows == dynamic.num_rows
        assert update.inserted == len(inserts) and update.deleted == len(deletes)
        recomputed = FdStatistics.compute(dynamic.snapshot(), fd, backend=backend)
        reference = {
            name: measure.score_from_statistics(recomputed)
            for name, measure in MEASURES.items()
        }
        assert update.scores[str(fd)] == reference
        assert update.restricted_rows[str(fd)] == recomputed.num_rows


def test_snapshot_scores_without_mutation():
    dynamic = DynamicRelation.from_relation(random_relation(6))
    session = AfdSession(dynamic, measures=MEASURES)
    update = session.snapshot_scores(fds=["A -> B", "B -> C"])
    assert set(update.scores) == {"A -> B", "B -> C"}
    assert update.inserted == 0 and update.deleted == 0 and update.epoch == 0
    # Named FDs enrolled for tracking; the next delta refreshes them all.
    after = session.apply_delta(inserts=[("x", "p", 1)])
    assert set(after.scores) == {"A -> B", "B -> C"}


def test_untrack_stops_refreshing():
    dynamic = DynamicRelation.from_relation(random_relation(7))
    session = AfdSession(dynamic, measures=MEASURES)
    session.score("A -> B")
    session.untrack("A -> B")
    assert session.tracked_fds() == []
    update = session.apply_delta(inserts=[("x", "p", 1)])
    assert update.scores == {}
    # Untracked scoring still works (recompute path) and stays correct.
    rescored = session.score("A -> B")
    recomputed = FdStatistics.compute(dynamic.snapshot(), FunctionalDependency("A", "B"))
    assert rescored.scores == {
        name: measure.score_from_statistics(recomputed)
        for name, measure in MEASURES.items()
    }


def test_apply_delta_requires_dynamic_session():
    session = AfdSession(small_relation(), measures=MEASURES)
    with pytest.raises(ValueError):
        session.apply_delta(inserts=[("1", "2", "3")])
    with pytest.raises(ValueError):
        session.track("zip -> city")


def test_dynamic_discover_matches_static_discovery():
    relation = random_relation(8)
    dynamic = DynamicRelation.from_relation(relation)
    session = AfdSession(dynamic, measures=MEASURES)
    session.apply_delta(inserts=[("x", "p", 1), ("y", "q", 2)])
    result = session.discover(threshold=0.5, max_lhs_size=2)
    reference = discover_afds(
        dynamic.snapshot(), measures=MEASURES, threshold=0.5, max_lhs_size=2
    )
    assert [(c.fd, c.scores) for c in result.candidates] == [
        (c.fd, c.scores) for c in reference.candidates
    ]
    # Discovery did not enrol trackers for the whole candidate grid.
    assert session.tracked_fds() == []


# ----------------------------------------------------------------------
# AfdSession: concurrency
# ----------------------------------------------------------------------
def test_concurrent_access_is_bit_identical_to_serial():
    relation = random_relation(9, rows=80)
    fds = [
        FunctionalDependency(lhs, rhs)
        for lhs in relation.attributes
        for rhs in relation.attributes
        if lhs != rhs
    ]
    serial_session = AfdSession(relation, measures=MEASURES)
    serial_scores = {fd: serial_session.score(fd).scores for fd in fds}
    serial_discovery = serial_session.discover(threshold=0.6, max_lhs_size=2)

    shared = AfdSession(
        Relation(relation.attributes, relation.rows(), name=relation.name),
        measures=all_measures(expectation="exact"),
    )
    results = {}
    discoveries = {}
    errors = []
    num_threads = 8

    def worker(thread_index):
        try:
            rng = random.Random(thread_index)
            order = list(fds)
            rng.shuffle(order)
            mine = {}
            for fd in order:
                mine[fd] = shared.score(fd).scores
            discoveries[thread_index] = shared.discover(threshold=0.6, max_lhs_size=2)
            results[thread_index] = mine
        except BaseException as error:  # pragma: no cover - failure reporting
            errors.append(error)

    threads = [
        threading.Thread(target=worker, args=(index,)) for index in range(num_threads)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert not errors
    for index in range(num_threads):
        assert results[index] == serial_scores
        assert [(c.fd, c.scores) for c in discoveries[index].candidates] == [
            (c.fd, c.scores) for c in serial_discovery.candidates
        ]
    info = shared.cache_info()
    # Artifact sharing: every FD's statistics were computed exactly once
    # across all eight threads; everything else was a cache hit.
    total_statistics = info["statistics_misses"]
    assert total_statistics == serial_session.cache_info()["statistics_misses"]
    assert info["statistics_hits"] >= num_threads * len(fds) - total_statistics
    assert info["partition_misses"] == serial_session.cache_info()["partition_misses"]


# ----------------------------------------------------------------------
# HTTP server
# ----------------------------------------------------------------------
@pytest.fixture()
def service():
    state = ServiceState()
    server, _ = make_server(state=state)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    host, port = server.server_address[:2]
    yield f"http://{host}:{port}", state
    server.shutdown()
    server.server_close()
    thread.join(timeout=5)


def _get(url):
    with urllib.request.urlopen(url) as response:
        return response.status, json.loads(response.read()), dict(response.headers)


def _request(url, payload, method="POST"):
    request = urllib.request.Request(
        url,
        data=None if payload is None else json.dumps(payload).encode("utf-8"),
        headers={"Content-Type": "application/json"},
        method=method,
    )
    with urllib.request.urlopen(request) as response:
        return response.status, json.loads(response.read()), dict(response.headers)


def _post(url, payload):
    return _request(url, payload)


def _error_envelope(excinfo):
    """Assert the failure body follows the envelope contract; return it."""
    body = json.load(excinfo.value)
    assert set(body) == {"error"}
    assert set(body["error"]) == {"code", "message", "detail"}
    assert body["error"]["code"] in ERROR_CODES
    return body["error"]


def _register(base, name="demo", prefix="/v1", **extra):
    relation = small_relation(name)
    payload = {
        "name": name,
        "attributes": list(relation.attributes),
        "rows": [list(row) for row in relation.rows()],
    }
    payload.update(extra)
    return _post(f"{base}{prefix}/relations", payload)


def test_server_healthz_and_relations(service):
    base, _ = service
    status, health, _ = _get(f"{base}/v1/healthz")
    assert status == 200 and health["status"] == "ok"
    assert health["sessions"] == []
    status, body, _ = _register(base)
    assert status == 201 and body["num_rows"] == 6
    status, listing, _ = _get(f"{base}/v1/relations")
    assert [entry["name"] for entry in listing["relations"]] == ["demo"]
    assert _get(f"{base}/v1/healthz")[1]["sessions"] == ["demo"]


def test_server_score_matches_library(service):
    base, state = service
    _register(base)
    status, body, _ = _post(f"{base}/v1/relations/demo/score", {"fd": "zip -> city"})
    assert status == 200 and body["kind"] == "profile_result"
    reference = state.session("demo").score("zip -> city")
    assert body["scores"] == reference.scores
    # A second identical request is served from the session cache.
    status, again, _ = _post(f"{base}/v1/relations/demo/score", {"fd": "zip -> city"})
    assert again["cache_hit"] is True and again["scores"] == body["scores"]


def test_server_batch_score_matches_sequential(service):
    base, state = service
    _register(base)
    probes = ["zip -> city", "city -> zip", "zip -> city"]
    status, body, _ = _post(
        f"{base}/v1/relations/demo/score",
        {"requests": [{"fd": fd} for fd in probes]},
    )
    assert status == 200 and body["kind"] == "batch_score_result"
    assert len(body["results"]) == 3 and body["distinct"] == 2
    for fd, result in zip(probes, body["results"]):
        reference = _post(f"{base}/v1/relations/demo/score", {"fd": fd})[1]
        assert stable_view(result) == stable_view(reference)


def test_server_discover_and_stream_delta(service):
    base, _ = service
    _register(base, dynamic=True)
    status, found, _ = _post(
        f"{base}/v1/relations/demo/discover",
        {"threshold": 0.5, "max_lhs_size": 2},
    )
    assert status == 200 and found["kind"] == "discovery_result"
    assert found["counters"]["candidates"] > 0
    _post(f"{base}/v1/relations/demo/score", {"fd": "zip -> city"})
    status, update, _ = _post(
        f"{base}/v1/relations/demo/delta",
        {"inserts": [["9999", "Gent", "q"]], "deletes": [0]},
    )
    assert status == 200 and update["kind"] == "stream_update"
    assert update["epoch"] == 1 and update["live_rows"] == 6
    assert "zip -> city" in update["scores"]


def test_routing_table_dispatch():
    # Every ROUTES row resolves to its operation, with URL parameters
    # captured; wrong verbs 405 with the allowed set, unknown paths 404.
    cases = {
        ("GET", "/v1/healthz"): "healthz",
        ("GET", "/v1/metrics"): "metrics",
        ("GET", "/v1/stats"): "stats",
        ("GET", "/v1/relations"): "relations",
        ("POST", "/v1/relations"): "register",
        ("POST", "/v1/relations/demo/score"): "score",
        ("POST", "/v1/relations/demo/discover"): "discover",
        ("POST", "/v1/relations/demo/delta"): "delta",
        ("GET", "/healthz"): "healthz",
        ("GET", "/relations"): "relations",
        ("POST", "/relations"): "register",
        ("POST", "/score"): "score",
        ("POST", "/discover"): "discover",
        ("POST", "/stream/demo/delta"): "delta",
    }
    assert len(cases) == len(ROUTES)
    for (method, path), op in cases.items():
        route, params = match_route(method, path)
        assert route.op == op
        if "{name}" in route.pattern:
            assert params == {"name": "demo"}
        assert route.deprecated == (not path.startswith("/v1"))
        if route.deprecated:
            assert route.successor.startswith("/v1")
    with pytest.raises(ServiceError) as excinfo:
        match_route("POST", "/v1/healthz")
    assert excinfo.value.code == "method_not_allowed"
    assert excinfo.value.detail == {"allowed": ["GET"]}
    with pytest.raises(ServiceError) as excinfo:
        match_route("GET", "/v1/relations/demo/score")
    assert excinfo.value.code == "method_not_allowed"
    with pytest.raises(ServiceError) as excinfo:
        match_route("GET", "/nope")
    assert excinfo.value.code == "unknown_route"


def test_legacy_aliases_serve_with_deprecation_header(service):
    base, state = service
    status, body, headers = _register(base, prefix="")
    assert status == 201 and headers.get("Deprecation") == "true"
    assert 'rel="successor-version"' in headers.get("Link", "")
    reference = state.session("demo").score("zip -> city").scores
    for path, payload in (
        ("/score", {"relation": "demo", "fd": "zip -> city"}),
        ("/v1/relations/demo/score", {"fd": "zip -> city"}),
    ):
        status, body, headers = _post(f"{base}{path}", payload)
        assert status == 200 and body["scores"] == reference
        assert (headers.get("Deprecation") == "true") == (not path.startswith("/v1"))
    status, health, headers = _get(f"{base}/healthz")
    assert status == 200 and health["sessions"] == ["demo"]
    assert headers.get("Deprecation") == "true"
    assert headers.get("Link") == '</v1/healthz>; rel="successor-version"'


def test_server_error_paths(service):
    base, _ = service
    with pytest.raises(urllib.error.HTTPError) as excinfo:
        _get(f"{base}/bogus")
    assert excinfo.value.code == 404
    assert _error_envelope(excinfo)["code"] == "unknown_route"
    with pytest.raises(urllib.error.HTTPError) as excinfo:
        _post(f"{base}/v1/relations/ghost/score", {"fd": "a -> b"})
    assert excinfo.value.code == 404
    envelope = _error_envelope(excinfo)
    assert envelope["code"] == "unknown_relation"
    assert envelope["detail"]["relation"] == "ghost"
    _register(base)
    with pytest.raises(urllib.error.HTTPError) as excinfo:
        _register(base)  # duplicate name without replace
    assert excinfo.value.code == 409
    assert _error_envelope(excinfo)["code"] == "relation_exists"
    assert _register(base, replace=True)[0] == 201
    with pytest.raises(urllib.error.HTTPError) as excinfo:
        _post(f"{base}/v1/relations/demo/score", {})  # missing fd
    assert excinfo.value.code == 400
    assert _error_envelope(excinfo)["code"] == "malformed_record"
    with pytest.raises(urllib.error.HTTPError) as excinfo:
        _post(f"{base}/v1/relations/demo/delta", {"inserts": [["x"]]})  # static
    assert excinfo.value.code == 400
    assert _error_envelope(excinfo)["code"] == "not_dynamic"
    with pytest.raises(urllib.error.HTTPError) as excinfo:
        _request(f"{base}/v1/relations/demo/score", {}, method="PUT")
    assert excinfo.value.code == 405
    envelope = _error_envelope(excinfo)
    assert envelope["code"] == "method_not_allowed"
    assert envelope["detail"] == {"allowed": ["POST"]}
    with pytest.raises(urllib.error.HTTPError) as excinfo:
        _request(f"{base}/v1/relations/demo/score", None)  # no body
    assert excinfo.value.code == 400
    assert _error_envelope(excinfo)["code"] == "malformed_record"


def test_server_concurrent_clients_share_one_session(service):
    base, state = service
    _register(base)
    reference = state.session("demo").score("zip -> city").scores
    payloads = []
    errors = []

    def client():
        try:
            for _ in range(5):
                payloads.append(
                    _post(f"{base}/v1/relations/demo/score", {"fd": "zip -> city"})[1]
                )
        except BaseException as error:  # pragma: no cover - failure reporting
            errors.append(error)

    threads = [threading.Thread(target=client) for _ in range(4)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert not errors
    assert len(payloads) == 20
    assert all(body["scores"] == reference for body in payloads)
    info = state.session("demo").cache_info()
    assert info["statistics_misses"] == 1
    assert info["statistics_hits"] >= 20


# ----------------------------------------------------------------------
# python -m repro dispatcher
# ----------------------------------------------------------------------
def test_dispatcher_version_and_usage(capsys):
    from repro import __version__
    from repro.__main__ import main

    assert main(["--version"]) == 0
    assert __version__ in capsys.readouterr().out
    assert main([]) == 2
    assert "usage" in capsys.readouterr().out
    assert main(["--help"]) == 0
    assert main(["bogus"]) == 2
    assert "unknown command" in capsys.readouterr().err


@requires_numpy  # the discovery CLI imports the numpy-backed RWD datasets
def test_dispatcher_routes_to_discovery(tmp_path, capsys):
    from repro.__main__ import main

    csv_path = tmp_path / "demo.csv"
    csv_path.write_text("zip,city\n1000,Brussels\n1000,Brussels\n3590,Diepenbeek\n")
    output = tmp_path / "out.json"
    code = main(
        ["discovery", str(csv_path), "--measures", "g3", "--output", str(output)]
    )
    assert code == 0
    payload = json.loads(output.read_text())
    assert payload["counters"]["candidates"] == 2
    capsys.readouterr()


# ----------------------------------------------------------------------
# Review regressions
# ----------------------------------------------------------------------
def test_apply_delta_deletes_resolve_before_insert_compaction():
    # A delete id passed alongside a compaction-triggering insert batch
    # must name the pre-call row, never a freshly re-based one.
    dynamic = DynamicRelation(
        ["A"],
        [(f"seed-{i}",) for i in range(20)],
        window=20,
        compact_threshold=0.5,
        compact_min=8,
    )
    session = AfdSession(dynamic, measures=MEASURES)
    doomed = dynamic.live_ids()[5]
    doomed_row = dynamic.row(doomed)
    update = session.apply_delta(
        inserts=[(f"new-{i}",) for i in range(30)], deletes=[doomed]
    )
    assert update.deleted == 1 and update.inserted == 30
    rows = dynamic.snapshot().rows()
    assert doomed_row not in rows
    # The window keeps the 20 newest inserts; none was silently deleted.
    assert rows == [(f"new-{i}",) for i in range(10, 30)]
    assert dynamic.compactions > 0


def test_out_of_band_mutation_invalidates_statistics_cache():
    dynamic = DynamicRelation(["A", "B"], [(1, 2), (1, 2)])
    session = AfdSession(dynamic, measures=MEASURES)
    fd = FunctionalDependency("A", "B")
    assert session.score(fd).scores["g3"] == 1.0
    # Mutating through the exposed handle bypasses apply_delta entirely.
    session.dynamic.append([(1, 3), (2, 4), (2, 4)])
    rescored = session.score(fd)
    assert not rescored.cache_hit
    recomputed = FdStatistics.compute(dynamic.snapshot(), fd)
    assert rescored.scores == {
        name: measure.score_from_statistics(recomputed)
        for name, measure in MEASURES.items()
    }


def test_repeat_discovery_reports_zero_statistics_passes():
    session = AfdSession(random_relation(10), measures=MEASURES)
    first = session.discover(threshold=0.5, max_lhs_size=2)
    assert first.counters["statistics_computed"] > 0
    second = session.discover(threshold=0.5, max_lhs_size=2)
    # Scores identical, but the counter reports the passes actually run.
    assert [c.scores for c in second.candidates] == [c.scores for c in first.candidates]
    assert second.counters["statistics_computed"] == 0


def test_server_unknown_measure_is_400_not_404(service):
    base, _ = service
    _register(base)
    with pytest.raises(urllib.error.HTTPError) as excinfo:
        _post(
            f"{base}/v1/relations/demo/score",
            {"fd": "zip -> city", "measures": ["nope"]},
        )
    assert excinfo.value.code == 400
    envelope = _error_envelope(excinfo)
    assert envelope["code"] == "unknown_measure"
    assert "unknown measures" in envelope["message"]


@requires_numpy
def test_streaming_benchmark_survives_total_delete_churn():
    # Heavy delete churn exceeds the compaction threshold; the driver's
    # precomputed delete ids require the benchmark store to opt out of
    # compaction (regression: KeyError "row id ... is not live").
    from repro.experiments.streaming import StreamingConfig, run_streaming

    config = StreamingConfig(
        sizes=(300,),
        backends=("python",),
        batches=25,
        batch_size=16,
        delete_fraction=1.0,
        expectation="exact",
    )
    payload = run_streaming(config, output_dir=None, bench_path=None)
    assert payload["scores_verified"] is True
