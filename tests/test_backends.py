"""Backend parity, the columnar substrate, and the runtime driver.

The central contract under test: the ``python`` and ``numpy`` statistics
backends produce **bit-identical** results — identical ``FdStatistics``
count structures (same keys, same counts, same ``Counter`` insertion
order), identical integer and float derived facts, and identical scores
for all fourteen registered measures (``==``, not ``approx``).  The
property tests drive randomised relations through both backends: with
and without NULLs, with skewed domains, mixed value types, and the
degenerate shapes (empty, constant, key LHS, single RHS value).

Tests that need numpy are marked; the remainder (python backend,
fallback resolution, integer-precision caching) also run in the
no-numpy CI job.
"""

import random
from collections import Counter

import pytest

import repro.core.backends as backends
from repro.core import all_measures
from repro.core.backends import (
    BACKEND_ENV_VAR,
    available_backends,
    get_default_backend,
    resolve_backend,
    set_default_backend,
)
from repro.core.statistics import FdStatistics
from repro.relation import FunctionalDependency, Relation

try:
    import numpy  # noqa: F401

    HAVE_NUMPY = True
except ImportError:  # pragma: no cover - exercised by the no-numpy CI job
    HAVE_NUMPY = False

requires_numpy = pytest.mark.skipif(not HAVE_NUMPY, reason="numpy not installed")


# ----------------------------------------------------------------------
# Randomised relation generation (pure ``random``: runs without numpy)
# ----------------------------------------------------------------------
def random_relation(seed: int) -> Relation:
    """A random relation with NULLs, skew, and mixed value types."""
    rng = random.Random(seed)
    num_attributes = rng.randint(2, 5)
    attributes = [f"A{i}" for i in range(num_attributes)]
    num_rows = rng.choice([0, 1, 2, rng.randint(3, 60), rng.randint(60, 180)])
    pools = []
    for _ in attributes:
        cardinality = rng.randint(1, 14)
        pools.append(
            [rng.choice([str(v), v, v * 1.5, (v, "t")]) for v in range(cardinality)]
        )
    null_probability = rng.choice([0.0, 0.0, 0.1, 0.4])
    rows = []
    for _ in range(num_rows):
        row = []
        for pool in pools:
            if rng.random() < null_probability:
                row.append(None)
            else:
                # Half-normal index: earlier pool values are much likelier
                # (the skewed-domain regime of the SKEW benchmark).
                index = min(int(abs(rng.gauss(0.0, len(pool) / 3.0))), len(pool) - 1)
                row.append(pool[index])
        rows.append(tuple(row))
    return Relation(attributes, rows, name=f"random-{seed}")


def random_fd(relation: Relation, seed: int) -> FunctionalDependency:
    rng = random.Random(seed)
    attributes = list(relation.attributes)
    lhs_size = rng.randint(1, min(2, len(attributes) - 1))
    lhs = rng.sample(attributes, lhs_size)
    rhs = rng.choice([a for a in attributes if a not in lhs])
    return FunctionalDependency(lhs, rhs)


DEGENERATE_CASES = [
    Relation(["X", "Y"], [], name="empty"),
    Relation(["X", "Y"], [("a", 1)] * 7, name="constant"),
    Relation(["X", "Y"], [(i, i % 2) for i in range(9)], name="key-lhs"),
    Relation(["X", "Y"], [(i % 3, "only") for i in range(9)], name="single-rhs"),
    Relation(["X", "Y"], [(None, 1), (None, 2), ("a", None), ("a", 1)], name="nulls"),
    Relation(["X", "Y"], [(None, None)] * 4, name="all-null"),
]


def _assert_identical_statistics(left: FdStatistics, right: FdStatistics) -> None:
    """Full structural equality, including Counter insertion order."""
    assert left.num_rows == right.num_rows
    assert list(left.xy_counts.items()) == list(right.xy_counts.items())
    assert list(left.x_counts.items()) == list(right.x_counts.items())
    assert list(left.y_counts.items()) == list(right.y_counts.items())
    assert list(left.full_tuple_counts.items()) == list(right.full_tuple_counts.items())
    assert list(left.groups) == list(right.groups)
    for key in left.groups:
        assert list(left.groups[key].items()) == list(right.groups[key].items())
    for fact in (
        "sum_squared_tuple_counts",
        "violating_pair_count",
        "violating_tuple_count",
        "max_subrelation_size",
    ):
        left_value = getattr(left, fact)()
        right_value = getattr(right, fact)()
        assert left_value == right_value, fact
        assert isinstance(left_value, int) and isinstance(right_value, int), fact
    for fact in (
        "sum_squared_x_probabilities",
        "sum_squared_y_probabilities",
        "sum_squared_xy_probabilities",
    ):
        assert getattr(left, fact)() == getattr(right, fact)(), fact


@requires_numpy
@pytest.mark.parametrize("seed", range(60))
def test_backend_parity_on_random_relations(seed):
    relation = random_relation(seed)
    fd = random_fd(relation, seed + 10_000)
    python_statistics = FdStatistics.compute(relation, fd, backend="python")
    numpy_statistics = FdStatistics.compute(relation, fd, backend="numpy")
    _assert_identical_statistics(python_statistics, numpy_statistics)
    for name, measure in all_measures(expectation="exact").items():
        python_score = measure.score_from_statistics(python_statistics)
        numpy_score = measure.score_from_statistics(numpy_statistics)
        assert python_score == numpy_score, (name, python_score, numpy_score)


@requires_numpy
@pytest.mark.parametrize("case", DEGENERATE_CASES, ids=lambda c: c.name)
def test_backend_parity_on_degenerate_relations(case):
    fd = FunctionalDependency("X", "Y")
    python_statistics = FdStatistics.compute(case, fd, backend="python")
    numpy_statistics = FdStatistics.compute(case, fd, backend="numpy")
    _assert_identical_statistics(python_statistics, numpy_statistics)
    for name, measure in all_measures(expectation="exact").items():
        assert measure.score_from_statistics(
            python_statistics
        ) == measure.score_from_statistics(numpy_statistics), name


@requires_numpy
def test_backend_parity_with_monte_carlo_expectation():
    """The seeded Monte-Carlo expectation is deterministic per backend pair."""
    relation = random_relation(3)
    fd = random_fd(relation, 42)
    python_statistics = FdStatistics.compute(relation, fd, backend="python")
    numpy_statistics = FdStatistics.compute(relation, fd, backend="numpy")
    measures = all_measures(expectation="monte-carlo", mc_samples=25)
    for name in ("rfi_plus", "rfi_prime_plus"):
        assert measures[name].score_from_statistics(
            python_statistics
        ) == measures[name].score_from_statistics(numpy_statistics), name


@requires_numpy
def test_backend_parity_on_multi_attribute_lhs():
    relation = random_relation(17)
    attributes = list(relation.attributes)
    fd = FunctionalDependency(attributes[:2], attributes[-1])
    python_statistics = FdStatistics.compute(relation, fd, backend="python")
    numpy_statistics = FdStatistics.compute(relation, fd, backend="numpy")
    _assert_identical_statistics(python_statistics, numpy_statistics)


# ----------------------------------------------------------------------
# Backend selection
# ----------------------------------------------------------------------
def test_python_backend_always_available():
    assert "python" in available_backends()
    assert resolve_backend("python").name == "python"


def test_unknown_backend_rejected():
    with pytest.raises(ValueError, match="unknown statistics backend"):
        resolve_backend("polars")
    with pytest.raises(ValueError, match="unknown statistics backend"):
        set_default_backend("polars")


def test_set_default_backend_round_trip():
    try:
        set_default_backend("python")
        assert get_default_backend() == "python"
        statistics = FdStatistics.compute(
            Relation(["X", "Y"], [("a", 1), ("a", 2)]), FunctionalDependency("X", "Y")
        )
        assert statistics.num_rows == 2
    finally:
        set_default_backend(None)


def test_environment_variable_override(monkeypatch):
    monkeypatch.setenv(BACKEND_ENV_VAR, "python")
    assert resolve_backend(None).name == "python"
    monkeypatch.setenv(BACKEND_ENV_VAR, "auto")
    assert resolve_backend(None).name in available_backends()


def test_numpy_request_falls_back_without_numpy(monkeypatch):
    """Requesting numpy when it is absent degrades to the python backend."""
    monkeypatch.setattr(backends, "np", None)
    assert resolve_backend("numpy").name == "python"
    assert available_backends() == ("python",)
    assert resolve_backend("auto").name == "python"


# ----------------------------------------------------------------------
# Integer precision (the 2**53 cache fix)
# ----------------------------------------------------------------------
def test_integer_statistics_are_exact_beyond_float_precision():
    """Counts above 2**53 must not round-trip through float."""
    huge = 2**53 + 1
    fd = FunctionalDependency("X", "Y")
    statistics = FdStatistics.from_joint_counts(
        fd,
        num_rows=huge + 2,
        xy_counts=Counter({(("a",), ("p",)): huge, (("a",), ("q",)): 2}),
        full_tuple_counts=Counter({("a", "p"): huge, ("a", "q"): 2}),
    )
    assert statistics.sum_squared_tuple_counts() == huge * huge + 4
    assert statistics.violating_pair_count() == (huge + 2) ** 2 - (huge * huge + 4)
    assert statistics.violating_tuple_count() == huge + 2
    assert statistics.max_subrelation_size() == huge
    # A second call hits the cache and must still be the exact int.
    assert statistics.sum_squared_tuple_counts() == huge * huge + 4
    assert isinstance(statistics.sum_squared_tuple_counts(), int)


# ----------------------------------------------------------------------
# Columnar substrate
# ----------------------------------------------------------------------
@requires_numpy
def test_columnar_encoding_round_trip():
    relation = Relation(
        ["A", "B"],
        [("x", 1), ("y", None), ("x", 1), (None, 2), ("z", 1)],
    )
    columnar = relation.columnar()
    assert columnar is relation.columnar()  # cached on the relation
    assert columnar.codes("A").tolist() == [0, 1, 0, -1, 2]
    assert columnar.cardinality("A") == 3
    assert columnar.decode_table("A") == ["x", "y", "z"]
    assert columnar.null_count("A") == 1 and columnar.null_count("B") == 1
    assert columnar.has_nulls(["A"]) and columnar.has_nulls(["A", "B"])
    mask = columnar.non_null_mask(["A", "B"])
    assert mask.tolist() == [True, False, True, False, True]
    assert columnar.non_null_mask([]) is None


@requires_numpy
def test_columnar_grouped_matches_counter_order():
    relation = random_relation(23)
    columnar = relation.columnar()
    for attribute in relation.attributes:
        groups = columnar.grouped((attribute,))
        expected = Counter(relation.column(attribute))
        keys = [relation.column(attribute)[r] for r in groups.first_rows.tolist()]
        assert [expected[k] for k in keys] == groups.counts.tolist()


@requires_numpy
def test_columnar_view_distinguishes_equal_reprs():
    """Dictionary encoding must key on value equality, not representation."""
    relation = Relation(["A", "B"], [(1, "a"), (True, "a"), ("1", "a"), (1.0, "a")])
    # 1 == True == 1.0 in Python, "1" differs: two distinct codes.
    assert relation.columnar().cardinality("A") == 2
    statistics = FdStatistics.compute(relation, FunctionalDependency("A", "B"))
    assert statistics.distinct_x == 2


def test_columnar_absent_without_numpy(monkeypatch):
    import repro.relation.columnar as columnar_module

    monkeypatch.setattr(columnar_module, "np", None)
    relation = Relation(["A", "B"], [("x", 1)])
    assert relation.columnar() is None
    # The python backend keeps working regardless.
    statistics = FdStatistics.compute(
        relation, FunctionalDependency("A", "B"), backend="python"
    )
    assert statistics.num_rows == 1


# ----------------------------------------------------------------------
# Partition layer over code arrays
# ----------------------------------------------------------------------
@requires_numpy
@pytest.mark.parametrize("seed", range(12))
def test_partition_from_columnar_codes_matches_row_scan(seed):
    from repro.relation.partition import StrippedPartition

    relation = random_relation(seed)
    with_view = Relation(relation.attributes, relation.rows())
    with_view.columnar()
    for attributes in [relation.attributes[:1], relation.attributes[:2]]:
        plain = StrippedPartition.from_relation(relation, attributes)
        columnar = StrippedPartition.from_relation(with_view, attributes)
        assert plain.clusters == columnar.clusters
        assert plain.error() == columnar.error()


@requires_numpy
def test_vectorised_intersect_matches_dict_probing(monkeypatch):
    import repro.relation.partition as partition_module
    from repro.relation.partition import StrippedPartition

    rng = random.Random(5)
    rows = [(rng.randint(0, 4), rng.randint(0, 5), 0) for _ in range(4000)]
    relation = Relation(["A", "B", "C"], rows)
    left = StrippedPartition.from_relation(relation, ["A"])
    right = StrippedPartition.from_relation(relation, ["B"])
    assert min(left.total_positions, right.total_positions) >= (
        partition_module._VECTORISE_THRESHOLD
    )
    vectorised = left.intersect(right)
    monkeypatch.setattr(partition_module, "np", None)
    dict_probed = left.intersect(right)
    assert vectorised.clusters == dict_probed.clusters


# ----------------------------------------------------------------------
# Harness / discovery threading
# ----------------------------------------------------------------------
@requires_numpy
def test_evaluate_specs_bit_identical_across_backends():
    from repro.evaluation.harness import evaluate_specs
    from repro.evaluation.scoring import MeasureConfig
    from repro.synthetic.benchmarks import benchmark_specs

    specs = benchmark_specs("err", steps=2, tables_per_step=1, max_rows=120)
    config = MeasureConfig(expectation="monte-carlo", mc_samples=10)
    python_result = evaluate_specs(specs, config, backend="python")
    numpy_result = evaluate_specs(specs, config, backend="numpy")
    for python_row, numpy_row in zip(python_result.rows, numpy_result.rows):
        assert python_row.scores == numpy_row.scores


@requires_numpy
def test_discovery_bit_identical_across_backends():
    from repro.discovery import discover_afds

    relation = random_relation(31)
    python_result = discover_afds(relation, threshold=0.0, max_lhs_size=2, backend="python")
    numpy_result = discover_afds(relation, threshold=0.0, max_lhs_size=2, backend="numpy")
    assert len(python_result.candidates) == len(numpy_result.candidates)
    for left, right in zip(python_result.candidates, numpy_result.candidates):
        assert left.fd == right.fd
        assert left.scores == right.scores


# ----------------------------------------------------------------------
# Runtime driver (Table V)
# ----------------------------------------------------------------------
@requires_numpy
def test_runtime_driver_smoke(tmp_path):
    from repro.experiments.runtime import RuntimeConfig, run_runtime

    bench_path = tmp_path / "BENCH_runtime.json"
    payload = run_runtime(
        RuntimeConfig(sizes=(120, 300), repeats=2, warmup_runs=1, mc_samples=5),
        output_dir=str(tmp_path / "results"),
        bench_path=str(bench_path),
    )
    assert payload["experiment"] == "runtime"
    assert [entry["num_rows"] for entry in payload["relations"]] == [120, 300]
    for entry in payload["relations"]:
        assert set(entry["backends"]) == set(payload["backends"])
        for cell in entry["backends"].values():
            assert cell["statistics_seconds_median"] >= 0.0
            assert len(cell["measure_seconds_median"]) == 14
    assert payload["largest"]["num_rows"] == 300
    if {"python", "numpy"} <= set(payload["backends"]):
        assert payload["speedup"] is not None and payload["speedup"] > 0.0
    assert (tmp_path / "results" / "runtime" / "summary.json").exists()
    assert (tmp_path / "results" / "runtime" / "summary.csv").exists()

    import json

    record = json.loads(bench_path.read_text())
    assert record["relations"][0]["name"] == "runtime[120]"


@requires_numpy
def test_runtime_single_backend_has_no_speedup(tmp_path):
    from repro.experiments.runtime import RuntimeConfig, run_runtime

    payload = run_runtime(
        RuntimeConfig(sizes=(80,), backends=("python",), repeats=1, mc_samples=5),
        output_dir=None,
        bench_path=None,
    )
    assert payload["speedup"] is None
    assert list(payload["relations"][0]["backends"]) == ["python"]


@requires_numpy
def test_runtime_rejects_unavailable_backend():
    from repro.experiments.runtime import RuntimeConfig

    with pytest.raises(ValueError, match="not available"):
        RuntimeConfig(backends=("polars",)).resolved_backends()
