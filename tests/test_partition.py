"""Tests of the stripped-partition substrate (PLI algebra)."""

import random

import pytest

from repro.core import FdStatistics
from repro.core.violation import G3Measure
from repro.relation import FunctionalDependency, Relation
from repro.relation.partition import StrippedPartition, partition_for

RELATION = Relation(
    ["a", "b", "c"],
    [
        (1, "x", "p"),
        (1, "x", "p"),
        (1, "y", "q"),
        (2, "y", "q"),
        (2, "y", "q"),
        (3, "z", "q"),
    ],
    name="partition-demo",
)


def random_relation(seed, num_rows=40, attributes=("a", "b", "c", "d"), null_rate=0.0):
    rng = random.Random(seed)
    rows = []
    for _ in range(num_rows):
        row = []
        for position in range(len(attributes)):
            if null_rate and rng.random() < null_rate:
                row.append(None)
            else:
                row.append(rng.randint(0, 2 + position))
        rows.append(tuple(row))
    return Relation(attributes, rows, name=f"random-{seed}")


# ----------------------------------------------------------------------
# Size-mismatch guards
# ----------------------------------------------------------------------
def test_refines_rejects_partitions_over_different_relation_sizes():
    smaller = partition_for(RELATION, "a")
    bigger = StrippedPartition(RELATION.num_rows + 4, [(0, 1, 2, 3, 4, 5, 6)], ("x",))
    with pytest.raises(ValueError):
        smaller.refines(bigger)
    with pytest.raises(ValueError):
        bigger.refines(smaller)


def test_intersect_rejects_partitions_over_different_relation_sizes():
    smaller = partition_for(RELATION, "a")
    bigger = StrippedPartition(RELATION.num_rows + 1, [(0, 1)], ("x",))
    with pytest.raises(ValueError):
        smaller.intersect(bigger)


def test_g3_error_rejects_partitions_over_different_relation_sizes():
    smaller = partition_for(RELATION, "a")
    bigger = StrippedPartition(RELATION.num_rows + 1, [(0, 1)], ("x",))
    with pytest.raises(ValueError):
        smaller.g3_error(bigger)


# ----------------------------------------------------------------------
# Partition algebra
# ----------------------------------------------------------------------
def test_intersect_matches_direct_computation_and_is_symmetric():
    for seed in range(5):
        relation = random_relation(seed)
        pi_a = partition_for(relation, "a")
        pi_b = partition_for(relation, "b")
        direct = partition_for(relation, ["a", "b"])
        product = pi_a.intersect(pi_b)
        mirrored = pi_b.intersect(pi_a)
        assert product.clusters == direct.clusters
        assert mirrored.clusters == direct.clusters
        assert product.attributes == direct.attributes


def test_intersect_chain_builds_level_three_partition():
    relation = random_relation(11)
    chained = (
        partition_for(relation, "a")
        .intersect(partition_for(relation, "b"))
        .intersect(partition_for(relation, "c"))
    )
    direct = partition_for(relation, ["a", "b", "c"])
    assert chained.clusters == direct.clusters


def test_probe_table_is_cached_and_consistent():
    partition = partition_for(RELATION, "a")
    table = partition.probe_table()
    assert table is partition.probe_table()  # built once, reused
    for cluster_id, cluster in enumerate(partition.clusters):
        for position in cluster:
            assert table[position] == cluster_id
    stripped = set(range(RELATION.num_rows)) - {
        position for cluster in partition.clusters for position in cluster
    }
    assert all(table[position] == -1 for position in stripped)


def test_error_and_key_detection():
    assert partition_for(RELATION, "a").error() == pytest.approx(
        (6 - 3) / 6
    )  # clusters {1,1},{2,2} sizes 3+2, plus singleton 3
    key = Relation(["id"], [(1,), (2,), (3,)])
    partition = partition_for(key, "id")
    assert partition.error() == 0.0
    assert partition.is_key()


# ----------------------------------------------------------------------
# g3 from partitions vs g3 from statistics
# ----------------------------------------------------------------------
@pytest.mark.parametrize("lhs", [("a",), ("a", "b"), ("a", "b", "c")])
def test_g3_error_matches_statistics_on_multi_attribute_lhs(lhs):
    """Partition ``g3_error`` must equal ``1 - g3`` from FdStatistics."""
    measure = G3Measure()
    for seed in range(8):
        relation = random_relation(seed)
        fd = FunctionalDependency(lhs, "d")
        statistics = FdStatistics.compute(relation, fd)
        g3_score = measure.score_from_statistics(statistics)
        pi_lhs = partition_for(relation, lhs)
        pi_joint = partition_for(relation, lhs + ("d",))
        assert pi_lhs.g3_error(pi_joint) == pytest.approx(1.0 - g3_score, abs=1e-12)


def test_g3_error_diverges_from_statistics_under_nulls():
    """Partitions treat NULL as a value; the paper's semantics drop the row.

    This asymmetry is exactly why discovery must fall through to the
    statistics path for candidates touching NULL attributes.
    """
    relation = Relation(
        ["a", "b"],
        [(1, "x"), (1, "y"), (1, None), (2, "z"), (2, "z")],
    )
    fd = FunctionalDependency("a", "b")
    statistics = FdStatistics.compute(relation, fd)
    stats_error = 1.0 - G3Measure().score_from_statistics(statistics)
    partition_error = partition_for(relation, "a").g3_error(
        partition_for(relation, ["a", "b"])
    )
    # 4 non-NULL rows, one removal needed: stats error 1/4; partitions keep
    # the NULL row and need 2 removals out of 5.
    assert stats_error == pytest.approx(0.25)
    assert partition_error == pytest.approx(0.4)
    assert stats_error != partition_error
