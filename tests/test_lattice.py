"""Tests of the TANE-style multi-attribute lattice discovery."""

import json
import random

import pytest

from repro.core import FdStatistics
from repro.core.registry import subset
from repro.discovery import brute_force_afds, discover_afds, lattice_discover
from repro.discovery.__main__ import main as discovery_main
from repro.relation import FunctionalDependency, Relation

FAST_MEASURES = ("rho", "g2", "g3", "g3_prime", "g1", "g1_prime", "pdep", "tau", "mu_plus")


def fast_measures():
    return subset(FAST_MEASURES)


def random_relation(seed, num_rows=30, attributes=("a", "b", "c", "d"), null_rate=0.0):
    rng = random.Random(seed)
    rows = []
    for _ in range(num_rows):
        row = []
        for position in range(len(attributes)):
            if null_rate and rng.random() < null_rate:
                row.append(None)
            else:
                row.append(rng.randint(0, 2 + position))
        rows.append(tuple(row))
    return Relation(attributes, rows, name=f"random-{seed}")


def wide_relation(num_rows=60, seed=3):
    """A 10-attribute relation with a key, exact chains and noisy columns."""
    rng = random.Random(seed)
    rows = []
    for index in range(num_rows):
        base = rng.randint(0, 9)
        derived = base % 4  # base -> derived holds exactly (non-key LHS)
        noisy = derived if rng.random() < 0.9 else rng.randint(0, 3)
        rows.append(
            (
                index,  # key
                base,
                derived,
                noisy,
                rng.randint(0, 2),
                rng.randint(0, 2),
                rng.randint(0, 4),
                rng.randint(0, 4),
                base % 3,
                rng.randint(0, 1),
            )
        )
    return Relation([f"a{i}" for i in range(10)], rows, name="wide")


# ----------------------------------------------------------------------
# Bit-identical cross-validation against brute force
# ----------------------------------------------------------------------
@pytest.mark.parametrize("null_rate", [0.0, 0.15])
def test_lattice_scores_match_brute_force(null_rate):
    """Property check: every lattice candidate scores bit-identically to a
    direct FdStatistics pass, with and without the NULL fall-through."""
    measures = fast_measures()
    for seed in range(5):
        relation = random_relation(seed, null_rate=null_rate)
        lattice = discover_afds(relation, measures=measures, threshold=0.0, max_lhs_size=2)
        brute = brute_force_afds(relation, measures=measures, threshold=0.0, max_lhs_size=2)
        brute_by_fd = {candidate.fd: candidate for candidate in brute.candidates}
        assert lattice.candidates, "empty candidate grid"
        for candidate in lattice.candidates:
            reference = brute_by_fd[candidate.fd]
            assert candidate.scores == reference.scores, str(candidate.fd)
            assert candidate.exact == reference.exact, str(candidate.fd)


def test_lattice_candidate_grid_without_keys_is_exhaustive():
    relation = random_relation(1)  # 4 attributes, no keys at 30 rows
    result = discover_afds(relation, measures=fast_measures(), threshold=0.0, max_lhs_size=2)
    # level 1: 4*3 ordered pairs; level 2: C(4,2)=6 LHS sets x 2 remaining RHS.
    assert result.pruned_key == 0
    assert len(result.candidates) == 12 + 12
    lhs_sizes = {len(candidate.fd.lhs) for candidate in result.candidates}
    assert lhs_sizes == {1, 2}


def test_multi_attribute_candidates_flow_through_measures():
    relation = random_relation(2)
    result = discover_afds(relation, measures=fast_measures(), threshold=0.0, max_lhs_size=3)
    deep = [candidate for candidate in result.candidates if len(candidate.fd.lhs) == 3]
    assert deep
    for candidate in deep:
        statistics = FdStatistics.compute(relation, candidate.fd)
        for name, measure in fast_measures().items():
            assert candidate.scores[name] == measure.score_from_statistics(statistics)


# ----------------------------------------------------------------------
# Pruning
# ----------------------------------------------------------------------
def test_key_lhs_candidates_score_one_and_are_not_expanded():
    relation = wide_relation()
    result = discover_afds(relation, measures=fast_measures(), threshold=0.0, max_lhs_size=2)
    assert result.pruned_key >= 9  # the key column against every other attribute
    for candidate in result.candidates:
        if "a0" in candidate.fd.lhs:
            # a0 is a key: only level-1 candidates, all exact 1.0 — supersets
            # of a key are redundant and must not be generated.
            assert candidate.fd.lhs == ("a0",)
            assert candidate.exact
            assert all(score == 1.0 for score in candidate.scores.values())


def test_supersets_of_exact_lhs_are_pruned_and_score_one():
    relation = wide_relation()
    # a1 -> a2 holds exactly and a1 is not a key.
    assert relation.satisfies(FunctionalDependency("a1", "a2"))
    result = discover_afds(relation, measures=fast_measures(), threshold=0.0, max_lhs_size=2)
    supersets = [
        candidate
        for candidate in result.candidates
        if candidate.fd.rhs == ("a2",) and "a1" in candidate.fd.lhs
    ]
    assert len(supersets) > 1  # the exact FD itself plus its augmentations
    for candidate in supersets:
        assert candidate.exact
        assert all(score == 1.0 for score in candidate.scores.values())


def test_statistics_counter_beats_brute_force_on_wide_relation():
    """Acceptance criterion: measurably fewer FdStatistics.compute calls."""
    relation = wide_relation()
    measures = subset(("g3",))
    compute_calls = {"lattice": 0}
    original = FdStatistics.compute.__func__

    def counting(cls, rel, fd, backend=None):
        compute_calls["lattice"] += 1
        return original(cls, rel, fd, backend=backend)

    FdStatistics.compute = classmethod(counting)
    try:
        lattice = discover_afds(relation, measures=measures, threshold=0.0, max_lhs_size=2)
    finally:
        FdStatistics.compute = classmethod(original)
    brute = brute_force_afds(relation, measures=measures, threshold=0.0, max_lhs_size=2)
    # The counter reflects the real number of statistics passes...
    assert compute_calls["lattice"] == lattice.statistics_computed
    # ...which beats one-pass-per-candidate brute force on both pool sizes.
    assert lattice.statistics_computed < len(lattice.candidates)
    assert lattice.statistics_computed < brute.statistics_computed
    assert lattice.pruned_exact > 0 and lattice.pruned_key > 0
    # Identical scores wherever both enumerate the candidate.
    brute_by_fd = {candidate.fd: candidate for candidate in brute.candidates}
    for candidate in lattice.candidates:
        assert candidate.scores == brute_by_fd[candidate.fd].scores


def test_g3_bound_drops_only_low_g3_candidates():
    relation = random_relation(4)
    measures = fast_measures()
    unbounded = discover_afds(relation, measures=measures, threshold=0.0, max_lhs_size=2)
    bounded = discover_afds(
        relation, measures=measures, threshold=0.0, max_lhs_size=2, g3_bound=0.9
    )
    assert bounded.pruned_bound > 0
    kept = {candidate.fd for candidate in bounded.candidates}
    for candidate in unbounded.candidates:
        if candidate.fd in kept:
            continue
        # Dropped candidates all sit below the bound (partition g3 is exact
        # on this NULL-free relation, so the stats g3 agrees).
        assert candidate.scores["g3"] < 0.9
    by_fd = {candidate.fd: candidate.scores for candidate in unbounded.candidates}
    for candidate in bounded.candidates:
        assert candidate.scores == by_fd[candidate.fd]  # survivors unchanged


def test_nulls_fall_through_to_statistics_path():
    relation = Relation(
        ["a", "b", "c"],
        [(1, "x", "u"), (1, "x", "u"), (2, None, "v"), (2, None, "v"), (3, "y", None)],
        name="nulls",
    )
    result = discover_afds(relation, threshold=0.0, max_lhs_size=2)
    # Neither b nor c can use partition shortcuts, so their candidates all
    # hit the statistics path; only NULL-free pairs may be pruned.
    for candidate in result.candidates:
        statistics = FdStatistics.compute(relation, candidate.fd)
        expected_exact = statistics.satisfied or statistics.is_empty
        assert candidate.exact == expected_exact, str(candidate.fd)


# ----------------------------------------------------------------------
# Facade and validation
# ----------------------------------------------------------------------
def test_max_lhs_size_one_reproduces_linear_search():
    relation = random_relation(5)
    linear = discover_afds(relation, measures=fast_measures(), threshold=0.0)
    assert linear.max_lhs_size == 1
    assert all(len(candidate.fd.lhs) == 1 for candidate in linear.candidates)
    assert len(linear.candidates) == 12


def test_invalid_parameters_raise():
    relation = random_relation(6)
    with pytest.raises(ValueError):
        discover_afds(relation, max_lhs_size=0)
    with pytest.raises(ValueError):
        discover_afds(relation, max_lhs_size=2, g3_bound=1.5)
    with pytest.raises(ValueError):
        lattice_discover(relation, max_lhs_size=-1)


def test_lhs_restriction_bounds_the_lattice():
    relation = random_relation(7)
    result = discover_afds(
        relation,
        measures=fast_measures(),
        threshold=0.0,
        max_lhs_size=2,
        lhs_attributes=["a", "b"],
        rhs_attributes=["c"],
    )
    lhs_sets = {candidate.fd.lhs for candidate in result.candidates}
    assert lhs_sets == {("a",), ("b",), ("a", "b")}


def test_counters_mapping_is_consistent():
    relation = wide_relation()
    result = discover_afds(relation, measures=subset(("g3",)), threshold=0.0, max_lhs_size=2)
    counters = result.counters()
    assert counters["candidates"] == len(result.candidates)
    assert (
        counters["pruned_exact"] + counters["pruned_key"] + counters["statistics_computed"]
        == counters["candidates"]
    )


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
def test_cli_json_on_csv_file(tmp_path, capsys):
    csv_path = tmp_path / "demo.csv"
    csv_path.write_text(
        "zip,city,country\n"
        "1000,Brussels,BE\n1000,Brussels,BE\n1000,Bruxelles,BE\n"
        "3590,Diepenbeek,BE\n75001,Paris,FR\n"
    )
    out_path = tmp_path / "result.json"
    exit_code = discovery_main(
        [
            str(csv_path),
            "--max-lhs-size",
            "2",
            "--threshold",
            "0.8",
            "--measures",
            "g3,mu_plus",
            "--output",
            str(out_path),
        ]
    )
    assert exit_code == 0
    payload = json.loads(out_path.read_text())
    assert payload["max_lhs_size"] == 2
    assert set(payload["accepted"]) == {"g3", "mu_plus"}
    accepted_g3 = {(tuple(fd["lhs"]), tuple(fd["rhs"])) for fd in payload["accepted"]["g3"]}
    assert (("zip",), ("country",)) in accepted_g3
    assert payload["counters"]["candidates"] == 9  # 6 linear + 3 level-2


def test_cli_csv_on_named_dataset(tmp_path):
    out_path = tmp_path / "accepted.csv"
    exit_code = discovery_main(
        [
            "--dataset",
            "R1",
            "--rows",
            "120",
            "--max-lhs-size",
            "2",
            "--measures",
            "g3",
            "--format",
            "csv",
            "--output",
            str(out_path),
        ]
    )
    assert exit_code == 0
    lines = out_path.read_text().strip().splitlines()
    assert lines[0] == "measure,lhs,rhs,score,exact"
    assert len(lines) > 1


def test_cli_rejects_unknown_measures(tmp_path, capsys):
    csv_path = tmp_path / "demo.csv"
    csv_path.write_text("a,b\n1,2\n")
    exit_code = discovery_main([str(csv_path), "--measures", "nope"])
    assert exit_code == 2
    assert "unknown measures" in capsys.readouterr().err
