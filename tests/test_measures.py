"""Golden-value tests for all fourteen AFD measures.

Every score on the quickstart relation (zip -> city) is checked against a
value derived *by hand* from the paper's definitions — the arithmetic in
this file deliberately repeats the formulas with plain ``math`` calls
instead of reusing any library code, so a silent regression in the
partition/entropy bookkeeping cannot cancel out.
"""

import math

import pytest

from repro.core import FdStatistics, MeasureClass, all_measures, get_measure, measure_names
from repro.core.expectations import (
    expected_mutual_information_exact,
    expected_value_by_enumeration,
)
from repro.core.registry import MEASURE_ORDER, register_measure, unregister_measure
from repro.info.shannon import mutual_information
from repro.relation import FunctionalDependency, Relation

try:
    import numpy  # noqa: F401

    HAVE_NUMPY = True
except ImportError:  # pragma: no cover - exercised by the no-numpy CI job
    HAVE_NUMPY = False

#: The Monte-Carlo permutation expectation needs numpy; everything else
#: here runs on the pure-python backend and stays in the no-numpy job.
requires_numpy = pytest.mark.skipif(not HAVE_NUMPY, reason="numpy not installed")

# The quickstart relation: N=4, groups zip=1000 -> {Brussels: 2, Bruxelles: 1},
# zip=3590 -> {Diepenbeek: 1}.
QUICKSTART = Relation(
    ["zip", "city"],
    [
        ("1000", "Brussels"),
        ("1000", "Brussels"),
        ("1000", "Bruxelles"),
        ("3590", "Diepenbeek"),
    ],
)
FD = FunctionalDependency("zip", "city")


def entropy2(counts):
    """Independent Shannon entropy (base 2) used to derive golden values."""
    total = sum(counts)
    return -sum(c / total * math.log2(c / total) for c in counts if c)


# Hand-derived quantities of the quickstart relation.
H_X = entropy2([3, 1])
H_Y = entropy2([2, 1, 1])  # = 1.5
H_XY = entropy2([2, 1, 1])  # joint counts happen to match the Y marginal
H_Y_GIVEN_X = H_XY - H_X
FI = 1.0 - H_Y_GIVEN_X / H_Y
PDEP_Y = (2**2 + 1 + 1) / 16  # 3/8
PDEP_XY = 1.0 - (3 / 4) * (1 - (2 / 3) ** 2 - (1 / 3) ** 2)  # = 2/3
E_PDEP = PDEP_Y + ((2 - 1) / (4 - 1)) * (1 - PDEP_Y)  # Theorem 1, K=2, N=4

GOLDEN = {
    "rho": 2 / 3,  # |dom(X)| / |dom(XY)| = 2/3
    "g2": 1 / 4,  # 3 of 4 tuples are in a violating pair
    "g3": 3 / 4,  # keep {Brussels, Brussels, Diepenbeek}
    "g3_prime": (3 - 2) / (4 - 2),
    "g1": 1 - 4 / 16,  # violating ordered pairs: 3^2 - (2^2 + 1^2) = 4
    "g1_prime": 1 - 4 / (16 - 6),  # sum of squared tuple multiplicities = 6
    "pdep": PDEP_XY,
    "tau": (PDEP_XY - PDEP_Y) / (1 - PDEP_Y),  # = 7/15
    "mu_plus": (PDEP_XY - E_PDEP) / (1 - E_PDEP),  # = 1/5
    "gS1": 1.0 - H_Y_GIVEN_X,
    "fi": FI,
}


@pytest.mark.parametrize("name,expected", sorted(GOLDEN.items()))
def test_golden_value(name, expected):
    assert get_measure(name).score(QUICKSTART, FD) == pytest.approx(expected, abs=1e-12)


def test_tau_and_mu_plus_exact_fractions():
    assert get_measure("tau").score(QUICKSTART, FD) == pytest.approx(7 / 15, abs=1e-12)
    assert get_measure("mu_plus").score(QUICKSTART, FD) == pytest.approx(1 / 5, abs=1e-12)


def test_rfi_measures_against_brute_force_enumeration():
    """The exact hypergeometric E[I] must equal the 4!-permutation average."""
    statistics = FdStatistics.compute(QUICKSTART, FD)
    brute_force = expected_value_by_enumeration(statistics.xy_counts, mutual_information)
    exact = expected_mutual_information_exact([3, 1], [2, 1, 1])
    assert exact == pytest.approx(brute_force, abs=1e-9)

    expected_fi = exact / H_Y
    rfi = get_measure("rfi_plus").score(QUICKSTART, FD)
    rfi_prime = get_measure("rfi_prime_plus").score(QUICKSTART, FD)
    assert rfi == pytest.approx(max(FI - expected_fi, 0.0), abs=1e-9)
    assert rfi_prime == pytest.approx(
        max((FI - expected_fi) / (1 - expected_fi), 0.0), abs=1e-9
    )


def test_sfi_golden_value():
    """SFI(0.5) is FI on the 2x3 smoothed contingency table, derived by hand."""
    smoothed = [2.5, 1.5, 0.5, 0.5, 0.5, 1.5]  # row-major over dom(X) x dom(Y)
    x_marginal = [2.5 + 1.5 + 0.5, 0.5 + 0.5 + 1.5]
    y_marginal = [2.5 + 0.5, 1.5 + 0.5, 0.5 + 1.5]
    h_y_given_x = entropy2(smoothed) - entropy2(x_marginal)
    expected = 1.0 - h_y_given_x / entropy2(y_marginal)
    assert get_measure("sfi").score(QUICKSTART, FD) == pytest.approx(expected, abs=1e-12)


# ----------------------------------------------------------------------
# Edge cases shared by all fourteen measures
# ----------------------------------------------------------------------
def test_exact_fd_scores_one_for_every_measure():
    relation = Relation(
        ["zip", "city"],
        [("1000", "Brussels"), ("1000", "Brussels"), ("3590", "Diepenbeek")],
    )
    for name, measure in all_measures().items():
        assert measure.score(relation, FD) == 1.0, name


def test_empty_relation_scores_one_for_every_measure():
    relation = Relation(["zip", "city"], [])
    for name, measure in all_measures().items():
        assert measure.score(relation, FD) == 1.0, name


def test_single_rhs_value_is_satisfied():
    relation = Relation(["zip", "city"], [("1", "A"), ("2", "A"), ("1", "A")])
    for name, measure in all_measures().items():
        assert measure.score(relation, FD) == 1.0, name


@requires_numpy
def test_independence_pushes_corrected_measures_to_zero():
    """On an X-independent Y column the chance-corrected measures vanish."""
    rows = [(i % 10, (i // 10) % 10) for i in range(400)]  # full 10x10 grid, 4x each
    relation = Relation(["zip", "city"], [(str(x), str(y)) for x, y in rows])
    assert get_measure("mu_plus").score(relation, FD) == pytest.approx(0.0, abs=0.05)
    assert get_measure("tau").score(relation, FD) == pytest.approx(0.0, abs=0.05)
    assert get_measure("rfi_plus", expectation="monte-carlo", mc_samples=50).score(
        relation, FD
    ) == pytest.approx(0.0, abs=0.05)


@requires_numpy
def test_scores_stay_in_unit_interval_on_noisy_relation():
    rows = [(str(i % 7), str((i * 13 + i // 7) % 5)) for i in range(200)]
    relation = Relation(["zip", "city"], rows)
    statistics = FdStatistics.compute(relation, FD)
    for name, measure in all_measures(expectation="monte-carlo", mc_samples=30).items():
        score = measure.score_from_statistics(statistics)
        assert 0.0 <= score <= 1.0, name


# ----------------------------------------------------------------------
# Registry contract
# ----------------------------------------------------------------------
def test_registry_has_exactly_the_fourteen_paper_measures():
    measures = all_measures()
    assert list(measures) == list(MEASURE_ORDER)
    assert len(measures) == 14


def test_measure_classes_partition_into_the_three_paper_classes():
    by_class = {MeasureClass.VIOLATION: 0, MeasureClass.SHANNON: 0, MeasureClass.LOGICAL: 0}
    for measure in all_measures().values():
        by_class[measure.measure_class] += 1
    assert by_class == {
        MeasureClass.VIOLATION: 4,
        MeasureClass.SHANNON: 5,
        MeasureClass.LOGICAL: 5,
    }


def test_shared_statistics_equal_direct_scoring():
    statistics = FdStatistics.compute(QUICKSTART, FD)
    for name, measure in all_measures().items():
        assert measure.score(QUICKSTART, FD) == measure.score_from_statistics(statistics), name


def test_register_measure_extends_iteration():
    base = get_measure("g3")

    class Doubled:
        name = "g3_copy"
        measure_class = base.measure_class

        def score_from_statistics(self, statistics):
            return base.score_from_statistics(statistics)

        def score(self, relation, fd, statistics=None):
            return base.score(relation, fd, statistics)

    try:
        register_measure("g3_copy", Doubled)
        measures = all_measures()
        assert list(measures)[:14] == list(MEASURE_ORDER)
        assert "g3_copy" in measures
        assert measures["g3_copy"].score(QUICKSTART, FD) == get_measure("g3").score(
            QUICKSTART, FD
        )
        assert measure_names() == list(MEASURE_ORDER)  # canonical list is unchanged
    finally:
        unregister_measure("g3_copy")
    assert "g3_copy" not in all_measures()


def test_canonical_names_cannot_be_overridden():
    with pytest.raises(ValueError):
        register_measure("mu_plus", lambda: None)
