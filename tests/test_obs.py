"""Tests for ``repro.obs``: metrics algebra, tracing, logs, and the
observability surface of the service.

* The registry is a **mergeable partial**: counters/gauges/histogram
  cells sum keywise, and :func:`merge_snapshots` is associative and
  commutative (up to help text) — the property that makes per-worker
  snapshots foldable into one fleet view in any order.
* :func:`render_prometheus` emits the text exposition format 0.0.4; a
  minimal parser here re-reads every sample and checks the histogram
  invariants (cumulative buckets, ``+Inf`` == count).
* Tracing: a ``trace_id`` sent as ``X-Trace-Id`` crosses the front end,
  the shard pipe, and the worker session, and comes back both as a
  response header and in the JSON request log with per-stage spans.
* **Observability is read-only**: scoring and discovery are
  bit-identical with instrumentation enabled and disabled, on every
  available backend.
"""

import json
import os
import random
import re
import signal
import threading
import time
import urllib.request

import pytest

from repro.obs import (
    RequestLogger,
    Trace,
    add_span,
    current_trace,
    format_line,
    merge_snapshots,
    new_trace_id,
    render_prometheus,
    span,
    use_trace,
)
from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    PROMETHEUS_CONTENT_TYPE,
    MetricsRegistry,
    get_registry,
    set_enabled,
)
from repro.relation import Relation
from repro.service.server import make_server, make_sharded_server
from repro.service.session import AfdSession

try:
    import numpy  # noqa: F401

    HAVE_NUMPY = True
except ImportError:  # pragma: no cover - exercised by the no-numpy CI job
    HAVE_NUMPY = False

BACKENDS = ("python", "numpy") if HAVE_NUMPY else ("python",)


def small_relation(name="obs"):
    return Relation(
        ["zip", "city", "street"],
        [
            ("1000", "Brussels", "a"),
            ("1000", "Brussels", "b"),
            ("1000", "Bruxelles", "a"),
            ("3590", "Diepenbeek", "c"),
            ("3590", "Diepenbeek", "c"),
            (None, "X", "d"),
        ],
        name=name,
    )


# ----------------------------------------------------------------------
# MetricsRegistry basics
# ----------------------------------------------------------------------
def test_counter_gauge_histogram_round_trip():
    registry = MetricsRegistry()
    registry.inc("requests_total", route="/x", code="200")
    registry.inc("requests_total", 2, route="/x", code="200")
    registry.inc("requests_total", route="/y", code="500")
    registry.set_gauge("depth", 7, worker="0")
    registry.set_gauge("depth", 3, worker="0")  # gauges overwrite
    registry.observe("latency", 0.004)
    registry.observe("latency", 99.0)  # beyond the last bucket: +Inf only
    assert registry.value("requests_total", route="/x", code="200") == 3
    assert registry.value("requests_total", route="/y", code="500") == 1
    assert registry.value("depth", worker="0") == 3
    assert registry.value("latency") == 2  # histogram value() is the count
    assert registry.value("never_written") == 0
    totals = registry.totals()
    assert totals["requests_total"] == 4 and totals["latency"] == 2


def test_label_names_are_fixed_at_first_use():
    registry = MetricsRegistry()
    registry.inc("c", route="/x")
    with pytest.raises(ValueError):
        registry.inc("c", verb="GET")
    with pytest.raises(ValueError):
        registry.inc("c")  # missing the label entirely
    with pytest.raises(ValueError):
        registry.observe("c", 1.0, route="/x")  # type conflict
    with pytest.raises(ValueError):
        registry.inc("c", -1, route="/x")  # counters are monotone
    with pytest.raises(ValueError):
        registry.inc("bad name!")
    # Keyword order must not matter (the canonical key is sorted).
    registry.inc("two", b="1", a="2")
    registry.inc("two", a="2", b="1")
    assert registry.value("two", a="2", b="1") == 2


def test_disabled_registry_is_a_noop():
    registry = MetricsRegistry(enabled=False)
    registry.inc("c", route="/x")
    registry.observe("h", 1.0)
    registry.set_gauge("g", 5)
    assert registry.to_dict()["metrics"] == {}
    registry.enabled = True
    registry.inc("c", route="/x")
    assert registry.value("c", route="/x") == 1


def _random_registry(seed: int) -> MetricsRegistry:
    rng = random.Random(seed)
    registry = MetricsRegistry()
    for _ in range(rng.randrange(2, 30)):
        kind = rng.choice(("counter", "gauge", "histogram"))
        name = f"{kind}_{rng.randrange(4)}"
        labels = {"route": rng.choice(("/a", "/b")), "code": str(rng.randrange(3))}
        if kind == "counter":
            registry.inc(name, rng.randrange(1, 5), **labels)
        elif kind == "gauge":
            # Quarters are exact in binary: keywise float sums then agree
            # regardless of merge order, so equality can stay exact.
            registry.set_gauge(name, rng.randrange(40) / 4, **labels)
        else:
            registry.observe(name, rng.randrange(48) / 4, **labels)
    return registry


@pytest.mark.parametrize("seed", range(6))
def test_merge_snapshots_is_associative_and_commutative(seed):
    a, b, c = (_random_registry(seed * 3 + i).to_dict() for i in range(3))
    left = merge_snapshots(merge_snapshots(a, b), c)
    right = merge_snapshots(a, merge_snapshots(b, c))
    flat = merge_snapshots(a, b, c)
    assert left == right == flat
    assert merge_snapshots(c, a, b) == flat
    # Merging is pure: the inputs are not mutated.
    assert a == _random_registry(seed * 3).to_dict()


def test_merge_snapshots_rejects_conflicts():
    counter, gauge = MetricsRegistry(), MetricsRegistry()
    counter.inc("m")
    gauge.set_gauge("m", 1)
    with pytest.raises(ValueError):
        merge_snapshots(counter.to_dict(), gauge.to_dict())
    narrow, wide = MetricsRegistry(), MetricsRegistry()
    narrow.declare_histogram("h", buckets=(1.0, 2.0))
    narrow.observe("h", 1.5)
    wide.observe("h", 1.5)  # DEFAULT_BUCKETS
    with pytest.raises(ValueError):
        merge_snapshots(narrow.to_dict(), wide.to_dict())
    with pytest.raises(ValueError):
        merge_snapshots({"not": "a snapshot"})


# ----------------------------------------------------------------------
# Prometheus text exposition
# ----------------------------------------------------------------------
_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>.*)\})? (?P<value>\S+)$"
)
_LABEL_PAIR_RE = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')


def parse_prometheus(text: str):
    """Minimal exposition parser: {(name, labels-tuple): float} + types."""
    samples, types = {}, {}
    for line in text.splitlines():
        if not line:
            continue
        if line.startswith("# TYPE "):
            _, _, name, type_ = line.split(" ", 3)
            types[name] = type_
            continue
        if line.startswith("#"):
            continue
        match = _SAMPLE_RE.match(line)
        assert match, f"unparseable exposition line: {line!r}"
        labels = tuple(
            sorted(
                (key, value.replace('\\"', '"').replace("\\n", "\n").replace("\\\\", "\\"))
                for key, value in _LABEL_PAIR_RE.findall(match.group("labels") or "")
            )
        )
        value = match.group("value")
        samples[(match.group("name"), labels)] = (
            float("inf") if value == "+Inf" else float(value)
        )
    return samples, types


def test_render_prometheus_round_trips_through_a_parser():
    registry = MetricsRegistry()
    registry.declare_counter(
        "requests_total", help="Requests served.", label_names=("route", "code")
    )
    registry.inc("requests_total", 3, route="/v1/x", code="200")
    registry.set_gauge("depth", 2.5, worker="0")
    for value in (0.002, 0.002, 0.3, 42.0):
        registry.observe("latency", value, stage="pipe")
    text = render_prometheus(registry.to_dict())
    samples, types = parse_prometheus(text)
    assert types == {"requests_total": "counter", "depth": "gauge", "latency": "histogram"}
    assert "# HELP requests_total Requests served." in text
    assert samples[("requests_total", (("code", "200"), ("route", "/v1/x")))] == 3
    assert samples[("depth", (("worker", "0"),))] == 2.5
    # Histogram invariants: cumulative buckets, +Inf == count.
    count = samples[("latency_count", (("stage", "pipe"),))]
    assert count == 4
    assert samples[("latency_sum", (("stage", "pipe"),))] == pytest.approx(42.304)
    cumulative = [
        samples[("latency_bucket", (("le", str(float(b)) if not float(b).is_integer() else str(int(b))), ("stage", "pipe")))]
        for b in DEFAULT_BUCKETS
    ]
    assert cumulative == sorted(cumulative)
    assert samples[("latency_bucket", (("le", "+Inf"), ("stage", "pipe")))] == count
    assert cumulative[0] == 0 and cumulative[1] == 2  # 2 x 0.002 <= 0.0025


def test_render_prometheus_escapes_label_values():
    registry = MetricsRegistry()
    hostile = 'a"b\\c\nd'
    registry.inc("c", 1, route=hostile)
    samples, _ = parse_prometheus(render_prometheus(registry.to_dict()))
    assert samples[("c", (("route", hostile),))] == 1


# ----------------------------------------------------------------------
# Tracing
# ----------------------------------------------------------------------
def test_spans_record_only_under_a_current_trace():
    registry = get_registry()
    before = registry.value("stage_seconds", stage="orphan")
    assert current_trace() is None
    add_span("orphan", 0.001)  # no trace: observed, not recorded anywhere
    assert registry.value("stage_seconds", stage="orphan") == before + 1
    trace = Trace()
    with use_trace(trace):
        assert current_trace() is trace
        add_span("statistics", 0.25, fd="a -> b")
        with span("scoring", relation="t"):
            pass
    assert current_trace() is None
    names = [entry["name"] for entry in trace.span_dicts()]
    assert names == ["statistics", "scoring"]
    assert trace.span_dicts()[0]["fd"] == "a -> b"
    assert trace.span_dicts()[1]["seconds"] >= 0


def test_trace_extend_does_not_reobserve_histograms():
    registry = get_registry()
    trace = Trace("abc123")
    before = registry.value("stage_seconds", stage="remote")
    trace.extend([{"name": "remote", "seconds": 0.5}])
    assert registry.value("stage_seconds", stage="remote") == before
    assert trace.span_dicts() == [{"name": "remote", "seconds": 0.5}]
    assert len(new_trace_id()) == 16


# ----------------------------------------------------------------------
# Request log
# ----------------------------------------------------------------------
def test_request_logger_slow_flag_and_filtering():
    lines = []
    logger = RequestLogger(sink=lines.append, slow_ms=100.0, log_all=False)
    logger.log({"path": "/fast", "duration_ms": 3.0})
    logger.log({"path": "/slow", "duration_ms": 250.0})
    records = [json.loads(line) for line in lines]
    assert [record["path"] for record in records] == ["/slow"]
    assert records[0]["slow"] is True
    everything = []
    RequestLogger(sink=everything.append, slow_ms=100.0).log(
        {"path": "/fast", "duration_ms": 3.0}
    )
    assert json.loads(everything[0])["slow"] is False
    line = format_line({"b": 1, "a": {"nested": True}})
    assert json.loads(line) == {"a": {"nested": True}, "b": 1}
    assert line.index('"a"') < line.index('"b"')  # sorted keys, one line
    assert "\n" not in line


# ----------------------------------------------------------------------
# Bit-identity: instrumentation must never change a result
# ----------------------------------------------------------------------
@pytest.mark.parametrize("backend", BACKENDS)
def test_score_and_discover_identical_with_instrumentation_off(backend):
    def run():
        session = AfdSession(small_relation(), backend=backend, expectation="exact")
        result = session.score("zip -> city")
        discovered = session.discover(threshold=0.1, max_lhs_size=2)
        return result.scores, [scored.to_dict() for scored in discovered.candidates]

    assert get_registry().enabled
    enabled = run()
    set_enabled(False)
    try:
        assert os.environ.get("REPRO_OBS_DISABLED") == "1"
        disabled = run()
    finally:
        set_enabled(True)
    assert os.environ.get("REPRO_OBS_DISABLED") is None
    assert enabled == disabled


# ----------------------------------------------------------------------
# End to end over HTTP
# ----------------------------------------------------------------------
def _request(base, method, path, payload=None, headers=()):
    request = urllib.request.Request(
        base + path,
        data=None if payload is None else json.dumps(payload).encode("utf-8"),
        headers={"Content-Type": "application/json", **dict(headers)},
        method=method,
    )
    with urllib.request.urlopen(request) as response:
        return response.status, dict(response.headers), response.read()


def _relation_payload(name):
    relation = small_relation(name)
    return {
        "name": name,
        "attributes": list(relation.attributes),
        "rows": [list(row) for row in relation.rows()],
    }


def _wait_for(predicate, timeout=10.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(0.01)
    return False


@pytest.fixture()
def sharded_service():
    sink = []
    logger = RequestLogger(sink=lambda line: sink.append(json.loads(line)))
    server, pool = make_sharded_server(workers=2, logger=logger)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    base = "http://{0}:{1}".format(*server.server_address)
    yield base, pool, sink
    server.shutdown()
    thread.join(timeout=10)
    server.server_close()


def test_sharded_trace_metrics_stats_and_healthz(sharded_service):
    base, pool, sink = sharded_service
    _request(base, "POST", "/v1/relations", _relation_payload("t"))
    trace_id = new_trace_id()
    status, headers, _ = _request(
        base,
        "POST",
        "/v1/relations/t/score",
        {"fd": "zip -> city"},
        headers=[("X-Trace-Id", trace_id)],
    )
    assert status == 200
    assert headers["X-Trace-Id"] == trace_id

    # The JSON log line for the score request carries the same trace id
    # and spans from both sides of the pipe.  The log record is appended
    # *after* the response bytes go out — poll, don't race.
    def scored_logged():
        return any(record.get("trace_id") == trace_id for record in sink)

    assert _wait_for(scored_logged)
    (record,) = [r for r in sink if r.get("trace_id") == trace_id]
    assert record["route"] == "/v1/relations/{name}/score"
    assert record["status"] == 200 and record["duration_ms"] >= 0
    stages = {span_["name"] for span_ in record["spans"]}
    assert "parse" in stages and "pipe" in stages
    assert "statistics" in stages  # recorded inside the worker process
    json.loads(format_line(record))  # the record is JSON-serialisable

    # /v1/metrics: aggregated exposition, worker-side families included.
    status, headers, body = _request(base, "GET", "/v1/metrics")
    assert status == 200
    assert headers["Content-Type"] == PROMETHEUS_CONTENT_TYPE
    samples, types = parse_prometheus(body.decode("utf-8"))
    assert types["requests_total"] == "counter"
    scores = samples[
        ("requests_total", (("code", "200"), ("route", "/v1/relations/{name}/score")))
    ]
    assert scores >= 1
    assert types["session_statistics_total"] == "counter"  # from a worker
    assert types["stage_seconds"] == "histogram"

    # /v1/stats: one entry per worker plus dispatcher and front-end state.
    status, _, body = _request(base, "GET", "/v1/stats")
    stats = json.loads(body)
    assert status == 200 and stats["mode"] == "sharded"
    assert len(stats["workers"]) == 2
    assert sorted(w["pid"] for w in stats["workers"]) == sorted(
        pid for pid in pool.pids()
    )
    assert len(stats["dispatcher"]["queue_depth"]) == 2
    assert stats["frontend"]["requests_total"] >= 2

    # /v1/healthz: per-worker liveness detail.
    status, _, body = _request(base, "GET", "/v1/healthz")
    health = json.loads(body)
    assert status == 200 and health["status"] == "ok"
    detail = health["worker_detail"]
    assert [entry["worker"] for entry in detail] == [0, 1]
    assert all(entry["alive"] for entry in detail)
    assert all(entry["responsive"] for entry in detail)
    assert sum(entry["relations"] is not None and "t" in entry["relations"] for entry in detail) == 1


def test_sharded_healthz_degrades_when_a_worker_dies(sharded_service):
    base, pool, _ = sharded_service
    victim = pool.pids()[0]
    os.kill(victim, signal.SIGKILL)
    assert _wait_for(lambda: pool.alive()[0] is False)
    status, _, body = _request(base, "GET", "/v1/healthz")
    health = json.loads(body)
    assert status == 200
    assert health["status"] == "degraded"
    dead = health["worker_detail"][0]
    assert dead["alive"] is False and dead["responsive"] is False


def test_inline_metrics_and_stats_endpoints():
    server, _state = make_server()
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    base = "http://{0}:{1}".format(*server.server_address)
    try:
        _request(base, "POST", "/v1/relations", _relation_payload("inline"))
        _request(base, "POST", "/v1/relations/inline/score", {"fd": "zip -> city"})
        status, headers, body = _request(base, "GET", "/v1/metrics")
        assert status == 200
        assert headers["Content-Type"] == PROMETHEUS_CONTENT_TYPE
        samples, _ = parse_prometheus(body.decode("utf-8"))
        assert any(name == "requests_total" for name, _ in samples)
        status, _, body = _request(base, "GET", "/v1/stats")
        stats = json.loads(body)
        assert status == 200 and stats["mode"] == "inline"
        assert len(stats["workers"]) == 1
        assert stats["workers"][0]["sessions"][0]["name"] == "inline"
    finally:
        server.shutdown()
        thread.join(timeout=10)
        server.server_close()
