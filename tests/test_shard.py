"""Sharded serving: the ring, the worker protocol, and e2e bit-identity.

Contracts under test:

* :class:`HashRing` is deterministic across instances (ownership is a
  pure function of the relation name), spreads names over workers, and
  keeps most assignments stable when the pool grows;
* the worker pipe protocol serves the same ``(status, body)`` pairs as
  the in-process executor, and answers ``wrong_shard`` (421) when a
  relation-scoped message reaches a non-owner;
* the dispatcher coalesces queued same-relation scores into one
  ``score_batch`` round trip and splits the reply per client;
* an 8-worker sharded server is bit-identical (volatile timing fields
  aside — :func:`stable_view`) to single-process serial serving over
  plain ``urllib``, including under concurrent clients, and deltas
  route to (only) the owning shard.
"""

import json
import threading
import urllib.error
import urllib.request
from collections import Counter

import pytest

from repro.service.model import stable_view
from repro.service.server import make_server, make_sharded_server
from repro.service.shard import DEFAULT_REPLICAS, HashRing, ShardDispatcher, ShardPool


def relation_payload(name="t", rows=60, dynamic=False):
    data = [[str(i % 7), str((i * i) % 5)] for i in range(rows)]
    payload = {"name": name, "attributes": ["X", "Y"], "rows": data}
    if dynamic:
        payload["dynamic"] = True
    return payload


def _get(url):
    with urllib.request.urlopen(url) as response:
        return response.status, json.loads(response.read())


def _post(url, payload):
    request = urllib.request.Request(
        url,
        data=json.dumps(payload).encode("utf-8"),
        headers={"Content-Type": "application/json"},
        method="POST",
    )
    with urllib.request.urlopen(request) as response:
        return response.status, json.loads(response.read())


# ----------------------------------------------------------------------
# HashRing
# ----------------------------------------------------------------------
def test_ring_is_deterministic_across_instances():
    names = [f"rel-{i}" for i in range(200)]
    first = HashRing(4)
    second = HashRing(4)
    assert [first.owner(name) for name in names] == [second.owner(name) for name in names]


def test_ring_spreads_names_over_all_workers():
    ring = HashRing(4)
    counts = Counter(ring.owner(f"rel-{i}") for i in range(400))
    assert set(counts) == {0, 1, 2, 3}
    # No worker owns more than half the keys (virtual nodes spread load).
    assert max(counts.values()) < 200


def test_ring_growth_moves_few_keys():
    names = [f"rel-{i}" for i in range(500)]
    small, large = HashRing(4), HashRing(5)
    moved = sum(small.owner(name) != large.owner(name) for name in names)
    # Consistent hashing moves ~1/5 of the keys to the new worker; a
    # modulo scheme would move ~4/5.  Allow generous slack.
    assert moved < 250


def test_ring_rejects_bad_parameters():
    with pytest.raises(ValueError):
        HashRing(0)
    with pytest.raises(ValueError):
        HashRing(2, replicas=0)
    assert HashRing(1).owner("anything") == 0
    assert DEFAULT_REPLICAS > 0


# ----------------------------------------------------------------------
# Worker pipe protocol
# ----------------------------------------------------------------------
def test_worker_protocol_register_score_and_wrong_shard():
    pool = ShardPool(2)
    try:
        payload = relation_payload("t")
        owner = pool.owner("t")
        other = 1 - owner
        status, body = pool.request(owner, "register", payload)
        assert status == 201 and body["name"] == "t"
        status, scored = pool.request(
            owner, "score", {"relation": "t", "fd": "X -> Y"}
        )
        assert status == 200 and scored["kind"] == "profile_result"
        # The same message on the non-owner is refused, not served.
        status, refused = pool.request(
            other, "score", {"relation": "t", "fd": "X -> Y"}
        )
        assert status == 421
        assert refused["error"]["code"] == "wrong_shard"
        assert refused["error"]["detail"]["owner"] == owner
        status, refused = pool.request(other, "register", payload)
        assert status == 421 and refused["error"]["code"] == "wrong_shard"
        # Errors cross the pipe as envelopes too.
        status, missing = pool.request(owner, "score", {"relation": "t"})
        assert status == 400 and missing["error"]["code"] == "malformed_record"
    finally:
        pool.stop()
    assert pool.alive() == [False, False]


def test_dispatcher_coalesces_queued_scores_into_one_batch():
    pool = ShardPool(1)
    try:
        readers = {}
        dispatcher = ShardDispatcher(pool, lambda conn, cb: readers.update(cb=cb))
        connection = pool.connections[0]

        registered = []
        dispatcher.submit(
            0, "register", relation_payload("t"),
            lambda status, body: registered.append(status),
        )
        assert connection.poll(10)
        readers["cb"]()
        assert registered == [201]

        answers = []
        for _ in range(3):
            dispatcher.submit(
                0, "score", {"relation": "t", "fd": "X -> Y"},
                lambda status, body: answers.append((status, body)),
            )
        # The first score went out alone; the two queued behind it must
        # coalesce into a single split score_batch round trip.
        assert connection.poll(10)
        readers["cb"]()  # reply to the single score; pumps the batch
        assert len(answers) == 1
        assert connection.poll(10)
        readers["cb"]()  # reply to the batch, split back per client
        assert len(answers) == 3
        bodies = [json.loads(body) for _, body in answers]
        assert all(status == 200 for status, _ in answers)
        assert all(body["kind"] == "profile_result" for body in bodies)
        assert stable_view(bodies[0]) == stable_view(bodies[1]) == stable_view(bodies[2])
    finally:
        pool.stop()


# ----------------------------------------------------------------------
# End to end: sharded == serial
# ----------------------------------------------------------------------
@pytest.fixture()
def serial_and_sharded():
    serial_server, _ = make_server()
    sharded_server, pool = make_sharded_server(workers=8)
    threads = [
        threading.Thread(target=server.serve_forever, daemon=True)
        for server in (serial_server, sharded_server)
    ]
    for thread in threads:
        thread.start()
    bases = tuple(
        "http://{0}:{1}".format(*server.server_address)
        for server in (serial_server, sharded_server)
    )
    yield bases, pool, sharded_server
    for server, thread in zip((serial_server, sharded_server), threads):
        server.shutdown()
        thread.join(timeout=10)
        server.server_close()


def test_sharded_is_bit_identical_to_serial(serial_and_sharded):
    (serial, sharded), _, _ = serial_and_sharded
    for base in (serial, sharded):
        assert _post(f"{base}/v1/relations", relation_payload("alpha"))[0] == 201
        assert _post(
            f"{base}/v1/relations", relation_payload("beta", rows=40)
        )[0] == 201
    probes = ["X -> Y", "Y -> X", "X -> Y"]
    for name in ("alpha", "beta"):
        for fd in probes:
            ser = _post(f"{serial}/v1/relations/{name}/score", {"fd": fd})
            sha = _post(f"{sharded}/v1/relations/{name}/score", {"fd": fd})
            assert ser[0] == sha[0] == 200
            assert stable_view(ser[1]) == stable_view(sha[1])
        batch = {"requests": [{"fd": fd} for fd in probes]}
        ser = _post(f"{serial}/v1/relations/{name}/score", batch)
        sha = _post(f"{sharded}/v1/relations/{name}/score", batch)
        assert stable_view(ser[1]) == stable_view(sha[1])
        ser = _post(
            f"{serial}/v1/relations/{name}/discover", {"threshold": 0.5}
        )
        sha = _post(
            f"{sharded}/v1/relations/{name}/discover", {"threshold": 0.5}
        )
        assert stable_view(ser[1]) == stable_view(sha[1])
    ser = _get(f"{serial}/v1/relations")
    sha = _get(f"{sharded}/v1/relations")
    assert stable_view(ser[1]) == stable_view(sha[1])
    assert _get(f"{sharded}/v1/healthz")[1]["sessions"] == ["alpha", "beta"]


def test_sharded_concurrent_clients_match_serial(serial_and_sharded):
    (serial, sharded), _, _ = serial_and_sharded
    for base in (serial, sharded):
        assert _post(f"{base}/v1/relations", relation_payload("t"))[0] == 201
    reference = _post(f"{serial}/v1/relations/t/score", {"fd": "X -> Y"})[1]
    answers = []
    errors = []

    def client():
        try:
            for _ in range(5):
                answers.append(
                    _post(f"{sharded}/v1/relations/t/score", {"fd": "X -> Y"})[1]
                )
        except BaseException as error:  # pragma: no cover - failure reporting
            errors.append(error)

    threads = [threading.Thread(target=client) for _ in range(8)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert not errors and len(answers) == 40
    expected = stable_view(reference)
    assert all(stable_view(body) == expected for body in answers)


def test_sharded_deltas_route_to_owning_worker(serial_and_sharded):
    (serial, sharded), pool, sharded_server = serial_and_sharded
    for base in (serial, sharded):
        assert _post(
            f"{base}/v1/relations", relation_payload("stream", dynamic=True)
        )[0] == 201
        _post(f"{base}/v1/relations/stream/score", {"fd": "X -> Y"})
    delta = {"inserts": [["7", "7"], ["8", "8"]], "deletes": [0]}
    ser = _post(f"{serial}/v1/relations/stream/delta", delta)
    sha = _post(f"{sharded}/v1/relations/stream/delta", delta)
    assert ser[0] == sha[0] == 200
    assert sha[1]["epoch"] == 1
    assert stable_view(ser[1]) == stable_view(sha[1])
    # Post-delta scores reflect the mutation identically.
    ser = _post(f"{serial}/v1/relations/stream/score", {"fd": "X -> Y"})
    sha = _post(f"{sharded}/v1/relations/stream/score", {"fd": "X -> Y"})
    assert stable_view(ser[1]) == stable_view(sha[1])
    # Unknown relations fail fast at the front door with the envelope.
    with pytest.raises(urllib.error.HTTPError) as excinfo:
        _post(f"{sharded}/v1/relations/ghost/delta", delta)
    assert excinfo.value.code == 404
    assert json.load(excinfo.value)["error"]["code"] == "unknown_relation"
    # The session lives on exactly the ring-owner worker.  Quiesce the
    # event loop first: the blocking pool helpers share its pipes.
    sharded_server.shutdown()
    import time

    deadline = time.time() + 10
    while sharded_server._serving.is_set() and time.time() < deadline:
        time.sleep(0.01)
    owner = pool.owner("stream")
    for worker_id in range(pool.num_workers):
        status, body = pool.request(worker_id, "relations")
        names = [entry["name"] for entry in body["relations"]]
        assert ("stream" in names) == (worker_id == owner)
        if worker_id == owner:
            entry = next(e for e in body["relations"] if e["name"] == "stream")
            assert entry["epoch"] == 1
