"""Figure generation from curves.csv artifacts (matplotlib optional)."""

import json

import pytest

from repro.experiments import plotting
from repro.experiments.plotting import (
    MATPLOTLIB_MISSING,
    discover_curve_files,
    load_curves,
    run_plot,
)

FIXTURE = """measure,step,parameter_value,mean_positive_score,mean_negative_score
g3,0,0.0,0.99,0.4
g3,1,0.5,0.95,0.41
rho,1,0.5,0.9,0.3
rho,0,0.0,0.97,0.28
"""


@pytest.fixture
def results_dir(tmp_path):
    directory = tmp_path / "results" / "err"
    directory.mkdir(parents=True)
    (directory / "curves.csv").write_text(FIXTURE)
    (directory / "summary.json").write_text(json.dumps({"parameter_name": "error_rate"}))
    return tmp_path / "results"


def test_load_curves_groups_and_sorts_by_step(results_dir):
    curves = load_curves(results_dir / "err" / "curves.csv")
    assert set(curves) == {"g3", "rho"}
    assert [point["step"] for point in curves["rho"]] == [0.0, 1.0]
    assert curves["g3"][0] == {
        "step": 0.0,
        "parameter_value": 0.0,
        "mean_positive_score": 0.99,
        "mean_negative_score": 0.4,
    }


def test_load_curves_rejects_foreign_csv(tmp_path):
    path = tmp_path / "not_curves.csv"
    path.write_text("a,b\n1,2\n")
    with pytest.raises(ValueError, match="not a curves.csv artifact"):
        load_curves(path)


def test_discover_curve_files(results_dir, tmp_path):
    assert discover_curve_files(results_dir) == [
        ("err", results_dir / "err" / "curves.csv")
    ]
    assert discover_curve_files(tmp_path / "missing") == []


def test_run_plot_without_matplotlib_skips_cleanly(results_dir, monkeypatch, capsys):
    monkeypatch.setattr(plotting, "matplotlib_available", lambda: False)
    payload = run_plot(results_dir=str(results_dir), image_format="png")
    assert payload["rendered"] == []
    assert payload["skipped"] == ["err"]
    assert payload["matplotlib_available"] is False
    assert MATPLOTLIB_MISSING in capsys.readouterr().out
    assert not list(results_dir.glob("**/*.png"))


def test_run_plot_rejects_unknown_format(results_dir):
    with pytest.raises(ValueError, match="unknown plot format"):
        run_plot(results_dir=str(results_dir), image_format="bmp")


def test_run_plot_renders_when_matplotlib_present(results_dir):
    pytest.importorskip("matplotlib")
    payload = run_plot(results_dir=str(results_dir), image_format="svg")
    assert payload["rendered"] == [str(results_dir / "err" / "err.svg")]
    assert (results_dir / "err" / "err.svg").read_text().lstrip().startswith("<?xml")


def test_cli_plot_mode_reports_missing_artifacts(tmp_path, capsys):
    from repro.experiments.__main__ import main

    assert main(["--plot", "--output-dir", str(tmp_path / "empty")]) == 0
    assert "no curves.csv artifacts" in capsys.readouterr().out


def test_cli_plot_mode_over_fixture(results_dir, capsys):
    from repro.experiments.__main__ import main

    assert main(["--plot", "--output-dir", str(results_dir)]) == 0
    out = capsys.readouterr().out
    if plotting.matplotlib_available():  # pragma: no cover - env-dependent
        assert "rendered:" in out
    else:
        assert "skipped (no matplotlib): err" in out
